"""Fig. 8 bench: steady-state overhead of every FT scheme.

Run: ``pytest benchmarks/bench_fig8.py --benchmark-only -s``
"""

import pytest

from repro.bench.fig8 import PAPER_LATENCY, SCHEME_ORDER, relative, run_fig8

DURATION = 900.0


@pytest.mark.parametrize("app_name", ["bcp", "signalguru"])
def test_fig8_scheme_sweep(benchmark, app_name):
    outcomes = benchmark.pedantic(
        lambda: run_fig8(app_name, duration_s=DURATION), rounds=1, iterations=1
    )
    rel = relative(outcomes)
    print(f"\n[fig8/{app_name}] relative to base:")
    for label in SCHEME_ORDER:
        print(f"  {label:7s} tput {rel[label]['throughput']*100:4.0f}%  "
              f"lat {rel[label]['latency']:.2f}x (paper lat "
              f"{PAPER_LATENCY[app_name][label]:.2f}x)")

    # Shape assertions from the paper:
    # 1. local is the upper bound (closest to base).
    others = [l for l in SCHEME_ORDER if l not in ("base", "local")]
    assert all(rel["local"]["latency"] <= rel[o]["latency"] * 1.05 for o in others)
    # 2. dist-n latency grows monotonically with n.
    assert (rel["dist-1"]["latency"] <= rel["dist-2"]["latency"]
            <= rel["dist-3"]["latency"])
    # 3. MobiStreams beats dist-2, dist-3 and rep-2 on latency.
    for o in ("dist-2", "dist-3", "rep-2"):
        assert rel["ms-8"]["latency"] < rel[o]["latency"]
    # 4. rep-2 pays the largest throughput penalty.
    assert rel["rep-2"]["throughput"] == min(
        rel[o]["throughput"] for o in others
    )
    # 5. MobiStreams' throughput stays within a few percent of base.
    assert rel["ms-8"]["throughput"] > 0.9


@pytest.mark.parametrize("app_name", ["bcp"])
def test_fig8_headline_vs_prior_art(benchmark, app_name):
    """ms vs {rep-2, dist-n}: large tput gain, large latency cut."""
    outcomes = benchmark.pedantic(
        lambda: run_fig8(app_name, duration_s=DURATION), rounds=1, iterations=1
    )
    rel = relative(outcomes)
    prior = ["rep-2", "dist-1", "dist-2", "dist-3"]
    tput_gain = sum(
        rel["ms-8"]["throughput"] / rel[o]["throughput"] - 1 for o in prior
    ) / len(prior)
    lat_cut = sum(1 - rel["ms-8"]["latency"] / rel[o]["latency"] for o in prior) / len(prior)
    print(f"\n[fig8/{app_name}] ms vs prior art: +{tput_gain*100:.0f}% tput, "
          f"-{lat_cut*100:.0f}% latency (paper: +230%, -40%)")
    assert tput_gain > 0.10
    assert lat_cut > 0.15
