"""Fig. 10 bench: preservation and checkpoint/replication data volumes.

Run: ``pytest benchmarks/bench_fig10.py --benchmark-only -s``
"""

import pytest

from repro.bench.fig8 import SCHEME_ORDER
from repro.bench.fig10 import PAPER_CKPT_NETWORK, PAPER_PRESERVATION, run_fig10

DURATION = 900.0


@pytest.mark.parametrize("app_name", ["bcp", "signalguru"])
def test_fig10_data_volumes(benchmark, app_name):
    rel = benchmark.pedantic(
        lambda: run_fig10(app_name, duration_s=DURATION), rounds=1, iterations=1
    )
    print(f"\n[fig10/{app_name}] (relative to ms-8 = 1)")
    for label in SCHEME_ORDER:
        print(f"  {label:7s} preservation {rel[label]['preservation']:5.2f} "
              f"(paper {PAPER_PRESERVATION[app_name][label]:5.2f})   "
              f"ckpt-net {rel[label]['ckpt_network']:5.2f} "
              f"(paper {PAPER_CKPT_NETWORK[app_name][label]:5.2f})")

    # (a) input/source preservation:
    assert rel["base"]["preservation"] == 0.0
    assert rel["rep-2"]["preservation"] == 0.0
    # prior checkpoint schemes retain far more than MobiStreams' sources.
    for label in ("local", "dist-1"):
        assert rel[label]["preservation"] > 1.5
    # MobiStreams is the normalizer.
    assert rel["ms-8"]["preservation"] == pytest.approx(1.0)

    # (b) checkpoint/replication network bytes:
    assert rel["base"]["ckpt_network"] == 0.0
    assert rel["local"]["ckpt_network"] < 0.05  # acks only, no state
    # rep-2 duplicates the dataflow: by far the largest network cost.
    assert rel["rep-2"]["ckpt_network"] > 3.0
    # dist-1 sends one unicast state copy per node per period — the same
    # order as ms's broadcast (paper: 0.71-0.76x; ours lands near 1x
    # because ms's bitmap/TCP-tree overhead is small at 8% loss).
    assert rel["dist-1"]["ckpt_network"] < 1.35
    # dist-n grows ~linearly in n.
    assert (rel["dist-1"]["ckpt_network"] < rel["dist-2"]["ckpt_network"]
            < rel["dist-3"]["ckpt_network"])
    ratio = rel["dist-2"]["ckpt_network"] / rel["dist-1"]["ckpt_network"]
    assert 1.5 < ratio < 2.5  # ≈ 2x for twice the copies
