"""Table I bench: MobiStreams vs server-based DSPS.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only -s``

Each bench simulates the deployment once (the *benchmark* time is the
wall cost of regenerating the row) and prints the paper-vs-measured
values.  Shape assertions guard the headline: MobiStreams beats the
server deployment on both axes.
"""

import pytest

from repro.bench.harness import ExperimentConfig, run_experiment
from repro.bench.table1 import PAPER, run_server_point

DURATION = 600.0


@pytest.mark.parametrize("app_name", ["bcp", "signalguru"])
def test_server_dsps_band(benchmark, app_name):
    def run():
        lo = run_server_point(app_name, 0.016, DURATION)
        hi = run_server_point(app_name, 0.32, DURATION)
        return lo, hi

    (lo_t, lo_l), (hi_t, hi_l) = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[table1/{app_name}] server tput {min(lo_t,hi_t):.3f}~{max(lo_t,hi_t):.3f} t/s "
          f"(paper {PAPER[app_name]['server'][0]}), "
          f"lat {min(lo_l,hi_l):.0f}~{max(lo_l,hi_l):.0f} s (paper {PAPER[app_name]['server'][1]})")
    # The uplink bottleneck: even the best server point is far below 1 t/s.
    assert max(lo_t, hi_t) < 0.5


@pytest.mark.parametrize("app_name", ["bcp", "signalguru"])
def test_mobistreams_beats_server(benchmark, app_name):
    def run():
        ms = run_experiment(ExperimentConfig(app=app_name, scheme="base",
                                             duration_s=DURATION))
        server_t, server_l = run_server_point(app_name, 0.32, DURATION)
        return ms, server_t, server_l

    ms, server_t, server_l = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = ms.throughput / server_t
    lat_cut = 1 - ms.latency / server_l
    print(f"\n[table1/{app_name}] MobiStreams {ms.throughput:.3f} t/s / {ms.latency:.0f} s "
          f"vs server {server_t:.3f} t/s / {server_l:.0f} s "
          f"-> {speedup:.1f}x tput, {lat_cut * 100:.0f}% lat cut "
          f"(paper: 0.78~42.6x, 10~94.8%)")
    assert ms.throughput > server_t  # MobiStreams wins on throughput
    assert ms.latency < server_l     # and on latency


@pytest.mark.parametrize("app_name", ["bcp", "signalguru"])
def test_mobistreams_fault_scenarios(benchmark, app_name):
    """FT on + periodic departures/failures stays close to FT off."""

    def run():
        base = run_experiment(ExperimentConfig(app=app_name, scheme="base",
                                               duration_s=DURATION))
        # Crash mid-way through the second checkpoint period so an MRC
        # exists and catch-up replays at most one period of input.
        fail = run_experiment(ExperimentConfig(
            app=app_name, scheme="ms-8", duration_s=DURATION,
            idle_per_region=4, crash=(0.75 * DURATION, [3]),
        ))
        return base, fail

    base, fail = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[table1/{app_name}] FT off {base.throughput:.3f} t/s, "
          f"failure-every-period {fail.throughput:.3f} t/s "
          f"(paper {PAPER[app_name]['ms_ft_off'][0]} vs {PAPER[app_name]['ms_failures'][0]})")
    assert fail.recoveries >= 1
    # A failure per period costs throughput (down time + catch-up
    # reprocessing) but nowhere near the server-deployment collapse.
    # Our pipelines run closer to saturation than the paper's testbed,
    # so catch-up is slower than their 0.48/0.54 ratio (see
    # EXPERIMENTS.md).
    assert fail.throughput > 0.4 * base.throughput
