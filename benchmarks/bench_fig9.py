"""Fig. 9 bench: n simultaneous failures/departures in one period.

Run: ``pytest benchmarks/bench_fig9.py --benchmark-only -s``
"""

import pytest

from repro.bench.fig9 import run_fig9

DURATION = 700.0
MAX_N = 6


@pytest.mark.parametrize("app_name", ["bcp", "signalguru"])
def test_fig9_curves(benchmark, app_name):
    curves = benchmark.pedantic(
        lambda: run_fig9(app_name, duration_s=DURATION, max_n=MAX_N),
        rounds=1, iterations=1,
    )
    print(f"\n[fig9/{app_name}]")
    for label, series in curves.items():
        pts = " ".join(f"n={n}:{rt*100:.0f}%/{rl:.2f}x{'' if ok else '!DEAD'}"
                       for n, rt, rl, ok in series)
        print(f"  {label}: {pts}")

    ms_fail = curves["ms-8 failure"]
    # Finding 1: MobiStreams recovers at every n; the overhead is roughly
    # flat (constant recovery cost regardless of burst size).
    assert all(ok for _n, _rt, _rl, ok in ms_fail)
    tputs = [rt for _n, rt, _rl, _ok in ms_fail[1:]]
    assert max(tputs) - min(tputs) < 0.35  # flat-ish curve
    assert min(tputs) > 0.5

    # Finding 2: dist-n dies beyond n; rep-2 beyond 1 (curves simply end).
    assert len(curves["rep-2 failure"]) == 2
    assert len(curves["dist-1 failure"]) == 2
    assert len(curves["dist-2 failure"]) == 3
    assert len(curves["dist-3 failure"]) == 4

    # Finding 3: a single departure costs less than a single failure
    # (state transfer only — no restore, no catch-up).
    dep1 = curves["ms-8 departure"][1]
    fail1 = ms_fail[1]
    assert dep1[2] <= fail1[2] * 1.1  # relative latency no worse


@pytest.mark.parametrize("app_name", ["bcp"])
def test_fig9_departure_contention_grows_with_n(benchmark, app_name):
    """Many simultaneous departures share the cellular uplink: the state
    transfers slow each other down, so handling time rises with n
    (the paper's explanation for departures overtaking failures at
    large n)."""
    def run():
        times = {}
        for n in (1, MAX_N):
            from repro.core.system import MobiStreamsSystem, SystemConfig
            from repro.apps import BCPApp
            from repro.checkpoint import MobiStreamsScheme

            cfg = SystemConfig(n_regions=1, phones_per_region=8,
                               idle_per_region=8, master_seed=3)
            s = MobiStreamsSystem(cfg, BCPApp(), MobiStreamsScheme)
            s.start()
            idxs = [3, 4, 5, 6, 2, 7][:n]
            for i in idxs:
                s.sim.call_at(450.0, lambda i=i: s.apply_departure(f"region0.p{i}"))
            s.run(DURATION)
            done = [r.time for r in s.trace.select("departure_state_transfer")]
            times[n] = (max(done) - 450.0) if done else float("inf")
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[fig9/{app_name}] departure handling: n=1 {times[1]:.1f}s, "
          f"n={MAX_N} {times[MAX_N]:.1f}s")
    # n simultaneous state transfers over the shared uplink take longer
    # than one.
    assert times[MAX_N] > times[1]
