"""Ablation benches: design-choice sweeps called out in DESIGN.md.

Run: ``pytest benchmarks/bench_ablation.py --benchmark-only -s``
"""

import pytest

from repro.bench.ablation import (
    broadcast_vs_unicast,
    sweep_block_size,
    sweep_burstiness,
    sweep_checkpoint_period,
    sweep_loss,
    sweep_stopping_rule,
)
from repro.util.units import KB, MB


def test_broadcast_vs_unicast(benchmark):
    rows = benchmark.pedantic(
        lambda: broadcast_vs_unicast((1, 2, 4, 7, 9)), rounds=1, iterations=1)
    print("\n[ablation/broadcast-vs-unicast]")
    for r in rows:
        print(f"  n={r['n_receivers']}: broadcast {r['broadcast_bytes'] / MB:6.2f} MB"
              f"  unicast {r['unicast_bytes'] / MB:6.2f} MB  ({r['ratio']:.2f}x)")
    by_n = {r["n_receivers"]: r for r in rows}
    # Unicast is cheaper only for a single receiver.
    assert by_n[1]["ratio"] < 1.1
    # From two receivers on, one broadcast beats n unicasts...
    assert by_n[2]["ratio"] > 1.3
    # ...and the advantage grows roughly linearly with n.
    assert by_n[9]["ratio"] > by_n[4]["ratio"] > by_n[2]["ratio"]
    assert by_n[9]["ratio"] > 4.0


def test_stopping_rule(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep_stopping_rule((None, 0, 1, 2, 4, 8)), rounds=1, iterations=1)
    print("\n[ablation/stopping-rule]")
    for r in rows:
        print(f"  {r['rule']:<10s} rounds={r['udp_rounds']}  total "
              f"{r['total_bytes'] / MB:6.2f} MB  {r['duration_s']:6.1f} s")
    by_rule = {r["rule"]: r for r in rows}
    best_fixed = min(r["total_bytes"] for r in rows if r["rule"] != "cost/gain")
    cg = by_rule["cost/gain"]["total_bytes"]
    # The adaptive rule lands within 10% of the best fixed setting,
    # without knowing the channel in advance.
    assert cg <= best_fixed * 1.10
    # Pure TCP-tree distribution (0 UDP rounds) is far more expensive.
    assert by_rule["fixed-0"]["total_bytes"] > 3.0 * cg
    # Every rule still delivers the full checkpoint everywhere.
    assert all(r["all_complete"] for r in rows)


def test_block_size(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep_block_size((256, KB, 4 * KB, 16 * KB, 64 * KB)),
        rounds=1, iterations=1)
    print("\n[ablation/block-size]")
    for r in rows:
        print(f"  block {r['block_size']:>6d} B: overhead {r['overhead']:.2f}x "
              f" {r['duration_s']:6.1f} s")
    by_bs = {r["block_size"]: r for r in rows}
    # The paper's 1 KB block beats both tiny (header-bound) and huge
    # (fragmentation-bound) settings.
    assert by_bs[KB]["overhead"] <= by_bs[256]["overhead"]
    assert by_bs[KB]["overhead"] < by_bs[16 * KB]["overhead"]
    assert by_bs[64 * KB]["overhead"] > 2.0 * by_bs[KB]["overhead"]


def test_loss_sensitivity(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep_loss((0.0, 0.02, 0.08, 0.2, 0.4)), rounds=1, iterations=1)
    print("\n[ablation/loss-sweep]")
    for r in rows:
        print(f"  loss {r['loss']:.2f}: rounds={r['udp_rounds']} "
              f"overhead {r['overhead']:.2f}x")
    overheads = [r["overhead"] for r in rows]
    # Overhead grows monotonically with channel loss...
    assert all(a <= b * 1.02 for a, b in zip(overheads, overheads[1:]))
    # ...from ~none on a clean channel to a few x on a terrible one.
    assert overheads[0] < 1.1
    assert overheads[-1] > 2.0


def test_loss_burstiness(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep_burstiness((1.0, 4.0, 16.0, 64.0)), rounds=1, iterations=1)
    print("\n[ablation/burstiness] (8% mean loss)")
    for r in rows:
        print(f"  burst {r['mean_burst']:5.0f}: rounds={r['udp_rounds']} "
              f"overhead {r['overhead']:.2f}x")
    # At a fixed mean rate, burstiness shifts *where* losses land but the
    # multi-phase protocol absorbs it: overhead stays in a narrow band
    # around the i.i.d. figure and never blows up.
    base = rows[0]["overhead"]
    for r in rows:
        assert 0.7 * base < r["overhead"] < 1.5 * base
        assert r["udp_rounds"] <= 6


def test_checkpoint_period(benchmark):
    rows = benchmark.pedantic(
        lambda: sweep_checkpoint_period((60.0, 150.0, 300.0, 600.0),
                                        duration_s=1800.0, crash_at=1200.0),
        rounds=1, iterations=1)
    print("\n[ablation/checkpoint-period]")
    for r in rows:
        print(f"  period {r['period_s']:5.0f} s: tput {r['throughput']:.3f} "
              f"lat {r['latency_s']:6.1f} s  preserved {r['preserved_bytes'] / MB:7.1f} MB"
              f"  ckpt-net {r['ft_network_bytes'] / MB:7.1f} MB")
    by_p = {r["period_s"]: r for r in rows}
    # Longer periods broadcast less state overall...
    assert by_p[600.0]["ft_network_bytes"] < by_p[60.0]["ft_network_bytes"]
    # ...and every period still recovers the injected failure.
    assert all(r["recoveries"] >= 1 for r in rows)
