"""Unit and property tests for the token-arrival tracker (Section III-B)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.checkpoint.token_protocol import TokenTracker


def test_single_upstream_ready_immediately():
    t = TokenTracker()
    assert t.record("E", 1, "C", expected={"C"})


def test_multi_upstream_waits_for_all():
    t = TokenTracker()
    assert not t.record("E", 1, "C", expected={"C", "D"})
    assert t.waiting_channels("E", 1) == {"C"}
    assert t.record("E", 1, "D", expected={"C", "D"})
    assert t.is_done("E", 1)


def test_ready_fires_exactly_once():
    t = TokenTracker()
    assert t.record("E", 1, "C", expected={"C"})
    # A duplicate token must not trigger a second snapshot.
    assert not t.record("E", 1, "C", expected={"C"})


def test_versions_are_independent():
    t = TokenTracker()
    assert not t.record("E", 1, "C", expected={"C", "D"})
    assert not t.record("E", 2, "C", expected={"C", "D"})
    assert t.record("E", 1, "D", expected={"C", "D"})
    assert not t.is_done("E", 2)
    assert t.record("E", 2, "D", expected={"C", "D"})


def test_nodes_are_independent():
    t = TokenTracker()
    assert t.record("C", 1, "B", expected={"B"})
    assert not t.is_done("D", 1)


def test_reset_node_clears_pending_and_done():
    t = TokenTracker()
    t.record("E", 1, "C", expected={"C", "D"})
    t.record("F", 1, "E", expected={"E"})
    t.reset_node("E")
    assert t.waiting_channels("E", 1) == set()
    assert not t.is_done("E", 1)
    assert t.is_done("F", 1)  # other nodes untouched
    # After a rebuild the node starts the protocol from scratch.
    assert not t.record("E", 1, "C", expected={"C", "D"})
    assert t.record("E", 1, "D", expected={"C", "D"})


def test_duplicate_channel_token_does_not_complete():
    """Retransmitted token on one channel is idempotent: it neither
    completes the set nor disturbs the waiting bookkeeping."""
    t = TokenTracker()
    assert not t.record("E", 1, "C", expected={"C", "D"})
    assert not t.record("E", 1, "C", expected={"C", "D"})
    assert t.waiting_channels("E", 1) == {"C"}
    assert not t.is_done("E", 1)
    assert t.record("E", 1, "D", expected={"C", "D"})


def test_token_after_abandon_is_ignored():
    t = TokenTracker()
    assert not t.record("E", 3, "C", expected={"C", "D"})
    t.abandon(3)
    assert t.is_abandoned(3)
    # The wave's partial state is gone and late tokens neither block
    # nor snapshot — even the one that would have completed the set.
    assert t.waiting_channels("E", 3) == set()
    assert not t.record("E", 3, "D", expected={"C", "D"})
    assert not t.is_done("E", 3)
    # Other versions are untouched.
    assert t.record("E", 4, "C", expected={"C"})


def test_reset_node_mid_round_replays_cleanly():
    """A node rebuilt mid-round (recovery) restarts the protocol from
    scratch for the same version without double-firing readiness."""
    t = TokenTracker()
    assert not t.record("E", 2, "C", expected={"C", "D"})
    t.reset_node("E")
    # Post-rebuild the round replays: C's token again, then D's.
    assert not t.record("E", 2, "C", expected={"C", "D"})
    assert t.waiting_channels("E", 2) == {"C"}
    assert t.record("E", 2, "D", expected={"C", "D"})
    # Reset after completion also clears done -> a full replay refires.
    t.reset_node("E")
    assert not t.is_done("E", 2)
    assert not t.record("E", 2, "C", expected={"C", "D"})
    assert t.record("E", 2, "D", expected={"C", "D"})


def test_prune_archives_below_floor():
    """prune_abandoned(v) archives all bookkeeping below v: archived
    versions answer is_abandoned even without an explicit abandon, and
    their late tokens are ignored."""
    t = TokenTracker()
    t.abandon(2)
    assert not t.record("E", 1, "C", expected={"C", "D"})
    assert t.record("F", 1, "E", expected={"E"})
    t.prune_abandoned(3)
    # Explicitly-abandoned 2 and never-abandoned 1 are both archived.
    assert t.is_abandoned(1) and t.is_abandoned(2)
    assert not t.is_abandoned(3)
    assert t.waiting_channels("E", 1) == set()
    assert not t.is_done("F", 1)
    assert not t.record("E", 1, "D", expected={"C", "D"})
    # Pruning is monotone: a lower floor later is a no-op.
    t.prune_abandoned(1)
    assert t.is_abandoned(2)
    assert not t.is_abandoned(3)


@given(st.lists(st.sampled_from(["u0", "u1", "u2", "u3"]),
                min_size=1, max_size=30))
def test_ready_exactly_when_all_channels_seen(arrivals):
    """For any arrival order/duplication, readiness fires exactly at the
    first moment every expected channel has delivered a token — and only
    once."""
    expected = {"u0", "u1", "u2", "u3"}
    t = TokenTracker()
    seen = set()
    fired = 0
    for ch in arrivals:
        seen.add(ch)
        ready = t.record("N", 1, ch, expected=expected)
        if ready:
            fired += 1
            assert seen == expected
    assert fired == (1 if seen == expected else 0)
    assert t.is_done("N", 1) == (seen == expected)


@given(st.sets(st.integers(min_value=0, max_value=9), min_size=1),
       st.integers(min_value=1, max_value=5))
def test_any_expected_set_completes(channels, version):
    t = TokenTracker()
    chans = sorted(channels)
    for i, ch in enumerate(chans):
        ready = t.record("N", version, ch, expected=set(chans))
        assert ready == (i == len(chans) - 1)
