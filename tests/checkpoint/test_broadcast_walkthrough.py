"""Fig. 6 walk-through: the exact arithmetic of the paper's example.

8 MB of checkpoint data (8192 x 1 KB blocks), four nodes (sender + A, B,
C), scripted per-round loss:

* round 1: A receives only M1..M3; B all even messages; C all odd.
* round 2: A and B receive everything; C receives nothing.
* round 3 (even messages only): C receives all but M2.

Paper numbers: gains 8195 / 12285 / 4095 KB, costs 8195 / 8195 / 4099 KB;
the sender stops UDP after round 3 because cost (4099) > gain (4095).
"""

import numpy as np

from repro.checkpoint.broadcast import BroadcastSettings, broadcast_checkpoint
from repro.net.loss import LossModel
from repro.net.wifi import WifiCell, WifiConfig
from repro.sim import RngRegistry, Simulator
from repro.util import KB, MB, Mbps


class ScriptedLoss(LossModel):
    """Replays a fixed list of reception patterns, one per sample() call."""

    def __init__(self, patterns):
        self.patterns = list(patterns)
        self.calls = 0

    def sample(self, n, rng):
        if self.calls < len(self.patterns):
            pattern = self.patterns[self.calls]
            self.calls += 1
            out = pattern(n)
        else:
            out = np.ones(n, dtype=bool)
        return out


def fig6_cell(sim):
    """A 4-node cell with Fig. 6's scripted loss and zero protocol overhead
    (the paper's arithmetic has no headers)."""
    losses = {
        # Round 1: first 3 only. Round 2: all.
        "A": ScriptedLoss([
            lambda k: np.arange(k) < 3,
            lambda k: np.ones(k, dtype=bool),
        ]),
        # Round 1: even messages M2, M4 ... = indices 1, 3, 5...
        "B": ScriptedLoss([
            lambda k: np.arange(k) % 2 == 1,
            lambda k: np.ones(k, dtype=bool),
        ]),
        # Round 1: odd messages (indices 0, 2, ...). Round 2: nothing.
        # Round 3 (even messages resent): all but M2 (first resent index).
        "C": ScriptedLoss([
            lambda k: np.arange(k) % 2 == 0,
            lambda k: np.zeros(k, dtype=bool),
            lambda k: np.arange(k) > 0,
        ]),
    }
    # Loss models are created in join order: sender first (never sampled),
    # then A, B, C with their scripted patterns.
    scripts = iter([ScriptedLoss([]), losses["A"], losses["B"], losses["C"]])
    cfg = WifiConfig(
        bandwidth_bps=Mbps(2.0),
        loss_factory=lambda: next(scripts),
        mean_loss=0.0,
        header_bytes=0,
        latency_s=0.0,
    )
    cell = WifiCell(sim, RngRegistry(0), cfg, name="fig6")
    cell.join("sender", lambda m: None)
    for m in ("A", "B", "C"):
        cell.join(m, lambda m: None)
    return cell


def test_fig6_exact_walkthrough():
    sim = Simulator()
    cell = fig6_cell(sim)
    settings = BroadcastSettings(block_size=KB)
    proc = sim.process(
        broadcast_checkpoint(sim, cell, "sender", 8 * MB, settings=settings)
    )
    sim.run()
    outcome = proc.value

    assert outcome.n_blocks == 8192
    assert len(outcome.rounds) == 3

    r1, r2, r3 = outcome.rounds
    # Round 1: all 8192 blocks sent; cost 8192 + 3 bitmap KB; gain 8195 KB.
    assert r1.blocks_sent == 8192
    assert r1.cost_bytes == 8195 * KB
    assert r1.gain_bytes == 8195 * KB
    # Round 2: everything resent (the AND was all-zero).
    assert r2.blocks_sent == 8192
    assert r2.cost_bytes == 8195 * KB
    assert r2.gain_bytes == 12285 * KB
    # Round 3: the 4096 even messages; cost 4099 > gain 4095 -> stop UDP.
    assert r3.blocks_sent == 4096
    assert r3.cost_bytes == 4099 * KB
    assert r3.gain_bytes == 4095 * KB

    # The TCP tree phase closes the single missing block (M2 on node C).
    assert outcome.all_complete
    assert outcome.tcp_bytes >= KB


def test_fig6_udp_byte_total():
    sim = Simulator()
    cell = fig6_cell(sim)
    proc = sim.process(
        broadcast_checkpoint(sim, cell, "sender", 8 * MB,
                             settings=BroadcastSettings(block_size=KB))
    )
    sim.run()
    outcome = proc.value
    # 8192 + 8192 + 4096 blocks + 3 KB of bitmaps per round.
    assert outcome.udp_bytes == (8192 + 8192 + 4096 + 9) * KB
