"""Chaos tests: randomized fault schedules against MobiStreams.

Property: under *any* schedule of crashes and departures — as long as
idle spares remain — the region keeps running, never double-publishes a
result, and loses at most the source-outage windows.  These are the
system-level invariants behind every Fig. 9 point.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import MobiStreamsScheme
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import SinkOperator, SourceOperator, StatefulOperator
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.util import KB

N_TUPLES = 150
N_PHONES = 4


class CountingOp(StatefulOperator):
    def __init__(self, name):
        super().__init__(name, state_size=64 * KB)

    def process(self, tup, ctx):
        self.state["n"] = self.state.get("n", 0) + 1
        return [tup.derive(tup.payload, 2 * KB)]

    def cost(self, tup):
        return 0.03


class ChaosApp(AppSpec):
    name = "chaos"

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("S"))
        g.add_operator(CountingOp("M1"))
        g.add_operator(CountingOp("M2"))
        g.add_operator(SinkOperator("K"))
        g.chain("S", "M1", "M2", "K")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups([["S"], ["M1"], ["M2"], ["K"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def wl():
            for i in range(N_TUPLES):
                yield (1.0, i, 2 * KB)
        return {"S": wl()}


fault_schedules = st.lists(
    st.tuples(
        st.sampled_from(["crash", "depart"]),
        st.floats(min_value=30.0, max_value=250.0),
        st.integers(min_value=0, max_value=N_PHONES - 1),
    ),
    min_size=1, max_size=3,
)


@given(schedule=fault_schedules, seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_fault_schedule_preserves_invariants(schedule, seed):
    cfg = SystemConfig(
        n_regions=1, phones_per_region=N_PHONES,
        idle_per_region=2 * len(schedule) + 2,  # always enough spares
        master_seed=seed, checkpoint_period_s=60.0,
    )
    s = MobiStreamsSystem(cfg, ChaosApp(), MobiStreamsScheme)
    s.start()
    region = s.regions[0]
    # Each fault targets whichever phone *currently* hosts the chosen
    # role at fire time (placements shift as replacements promote).
    roles = ["S", "M1", "M2", "K"]

    def fire(kind, role):
        host = region.placement.node_for(role, 0)
        phone = region.phones.get(host)
        if phone is None or not phone.alive or not region.wifi.is_member(host):
            return  # already gone (an earlier fault hit the same role)
        if kind == "crash":
            region.apply_crash(host, "chaos")
        else:
            region.apply_departure(host)

    for kind, t, role_i in schedule:
        s.sim.call_at(t, lambda k=kind, r=roles[role_i]: fire(k, r))
    s.run(600.0)

    assert not region.stopped, "spares were sufficient; region must survive"

    seqs = [r.data["seq"] for r in s.trace.select("sink_output")]
    # Exactly-once: no sequence number is ever published twice.
    assert len(seqs) == len(set(seqs))
    # Completeness: only source-node outage windows may lose data.  Give
    # each fault a generous recovery allowance.
    allowed_loss = 60 * len(schedule)
    assert len(seqs) >= N_TUPLES - allowed_loss
    # Monotone system state: no node is left with blocked channels.
    for node in region.nodes.values():
        assert not node.blocked_channels


def test_back_to_back_failures_of_the_same_role():
    """The replacement of a failed node fails too; the second spare takes
    over and the stream completes exactly once."""
    cfg = SystemConfig(n_regions=1, phones_per_region=N_PHONES,
                       idle_per_region=4, master_seed=5,
                       checkpoint_period_s=60.0)
    s = MobiStreamsSystem(cfg, ChaosApp(), MobiStreamsScheme)
    s.start()
    region = s.regions[0]

    def crash_m1():
        host = region.placement.node_for("M1", 0)
        region.apply_crash(host, "chaos")

    s.sim.call_at(70.0, crash_m1)
    s.sim.call_at(140.0, crash_m1)
    s.run(500.0)
    assert not region.stopped
    recs = list(s.trace.select("recovery_finished"))
    assert len(recs) == 2
    assert all(r.data["outcome"] == "recovered" for r in recs)
    seqs = [r.data["seq"] for r in s.trace.select("sink_output")]
    assert len(seqs) == len(set(seqs))
    assert len(seqs) == N_TUPLES


def test_crash_and_departure_in_quick_succession():
    cfg = SystemConfig(n_regions=1, phones_per_region=N_PHONES,
                       idle_per_region=4, master_seed=5,
                       checkpoint_period_s=60.0)
    s = MobiStreamsSystem(cfg, ChaosApp(), MobiStreamsScheme)
    s.start()
    region = s.regions[0]
    s.sim.call_at(70.0, lambda: region.apply_crash(
        region.placement.node_for("M1", 0), "chaos"))
    s.sim.call_at(75.0, lambda: region.apply_departure(
        region.placement.node_for("M2", 0)))
    s.run(500.0)
    assert not region.stopped
    seqs = [r.data["seq"] for r in s.trace.select("sink_output")]
    assert len(seqs) == len(set(seqs))
    assert len(seqs) >= N_TUPLES - 60
