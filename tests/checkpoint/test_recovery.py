"""Recovery and mobility tests for the MobiStreams scheme (Sections III-D/E)."""


from repro.checkpoint import MobiStreamsScheme
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import SinkOperator, SourceOperator, StatefulOperator
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.util import KB


class CountingOp(StatefulOperator):
    """Counts tuples; state must survive recovery."""

    def __init__(self, name, cost=0.05):
        super().__init__(name, state_size=128 * KB)
        self._cost = cost

    def process(self, tup, ctx):
        self.state["n"] = self.state.get("n", 0) + 1
        return [tup.derive({"n": self.state["n"], "v": tup.payload}, 2 * KB)]

    def cost(self, tup):
        return self._cost


class StatefulApp(AppSpec):
    name = "stateful"

    def __init__(self, n=200, period=1.0):
        self.n = n
        self.period = period

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("S"))
        g.add_operator(CountingOp("M1"))
        g.add_operator(CountingOp("M2"))
        g.add_operator(SinkOperator("K"))
        g.chain("S", "M1", "M2", "K")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups([["S"], ["M1"], ["M2"], ["K"]], phone_ids)

    def build_workloads(self, rng, region_index):
        if region_index != 0:
            return {}

        def wl():
            for i in range(self.n):
                yield (self.period, i, 4 * KB)

        return {"S": wl()}


def build(idle=4, period=60.0, seed=5):
    cfg = SystemConfig(
        n_regions=1, phones_per_region=4, idle_per_region=idle,
        master_seed=seed, checkpoint_period_s=period,
    )
    return MobiStreamsSystem(cfg, StatefulApp(), MobiStreamsScheme)


def sink_seqs(s):
    return [r.data["seq"] for r in s.trace.select("sink_output")]


def test_single_failure_recovers_and_continues():
    s = build()
    s.injector.crash_at(130.0, ["region0.p1"])  # M1's phone, after ckpt v2
    s.run(400.0)
    recs = list(s.trace.select("recovery_finished"))
    assert len(recs) == 1
    assert recs[0].data["outcome"] == "recovered"
    assert not s.regions[0].stopped
    seqs = sink_seqs(s)
    # Exactly-once: no duplicate publishes despite catch-up replay.
    assert len(seqs) == len(set(seqs))
    # Nothing lost either: the full 200-tuple workload got through.
    assert len(seqs) == 200


def test_burst_failure_of_three_nodes_recovers():
    """The paper's headline: simultaneous multi-node failures recover.

    Three of the four computing phones (everything but the source) die at
    once; source preservation + whole-region MRC restore must deliver the
    complete stream exactly once.
    """
    s = build()
    s.injector.crash_at(130.0, ["region0.p1", "region0.p2", "region0.p3"])
    s.run(400.0)
    recs = list(s.trace.select("recovery_finished"))
    assert len(recs) == 1
    assert recs[0].data["outcome"] == "recovered"
    assert sorted(recs[0].data["failed"]) == [
        "region0.p1", "region0.p2", "region0.p3"
    ]
    assert not s.regions[0].stopped
    seqs = sink_seqs(s)
    assert len(seqs) == len(set(seqs))
    assert len(seqs) == 200


def test_source_node_failure_loses_only_outage_window():
    """Sensed data has nowhere to go while the source phone is dead —
    the paper's source preservation starts at ingest, not at the sensor.
    The stream must still resume exactly-once after recovery."""
    s = build()
    s.injector.crash_at(130.0, ["region0.p0"])  # the source node
    s.run(400.0)
    rec = s.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"
    seqs = sink_seqs(s)
    assert len(seqs) == len(set(seqs))  # still exactly-once
    # Everything sensed before the crash and after the recovery arrives.
    recovered_at = rec.time
    assert max(seqs) == 199
    lost = 200 - len(seqs)
    assert 0 < lost <= (recovered_at - 130.0) / 1.0 + 2


def test_failure_without_replacements_bypasses_region():
    s = build(idle=0)
    s.injector.crash_at(100.0, ["region0.p1"])
    s.run(300.0)
    assert s.regions[0].stopped


def test_state_survives_recovery():
    """Post-recovery counters continue from the checkpoint, not zero."""
    s = build()
    s.injector.crash_at(130.0, ["region0.p1"])
    s.run(400.0)
    # M1's counter state after the run reflects all processed tuples:
    # the replacement restored from MRC and replayed the preserved input.
    region = s.regions[0]
    m1_node = region.nodes[region.placement.node_for("M1", 0)]
    final_count = m1_node.ops["M1"].state.get("n", 0)
    # Without restoration the count would restart near zero at t=130 and
    # end around 70; with MRC restore + replay it covers all 200 tuples.
    assert final_count > 150


def test_recovery_duration_reasonable():
    s = build()
    s.injector.crash_at(130.0, ["region0.p1"])
    s.run(400.0)
    rec = s.trace.last("recovery_finished")
    # Detection is separate; the restore itself is seconds, not minutes
    # ("restoration in MobiStreams scales" — parallel flash reads).
    assert rec.data["duration"] < 60.0


def test_departure_transfers_state_without_catchup():
    s = build()
    s.sim.call_at(130.0, lambda: s.apply_departure("region0.p1"))
    s.run(400.0)
    dep = list(s.trace.select("departure_state_transfer"))
    assert len(dep) == 1
    assert dep[0].data["departed"] == "region0.p1"
    # Departures must not trigger checkpoint restoration / catch-up.
    assert not any(True for _ in s.trace.select("catchup_started"))
    assert not s.regions[0].stopped
    seqs = sink_seqs(s)
    assert len(seqs) == len(set(seqs))
    assert len(seqs) == 200


def test_departed_phone_is_unregistered():
    s = build()
    s.sim.call_at(130.0, lambda: s.apply_departure("region0.p1"))
    s.run(300.0)
    assert "region0.p1" not in s.regions[0].phones
    assert not s.cellular.is_registered("region0.p1")


def test_idle_departure_is_silent():
    s = build()
    s.sim.call_at(100.0, lambda: s.apply_departure("region0.idle0"))
    s.run(300.0)
    assert not any(True for _ in s.trace.select("departure_state_transfer"))
    assert not s.regions[0].stopped


def test_failure_during_checkpoint_recovers_from_previous_mrc():
    """Partial checkpoint data is ignored (Section III-D)."""
    s = build(period=100.0)
    # Crash right when checkpoint v2 starts (t=200): v2 is incomplete.
    s.injector.crash_at(200.5, ["region0.p1", "region0.p2"])
    s.run(450.0)
    rec = s.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"
    seqs = sink_seqs(s)
    assert len(seqs) == len(set(seqs))
    assert not s.regions[0].stopped
