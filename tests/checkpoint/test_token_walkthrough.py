"""Fig. 5 walk-through: token propagation in a 5-node region.

Topology: A -> B; B -> C, D; C -> E; D -> E (a diamond behind a chain).
The protocol must show:

* B checkpoints on A's token, then forwards to C and D;
* E blocks the channel whose token arrived first (C's) but keeps
  processing tuples from the slower channel (D) meanwhile;
* E checkpoints only when both tokens are in, completing the region.
"""


from repro.checkpoint import MobiStreamsScheme, TokenTracker
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import MapOperator, SinkOperator, SourceOperator
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig


class Fig5App(AppSpec):
    """The 5-node diamond of Fig. 5, one operator per phone."""

    name = "fig5"

    def __init__(self, slow_d: float = 2.0):
        self.slow_d = slow_d

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("A"))
        g.add_operator(MapOperator("B", lambda p: p, cost_s=0.01))
        g.add_operator(MapOperator("C", lambda p: p, cost_s=0.01))
        # D runs more slowly than C (Fig. 5's timing).
        g.add_operator(MapOperator("D", lambda p: p, cost_s=self.slow_d))
        g.add_operator(SinkOperator("E"))
        g.connect("A", "B")
        g.connect("B", "C").connect("B", "D")
        g.connect("C", "E").connect("D", "E")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups([["A"], ["B"], ["C"], ["D"], ["E"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def wl():
            for i in range(60):
                yield (1.0, i, 4000)

        return {"A": wl()}


def run_fig5(checkpoint_period=20.0):
    cfg = SystemConfig(
        n_regions=1, phones_per_region=5, idle_per_region=1,
        master_seed=2, checkpoint_period_s=checkpoint_period,
    )
    s = MobiStreamsSystem(cfg, Fig5App(), MobiStreamsScheme)
    s.run(90.0)
    return s


def test_tokens_propagate_in_topological_order():
    s = run_fig5()
    recs = [r for r in s.trace.select("node_snapshot") if r.data["version"] == 1]
    order = [r.data["node"] for r in recs]
    assert len(order) == 5  # every node checkpointed version 1
    pos = {n: i for i, n in enumerate(order)}
    a, b, c, d, e = (f"region0.p{i}" for i in range(5))
    assert pos[a] < pos[b] < pos[c]
    assert pos[b] < pos[d]
    assert pos[e] == 4  # the sink node is always last


def test_join_node_waits_for_both_tokens():
    s = run_fig5()
    e = "region0.p4"
    token_recs = [
        r for r in s.trace.select("token_received")
        if r.data["node"] == e and r.data["version"] == 1
    ]
    assert len(token_recs) == 2
    assert token_recs[0].data["ready"] is False  # first token: blocked, waiting
    assert token_recs[1].data["ready"] is True   # second token: checkpoint
    # The fast path (via C) delivers its token before the slow path (via D).
    assert token_recs[0].data["src"] == "region0.p2"
    assert token_recs[1].data["src"] == "region0.p3"


def test_region_checkpoint_completes():
    s = run_fig5()
    assert s.trace.value("ckpt.region_complete") >= 2
    versions = [r.data["version"] for r in s.trace.select("checkpoint_complete")]
    assert versions == sorted(versions)


def test_no_tuples_lost_or_duplicated_across_checkpoints():
    """Token cuts must not drop or double-publish results (Section III-B).

    E has two inputs (C and D), so each source tuple legitimately yields
    up to two sink outputs — one per path.  The invariant is: every tuple
    arrives via the fast C path, and no path publishes twice.
    """
    s = run_fig5()
    from collections import Counter

    counts = Counter(r.data["seq"] for r in s.trace.select("sink_output"))
    assert len(counts) == 60          # nothing lost on the fast path
    assert max(counts.values()) <= 2  # no duplicate publishes per path


# -- TokenTracker unit behaviour ------------------------------------------------
def test_tracker_ready_exactly_once():
    tr = TokenTracker()
    assert not tr.record("n", 1, "a", expected={"a", "b"})
    assert tr.record("n", 1, "b", expected={"a", "b"})
    assert not tr.record("n", 1, "b", expected={"a", "b"})  # duplicate token
    assert tr.is_done("n", 1)


def test_tracker_versions_independent():
    tr = TokenTracker()
    tr.record("n", 1, "a", expected={"a"})
    assert not tr.record("n", 2, "a", expected={"a", "b"})
    assert tr.waiting_channels("n", 2) == {"a"}


def test_tracker_reset_node():
    tr = TokenTracker()
    tr.record("n", 1, "a", expected={"a", "b"})
    tr.reset_node("n")
    assert tr.waiting_channels("n", 1) == set()
    # After reset the node can go again from scratch.
    assert not tr.record("n", 1, "a", expected={"a", "b"})
    assert tr.record("n", 1, "b", expected={"a", "b"})
