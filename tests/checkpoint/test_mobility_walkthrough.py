"""Fig. 7 walk-through: a computing node leaves its region.

The paper's four panels: (1) normal operation, (2) urgent mode — broken
WiFi links fall back to cellular and the controller is told, (3) state
transfer to a replacement over cellular, (4) node replacement — WiFi
mesh rebuilt, DSPS back to normal.
"""

import pytest

from repro.checkpoint import MobiStreamsScheme
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import SinkOperator, SourceOperator, StatefulOperator
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.util import KB


class CountingOp(StatefulOperator):
    def __init__(self, name):
        super().__init__(name, state_size=256 * KB)

    def process(self, tup, ctx):
        self.state["n"] = self.state.get("n", 0) + 1
        return [tup.derive(self.state["n"], 2 * KB)]

    def cost(self, tup):
        return 0.05


class Fig7App(AppSpec):
    """B -> D -> E slice of Fig. 7 (plus source/sink plumbing)."""

    name = "fig7"

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("S"))
        g.add_operator(CountingOp("B"))
        g.add_operator(CountingOp("D"))
        g.add_operator(CountingOp("E"))
        g.add_operator(SinkOperator("K"))
        g.chain("S", "B", "D", "E", "K")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups(
            [["S"], ["B"], ["D"], ["E"], ["K"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def wl():
            for i in range(300):
                yield (1.0, i, 4 * KB)
        return {"S": wl()}


DEPART_AT = 120.0


@pytest.fixture(scope="module")
def run():
    cfg = SystemConfig(n_regions=1, phones_per_region=5, idle_per_region=2,
                       master_seed=7, checkpoint_period_s=60.0)
    s = MobiStreamsSystem(cfg, Fig7App(), MobiStreamsScheme)
    s.start()
    d_host = s.regions[0].placement.node_for("D", 0)
    s.sim.call_at(DEPART_AT, lambda: s.apply_departure(d_host))
    s.run(320.0)
    return s, d_host


def test_t2_urgent_mode_engages(run):
    """Broken WiFi links switch to cellular and are reported."""
    s, d_host = run
    urgent = [r for r in s.trace.select("urgent_mode")
              if d_host in (r.data["src"], r.data["dst"])]
    assert urgent, "no urgent-mode fallback recorded"
    assert urgent[0].time >= DEPART_AT
    assert s.trace.value("ctl.urgent_reports") >= 1


def test_t3_state_transferred_over_cellular(run):
    s, d_host = run
    transfers = list(s.trace.select("departure_state_transfer"))
    assert len(transfers) == 1
    rec = transfers[0]
    assert rec.data["departed"] == d_host
    assert rec.data["size"] >= 256 * KB  # D's operator state moved
    assert rec.data["replacement"] != d_host


def test_t4_replacement_hosts_d(run):
    s, d_host = run
    region = s.regions[0]
    new_host = region.placement.node_for("D", 0)
    assert new_host != d_host
    assert "D" in region.nodes[new_host].op_names
    # The departed phone is fully unregistered (Section III-E).
    assert d_host not in region.phones
    assert not s.cellular.is_registered(d_host)


def test_departure_needs_no_restoration_or_catchup(run):
    """Departures transfer live state; they never roll back to the MRC."""
    s, _ = run
    assert not any(True for _ in s.trace.select("catchup_started"))
    assert not any(True for _ in s.trace.select("recovery_started"))


def test_stream_continues_exactly_once(run):
    s, _ = run
    seqs = [r.data["seq"] for r in s.trace.select("sink_output")]
    assert len(seqs) == len(set(seqs))
    assert len(seqs) == 300  # nothing lost across the departure


def test_transferred_state_is_live_not_mrc(run):
    """The replacement continues from D's *live* counter, not the MRC.

    The live snapshot is taken when the departure handler starts (~t=137,
    counter ≈ 285); an MRC rollback would restart from the last completed
    checkpoint (t=120, counter ≈ 120).  The old node keeps processing
    during the cellular transfer, so a handful of tuples post-date the
    snapshot — they reach the sink via the old node, never re-counted.
    """
    s, _ = run
    region = s.regions[0]
    node = region.nodes[region.placement.node_for("D", 0)]
    n = node.ops["D"].state.get("n", 0)
    assert 250 < n <= 300, n
