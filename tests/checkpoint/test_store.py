"""Tests for checkpoint and preservation stores."""

import pytest

from repro.checkpoint.store import CheckpointStore, PreservationStore
from repro.core.tuples import StreamTuple


def tup(size=100, seq=0):
    return StreamTuple(payload=None, size=size, entered_at=0.0, source_seq=seq)


# -- CheckpointStore ------------------------------------------------------
def test_version_completes_when_all_nodes_saved():
    st = CheckpointStore()
    st.begin_version(1, ["n0", "n1"])
    assert not st.put(1, "n0", frozenset({"A"}), {"A": 1}, 100)
    assert st.put(1, "n1", frozenset({"B"}), {"B": 2}, 200)
    assert st.is_complete(1)
    assert st.mrc_version == 1


def test_mrc_ignores_partial_versions():
    st = CheckpointStore()
    st.begin_version(1, ["n0"])
    st.put(1, "n0", frozenset({"A"}), "s1", 10)
    st.begin_version(2, ["n0", "n1"])
    st.put(2, "n0", frozenset({"A"}), "s2", 10)  # n1 never saves (failed)
    assert st.mrc_version == 1
    assert st.states_at_mrc() == {frozenset({"A"}): ("s1", 10)}


def test_initial_mrc_is_zero():
    st = CheckpointStore()
    assert st.mrc_version == 0
    assert st.states_at_mrc() == {}


def test_prune_drops_older_versions():
    st = CheckpointStore()
    for v in (1, 2):
        st.begin_version(v, ["n0"])
        st.put(v, "n0", frozenset({"A"}), f"s{v}", 10)
    assert st.mrc_version == 2
    assert st.state_for(1, frozenset({"A"})) is None  # pruned
    assert st.state_for(2, frozenset({"A"})) == ("s2", 10)


def test_state_for_missing():
    st = CheckpointStore()
    assert st.state_for(5, frozenset({"X"})) is None


def test_states_at_mrc_is_a_read_only_view():
    """Every recovery used to pay a fresh dict; callers only iterate and
    ``.get``, so the store hands out a live read-only view instead."""
    st = CheckpointStore()
    before = st.states_at_mrc()
    with pytest.raises(TypeError):
        before[frozenset({"X"})] = ("oops", 1)
    st.begin_version(1, ["n0"])
    st.put(1, "n0", frozenset({"A"}), "s1", 10)
    view = st.states_at_mrc()
    with pytest.raises(TypeError):
        view[frozenset({"A"})] = ("mutated", 1)
    # It is a *view* of the stored version, not a snapshot copy.
    st.put(1, "n0", frozenset({"A2"}), "s1b", 12)
    assert frozenset({"A2"}) in view


# -- PreservationStore -----------------------------------------------------
def test_record_and_replay():
    ps = PreservationStore()
    ps.record("S1", tup(size=10, seq=0))
    ps.start_segment(1)
    ps.record("S1", tup(size=20, seq=1))
    assert ps.retained_count() == 2
    assert ps.total_bytes == 30
    # Restoring to MRC 0 replays everything.
    assert len(ps.replay_from(0)) == 2
    # Restoring to MRC 1 replays only the post-cut segment.
    replay = ps.replay_from(1)
    assert len(replay) == 1
    assert replay[0][1].source_seq == 1


def test_checkpoint_complete_prunes_segments():
    ps = PreservationStore()
    ps.record("S1", tup(size=10))
    ps.start_segment(1)
    ps.record("S1", tup(size=20))
    ps.on_checkpoint_complete(1)
    assert ps.retained_count() == 1
    assert ps.total_bytes == 20
    assert ps.replay_from(0) == ps.replay_from(1)


def test_replay_order_preserved():
    ps = PreservationStore()
    for i in range(5):
        ps.record("S1", tup(seq=i))
    seqs = [t.source_seq for _op, t in ps.replay_from(0)]
    assert seqs == [0, 1, 2, 3, 4]


def test_segment_version_monotone():
    ps = PreservationStore()
    ps.start_segment(2)
    with pytest.raises(ValueError):
        ps.start_segment(1)


def test_multiple_sources_interleaved():
    ps = PreservationStore()
    ps.record("S0", tup(seq=0))
    ps.record("S1", tup(seq=1))
    ops = [op for op, _t in ps.replay_from(0)]
    assert ops == ["S0", "S1"]


def test_replay_walks_segments_without_sorting():
    """Regression for the per-recovery re-sort: segment keys are created
    monotonically, so the store's insertion order *is* version order —
    replay must stay correct across completes, new cuts, and empty
    segments, while the internal dict stays sorted."""
    ps = PreservationStore()
    ps.record("S", tup(seq=0))          # segment 0
    ps.start_segment(1)
    ps.record("S", tup(seq=1))
    ps.start_segment(2)                  # cut with no input yet
    ps.start_segment(4)                  # skipped version (abandoned wave)
    ps.record("S", tup(seq=2))
    ps.on_checkpoint_complete(1)         # drops segment 0 only
    ps.record("S", tup(seq=3))
    assert list(ps._segments) == sorted(ps._segments)
    assert [t.source_seq for _op, t in ps.replay_from(0)] == [1, 2, 3]
    assert [t.source_seq for _op, t in ps.replay_from(2)] == [2, 3]
    assert ps.replay_from(5) == []
    ps.on_checkpoint_complete(4)
    assert ps.total_bytes == sum(t.size for _op, t in ps.replay_from(0))
    assert [t.source_seq for _op, t in ps.replay_from(0)] == [2, 3]


def test_record_reuses_tuples_by_reference():
    """Preservation shares tuples, never copies payload bytes."""
    ps = PreservationStore()
    t = tup(seq=7)
    ps.record("S", t)
    assert ps.replay_from(0)[0][1] is t


def test_is_pending_tracks_wave_lifecycle():
    """is_pending is the recovery-time question: could this wave still
    complete behind our back?  True while collecting saves, False once
    complete, abandoned, or never begun."""
    st = CheckpointStore()
    assert not st.is_pending(1)  # never begun
    st.begin_version(1, ["n0", "n1"])
    assert st.is_pending(1)
    st.put(1, "n0", frozenset({"A"}), "s1", 10)
    assert st.is_pending(1)  # half-collected: still live
    st.put(1, "n1", frozenset({"B"}), "s2", 10)
    assert not st.is_pending(1)  # complete
    st.begin_version(2, ["n0", "n1"])
    st.abandon_version(2)
    assert not st.is_pending(2)  # written off
    # A late save of the abandoned wave cannot resurrect it.
    assert not st.put(2, "n0", frozenset({"A"}), "s3", 10)
    assert not st.is_pending(2) and not st.is_complete(2)


def test_every_pending_wave_between_mrc_and_newest_is_visible():
    """Multiple in-flight waves (slow async saves): recovery must be
    able to enumerate and abandon all of them, not just the newest —
    an older wave completing mid-recovery would advance the MRC and
    drop preservation segments the chosen replay still needs."""
    st = CheckpointStore()
    st.begin_version(1, ["n0"])
    st.put(1, "n0", frozenset({"A"}), "s1", 10)  # v1 completes -> MRC
    st.begin_version(2, ["n0", "n1"])
    st.put(2, "n0", frozenset({"A"}), "s2", 10)  # v2 half-done
    st.begin_version(3, ["n0", "n1"])            # v3 just begun
    assert st.mrc_version == 1
    pending = [v for v in range(st.mrc_version + 1, 4) if st.is_pending(v)]
    assert pending == [2, 3]
    for v in pending:
        st.abandon_version(v)
    # The straggler save that used to complete v2 mid-recovery:
    assert not st.put(2, "n1", frozenset({"B"}), "s3", 10)
    assert st.mrc_version == 1
