"""Property-based and behavioural tests of the broadcast protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.broadcast import (
    BroadcastSettings,
    broadcast_checkpoint,
    relay_tree,
)
from repro.net.loss import BernoulliLoss, NoLoss
from repro.net.wifi import WifiCell, WifiConfig
from repro.sim import RngRegistry, Simulator
from repro.util import KB, Mbps


def make_cell(sim, members, loss=0.0, seed=1):
    cfg = WifiConfig(
        bandwidth_bps=Mbps(5.0),
        loss_factory=lambda: BernoulliLoss(loss) if loss else NoLoss(),
        mean_loss=min(loss, 0.9),
        header_bytes=0,
        latency_s=0.0,
    )
    cell = WifiCell(sim, RngRegistry(seed), cfg, name="prop")
    for m in members:
        cell.join(m, lambda m: None)
    return cell


def run_broadcast(total_size, n_receivers=3, loss=0.0, seed=1):
    sim = Simulator()
    members = ["tx"] + [f"r{i}" for i in range(n_receivers)]
    cell = make_cell(sim, members, loss=loss, seed=seed)
    proc = sim.process(broadcast_checkpoint(sim, cell, "tx", total_size))
    sim.run()
    return proc.value


def test_lossless_single_round():
    out = run_broadcast(64 * KB)
    assert len(out.rounds) == 1
    assert out.all_complete
    assert out.tcp_bytes == 0


def test_zero_size_is_noop():
    out = run_broadcast(0)
    assert out.n_blocks == 0
    assert out.rounds == []


def test_single_member_cell():
    sim = Simulator()
    cell = make_cell(sim, ["tx"])
    proc = sim.process(broadcast_checkpoint(sim, cell, "tx", 10 * KB))
    sim.run()
    assert proc.value.all_complete  # vacuously: no receivers


@pytest.mark.parametrize("loss", [0.05, 0.3, 0.6])
def test_everyone_complete_despite_loss(loss):
    out = run_broadcast(256 * KB, n_receivers=5, loss=loss, seed=7)
    assert out.all_complete  # the TCP phase guarantees completion
    assert out.udp_bytes > 0


def test_cost_gain_terminates_udp_under_heavy_loss():
    """With terrible loss, the UDP phase must stop (cost > gain) and hand
    over to TCP rather than broadcasting forever."""
    out = run_broadcast(256 * KB, n_receivers=3, loss=0.9, seed=3)
    assert len(out.rounds) <= BroadcastSettings().max_rounds
    assert out.all_complete
    assert out.tcp_bytes > 0


def test_network_bytes_accounting():
    out = run_broadcast(128 * KB, loss=0.2, seed=5)
    assert out.network_bytes == out.udp_bytes + out.tcp_bytes
    # Every round's cost is included in udp_bytes.
    assert out.udp_bytes >= sum(r.cost_bytes for r in out.rounds) - len(out.rounds)


def test_short_last_block_size():
    out = run_broadcast(100 * KB + 100)
    assert out.n_blocks == 101


def test_receiver_leaving_mid_broadcast_not_complete():
    sim = Simulator()
    members = ["tx", "a", "b"]
    cell = make_cell(sim, members, loss=0.5, seed=2)
    proc = sim.process(broadcast_checkpoint(sim, cell, "tx", 512 * KB))
    sim.call_in(0.05, lambda: cell.leave("b"))
    sim.run()
    out = proc.value
    assert out.complete["a"] is True
    assert out.complete["b"] is False


@settings(max_examples=20, deadline=None)
@given(
    size_kb=st.integers(min_value=1, max_value=256),
    loss=st.floats(min_value=0.0, max_value=0.7),
    seed=st.integers(min_value=0, max_value=100),
)
def test_broadcast_always_completes_and_counts(size_kb, loss, seed):
    """Invariant: all present receivers end complete; bytes are positive
    and bounded by (rounds x blocks + tree retransmissions)."""
    out = run_broadcast(size_kb * KB, n_receivers=3, loss=loss, seed=seed)
    assert out.all_complete
    max_possible = (len(out.rounds) + 4) * (out.n_blocks + 64) * KB
    assert 0 < out.network_bytes <= max_possible


# -- relay tree -------------------------------------------------------------
def test_relay_tree_shape():
    tree = relay_tree(list("abcdefg"), fanout=2)
    assert tree["a"] == ["b", "c"]
    assert tree["b"] == ["d", "e"]
    assert tree["c"] == ["f", "g"]


def test_relay_tree_spans_all_members():
    members = [f"m{i}" for i in range(17)]
    tree = relay_tree(members)
    seen = {members[0]}
    stack = [members[0]]
    while stack:
        for child in tree[stack.pop()]:
            assert child not in seen  # tree, not a DAG
            seen.add(child)
            stack.append(child)
    assert seen == set(members)
