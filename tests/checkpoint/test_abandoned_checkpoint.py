"""Regression tests: membership changes interleaved with a token wave.

A departure/handoff/failure mid-checkpoint must not leave downstream
joins blocked on a token the departed node will never forward (the
paper's "just ignoring the partial checkpoint data" rule).
"""


from repro.checkpoint import MobiStreamsScheme
from repro.checkpoint.token_protocol import TokenTracker
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import SinkOperator, SourceOperator, StatefulOperator
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.util import KB


class SlowOp(StatefulOperator):
    """Heavy state: its broadcast keeps the token wave in flight long
    (4 MB over ~2 Mbps shared WiFi is tens of seconds per node)."""

    def __init__(self, name, drop=False):
        super().__init__(name, state_size=4 * 1024 * KB)
        self._drop = drop

    def process(self, tup, ctx):
        self.state["n"] = self.state.get("n", 0) + 1
        if self._drop:
            return []
        return [tup.derive(tup.payload, 2 * KB)]

    def cost(self, tup):
        return 0.05


class DiamondApp(AppSpec):
    """S -> (A, B) -> J -> K: J joins two branches (token-blocking node).

    Branch B drops every tuple, so exactly one result per input reaches
    the sink — but B still forwards *tokens*, which is what makes J a
    two-channel join for the checkpoint protocol.
    """

    name = "diamond"

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("S"))
        g.add_operator(SlowOp("A"))
        g.add_operator(SlowOp("B", drop=True))
        g.add_operator(SlowOp("J"))
        g.add_operator(SinkOperator("K"))
        g.connect("S", "A").connect("S", "B")
        g.connect("A", "J").connect("B", "J")
        g.chain("J", "K")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups(
            [["S"], ["A"], ["B"], ["J"], ["K"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def wl():
            for i in range(400):
                yield (1.0, i, 2 * KB)
        return {"S": wl()}


def build(period=100.0, idle=4, seed=5):
    cfg = SystemConfig(n_regions=1, phones_per_region=5, idle_per_region=idle,
                       master_seed=seed, checkpoint_period_s=period)
    return MobiStreamsSystem(cfg, DiamondApp(), MobiStreamsScheme)


def test_departure_during_token_wave_does_not_stall_joins():
    """Depart branch A's phone right as the t=100 wave starts: without
    abandonment, J blocks its B channel forever waiting for A's token."""
    s = build()
    s.start()
    a_host = s.regions[0].placement.node_for("A", 0)
    s.sim.call_at(100.5, lambda: s.apply_departure(a_host))
    s.run(440.0)
    assert not s.regions[0].stopped
    assert any(True for _ in s.trace.select("checkpoint_abandoned"))
    # No node is left with blocked channels.
    for node in s.regions[0].nodes.values():
        assert not node.blocked_channels
    # The stream kept flowing at full rate after the swap.
    seqs = [r.data["seq"] for r in s.trace.select("sink_output")]
    assert len(seqs) == len(set(seqs))
    assert len(seqs) >= 380


def test_later_checkpoints_complete_after_abandonment():
    s = build(period=80.0)
    s.start()
    a_host = s.regions[0].placement.node_for("A", 0)
    s.sim.call_at(80.5, lambda: s.apply_departure(a_host))
    s.run(500.0)
    completes = [r.data["version"] for r in s.trace.select("checkpoint_complete")]
    abandoned = [r.data["version"] for r in s.trace.select("checkpoint_abandoned")]
    assert abandoned  # the interrupted wave was written off...
    assert completes  # ...and later waves completed normally
    assert max(completes) > max(abandoned)


def test_failure_during_token_wave_recovers_from_previous_mrc():
    s = build(period=100.0)
    s.start()
    j_host = s.regions[0].placement.node_for("J", 0)
    s.injector.crash_at(100.5, [j_host])
    s.run(440.0)
    rec = s.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"
    assert not s.regions[0].stopped
    seqs = [r.data["seq"] for r in s.trace.select("sink_output")]
    assert len(seqs) == len(set(seqs))


# -- tracker-level unit tests ----------------------------------------------------
def test_tracker_abandon_drops_pending_and_ignores_late_tokens():
    t = TokenTracker()
    assert not t.record("J", 3, "A", expected={"A", "B"})
    t.abandon(3)
    assert t.waiting_channels("J", 3) == set()
    assert t.is_abandoned(3)
    # A late token of the abandoned wave triggers nothing.
    assert not t.record("J", 3, "B", expected={"A", "B"})
    assert not t.is_done("J", 3)


def test_tracker_abandon_does_not_affect_other_versions():
    t = TokenTracker()
    t.abandon(3)
    assert t.record("J", 4, "A", expected={"A"})
    assert t.is_done("J", 4)


def test_tracker_abandon_after_done_is_harmless():
    t = TokenTracker()
    assert t.record("J", 1, "A", expected={"A"})
    t.abandon(1)
    assert t.is_done("J", 1)
