"""Tests for the ablation hooks on the broadcast protocol."""

import pytest

from repro.bench.ablation import _make_cell, _run_broadcast
from repro.checkpoint.broadcast import BroadcastSettings
from repro.util.units import KB, MB


def test_settings_validation():
    with pytest.raises(ValueError):
        BroadcastSettings(block_size=0)
    with pytest.raises(ValueError):
        BroadcastSettings(max_rounds=0)
    with pytest.raises(ValueError):
        BroadcastSettings(udp_rounds=-1)


def test_zero_udp_rounds_is_pure_tcp_tree():
    sim, cell = _make_cell(4, loss=0.08)
    out = _run_broadcast(sim, cell, MB, BroadcastSettings(udp_rounds=0))
    assert out.udp_bytes == 0
    assert out.tcp_bytes >= 4 * MB  # every receiver got a full TCP copy
    assert out.all_complete


def test_fixed_rounds_override_ignores_cost_gain():
    """With udp_rounds=8 on a very lossy channel, rounds keep running past
    the point where cost exceeds gain."""
    sim, cell = _make_cell(4, loss=0.5)
    fixed = _run_broadcast(sim, cell, MB, BroadcastSettings(udp_rounds=8))
    sim2, cell2 = _make_cell(4, loss=0.5)
    adaptive = _run_broadcast(sim2, cell2, MB, BroadcastSettings())
    assert len(fixed.rounds) >= len(adaptive.rounds)
    assert fixed.all_complete and adaptive.all_complete


def test_fixed_rounds_still_stop_when_done():
    """Rounds end early once every receiver has everything."""
    sim, cell = _make_cell(3, loss=0.0)
    out = _run_broadcast(sim, cell, MB, BroadcastSettings(udp_rounds=8))
    assert len(out.rounds) == 1  # lossless: one round suffices
    assert out.all_complete


def test_oversized_blocks_fragment_and_lose_more():
    """A 64 KB datagram spans ~44 MTU fragments; at 2% fragment loss its
    delivery probability collapses, so the protocol pays many retries."""
    sim_small, cell_small = _make_cell(4, loss=0.02)
    small = _run_broadcast(sim_small, cell_small, 2 * MB,
                           BroadcastSettings(block_size=KB))
    sim_big, cell_big = _make_cell(4, loss=0.02)
    big = _run_broadcast(sim_big, cell_big, 2 * MB,
                         BroadcastSettings(block_size=64 * KB))
    assert big.network_bytes > 1.5 * small.network_bytes
    assert small.all_complete and big.all_complete


def test_single_fragment_behaviour_unchanged_at_1kb():
    """1 KB blocks stay below the MTU: exactly one loss sample each, so
    per-round reception statistics match the configured loss rate."""
    sim, cell = _make_cell(1, loss=0.2)
    out = _run_broadcast(sim, cell, 4 * MB, BroadcastSettings())
    first = out.rounds[0]
    # ~80% of the 4096 blocks received in round one (binomial, wide margin).
    assert 0.7 * 4096 < first.gain_bytes / KB < 0.9 * 4096
