"""Copy-on-write snapshot protocol: freeze/writable/adopt, chunk store,
operator ports, and the A/B eager mode."""

import numpy as np
import pytest

from repro.checkpoint import snapshots
from repro.checkpoint.snapshots import (
    ChunkStore,
    adopt_array,
    chunk_digest,
    freeze_array,
    freeze_state,
    thaw_state,
    writable,
)
from repro.checkpoint.store import CheckpointStore


@pytest.fixture
def eager_mode():
    old = snapshots.configure("eager")
    yield
    snapshots.configure(old)


# -- the CoW triple ----------------------------------------------------------
def test_freeze_is_in_place_and_read_only():
    arr = np.arange(8, dtype=np.float64)
    frozen = freeze_array(arr)
    assert frozen is arr
    with pytest.raises(ValueError):
        frozen[0] = 1.0


def test_writable_copies_only_when_frozen():
    arr = np.arange(4, dtype=np.float64)
    assert writable(arr) is arr  # unshared: no copy
    frozen = freeze_array(arr)
    thawed = writable(frozen)
    assert thawed is not frozen
    thawed[0] = 99.0
    assert frozen[0] == 0.0  # the shared snapshot never moves


def test_adopt_array_shares_frozen_and_copies_everything_else():
    frozen = freeze_array(np.arange(3, dtype=np.float64))
    assert adopt_array(frozen, dtype=np.float64) is frozen
    # dtype mismatch, writable array, plain list: all materialize fresh.
    assert adopt_array(frozen, dtype=np.int64) is not frozen
    live = np.arange(3, dtype=np.float64)
    assert adopt_array(live, dtype=np.float64) is not live
    assert adopt_array([1.0, 2.0], dtype=np.float64).dtype == np.float64


def test_freeze_state_and_thaw_state_round_trip():
    state = {"w": np.ones(4), "nested": {"seen": [1, 2]}, "win": (3, 5), "k": 3}
    frozen = freeze_state(state)
    assert frozen is not state
    assert frozen["w"] is state["w"]  # frozen in place, shared
    assert not frozen["w"].flags.writeable
    # Containers are rebuilt (no aliasing into the operator's state)...
    assert frozen["nested"]["seen"] == [1, 2]
    assert frozen["nested"]["seen"] is not state["nested"]["seen"]
    thawed = thaw_state(frozen)
    # ...and types survive the round trip: a restored replica's state
    # compares equal to what was snapshotted (tuples stay hashable).
    assert isinstance(thawed["nested"]["seen"], list)
    assert thawed["win"] == (3, 5) and isinstance(thawed["win"], tuple)
    assert thawed["w"] is frozen["w"]  # arrays stay shared; CoW on write


def test_eager_mode_restores_copy_semantics(eager_mode):
    arr = np.arange(4, dtype=np.float64)
    copy = freeze_array(arr)
    assert copy is not arr
    assert arr.flags.writeable  # the operator's array is untouched
    copy[0] = 7.0
    assert arr[0] == 0.0


def test_configure_rejects_unknown_mode():
    with pytest.raises(ValueError):
        snapshots.configure("lazy-ish")


# -- chunk store --------------------------------------------------------------
def test_chunk_digest_distinguishes_dtype_and_shape():
    a = np.zeros(16, dtype=np.float64)
    assert chunk_digest(a) == chunk_digest(a.copy())
    assert chunk_digest(a) != chunk_digest(np.zeros(16, dtype=np.float32))
    assert chunk_digest(a) != chunk_digest(np.zeros((4, 4), dtype=np.float64))


def test_chunk_store_interns_byte_equal_frozen_arrays():
    store = ChunkStore()
    a = freeze_array(np.arange(1024, dtype=np.float64))
    b = freeze_array(np.arange(1024, dtype=np.float64))
    assert store.intern(a) is a
    assert store.intern(b) is a  # collapsed onto the canonical chunk
    assert store.hits == 1 and store.misses == 1
    assert store.shared_bytes == a.nbytes


def test_chunk_store_rejects_writable_arrays():
    """Interning a writable array would let a later in-place write
    rewrite every snapshot sharing the chunk."""
    with pytest.raises(ValueError):
        ChunkStore().intern(np.arange(64, dtype=np.float64))


def test_chunk_store_id_memo_short_circuits_rehash():
    store = ChunkStore()
    a = freeze_array(np.arange(512, dtype=np.float64))
    store.intern(a)
    store.intern(a)
    store.intern(a)
    assert store.hits == 2 and store.misses == 1


def test_chunk_store_frees_pruned_chunks_and_memo_entries():
    store = ChunkStore()
    a = freeze_array(np.arange(256, dtype=np.float64))
    key = chunk_digest(a)
    store.intern(a)
    assert key in store._by_digest
    assert store._id_memo
    del a
    import gc

    gc.collect()
    assert key not in store._by_digest  # weakly held: pruning frees bytes
    assert not store._id_memo  # the id memo self-evicts with its array


def test_intern_state_only_touches_large_frozen_leaves():
    store = ChunkStore()
    small = freeze_array(np.arange(4, dtype=np.float64))
    live = np.arange(1024, dtype=np.float64)
    big = freeze_array(np.arange(1024, dtype=np.float64))
    state = {"small": small, "live": live, "big": big, "n": 5}
    out = store.intern_state(state)
    assert out["small"] is small and out["live"] is live and out["big"] is big
    dup = {"big": freeze_array(np.arange(1024, dtype=np.float64))}
    assert store.intern_state(dup)["big"] is big
    # List containers are snapshot state too (freeze_state keeps them):
    # large frozen leaves inside them must intern the same way.
    listed = {"bufs": [freeze_array(np.arange(1024, dtype=np.float64))]}
    assert store.intern_state(listed)["bufs"][0] is big


# -- checkpoint store integration ---------------------------------------------
def test_checkpoint_store_shares_unchanged_state_across_versions():
    store = CheckpointStore()
    blob = np.arange(4096, dtype=np.float64)
    # A fresh byte-equal frozen copy each version (the worst case —
    # same-object sharing is already free): the first stored copy
    # becomes the canonical chunk, the second collapses onto it.
    first = freeze_array(blob.copy())
    store.begin_version(1, ["n0"])
    store.put(1, "n0", frozenset(["op"]), {"op": {"weights": first}}, 4096)
    store.begin_version(2, ["n0"])
    store.put(2, "n0", frozenset(["op"]),
              {"op": {"weights": freeze_array(blob.copy())}}, 4096)
    stored = store.state_for(2, frozenset(["op"]))[0]["op"]["weights"]
    assert stored is first
    assert store.chunks.shared_bytes >= blob.nbytes


# -- operator ports -----------------------------------------------------------
def test_partition_stage_snapshot_is_o1_and_restore_shares():
    from repro.apps.edgeml.operators import PartitionStage

    st = PartitionStage("F0", layers=[0, 1], weight_bytes=512 * 1024,
                        out_tensor_bytes=1024, cost_s=0.1)
    s1, s2 = st.snapshot(), st.snapshot()
    assert s1["weights"] is s2["weights"]  # unchanged stage: O(1)/version
    assert not s1["weights"].flags.writeable
    st2 = PartitionStage("F0", layers=[0, 1], weight_bytes=512 * 1024,
                         out_tensor_bytes=1024, cost_s=0.1)
    st2.restore(s1)
    assert st2.weights is s1["weights"]  # adoption, not a copy


def test_classifier_cow_keeps_checkpoints_intact():
    from repro.apps.edgeml.operators import FEATURE_DIM, PrototypeClassifier
    from repro.core.operator import OperatorContext
    from repro.core.tuples import StreamTuple
    from repro.sim.rng import RngRegistry

    op = PrototypeClassifier("P", n_classes=3, cost_s=0.1)
    ctx = OperatorContext(now=0.0, rng=RngRegistry(0))
    tup = StreamTuple({"features": np.ones(FEATURE_DIM), "true_class": 1}, 64, 0.0)
    op.process(tup, ctx)
    snap = op.snapshot()
    before = np.array(snap["prototypes"])
    op.process(tup, ctx)  # post-snapshot learning must CoW, not corrupt
    assert np.array_equal(snap["prototypes"], before)
    restored = PrototypeClassifier("P", n_classes=3, cost_s=0.1)
    restored.restore(snap)
    restored.process(tup, ctx)  # adopted arrays CoW on the next update too
    assert np.array_equal(snap["prototypes"], before)


def test_svm_cow_keeps_checkpoints_intact():
    from repro.apps.signalguru.svm import LinearSVM

    svm = LinearSVM(4)
    svm.partial_fit(np.ones(4), 1.0)
    snap = svm.snapshot()
    w_before = np.array(snap["w"])
    svm.partial_fit(np.ones(4), -1.0)
    assert np.array_equal(snap["w"], w_before)
    clone = LinearSVM(4)
    clone.restore(snap)
    clone.partial_fit(np.ones(4), -1.0)
    assert np.array_equal(snap["w"], w_before)


def test_stateful_operator_snapshot_freezes_arrays():
    from repro.core.operator import StatefulOperator

    class Acc(StatefulOperator):
        def process(self, tup, ctx):
            return []

    op = Acc("acc")
    op.state = {"hist": np.zeros(8), "count": 2}
    snap = op.snapshot()
    assert snap is not op.state
    assert snap["hist"] is op.state["hist"]
    assert not snap["hist"].flags.writeable
    op.restore(snap)
    assert op.state["count"] == 2
