"""The telemetry overhead gate: enabling the QoS monitor must cost at
most a few percent of a full-length scenario run, and a disabled run
must not touch any telemetry machinery at all."""

import dataclasses
import gc
import time

import pytest

from repro.scenarios import TelemetrySpec, get
from repro.scenarios.runner import build_system, run_case

#: Allowed enabled-run slowdown.  Measured steady-state overhead is ~0%
#: (the monitor is a few dict increments per tuple plus ~30 samples);
#: the margin absorbs shared-CI scheduler noise on top.
OVERHEAD_BOUND = 0.05
#: Noisy-box insurance: the gate passes if *any* attempt fits the
#: bound.  A real per-tuple regression shifts every attempt, so retries
#: do not mask one; they only strip one-off scheduler spikes.
ATTEMPTS = 4


def _measure_overhead() -> float:
    """min-of-3 interleaved walls, telemetry off vs on (~30 samples)."""
    spec = get("flash-crowd")
    spec_on = dataclasses.replace(
        spec, telemetry=TelemetrySpec(interval_s=spec.duration_s / 30.0))

    def one(s) -> float:
        # A collection landing inside one arm but not the other swamps
        # the few-percent signal; measure with the collector parked.
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            run_case(s, "bcp", "ms-8", 3)
            return time.perf_counter() - t0
        finally:
            gc.enable()

    offs, ons = [], []
    for _ in range(3):
        offs.append(one(spec))
        ons.append(one(spec_on))
    return min(ons) / min(offs) - 1.0


def test_enabled_overhead_within_bound():
    run_case(get("flash-crowd").quick(), "bcp", "ms-8", 3)  # warm-up
    fractions = []
    for _ in range(ATTEMPTS):
        frac = _measure_overhead()
        fractions.append(frac)
        if frac <= OVERHEAD_BOUND:
            return
    pytest.fail(
        f"telemetry overhead exceeded {OVERHEAD_BOUND:.0%} in all "
        f"{ATTEMPTS} attempts: {[f'{f:.1%}' for f in fractions]}"
    )


def test_disabled_run_touches_no_telemetry_machinery():
    """The ~0%-disabled half of the gate, checked structurally instead
    of with wall clocks: a plain case must leave every telemetry hook
    unarmed (so the hot paths pay one is-None/empty-list check only)."""
    spec = get("flash-crowd").quick()
    system = build_system(spec, "bcp", "ms-8", 3)
    assert system.sim.count_inline is False
    assert all(r.telemetry is None for r in system.regions)
    assert system.trace._observers == []
    result = run_case(spec, "bcp", "ms-8", 3)
    assert result.timeline is None
