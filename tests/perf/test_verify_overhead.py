"""The invariant-harness overhead gate: arming verification on a full
scenario case must cost at most 10%, and a disarmed run must not touch
any verify machinery at all."""

import gc
import time

import pytest

from repro.scenarios import get
from repro.scenarios.runner import build_system, run_case

#: Allowed armed-run slowdown (the ISSUE's 10% budget).  The harness
#: subscribes to per-tuple categories (source ingests, sink discards),
#: so its steady-state cost is a few dict ops per tuple; the margin
#: absorbs shared-CI scheduler noise on top.
OVERHEAD_BOUND = 0.10
#: Noisy-box insurance: the gate passes if *any* attempt fits the
#: bound.  A real per-record regression shifts every attempt, so
#: retries do not mask one; they only strip one-off scheduler spikes.
ATTEMPTS = 4


def _measure_overhead() -> float:
    """min-of-3 interleaved walls, harness disarmed vs armed."""
    spec = get("paper-fig8").quick(120.0)

    def one(verify: bool) -> float:
        # A collection landing inside one arm but not the other swamps
        # the few-percent signal; measure with the collector parked.
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = run_case(spec, "bcp", "ms-8", 3, verify=verify)
            wall = time.perf_counter() - t0
        finally:
            gc.enable()
        assert result.violations == ()
        return wall

    offs, ons = [], []
    for _ in range(3):
        offs.append(one(False))
        ons.append(one(True))
    return min(ons) / min(offs) - 1.0


def test_armed_overhead_within_bound():
    run_case(get("paper-fig8").quick(120.0), "bcp", "ms-8", 3,
             verify=True)  # warm-up
    fractions = []
    for _ in range(ATTEMPTS):
        frac = _measure_overhead()
        fractions.append(frac)
        if frac <= OVERHEAD_BOUND:
            return
    pytest.fail(
        f"armed-harness overhead exceeded {OVERHEAD_BOUND:.0%} in all "
        f"{ATTEMPTS} attempts: {[f'{f:.1%}' for f in fractions]}"
    )


def test_disarmed_run_touches_no_verify_machinery():
    """The 0%-disarmed half of the gate, checked structurally instead
    of with wall clocks: a plain case must register no trace observer
    and carry no violations tuple content."""
    spec = get("paper-fig8").quick(120.0)
    system = build_system(spec, "bcp", "ms-8", 3)
    assert system.trace._observers == []
    result = run_case(spec, "bcp", "ms-8", 3)
    assert result.violations == ()
    assert result.timeline is None
