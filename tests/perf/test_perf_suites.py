"""Perf suites and artifacts: registry shape, quick runs, round-trips."""

import json
import os

from repro.perf.artifacts import (
    artifact_name,
    load_artifacts,
    machine_meta,
    make_artifact,
    write_artifact,
)
from repro.perf.suites import SUITES, run_suite, suite_names


def test_expected_suites_registered():
    names = suite_names()
    for expected in ("sim_kernel", "monitor", "wifi_broadcast", "checkpoint",
                     "scenarios", "sweep_throughput", "fleet"):
        assert expected in names


def test_every_suite_has_cases():
    for suite, cases in SUITES.items():
        assert cases, f"suite {suite} is empty"
        names = [name for name, _factory in cases]
        assert len(names) == len(set(names)), f"duplicate case in {suite}"


def test_run_microbench_suites_quick():
    for suite in ("sim_kernel", "monitor", "wifi_broadcast", "checkpoint"):
        results = run_suite(suite, quick=True)
        assert results
        for case, metrics in results.items():
            assert metrics["wall_s"] > 0, f"{suite}/{case} measured no time"
            if "events" in metrics:
                assert metrics["events"] > 0


def test_sweep_throughput_suite_covers_the_executor_features():
    names = [name for name, _factory in SUITES["sweep_throughput"]]
    for expected in ("fig8-mini/serial", "fig8-mini/warm-pool",
                     "fig8-mini/resume-hit", "stream-writer/rows"):
        assert expected in names


def test_run_sweep_throughput_quick():
    results = run_suite("sweep_throughput", quick=True)
    for case, metrics in results.items():
        assert metrics["wall_s"] >= 0, f"{case} measured negative time"
    assert results["stream-writer/rows"]["rows_per_s"] > 0
    # A fully-cached resume must be far cheaper than simulating.
    assert (results["fig8-mini/resume-hit"]["wall_s"]
            < results["fig8-mini/serial"]["wall_s"])


def test_checkpoint_suite_gauges_peak_memory():
    results = run_suite("checkpoint", quick=True)
    mem = results["edgeml_snapshot_memory"]
    assert mem["peak_kb"] > 0
    assert mem["versions"] > 0


def test_cow_snapshots_cut_checkpoint_peak_memory_at_least_2x():
    """The acceptance bar, measured live: the same checkpoint rounds in
    eager-copy (pre-PR) mode must peak at >= 2x the CoW memory."""
    from repro.checkpoint import snapshots

    factory = dict(SUITES["checkpoint"])["edgeml_snapshot_memory"]
    case = factory(True)
    cow_peak = case()["peak_kb"]
    old = snapshots.configure("eager")
    try:
        eager_peak = case()["peak_kb"]
    finally:
        snapshots.configure(old)
    assert eager_peak >= 2 * cow_peak


def test_committed_pre_pr_baseline_records_the_memory_drop():
    """The committed artifacts must show the >= 2x drop the PR claims."""
    root = os.path.join(os.path.dirname(__file__), "..", "..",
                        "benchmarks", "baselines")
    with open(os.path.join(root, "BENCH_checkpoint.json")) as fh:
        cow = json.load(fh)["results"]["edgeml_snapshot_memory"]["peak_kb"]
    with open(os.path.join(root, "pre_pr", "BENCH_checkpoint.json")) as fh:
        eager = json.load(fh)["results"]["edgeml_snapshot_memory"]["peak_kb"]
    assert eager >= 2 * cow


def test_unknown_suite_raises():
    import pytest

    with pytest.raises(KeyError):
        run_suite("definitely-not-a-suite")


def test_machine_meta_fields():
    meta = machine_meta()
    for key in ("python", "platform", "machine", "cpu_count", "numpy"):
        assert key in meta


def test_artifact_round_trip(tmp_path):
    art = make_artifact("sim_kernel", {"case": {"wall_s": 0.5}}, quick=True)
    path = write_artifact(str(tmp_path), art)
    assert os.path.basename(path) == artifact_name("sim_kernel")
    loaded = load_artifacts(str(tmp_path))
    assert loaded["sim_kernel"]["results"] == {"case": {"wall_s": 0.5}}
    assert loaded["sim_kernel"]["quick"] is True
    # Canonical JSON: stable key order, trailing newline.
    raw = open(path).read()
    assert raw.endswith("\n")
    assert json.loads(raw) == art


def test_load_ignores_non_bench_files(tmp_path):
    (tmp_path / "BENCH_x.json").write_text(
        json.dumps(make_artifact("x", {}, quick=False)))
    (tmp_path / "notes.json").write_text("{}")
    (tmp_path / "BENCH_y.txt").write_text("nope")
    assert list(load_artifacts(str(tmp_path))) == ["x"]


def test_load_missing_dir_is_empty(tmp_path):
    assert load_artifacts(str(tmp_path / "nope")) == {}


def test_perf_run_cli_writes_artifacts(tmp_path, capsys):
    from repro.perf.cli import cmd_perf_compare, cmd_perf_run

    out = str(tmp_path / "results")
    assert cmd_perf_run(out_dir=out, suites=["monitor"], quick=True) == 0
    arts = load_artifacts(out)
    assert "monitor" in arts and arts["monitor"]["quick"] is True
    # Self-comparison is clean.
    assert cmd_perf_compare(baseline_dir=out, current_dir=out) == 0
    # Inject a 10x regression into a copy -> exit code 1.
    slow_dir = str(tmp_path / "slow")
    os.makedirs(slow_dir)
    art = json.load(open(os.path.join(out, artifact_name("monitor"))))
    for case in art["results"].values():
        case["wall_s"] *= 10
    with open(os.path.join(slow_dir, artifact_name("monitor")), "w") as fh:
        json.dump(art, fh)
    assert cmd_perf_compare(baseline_dir=out, current_dir=slow_dir) == 1
    assert cmd_perf_run(out_dir=out, suites=["no-such-suite"]) == 2
