"""Comparison logic: thresholds, exit codes, unsound-comparison guards."""

import pytest

from repro.perf.compare import CaseComparison, compare_artifacts, format_report


def _artifact(suite, results, quick=False, machine="x86_64"):
    return {
        "schema_version": 1,
        "suite": suite,
        "quick": quick,
        "meta": {"machine": machine, "implementation": "CPython"},
        "results": results,
    }


def test_identical_runs_pass():
    base = {"sim_kernel": _artifact("sim_kernel", {"a": {"wall_s": 1.0}})}
    report = compare_artifacts(base, base, threshold=0.25)
    assert report.exit_code == 0
    assert not report.regressions


def test_injected_regression_fails():
    base = {"sim_kernel": _artifact("sim_kernel", {"a": {"wall_s": 1.0}})}
    cur = {"sim_kernel": _artifact("sim_kernel", {"a": {"wall_s": 1.6}})}
    report = compare_artifacts(base, cur, threshold=0.25)
    assert report.exit_code == 1
    assert len(report.regressions) == 1
    assert "REGRESSION" in format_report(report)


def test_slowdown_within_threshold_passes():
    base = {"s": _artifact("s", {"a": {"wall_s": 1.0}})}
    cur = {"s": _artifact("s", {"a": {"wall_s": 1.2}})}
    assert compare_artifacts(base, cur, threshold=0.25).exit_code == 0


def test_speedup_reported_not_failed():
    base = {"s": _artifact("s", {"a": {"wall_s": 2.0}})}
    cur = {"s": _artifact("s", {"a": {"wall_s": 0.5}})}
    report = compare_artifacts(base, cur, threshold=0.25)
    assert report.exit_code == 0
    assert "faster" in format_report(report)


def test_quick_full_mismatch_is_usage_error():
    base = {"s": _artifact("s", {"a": {"wall_s": 1.0}}, quick=True)}
    cur = {"s": _artifact("s", {"a": {"wall_s": 1.0}}, quick=False)}
    assert compare_artifacts(base, cur).exit_code == 2


def test_empty_sides_are_usage_errors():
    art = {"s": _artifact("s", {"a": {"wall_s": 1.0}})}
    assert compare_artifacts({}, art).exit_code == 2
    assert compare_artifacts(art, {}).exit_code == 2
    assert compare_artifacts(
        {"s": _artifact("s", {})}, {"t": _artifact("t", {})}
    ).exit_code == 2


def test_cross_machine_warns_but_compares():
    base = {"s": _artifact("s", {"a": {"wall_s": 1.0}}, machine="arm64")}
    cur = {"s": _artifact("s", {"a": {"wall_s": 1.0}}, machine="x86_64")}
    report = compare_artifacts(base, cur)
    assert report.exit_code == 0
    assert report.warnings


def test_missing_cases_are_reported():
    base = {"s": _artifact("s", {"a": {"wall_s": 1.0}, "b": {"wall_s": 1.0}})}
    cur = {"s": _artifact("s", {"a": {"wall_s": 1.0}, "c": {"wall_s": 1.0}})}
    report = compare_artifacts(base, cur)
    assert sorted(report.missing) == ["s/b (current)", "s/c (baseline)"]


def test_zero_baseline_wall_is_infinite_ratio():
    c = CaseComparison("s", "a", baseline_wall_s=0.0, current_wall_s=0.1)
    assert c.ratio == float("inf")
    assert c.regressed(0.25)


@pytest.mark.parametrize("threshold", [-0.1, -1.0])
def test_negative_threshold_rejected_by_cli(threshold):
    from repro.perf.cli import cmd_perf_compare

    assert cmd_perf_compare(threshold=threshold) == 2


def test_whole_suite_missing_is_visible():
    """A deleted/renamed suite must not silently drop out of the gate."""
    base = {
        "s": _artifact("s", {"a": {"wall_s": 1.0}}),
        "gone": _artifact("gone", {"a": {"wall_s": 1.0}}),
    }
    cur = {"s": _artifact("s", {"a": {"wall_s": 1.0}})}
    report = compare_artifacts(base, cur)
    assert "gone (whole suite, current)" in report.missing
    assert report.exit_code == 0  # visible, but not a hard failure
