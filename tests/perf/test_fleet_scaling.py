"""Fleet-scale acceptance gates.

These run the ``fleet`` perf-suite case factories directly (not via the
committed baselines, so they cannot drift) and enforce the PR's two
headline claims:

* the vectorized battery sweep is >= 10x the per-object loop in
  events/s at n_phones = 10k, and
* peak traced memory per phone *falls* as the population grows (the
  fixed simulator/graph/trace cost amortizes; the fleet arrays add only
  ~100 B/phone), under an absolute ceiling.

Thresholds are deliberately loose versus measured numbers (~41x speed,
~1.3 KB/phone at 16k) so only a real regression — a fallback to the
scalar path, an accidental per-phone object resurrection — trips them.
"""

import pytest

from repro.perf.suites import SUITES


def _case(name: str, quick: bool):
    for case_name, factory in SUITES["fleet"]:
        if case_name == name:
            return factory(quick)()
    raise KeyError(name)


def test_fleet_battery_sweep_is_10x_object_loop():
    obj = _case("battery-tick/object", quick=False)
    fleet = _case("battery-tick/fleet", quick=False)
    assert obj["n_phones"] == fleet["n_phones"] == 10_000
    ratio = fleet["events_per_s"] / obj["events_per_s"]
    assert ratio >= 10.0, (
        f"fleet sweep only {ratio:.1f}x the object loop "
        f"({fleet['events_per_s']:.3g} vs {obj['events_per_s']:.3g} ev/s)"
    )


def test_batched_broadcast_beats_member_loop():
    batched = _case("broadcast-round/batched", quick=True)
    loop = _case("broadcast-round/member-loop", quick=True)
    # Same receivers, same loss model values — only the draw strategy
    # differs.  2x is conservative; measured is larger.
    assert batched["events_per_s"] >= 2.0 * loop["events_per_s"]


@pytest.fixture(scope="module")
def rss_curve():
    # Warm-up: the first tracemalloc window otherwise also counts
    # lazy-import allocations, inflating the smallest-n peak.
    _case("rss/fleet-n1000", quick=True)
    return {
        n: _case(f"rss/fleet-n{n}", quick=False) for n in (1_000, 16_000)
    }


def test_fleet_rss_curve_is_sublinear(rss_curve):
    small, large = rss_curve[1_000], rss_curve[16_000]
    assert large["n_phones"] == 16 * small["n_phones"]
    # Sub-linear: 16x the phones must cost well under 16x the bytes,
    # i.e. bytes/phone strictly falls across the span.
    assert large["bytes_per_phone"] < small["bytes_per_phone"], (
        f"bytes/phone rose from {small['bytes_per_phone']:.0f} to "
        f"{large['bytes_per_phone']:.0f} across a 16x population span"
    )


def test_fleet_rss_absolute_ceiling(rss_curve):
    peak_mb = rss_curve[16_000]["peak_kb"] / 1024.0
    # Measured ~21 MB for a whole 16k-phone scenario case; 64 MB means
    # something started allocating per phone again.
    assert peak_mb < 64.0, f"16k-phone scenario peaked at {peak_mb:.0f} MB"
