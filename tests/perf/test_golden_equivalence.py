"""Determinism-equivalence guard for the hot-path overhaul.

Runs the quick variants of two named scenarios end to end and asserts
the canonical JSON artifact hashes match goldens committed *before* the
optimization work (measured with the deterministic voting tie-break in
place).  Any optimization that perturbs RNG draw order, event ordering,
or detector results — however subtly — flips these hashes.

Regenerate golden_hashes.json (only after an *intentional* semantic
change, never to paper over a perf regression) by computing
``_artifact_sha256(name)`` for each guarded scenario on the commit that
defines the new expected behavior.
"""

import hashlib
import json
import os

import pytest

from repro import scenarios

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_hashes.json")

#: Scenarios covered by the guard: the paper's headline sweep, a
#: failure-heavy one (recovery, replay, and broadcast paths all firing),
#: and the state-heavy EdgeML workload (multi-MB copy-on-write
#: snapshots moving through checkpoint + restore).
GUARDED = ("paper-fig8", "failure-cascade", "edgeml-baseline")


def _artifact_sha256(name: str) -> str:
    spec = scenarios.get(name).quick()
    result = scenarios.run_sweep(spec, jobs=1)
    payload = scenarios.dumps_result(result) + "\n"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", GUARDED)
def test_quick_artifact_matches_pre_optimization_golden(name, golden):
    assert name in golden, f"no golden hash committed for {name}"
    assert _artifact_sha256(name) == golden[name], (
        f"{name}: quick-sweep artifact diverged from the pre-optimization "
        "golden — an optimization changed simulation results"
    )
