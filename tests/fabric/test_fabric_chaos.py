"""The PR's acceptance scenario: SIGKILL a worker mid-sweep on the
quick paper figure-8 matrix and prove the artifact is byte-identical
to a serial run anyway."""

from repro import scenarios
from repro.fabric.chaos import run_chaos


def test_chaos_kill_one_worker_still_byte_identical(tmp_path):
    spec = scenarios.get("paper-fig8").quick()
    result = run_chaos(
        spec, work_dir=str(tmp_path), n_workers=2, kills=1, seed=0,
        lease_timeout_s=20.0, heartbeat_timeout_s=5.0,
        backoff_base_s=0.05, idle_timeout_s=120.0)

    assert result.kills_delivered == 1
    assert result.respawns >= 1          # the victim was replaced
    assert result.identical, (
        f"fabric artifact diverged from serial after a worker SIGKILL "
        f"({result.serial_path} vs {result.fabric_path})")
    assert not result.quarantined and not result.errors
    assert result.n_cases == len(list(spec.matrix.cases()))
