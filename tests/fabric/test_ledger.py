"""CaseLedger unit tests — explicit clocks, no sockets, no threads."""

import pytest

from repro.fabric.ledger import (
    DONE,
    ERRORED,
    LEASED,
    QUARANTINED,
    QUEUED,
    CaseLedger,
)


def _cases(n):
    return [(i, f"app{i}", "base", 100 + i) for i in range(n)]


def _ledger(n=3, **kwargs):
    defaults = dict(lease_timeout_s=10.0, retry_limit=3, max_kills=2,
                    error_retry_limit=2, backoff_base_s=1.0,
                    backoff_cap_s=8.0)
    defaults.update(kwargs)
    return CaseLedger(_cases(n), **defaults)


def test_lease_hands_out_lowest_index_first():
    ledger = _ledger(3)
    assert ledger.lease("w1", now=0.0).index == 0
    assert ledger.lease("w2", now=0.0).index == 1
    assert ledger.lease("w1", now=0.0).index == 2
    assert ledger.lease("w1", now=0.0) is None  # nothing queued


def test_complete_is_idempotent_first_wins():
    ledger = _ledger(1)
    ledger.lease("w1", now=0.0)
    assert ledger.complete(0, {"row": 1}) is True
    assert ledger.complete(0, {"row": 2}) is False  # stale duplicate
    assert ledger.case(0).payload == {"row": 1}
    assert ledger.status(0) == DONE
    assert ledger.drained()
    # Indices the ledger never owned (cache hits) are ignored too.
    assert ledger.complete(99, {"row": 3}) is False


def test_release_owner_requeues_with_backoff_then_quarantines():
    ledger = _ledger(1, max_kills=2, backoff_base_s=1.0)
    ledger.lease("w1#1", now=0.0)

    # First violent disconnect: one kill, requeued behind a backoff gate.
    assert ledger.release_owner("w1#1", now=5.0) == [0]
    entry = ledger.case(0)
    assert entry.status == QUEUED
    assert entry.kills == 1
    assert ledger.lease("w2#1", now=5.0) is None         # gate closed
    assert ledger.lease("w2#1", now=6.1).index == 0      # gate open

    # Second kill hits max_kills: quarantined, never leased again.
    assert ledger.release_owner("w2#1", now=7.0) == [0]
    assert ledger.status(0) == QUARANTINED
    assert ledger.lease("w3#1", now=100.0) is None
    assert ledger.drained()
    records = ledger.quarantined_records()
    assert records == [{
        "app": "app0", "scheme": "base", "seed": 100,
        "reason": "killed its worker 2 time(s)", "kills": 2, "attempts": 2,
    }]


def test_release_owner_only_touches_that_owners_leases():
    ledger = _ledger(2)
    ledger.lease("w1#1", now=0.0)
    ledger.lease("w2#1", now=0.0)
    assert ledger.release_owner("w1#1", now=0.0) == [0]
    assert ledger.status(1) == LEASED
    assert ledger.case(1).kills == 0


def test_requeue_owner_charges_no_kill():
    ledger = _ledger(1)
    ledger.lease("w1#1", now=0.0)
    assert ledger.requeue_owner("w1#1", now=0.0) == [0]
    entry = ledger.case(0)
    assert entry.status == QUEUED
    assert entry.kills == 0
    # No backoff on a clean departure: immediately leasable.
    assert ledger.lease("w2#1", now=0.0).index == 0


def test_lease_timeout_requeues_without_blame():
    ledger = _ledger(1, lease_timeout_s=10.0, retry_limit=3)
    ledger.lease("w1#1", now=0.0)
    assert ledger.expire(now=9.9) == []            # deadline not reached
    assert ledger.expire(now=10.0) == [0]          # lapsed: requeued
    entry = ledger.case(0)
    assert entry.status == QUEUED
    assert entry.kills == 0                        # no kill charged
    # The same case can be leased again once its backoff gate opens.
    release = ledger.lease("w2#1", now=20.0)
    assert release is not None and release.index == 0
    assert entry.attempts == 2


def test_retry_budget_exhaustion_quarantines():
    ledger = _ledger(1, lease_timeout_s=1.0, retry_limit=3,
                     backoff_base_s=0.0)
    now = 0.0
    for _ in range(3):
        assert ledger.lease("w#1", now=now) is not None
        now += 2.0
        ledger.expire(now=now)
    assert ledger.status(0) == QUARANTINED
    assert ledger.case(0).reason == "retry budget exhausted after 3 leases"
    assert ledger.drained()


def test_backoff_doubles_and_caps():
    ledger = _ledger(1, backoff_base_s=1.0, backoff_cap_s=8.0)
    assert ledger.backoff_s(1) == 1.0
    assert ledger.backoff_s(2) == 2.0
    assert ledger.backoff_s(3) == 4.0
    assert ledger.backoff_s(4) == 8.0
    assert ledger.backoff_s(10) == 8.0  # capped


def test_record_error_retries_then_marks_errored():
    ledger = _ledger(1, error_retry_limit=2, backoff_base_s=1.0)
    ledger.lease("w1#1", now=0.0)
    status = ledger.record_error(0, {"type": "RuntimeError"}, now=0.0)
    assert status == QUEUED                        # one retry granted
    assert ledger.lease("w2#1", now=5.0).index == 0
    status = ledger.record_error(0, {"type": "RuntimeError"}, now=5.0)
    assert status == ERRORED
    assert ledger.drained()
    records = ledger.error_records()
    assert len(records) == 1
    assert records[0]["reason"] == "raised on 2 separate attempts"
    assert records[0]["error"] == {"type": "RuntimeError"}


def test_wait_hint_tracks_nearest_backoff_gate():
    ledger = _ledger(1, backoff_base_s=2.0)
    ledger.lease("w1#1", now=0.0)
    ledger.release_owner("w1#1", now=0.0)          # gate at t=2.0
    assert ledger.wait_hint(now=0.0) == 1.0        # clamped to max 1.0
    assert ledger.wait_hint(now=1.8) == pytest.approx(0.2)
    assert ledger.wait_hint(now=3.0) == 0.05       # gate already open


def test_counts_and_constructor_validation():
    ledger = _ledger(3)
    ledger.lease("w1", now=0.0)
    ledger.complete(0, None)
    ledger.lease("w1", now=0.0)
    assert ledger.counts() == {DONE: 1, LEASED: 1, QUEUED: 1}
    with pytest.raises(ValueError, match="duplicate case index"):
        CaseLedger([(0, "a", "base", 1), (0, "a", "base", 2)])
    with pytest.raises(ValueError):
        CaseLedger([], lease_timeout_s=0.0)
