"""Fabric integration tests: distributed sweeps against real sockets.

The fast paths (byte-identity, error capture) run coordinator and
workers in-process on threads; the failure-mode paths (quarantine,
coordinator restart) use real worker subprocesses because the behavior
under test *is* process death.
"""

import json
import signal
import socket
import subprocess
import sys
import threading
import time


from repro.fabric import FabricCoordinator, FabricWorker
from repro.fabric.chaos import _worker_env, run_chaos
from repro.fabric.testing import (
    CHAOS_ERROR,
    CHAOS_KILL,
    ENABLE_ENV,
    KILL_DIR_ENV,
    KILL_LIMIT_ENV,
    chaos_schemes,
)
from repro.scenarios.executor import run_sweep
from repro.scenarios.spec import MatrixSpec, ScenarioSpec

FAST = dict(lease_timeout_s=8.0, heartbeat_timeout_s=3.0,
            backoff_base_s=0.05, idle_timeout_s=60.0)


def small_spec(**kwargs):
    defaults = dict(
        name="fabric-t", duration_s=200.0, warmup_s=40.0, idle_per_region=4,
        checkpoint_period_s=60.0,
        matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3, 4)),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def _run_workers(address, n, **kwargs):
    """Run n in-process FabricWorkers on threads; returns (threads, codes)."""
    codes = [None] * n
    threads = []
    for i in range(n):
        worker = FabricWorker(
            address, worker_id=f"t{i}", heartbeat_interval_s=0.2,
            reconnect_delay_s=0.1, patience_s=20.0, **kwargs)

        def _run(i=i, worker=worker):
            codes[i] = worker.run()

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        threads.append(thread)
    return threads, codes


def _join_all(threads, timeout=30.0):
    deadline = time.monotonic() + timeout
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
        assert not thread.is_alive(), "worker thread failed to exit"


def test_distributed_sweep_matches_serial_and_local_pool(tmp_path):
    """Serial, --jobs 2, and a 2-worker fabric sweep must all produce
    byte-identical artifacts."""
    spec = small_spec()
    serial = tmp_path / "serial.json"
    jobs2 = tmp_path / "jobs2.json"
    fabric = tmp_path / "fabric.json"

    run_sweep(spec, jobs=1, out_path=str(serial))
    run_sweep(spec, jobs=2, out_path=str(jobs2))

    coordinator = FabricCoordinator(spec, ("127.0.0.1", 0), **FAST)
    threads, codes = _run_workers((coordinator.host, coordinator.port), 2)
    envelope = coordinator.run(out_path=str(fabric))
    _join_all(threads)

    assert codes == [0, 0]
    assert envelope["n_cases"] == 4
    assert "quarantined" not in envelope and "errors" not in envelope
    assert serial.read_bytes() == jobs2.read_bytes() == fabric.read_bytes()


def test_worker_errors_are_reported_not_silently_dropped(tmp_path):
    """A case that raises on the worker lands in the envelope's
    ``errors`` sidecar after one retry — never as an artifact row."""
    with chaos_schemes():
        spec = small_spec(
            matrix=MatrixSpec(apps=("bcp",), schemes=("base", CHAOS_ERROR),
                              seeds=(3,)))
        out = tmp_path / "out.json"
        coordinator = FabricCoordinator(spec, ("127.0.0.1", 0), **FAST)
        threads, codes = _run_workers((coordinator.host, coordinator.port), 1)
        envelope = coordinator.run(out_path=str(out))
        _join_all(threads)

    assert codes == [0]
    assert envelope["n_cases"] == 1
    assert [row["scheme"] for row in envelope["cases"]] == ["base"]
    assert "quarantined" not in envelope
    (record,) = envelope["errors"]
    assert record["scheme"] == CHAOS_ERROR and record["seed"] == 3
    assert record["attempts"] == 2
    assert record["error"]["type"] == "RuntimeError"
    assert "chaos-error" in record["error"]["message"]
    # The on-disk artifact carries only real rows — no error sidecar.
    artifact = json.loads(out.read_text())
    assert "errors" not in artifact and len(artifact["cases"]) == 1


def test_case_that_kills_its_worker_twice_is_quarantined(tmp_path):
    """A poison case gets exactly two chances, then the sweep finishes
    without it (and without hanging) and reports the quarantine."""
    kill_dir = tmp_path / "kills"
    kill_dir.mkdir()
    with chaos_schemes():
        spec = small_spec(
            matrix=MatrixSpec(apps=("bcp",), schemes=("base", CHAOS_KILL),
                              seeds=(3,)))
        result = run_chaos(
            spec, work_dir=str(tmp_path / "work"), n_workers=1, kills=0,
            # Arm the kill scheme only inside the worker subprocesses:
            # the in-process serial reference must not kill pytest.
            worker_env={ENABLE_ENV: "1", KILL_DIR_ENV: str(kill_dir),
                        KILL_LIMIT_ENV: "-1"},
            lease_timeout_s=8.0, heartbeat_timeout_s=3.0,
            backoff_base_s=0.05, idle_timeout_s=60.0)

    # The poison case never produced a row, so the artifact differs
    # from serial — by exactly that one missing case.
    assert not result.identical
    assert result.n_cases == 1
    assert [row["scheme"] for row in result.envelope["cases"]] == ["base"]
    (record,) = result.quarantined
    assert record["scheme"] == CHAOS_KILL and record["seed"] == 3
    assert record["kills"] == 2
    assert record["reason"] == "killed its worker 2 time(s)"
    # Two SIGKILLed workers were replaced so the sweep could drain.
    assert result.respawns >= 2
    assert len(list(kill_dir.iterdir())) == 2


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _StderrTail:
    """Collect a subprocess's stderr lines without blocking it."""

    def __init__(self, proc):
        self.lines = []
        self._cond = threading.Condition()
        self._thread = threading.Thread(
            target=self._pump, args=(proc,), daemon=True)
        self._thread.start()

    def _pump(self, proc):
        for line in proc.stderr:
            with self._cond:
                self.lines.append(line.rstrip("\n"))
                self._cond.notify_all()
        proc.stderr.close()

    def wait_for(self, needle, timeout=60.0):
        deadline = time.monotonic() + timeout
        scanned = 0
        with self._cond:
            while True:
                for line in self.lines[scanned:]:
                    if needle in line:
                        return line
                scanned = len(self.lines)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AssertionError(
                        f"timed out waiting for {needle!r} in stderr:\n"
                        + "\n".join(self.lines))
                self._cond.wait(min(remaining, 0.5))


def test_coordinator_restart_workers_reregister(tmp_path):
    """SIGKILL the coordinator mid-sweep; a restarted coordinator on the
    same port resumes from the case cache, the surviving worker
    re-registers, and the final artifact still byte-matches serial."""
    spec = small_spec(matrix=MatrixSpec(
        apps=("bcp",), schemes=("base", "ms-8"), seeds=(3, 4, 5)))
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())
    serial = tmp_path / "serial.json"
    run_sweep(spec, jobs=1, out_path=str(serial))

    port = _free_port()
    cache_dir = tmp_path / "cache"
    out = tmp_path / "fabric.json"
    env = _worker_env()

    def _coordinator():
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "fabric", "coordinator",
             str(spec_path), "--bind", f"127.0.0.1:{port}",
             "--out", str(out), "--resume", "--cache-dir", str(cache_dir),
             "--lease-timeout", "8", "--heartbeat-timeout", "3",
             "--idle-timeout", "60"],
            env=env, stderr=subprocess.PIPE, text=True)

    coord = _coordinator()
    tail = _StderrTail(coord)
    tail.wait_for("fabric: listening")

    worker = subprocess.Popen(
        [sys.executable, "-m", "repro", "fabric", "worker",
         "--connect", f"127.0.0.1:{port}", "--id", "survivor",
         "--heartbeat-interval", "0.2", "--patience", "30"],
        env=env)
    try:
        # Let at least one case merge (and hit the resume cache), then
        # kill the coordinator without warning.
        tail.wait_for(" row ")
        coord.send_signal(signal.SIGKILL)
        coord.wait(timeout=10)

        # Same port, same cache: the restarted coordinator preloads the
        # finished cases and the worker reconnects within its patience.
        coord = _coordinator()
        tail = _StderrTail(coord)
        tail.wait_for("fabric: listening")
        assert coord.wait(timeout=120) == 0
        assert worker.wait(timeout=30) == 0
    finally:
        for proc in (worker, coord):
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    assert out.read_bytes() == serial.read_bytes()
    # The restart actually resumed: at least one case came from cache.
    assert any(" cached " in line for line in tail.lines), tail.lines
