"""Wire-protocol tests: framing, EOF semantics, address parsing."""

import socket
import struct
import threading

import pytest

from repro.fabric.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    format_address,
    parse_address,
    recv_frame,
    request,
    send_frame,
)


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5)
    b.settimeout(5)
    return a, b


def test_frame_round_trip_preserves_the_message():
    a, b = _pair()
    try:
        message = {"type": "result", "index": 3,
                   "payload": {"row": {"x": [1, 2, None], "u": "naïve"}}}
        send_frame(a, message)
        assert recv_frame(b) == message
    finally:
        a.close()
        b.close()


def test_frames_queue_back_to_back():
    a, b = _pair()
    try:
        for i in range(5):
            send_frame(a, {"type": "heartbeat", "n": i})
        for i in range(5):
            assert recv_frame(b) == {"type": "heartbeat", "n": i}
    finally:
        a.close()
        b.close()


def test_clean_eof_at_frame_boundary_is_none():
    a, b = _pair()
    a.close()
    try:
        assert recv_frame(b) is None
    finally:
        b.close()


def test_eof_mid_frame_raises():
    a, b = _pair()
    try:
        # A header promising 100 bytes, then hang up after 3.
        a.sendall(struct.pack(">I", 100) + b"abc")
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
    finally:
        b.close()


def test_oversized_length_header_raises_without_allocating():
    a, b = _pair()
    try:
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError, match="exceeds cap"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


@pytest.mark.parametrize("body", [b"not json", b"[1, 2]", b"{\"no_type\": 1}"])
def test_malformed_bodies_raise(body):
    a, b = _pair()
    try:
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_request_round_trip_and_hangup():
    a, b = _pair()

    def _echo():
        message = recv_frame(b)
        send_frame(b, {"type": "ack", "echo": message["type"]})
        recv_frame(b)  # second request: hang up instead of replying
        b.close()

    thread = threading.Thread(target=_echo)
    thread.start()
    try:
        assert request(a, {"type": "fetch"}) == {"type": "ack", "echo": "fetch"}
        with pytest.raises(FrameError, match="no reply"):
            request(a, {"type": "fetch"})
    finally:
        thread.join(timeout=5)
        a.close()


@pytest.mark.parametrize("text,expected", [
    ("example.org:7381", ("example.org", 7381)),
    (":7381", ("127.0.0.1", 7381)),
    ("7381", ("127.0.0.1", 7381)),
    ("0.0.0.0:0", ("0.0.0.0", 0)),
])
def test_parse_address(text, expected):
    assert parse_address(text) == expected


@pytest.mark.parametrize("text", ["", "host:", "host:port", "host:-1",
                                  "host:65536"])
def test_parse_address_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_address(text)


def test_format_address_round_trips():
    assert parse_address(format_address(("10.0.0.2", 9))) == ("10.0.0.2", 9)
