"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_fault, build_parser, main


# -- argument parsing ------------------------------------------------------------
def test_parse_fault_spec():
    assert _parse_fault("300:3") == (300.0, [3])
    assert _parse_fault("120.5:1,2,7") == (120.5, [1, 2, 7])


@pytest.mark.parametrize("bad", ["", "300", "abc:1", "300:", "-5:1"])
def test_parse_fault_rejects_garbage(bad):
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_fault(bad)


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.app == "bcp"
    assert args.scheme == "ms-8"
    assert args.duration == 900.0
    assert args.crash is None


def test_parser_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--scheme", "nope"])


def test_parser_crash_flag_is_repeatable():
    args = build_parser().parse_args(
        ["run", "--crash", "100:3", "--crash", "200:4"])
    assert args.crash == [(100.0, [3]), (200.0, [4])]


def test_run_command_with_two_crash_bursts(capsys):
    rc = main(["run", "--app", "bcp", "--scheme", "ms-8",
               "--duration", "300", "--warmup", "50", "--period", "60",
               "--idle", "4", "--crash", "100:3", "--crash", "200:4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "recoveries: 2" in out


def test_parser_bench_artifacts():
    args = build_parser().parse_args(["bench", "fig8", "--quick"])
    assert args.artifact == "fig8"
    assert args.quick


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# -- end-to-end commands ------------------------------------------------------------
def test_run_command_reports_metrics(capsys):
    rc = main(["run", "--app", "bcp", "--scheme", "base",
               "--duration", "400", "--warmup", "100", "--verbose"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "region0" in out
    assert "t/s" in out
    assert "wifi bytes" in out


def test_run_command_with_crash(capsys):
    rc = main(["run", "--app", "bcp", "--scheme", "ms-8",
               "--duration", "300", "--warmup", "50", "--period", "60",
               "--idle", "4", "--crash", "120:3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "recoveries: 1" in out


def test_run_command_exit_code_on_region_loss(capsys):
    rc = main(["run", "--app", "bcp", "--scheme", "base",
               "--duration", "300", "--crash", "120:3"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "STOPPED" in out


def test_info_command(capsys):
    rc = main(["info"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "bcp" in out and "signalguru" in out
    assert "ms-8" in out and "MobiStreamsScheme" in out
