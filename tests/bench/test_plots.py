"""Tests for the text figure renderers."""

import pytest

from repro.bench.plots import bar_chart, fig8_chart, fig9_chart, line_chart


# -- bar_chart ---------------------------------------------------------------
def test_bar_lengths_proportional():
    chart = bar_chart([("a", 1.0), ("b", 2.0), ("c", 4.0)], width=40)
    lines = chart.splitlines()
    lengths = [sum(1 for ch in line if ch == "█") for line in lines]
    assert lengths[2] == 40  # the max fills the width
    assert lengths[1] == pytest.approx(20, abs=1)
    assert lengths[0] == pytest.approx(10, abs=1)


def test_bar_chart_values_printed():
    chart = bar_chart([("x", 1.23)], unit="t/s")
    assert "1.23t/s" in chart
    assert "x │" in chart


def test_bar_chart_title_and_empty():
    assert bar_chart([], title="nothing") == "nothing"
    chart = bar_chart([("a", 1.0)], title="T")
    assert chart.splitlines()[0] == "T"


def test_bar_chart_zero_values():
    chart = bar_chart([("a", 0.0), ("b", 0.0)])
    assert "0.00" in chart  # no division-by-zero crash


def test_bar_chart_reference_marker():
    chart = bar_chart([("a", 0.2), ("b", 2.0)], reference=1.0)
    assert "┊" in chart  # the base=1.0 mark appears in the short bar's row


def test_bar_chart_labels_aligned():
    chart = bar_chart([("ab", 1.0), ("abcdef", 2.0)])
    lines = chart.splitlines()
    assert lines[0].index("│") == lines[1].index("│")


# -- line_chart ---------------------------------------------------------------
def test_line_chart_marks_every_series():
    chart = line_chart({
        "one": [(0, 1.0), (1, 2.0)],
        "two": [(0, 2.0), (1, 1.0)],
    })
    assert "o one" in chart
    assert "* two" in chart
    assert chart.count("o") >= 2  # marker + legend


def test_line_chart_dead_points_are_crosses():
    chart = line_chart({"s": [(0, 1.0), (1, None)]})
    assert "✗" in chart


def test_line_chart_axis_ticks():
    chart = line_chart({"s": [(0, 1.0), (4, 2.0), (8, 0.5)]},
                       x_label="n nodes")
    assert "(n nodes)" in chart
    last_tick_line = chart.splitlines()[-2]
    for x in ("0", "4", "8"):
        assert x in last_tick_line


def test_line_chart_empty():
    assert line_chart({}, title="T") == "T"
    assert line_chart({"s": []}, title="T") == "T"


# -- figure adapters -------------------------------------------------------------
def test_fig8_chart_renders_both_panels():
    rel = {
        "base": {"throughput": 1.0, "latency": 1.0},
        "ms-8": {"throughput": 0.95, "latency": 1.2},
    }
    out = fig8_chart(rel, "bcp", ["base", "ms-8"])
    assert "relative throughput" in out
    assert "relative latency" in out
    assert "ms-8" in out


def test_fig9_chart_renders_curves_and_deaths():
    curves = {
        "ms-8 failure": [(0, 1.0, 1.0, True), (1, 0.9, 1.2, True)],
        "dist-1 failure": [(0, 1.0, 1.0, True), (1, 0.8, 1.4, True),
                           (2, 0.0, 0.0, False)],
    }
    out = fig9_chart(curves, "bcp", "throughput")
    assert "relative throughput" in out
    assert "✗" in out  # the unrecoverable dist-1 point
    out_lat = fig9_chart(curves, "bcp", "latency")
    assert "relative latency" in out_lat


# -- golden text --------------------------------------------------------------
# Exact renderings pinned character-for-character: the charts are part
# of the bench modules' output contract ("identical output through the
# new results API"), so any drift in bar scaling, partial-cell glyphs,
# axis layout, or legends must be a conscious change here.
def test_bar_chart_golden_text():
    chart = bar_chart([("base", 1.0), ("rep-2", 0.3), ("ms-8", 0.8)],
                      title="T", width=20, unit="x", reference=1.0)
    assert chart == (
        "T\n"
        " base │████████████████████│ 1.00x\n"
        "rep-2 │██████              │ 0.30x\n"
        " ms-8 │████████████████    │ 0.80x"
    )


def test_line_chart_golden_text():
    chart = line_chart({"a": [(0, 1.0), (1, 0.5), (2, None)],
                        "b": [(0, 1.0), (2, 2.0)]},
                       title="L", height=6, x_label="n", y_label="rel")
    assert chart == (
        "L\n"
        "  [rel]\n"
        "  2.00 ┤          * \n"
        "       │            \n"
        "       │            \n"
        "  0.80 ┤  ▒         \n"  # a and b overlap at (0, 1.0)
        "       │      o     \n"
        "  0.00 ┤          ✗ \n"
        "       └────────────\n"
        "         0   1   2    (n)\n"
        "  o a   * b"
    )


def test_fig8_chart_golden_text():
    rel = {"base": {"throughput": 1.0, "latency": 1.0},
           "ms-8": {"throughput": 0.9, "latency": 1.2}}
    assert fig8_chart(rel, "bcp", ["base", "ms-8"]) == (
        "Fig. 8 — bcp: relative throughput (base = 1.0)\n"
        "base │████████████████████████████████████████│ 1.00x\n"
        "ms-8 │████████████████████████████████████    │ 0.90x\n"
        "\n"
        "Fig. 8 — bcp: relative latency (base = 1.0)\n"
        "base │█████████████████████████████████▎      │ 1.00x\n"
        "ms-8 │████████████████████████████████████████│ 1.20x"
    )


def test_fig9_chart_golden_text():
    curves = {"ms-8 failure": [(0, 1.0, 1.0, True), (1, 0.8, 1.5, True)],
              "dist-1 failure": [(0, 1.0, 1.0, True), (1, 0.0, 0.0, False)]}
    assert fig9_chart(curves, "bcp", "throughput") == (
        "Fig. 9 — bcp: relative throughput vs simultaneous faults\n"
        "  [relative throughput]\n"
        "  1.00 ┤  ▒     \n"
        "       │        \n"
        "       │        \n"
        "  0.73 ┤      o \n"
        "       │        \n"
        "       │        \n"
        "  0.45 ┤        \n"
        "       │        \n"
        "       │        \n"
        "  0.18 ┤        \n"
        "       │        \n"
        "  0.00 ┤      ✗ \n"
        "       └────────\n"
        "         0   1    (n nodes fail/leave)\n"
        "  o ms-8 failure   * dist-1 failure"
    )
