"""Tests for the shared experiment harness behind every bench."""

import pytest

from repro.baselines import (
    ActiveStandby,
    DistributedCheckpoint,
    LocalCheckpoint,
    NoFaultTolerance,
)
from repro.bench.fig8 import SCHEME_ORDER, relative
from repro.bench.harness import (
    ExperimentConfig,
    ExperimentOutcome,
    format_table,
    run_experiment,
    scheme_factories,
)
from repro.checkpoint import MobiStreamsScheme


def test_scheme_factories_cover_the_figure_labels():
    factories = scheme_factories()
    assert list(factories) == SCHEME_ORDER
    assert isinstance(factories["base"](), NoFaultTolerance)
    rep = factories["rep-2"]()
    assert isinstance(rep, ActiveStandby) and rep.replication_factor == 2
    assert isinstance(factories["local"](), LocalCheckpoint)
    for n in (1, 2, 3):
        d = factories[f"dist-{n}"]()
        assert isinstance(d, DistributedCheckpoint) and d.n == n
    assert isinstance(factories["ms-8"](), MobiStreamsScheme)


def test_factories_return_fresh_instances():
    f = scheme_factories()["ms-8"]
    assert f() is not f()


def test_unknown_app_rejected():
    from repro.bench.harness import app_factory

    with pytest.raises(ValueError):
        app_factory("nope")


@pytest.fixture(scope="module")
def quick_run():
    return run_experiment(ExperimentConfig(
        app="bcp", scheme="base", duration_s=400.0, warmup_s=100.0, seed=3,
        n_regions=1,
    ))


def test_run_experiment_produces_metrics(quick_run):
    out = quick_run
    assert isinstance(out, ExperimentOutcome)
    assert out.throughput > 0
    assert out.latency > 0
    assert out.recoveries == 0
    assert not out.region_stopped


def test_run_experiment_is_deterministic(quick_run):
    again = run_experiment(ExperimentConfig(
        app="bcp", scheme="base", duration_s=400.0, warmup_s=100.0, seed=3,
        n_regions=1,
    ))
    assert again.throughput == quick_run.throughput
    assert again.latency == quick_run.latency


def test_run_experiment_seed_changes_results():
    a = run_experiment(ExperimentConfig(
        app="bcp", scheme="base", duration_s=400.0, warmup_s=100.0, seed=3))
    b = run_experiment(ExperimentConfig(
        app="bcp", scheme="base", duration_s=400.0, warmup_s=100.0, seed=4))
    assert (a.throughput, a.latency) != (b.throughput, b.latency)


def test_crash_config_injects_failures():
    out = run_experiment(ExperimentConfig(
        app="bcp", scheme="ms-8", duration_s=240.0, warmup_s=20.0, seed=3,
        idle_per_region=4, checkpoint_period_s=60.0, crash=(100.0, [3]),
    ))
    assert out.recoveries >= 1
    assert not out.region_stopped


def test_crash_accepts_a_list_of_timed_faults():
    # Two separate bursts across checkpoint periods — inexpressible with
    # the old single-tuple field.
    out = run_experiment(ExperimentConfig(
        app="bcp", scheme="ms-8", duration_s=300.0, warmup_s=20.0, seed=3,
        idle_per_region=4, checkpoint_period_s=60.0,
        crash=[(100.0, [3]), (200.0, [4])],
    ))
    assert out.recoveries >= 2
    assert not out.region_stopped


def test_bare_tuple_and_singleton_list_are_equivalent():
    cfg_tuple = ExperimentConfig(
        app="bcp", scheme="ms-8", duration_s=240.0, warmup_s=20.0, seed=3,
        idle_per_region=4, checkpoint_period_s=60.0, crash=(100.0, [3]),
    )
    cfg_list = ExperimentConfig(
        app="bcp", scheme="ms-8", duration_s=240.0, warmup_s=20.0, seed=3,
        idle_per_region=4, checkpoint_period_s=60.0, crash=[(100.0, [3])],
    )
    assert cfg_tuple.crash_events == cfg_list.crash_events
    a, b = run_experiment(cfg_tuple), run_experiment(cfg_list)
    assert (a.throughput, a.latency) == (b.throughput, b.latency)


def test_tuple_of_fault_tuples_is_a_fault_list():
    cfg = ExperimentConfig(crash=((100.0, [3]), (200.0, [4])))
    assert cfg.crash_events == [(100.0, [3]), (200.0, [4])]


def test_config_compiles_to_scenario_spec():
    cfg = ExperimentConfig(app="bcp", scheme="ms-8", crash=(100.0, [3, 4]),
                           depart=[(200.0, [5])])
    spec = cfg.to_scenario()
    assert [e.kind for e in spec.events] == ["crash", "depart"]
    assert spec.events[0].phones == (3, 4)
    assert tuple(a.key for a in spec.matrix.apps) == ("bcp",)
    assert spec.matrix.schemes == ("ms-8",)
    assert spec.matrix.seeds == (3,)


def test_depart_config_triggers_state_transfer():
    out = run_experiment(ExperimentConfig(
        app="bcp", scheme="ms-8", duration_s=240.0, warmup_s=20.0, seed=3,
        idle_per_region=4, checkpoint_period_s=60.0, depart=(100.0, [3]),
    ))
    assert out.report.departures_handled >= 1
    assert not out.region_stopped


def test_relative_normalizes_to_base():
    base = run_experiment(ExperimentConfig(
        app="bcp", scheme="base", duration_s=400.0, warmup_s=100.0))
    rel = relative({"base": base, "other": base})
    assert rel["base"]["throughput"] == pytest.approx(1.0)
    assert rel["base"]["latency"] == pytest.approx(1.0)
    assert rel["other"]["throughput"] == pytest.approx(1.0)


# -- format_table -----------------------------------------------------------
def test_format_table_alignment():
    txt = format_table(["a", "bee"], [["1", "2"], ["333", "4"]], title="T")
    lines = txt.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bee" in lines[1]
    # All rows share the same width.
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_format_table_stringifies_cells():
    txt = format_table(["x"], [[3.5], [None]])
    assert "3.5" in txt and "None" in txt
