"""Smoke tests for the per-table/figure artifact runners.

Full-length runs live in ``benchmarks/``; these short runs check the
runners' mechanics (shapes, normalization, tolerance cutoffs, report
formatting) so a broken bench fails fast in the unit suite.
"""

import pytest

from repro.bench import fig8, fig9, fig10, table1


DURATION = 400.0  # BCP end-to-end latency is tens of seconds


def test_table1_paper_constants_present():
    for app in ("bcp", "signalguru"):
        rows = table1.PAPER[app]
        assert set(rows) == {"server", "ms_ft_off", "ms_departures", "ms_failures"}


def test_table1_server_point_runs():
    tput, lat = table1.run_server_point("bcp", uplink_mbps=0.32,
                                        duration_s=DURATION, warmup_s=100.0)
    assert tput >= 0
    assert lat == lat or tput == 0  # latency is NaN only with no outputs


def test_fig9_tolerance_table_matches_schemes():
    assert fig9.TOLERANCE["rep-2"] == 1
    assert fig9.TOLERANCE["dist-3"] == 3
    assert fig9.TOLERANCE["ms-8"] is None


def test_fig9_point_failure_recovers():
    tput, lat, ok = fig9.run_fig9_point(
        "bcp", "ms-8", n=2, mode="fail", duration_s=300.0, fault_time=150.0)
    assert ok
    assert tput > 0


def test_fig9_point_beyond_tolerance_stops_region():
    tput, lat, ok = fig9.run_fig9_point(
        "bcp", "dist-1", n=2, mode="fail", duration_s=300.0, fault_time=150.0)
    assert not ok


def test_fig9_zero_point_has_no_faults():
    tput, lat, ok = fig9.run_fig9_point(
        "bcp", "base", n=0, mode="fail", duration_s=DURATION, fault_time=200.0)
    assert ok and tput > 0


def test_fig10_relative_to_ms():
    # ms-8's multi-MB broadcasts need a couple hundred seconds of air
    # time beyond the period before the volumes are representative.
    rel = fig10.run_fig10("bcp", duration_s=800.0, checkpoint_period_s=200.0)
    assert rel["ms-8"]["preservation"] == pytest.approx(1.0)
    assert rel["ms-8"]["ckpt_network"] == pytest.approx(1.0)
    assert rel["base"]["preservation"] == 0.0
    assert rel["base"]["ckpt_network"] == 0.0
    assert rel["rep-2"]["preservation"] == 0.0
    assert rel["local"]["ckpt_network"] < 0.05


def test_fig8_run_produces_all_schemes():
    outcomes = fig8.run_fig8("bcp", duration_s=DURATION, warmup_s=100.0)
    assert set(outcomes) == set(fig8.SCHEME_ORDER)
    rel = fig8.relative(outcomes)
    assert rel["base"]["throughput"] == pytest.approx(1.0)
    for label in fig8.SCHEME_ORDER:
        assert rel[label]["latency"] > 0
