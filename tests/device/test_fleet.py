"""Fleet (struct-of-arrays) backend vs the classic per-object backend.

The fleet's contract is *bit-identical* IEEE-754 parity with the scalar
``Battery``/``Phone`` path: every batch op mirrors the scalar arithmetic
(same operand order, same clamps, float64 throughout), so the two device
backends can be compared event-for-event at small n.
"""

import numpy as np
import pytest

from repro.device.battery import Battery, BatteryConfig
from repro.device.fleet import Fleet, FleetBattery, FleetPhone
from repro.device.phone import Phone, PhoneConfig
from repro.net.topology import Position


def _pair(i=0, config=None, charge=1.0):
    """A (scalar Phone, FleetPhone) pair with identical parameters."""
    fleet = Fleet()
    pos = Position(3.0 * i, 4.0 * i)
    scalar = Phone(f"p{i}", pos, config, charge)
    proxy = fleet.create_phone(f"p{i}", pos, config, charge)
    return scalar, proxy


# -- proxy API parity -----------------------------------------------------
def test_create_phone_validates_like_phone():
    fleet = Fleet()
    fleet.create_phone("a", Position(0, 0))
    with pytest.raises(ValueError, match="already in fleet"):
        fleet.create_phone("a", Position(1, 1))
    with pytest.raises(ValueError, match="charge_fraction"):
        fleet.create_phone("b", Position(0, 0), charge_fraction=1.5)


def test_proxy_mirrors_phone_surface():
    cfg = PhoneConfig(cpu_speed=2.0)
    scalar, proxy = _pair(config=cfg, charge=0.5)
    assert proxy.id == scalar.id
    assert proxy.alive is True
    assert proxy.position == scalar.position
    assert proxy.compute_time(3.0) == scalar.compute_time(3.0)
    with pytest.raises(ValueError):
        proxy.compute_time(-1.0)
    assert proxy.battery.remaining_j == scalar.battery.remaining_j
    assert proxy.battery.fraction == scalar.battery.fraction
    assert proxy.battery.config is cfg.battery
    proxy.crash()
    assert proxy.alive is False


def test_position_setter_writes_arrays():
    _, proxy = _pair()
    proxy.position = Position(7.0, -2.0)
    assert proxy.fleet.pos_x[proxy.index] == 7.0
    assert proxy.fleet.pos_y[proxy.index] == -2.0
    assert proxy.position == Position(7.0, -2.0)


def test_storage_is_lazy():
    _, proxy = _pair()
    assert proxy._storage is None  # idle spares never touch flash
    st = proxy.storage
    assert st.capacity_bytes == proxy.config.storage_bytes
    assert proxy.storage is st  # memoized


def test_fleet_lookup_round_trips():
    fleet = Fleet()
    phones = [fleet.create_phone(f"p{i}", Position(i, i)) for i in range(5)]
    for i, p in enumerate(phones):
        assert fleet.index_of(p.id) == i
        assert fleet.id_at(i) == p.id
        assert fleet.phone_at(i) is p
    assert len(fleet) == 5


def test_growth_preserves_state():
    fleet = Fleet(capacity=2)
    phones = [
        fleet.create_phone(f"p{i}", Position(i, 0), charge_fraction=0.5)
        for i in range(200)
    ]
    assert len(fleet) == 200
    for i, p in enumerate(phones):
        assert p.battery.remaining_j == 8000.0
        assert fleet.pos_x[i] == float(i)
        assert p.alive


# -- battery float parity -------------------------------------------------
def test_battery_drains_bit_identical():
    cfg = PhoneConfig(battery=BatteryConfig(capacity_j=123.456, idle_w=0.017))
    scalar, proxy = _pair(config=cfg, charge=0.9)
    for seconds in (0.1, 7.3, 1e-9, 50.0, 1234.5):
        scalar.battery.drain_idle(seconds)
        proxy.battery.drain_idle(seconds)
        assert proxy.battery.remaining_j == scalar.battery.remaining_j
    scalar.battery.drain_cpu(2.5)
    proxy.battery.drain_cpu(2.5)
    scalar.battery.drain_wifi(1_000_000)
    proxy.battery.drain_wifi(1_000_000)
    scalar.battery.drain_cellular(40_000)
    proxy.battery.drain_cellular(40_000)
    assert proxy.battery.remaining_j == scalar.battery.remaining_j
    assert proxy.battery.fraction == scalar.battery.fraction
    assert proxy.battery.is_critical == scalar.battery.is_critical
    assert proxy.battery.is_dead == scalar.battery.is_dead


def test_batch_drain_matches_scalar_loop_bitwise():
    fleet = Fleet()
    scalars = []
    rng = np.random.default_rng(7)
    for i in range(50):
        charge = float(rng.uniform(0.01, 1.0))
        cfg = PhoneConfig(
            battery=BatteryConfig(idle_w=float(rng.uniform(0.05, 0.4)))
        )
        scalars.append(Battery(cfg.battery, charge))
        fleet.create_phone(f"p{i}", Position(0, 0), cfg, charge)
    idx = np.arange(50)
    for seconds in (15.0, 3600.0, 0.25):
        fleet.drain_idle_tick(idx, seconds)
        for b in scalars:
            b.drain_idle(seconds)
        got = fleet.remaining_j[:50]
        want = np.array([b.remaining_j for b in scalars])
        assert np.array_equal(got, want)  # bitwise, not approx


def test_batch_drain_skips_dead_phones():
    fleet = Fleet()
    for i in range(4):
        fleet.create_phone(f"p{i}", Position(0, 0))
    fleet.phone_at(1).crash()
    before = fleet.remaining_j[1]
    fleet.drain_idle_tick(np.arange(4), 100.0)
    assert fleet.remaining_j[1] == before  # dead phone untouched
    assert (fleet.remaining_j[[0, 2, 3]] < before).all()


def test_sweep_battery_matches_scalar_ladder():
    """One tick of sweep_battery reproduces the object backend's
    is_dead / elif is_critical classification, in creation order."""
    fleet = Fleet()
    scalars = []
    # Charges straddling dead (0), critical (<= 3%), and healthy.
    charges = [0.0001, 0.5, 0.031, 0.02, 1.0, 0.0301]
    for i, charge in enumerate(charges):
        scalars.append(Battery(BatteryConfig(), charge))
        fleet.create_phone(f"p{i}", Position(0, 0), charge_fraction=charge)
    seconds = 15.0
    dead, critical = fleet.sweep_battery(np.arange(len(charges)), seconds)
    want_dead, want_critical = [], []
    for i, b in enumerate(scalars):
        b.drain_idle(seconds)
        if b.is_dead:
            want_dead.append(i)
        elif b.is_critical:
            want_critical.append(i)
    assert dead.tolist() == want_dead
    assert critical.tolist() == want_critical
    # The drained ledgers agree bitwise too.
    got = fleet.remaining_j[: len(charges)]
    assert np.array_equal(got, np.array([b.remaining_j for b in scalars]))


def test_sweep_battery_reports_each_death_once():
    fleet = Fleet()
    fleet.create_phone("p0", Position(0, 0), charge_fraction=0.0001)
    idx = np.arange(1)
    dead, _ = fleet.sweep_battery(idx, 100.0)
    assert dead.tolist() == [0]
    # The region marks reported phones dead; after that the sweep skips
    # them (alive mask), so the death is not re-reported.
    fleet.phone_at(0).crash()
    dead, critical = fleet.sweep_battery(idx, 100.0)
    assert dead.size == 0 and critical.size == 0


# -- churn sampling parity ------------------------------------------------
def test_sample_departure_times_matches_scalar_accumulation():
    fleet = Fleet()
    n, mean, start, seed = 40, 60.0, 123.25, 9
    got = fleet.sample_departure_times(n, mean, start, seed)
    gen = np.random.default_rng(seed)
    t = float(start)
    want = []
    for gap in gen.exponential(mean, n):
        t += float(gap)
        want.append(t)
    assert got.tolist() == want  # float-identical, not approx


def test_shared_default_config_is_not_aliased_state():
    """Default-configured phones share one PhoneConfig object; battery
    state still lives per-slot in the arrays."""
    fleet = Fleet()
    a = fleet.create_phone("a", Position(0, 0))
    b = fleet.create_phone("b", Position(0, 0))
    assert a.config is b.config
    a.battery.drain(1000.0)
    assert b.battery.remaining_j == b.battery.config.capacity_j


def test_proxy_types_have_slots():
    assert not hasattr(FleetPhone(Fleet(), 0, "x", PhoneConfig()), "__dict__")
    assert not hasattr(FleetBattery(Fleet(), 0), "__dict__")
