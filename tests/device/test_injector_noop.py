"""Crashing an already-dead/departed phone is a logged no-op.

With a liveness probe installed, the injector skips dead targets (one
``simlog`` warning, a ``failures.skipped_dead`` count) instead of
depending on handler-side behavior; unknown phone ids still fail loudly
in the handler so scenario typos stay visible.
"""

import logging

import pytest

from repro.device.failures import FailureInjector
from repro.sim.core import Simulator
from repro.sim.monitor import Trace


def _injector(alive):
    sim = Simulator()
    trace = Trace()
    injector = FailureInjector(sim, trace=trace)
    crashed = []
    injector.on_crash(lambda pid, reason: crashed.append(pid))
    injector.on_liveness(lambda pid: alive.get(pid, True))
    return sim, trace, injector, crashed


def test_dead_target_is_a_counted_noop(caplog):
    alive = {"p0": True, "p1": False}
    sim, trace, injector, crashed = _injector(alive)
    injector.crash_at(10.0, ["p1"])
    injector.crash_at(20.0, ["p0"])
    with caplog.at_level(logging.WARNING, logger="repro.sim"):
        sim.run()
    assert crashed == ["p0"]
    assert trace.value("failures.skipped_dead") == 1
    assert trace.value("failures.injected") == 1
    # No failure_injected record for the skipped phone.
    assert [r.data["phone"] for r in trace.select("failure_injected")] == ["p0"]


def test_warning_fires_once_per_injector(caplog):
    alive = {"p1": False}
    sim, trace, injector, crashed = _injector(alive)
    injector.crash_at(10.0, ["p1"])
    injector.crash_at(20.0, ["p1"])
    injector.crash_at(30.0, ["p1"])
    with caplog.at_level(logging.WARNING):
        sim.run()
    warnings = [r for r in caplog.records
                if "already-dead/departed" in r.getMessage()]
    assert len(warnings) == 1
    assert trace.value("failures.skipped_dead") == 3
    assert crashed == []


def test_double_kill_in_one_burst(caplog):
    """A burst listing one phone twice: first kill lands, second skips
    (the probe sees the phone dead by then)."""
    alive = {"p2": True}
    sim, trace, injector, crashed = _injector(alive)

    def handler(pid, reason):
        crashed.append(pid)
        alive[pid] = False

    injector.on_crash(handler)
    injector.crash_at(10.0, ["p2", "p2"])
    with caplog.at_level(logging.WARNING):
        sim.run()
    assert crashed == ["p2"]
    assert trace.value("failures.skipped_dead") == 1


def test_without_probe_everything_reaches_the_handler():
    sim = Simulator()
    injector = FailureInjector(sim)
    crashed = []
    injector.on_crash(lambda pid, reason: crashed.append(pid))
    injector.crash_at(10.0, ["ghost"])
    sim.run()
    assert crashed == ["ghost"]


def test_unknown_phone_still_fails_loudly_in_a_real_system():
    """The system's probe answers True for ids it has never heard of,
    so a typo'd phone name raises in the crash handler as before."""
    from repro.scenarios import get
    from repro.scenarios.runner import build_system

    system = build_system(get("paper-fig8").quick(120.0), "bcp", "ms-8", 3)
    system.start()
    system.injector.crash_at(5.0, ["region9.p99"])
    with pytest.raises(KeyError, match="region9.p99"):
        system.run(10.0)


def test_scripted_crash_of_departed_phone_is_skipped():
    """End to end: depart a phone, then crash it — the scripted
    double-fault runs to completion with the skip counted."""
    import dataclasses

    from repro.scenarios import EventDirector, get
    from repro.scenarios.runner import build_system
    from repro.scenarios.spec import EventSpec

    spec = get("paper-fig8").quick(120.0)
    spec = dataclasses.replace(spec, events=(
        EventSpec(kind="depart", time=40.0, phones=(2,)),
        EventSpec(kind="crash", time=60.0, phones=(2,)),
    ))
    system = build_system(spec, "bcp", "ms-8", 3)
    director = EventDirector(system, spec)
    director.install()
    system.start()
    director.schedule()
    system.run(spec.duration_s)
    assert system.trace.value("failures.skipped_dead") == 1
