"""Tests for the energy model's runtime integration (Section III-D).

"A node can also actively report its own failure to the controller, for
example, when its battery is at chronic levels" — chronic batteries
trigger proactive handoff under MobiStreams; empty batteries crash the
phone like any failure.
"""


from repro.baselines import NoFaultTolerance
from repro.checkpoint import MobiStreamsScheme
from repro.device.battery import BatteryConfig
from repro.device.phone import PhoneConfig

from tests.baselines._harness import PipelineApp, build_system, sink_seqs


def drain_phone(system, phone_id, to_fraction):
    """Set one phone's charge to a fraction of capacity."""
    phone = system.regions[0].phones[phone_id]
    phone.battery.remaining_j = phone.battery.config.capacity_j * to_fraction


def test_idle_drain_accumulates():
    sys_ = build_system(NoFaultTolerance)
    sys_.run(120.0)
    for phone in sys_.regions[0].phones.values():
        assert phone.battery.fraction < 1.0


def test_radio_and_cpu_drain_exceed_idle():
    """Computing phones burn more than idle spares (CPU + radio draws)."""
    sys_ = build_system(NoFaultTolerance)
    sys_.run(300.0)
    region = sys_.regions[0]
    m1 = region.phones[region.placement.node_for("M1", 0)]
    idle = region.phones["region0.idle0"]
    assert m1.battery.remaining_j < idle.battery.remaining_j


def test_battery_death_crashes_the_phone():
    sys_ = build_system(NoFaultTolerance)
    sys_.start()
    hit = sys_.regions[0].placement.node_for("M1", 0)
    # Leave just a sliver below critical; idle drain finishes it quickly
    # and no proactive handoff fires under NoFT anyway.
    drain_phone(sys_, hit, 0.00001)
    sys_.run(200.0)
    assert not sys_.regions[0].phones[hit].alive
    crashes = [r for r in sys_.trace.select("phone_crashed")
               if r.data["phone"] == hit]
    assert crashes and crashes[0].data["reason"] == "battery dead"
    # NoFT cannot recover from the loss.
    assert sys_.regions[0].stopped


def test_chronic_battery_triggers_self_report():
    sys_ = build_system(NoFaultTolerance)
    sys_.start()
    hit = sys_.regions[0].placement.node_for("M2", 0)
    drain_phone(sys_, hit, 0.02)  # below the 3% chronic threshold
    sys_.run(30.0)
    reports = list(sys_.trace.select("battery_critical"))
    assert any(r.data["phone"] == hit for r in reports)
    # Reported once, not every tick.
    assert sum(1 for r in reports if r.data["phone"] == hit) == 1


def test_mobistreams_hands_off_before_death():
    """Proactive handoff: state moves to a spare while the phone lives,
    so the region needs no restoration or catch-up when it dies."""
    sys_ = build_system(MobiStreamsScheme, period=60.0)
    sys_.start()
    hit = sys_.regions[0].placement.node_for("M1", 0)
    sys_.sim.call_at(100.0, lambda: drain_phone(sys_, hit, 0.02))
    sys_.run(400.0)
    region = sys_.regions[0]
    handoffs = list(sys_.trace.select("handoff_finished"))
    assert any(h.data["phone"] == hit and h.data["outcome"] == "replaced"
               for h in handoffs)
    assert region.placement.node_for("M1", 0) != hit
    assert not region.stopped
    # Proactive handoff is not a recovery: no MRC restore, no catch-up.
    assert not any(True for _ in sys_.trace.select("catchup_started"))
    seqs = sink_seqs(sys_)
    assert len(seqs) == len(set(seqs))
    assert len(seqs) == 200


def test_self_report_without_spares_waits_for_the_crash():
    sys_ = build_system(MobiStreamsScheme, idle=0, period=60.0)
    sys_.start()
    hit = sys_.regions[0].placement.node_for("M1", 0)
    drain_phone(sys_, hit, 0.02)
    sys_.run(60.0)
    # Self-report recorded, but no handoff possible without a spare.
    assert any(True for _ in sys_.trace.select("self_report"))
    assert not any(True for _ in sys_.trace.select("handoff_finished"))


def test_battery_monitor_can_be_disabled():
    from repro.core.system import MobiStreamsSystem, SystemConfig
    from repro.core.region import RegionConfig

    cfg = SystemConfig(
        n_regions=1, phones_per_region=4, idle_per_region=2, master_seed=5,
        region_defaults=RegionConfig(name="_", battery_tick_s=0.0),
    )
    sys_ = MobiStreamsSystem(cfg, PipelineApp(), NoFaultTolerance)
    sys_.run(120.0)
    idle = sys_.regions[0].phones["region0.idle0"]
    assert idle.battery.fraction == 1.0  # no idle drain charged


def test_low_capacity_fleet_fails_organically():
    """Long runs on small batteries produce organic failures."""
    from repro.core.system import MobiStreamsSystem, SystemConfig

    tiny = PhoneConfig(battery=BatteryConfig(capacity_j=40.0))
    cfg = SystemConfig(n_regions=1, phones_per_region=4, idle_per_region=2,
                       master_seed=5, phone=tiny)
    sys_ = MobiStreamsSystem(cfg, PipelineApp(), NoFaultTolerance)
    sys_.run(400.0)
    assert any(True for _ in sys_.trace.select("battery_dead"))
