"""Tests wiring the mobility models into the full system."""


from repro.checkpoint import MobiStreamsScheme
from repro.device.mobility import ScriptedDepartures, StaticMobility

from tests.baselines._harness import build_system, sink_seqs


def test_static_mobility_changes_nothing():
    s = build_system(MobiStreamsScheme, period=60.0)
    s.attach_mobility(StaticMobility())
    s.run(300.0)
    assert not any(True for _ in s.trace.select("phone_departed"))


def test_scripted_departure_drives_the_region():
    s = build_system(MobiStreamsScheme, period=60.0)
    s.start()
    gone = s.regions[0].placement.node_for("M1", 0)
    s.attach_mobility(ScriptedDepartures(schedule=[(100.0, gone)]))
    s.run(400.0)
    deps = list(s.trace.select("departure_state_transfer"))
    assert len(deps) == 1 and deps[0].data["departed"] == gone
    assert not s.regions[0].stopped
    seqs = sink_seqs(s)
    assert len(seqs) == len(set(seqs)) == 200


def test_periodic_departures_rotate_phones():
    """Table I scenario 2: one phone leaves every period."""
    s = build_system(MobiStreamsScheme, period=60.0, idle=6)
    s.start()
    m1, m2 = (s.regions[0].placement.node_for("M1", 0),
              s.regions[0].placement.node_for("M2", 0))
    s.attach_mobility(ScriptedDepartures.periodic(90.0, [m1, m2]))
    s.run(400.0)
    deps = [r.data["departed"] for r in s.trace.select("departure_state_transfer")]
    assert deps == [m1, m2]
    assert not s.regions[0].stopped
    seqs = sink_seqs(s)
    assert len(seqs) == len(set(seqs)) == 200


def test_simultaneous_builder_hits_all_at_once():
    s = build_system(MobiStreamsScheme, period=60.0, idle=6)
    s.start()
    targets = [s.regions[0].placement.node_for("M1", 0),
               s.regions[0].placement.node_for("M2", 0)]
    s.attach_mobility(ScriptedDepartures.simultaneous(100.0, targets))
    s.run(400.0)
    departed = [r for r in s.trace.select("phone_departed")]
    assert {r.data["phone"] for r in departed} == set(targets)
    assert all(abs(r.time - 100.0) < 1e-9 for r in departed)
    assert not s.regions[0].stopped


def test_table1_recurring_runner_shapes():
    from repro.bench.table1 import run_ms_recurring

    t_dep, l_dep = run_ms_recurring("bcp", "depart", duration_s=650.0,
                                    fault_period_s=300.0, warmup_s=100.0)
    t_fail, l_fail = run_ms_recurring("bcp", "fail", duration_s=650.0,
                                      fault_period_s=300.0, warmup_s=100.0)
    # Departures are cheap (state transfer); failures pay restore+catch-up.
    assert t_dep > t_fail > 0
