"""Tests for flash storage."""

import pytest

from repro.device import FlashStorage
from repro.device.storage import StorageFull


def test_write_read():
    fs = FlashStorage(1000)
    fs.write("ckpt.v1", 400, payload={"state": 1})
    assert fs.read("ckpt.v1") == {"state": 1}
    assert fs.size_of("ckpt.v1") == 400
    assert fs.used_bytes == 400
    assert fs.free_bytes == 600


def test_overwrite_adjusts_usage():
    fs = FlashStorage(1000)
    fs.write("k", 400)
    fs.write("k", 100)
    assert fs.used_bytes == 100


def test_capacity_enforced():
    fs = FlashStorage(1000)
    fs.write("a", 800)
    with pytest.raises(StorageFull):
        fs.write("b", 300)
    # overwrite that shrinks is fine even near capacity
    fs.write("a", 1000)
    assert fs.used_bytes == 1000


def test_delete_idempotent():
    fs = FlashStorage(1000)
    fs.write("k", 500)
    fs.delete("k")
    assert fs.used_bytes == 0
    fs.delete("k")  # no error


def test_contains_and_keys():
    fs = FlashStorage(1000)
    fs.write("a", 1)
    fs.write("b", 2)
    assert fs.contains("a")
    assert not fs.contains("c")
    assert sorted(fs.keys()) == ["a", "b"]


def test_wipe():
    fs = FlashStorage(1000)
    fs.write("a", 500)
    fs.wipe()
    assert fs.used_bytes == 0
    assert fs.keys() == []


def test_missing_key_raises():
    fs = FlashStorage(1000)
    with pytest.raises(KeyError):
        fs.read("nope")


def test_validation():
    with pytest.raises(ValueError):
        FlashStorage(0)
    with pytest.raises(ValueError):
        FlashStorage(10).write("k", -1)
