"""Tests for the phone model."""

import pytest

from repro.device import Phone, PhoneConfig
from repro.net import Position
from repro.sim import RngRegistry


def test_defaults():
    p = Phone("p1", Position(0, 0))
    assert p.alive
    assert p.config.cpu_speed == 1.0
    assert p.battery.fraction == 1.0


def test_compute_time_scales_with_cpu_speed():
    slow = Phone("s", Position(0, 0), PhoneConfig(cpu_speed=1.0))
    fast = Phone("f", Position(0, 0), PhoneConfig(cpu_speed=2.0))
    assert slow.compute_time(10.0) == 10.0
    assert fast.compute_time(10.0) == 5.0


def test_compute_time_negative_raises():
    with pytest.raises(ValueError):
        Phone("p", Position(0, 0)).compute_time(-1)


def test_crash():
    p = Phone("p", Position(0, 0))
    p.crash()
    assert not p.alive


def test_gps_reading_noisy_but_close():
    rng = RngRegistry(42)
    p = Phone("p", Position(100, 200), PhoneConfig(gps_noise_m=3.0))
    readings = [p.gps_reading(rng) for _ in range(100)]
    from repro.net import distance

    errors = [distance(r, p.position) for r in readings]
    assert max(errors) < 20  # ~5 sigma
    assert sum(errors) / len(errors) > 0.5  # actually noisy


def test_gps_deterministic_per_seed():
    p = Phone("p", Position(0, 0))
    a = p.gps_reading(RngRegistry(7))
    b = p.gps_reading(RngRegistry(7))
    assert a == b


def test_config_validation():
    with pytest.raises(ValueError):
        PhoneConfig(cpu_speed=0)
    with pytest.raises(ValueError):
        PhoneConfig(cores=0)
