"""Tests for the battery model."""

import pytest

from repro.device import Battery, BatteryConfig


def test_full_battery():
    b = Battery()
    assert b.fraction == 1.0
    assert not b.is_critical
    assert not b.is_dead


def test_partial_charge():
    b = Battery(charge_fraction=0.5)
    assert b.fraction == 0.5


def test_invalid_charge_fraction():
    with pytest.raises(ValueError):
        Battery(charge_fraction=1.5)


def test_drain_and_death():
    b = Battery(BatteryConfig(capacity_j=100.0))
    b.drain(60)
    assert b.fraction == pytest.approx(0.4)
    b.drain(1000)  # clamps at zero
    assert b.is_dead


def test_drain_negative_raises():
    with pytest.raises(ValueError):
        Battery().drain(-1)


def test_critical_threshold():
    b = Battery(BatteryConfig(capacity_j=100.0, critical_fraction=0.1))
    b.drain(89)
    assert not b.is_critical
    b.drain(2)
    assert b.is_critical


def test_component_drains():
    cfg = BatteryConfig(
        capacity_j=1000.0,
        idle_w=1.0,
        cpu_w=2.0,
        wifi_j_per_byte=0.01,
        cellular_j_per_byte=0.05,
    )
    b = Battery(cfg)
    b.drain_idle(10)       # 10 J
    b.drain_cpu(5)         # 10 J
    b.drain_wifi(100)      # 1 J
    b.drain_cellular(100)  # 5 J
    assert b.remaining_j == pytest.approx(1000 - 26)


def test_cellular_costs_more_than_wifi():
    cfg = BatteryConfig()
    assert cfg.cellular_j_per_byte > cfg.wifi_j_per_byte


def test_config_validation():
    with pytest.raises(ValueError):
        BatteryConfig(capacity_j=0)
    with pytest.raises(ValueError):
        BatteryConfig(critical_fraction=1.0)
