"""Tests for the failure injector and mobility models."""

import pytest

from repro.device import FailureInjector, ScriptedDepartures, StaticMobility
from repro.sim import Simulator, Trace


def test_crash_at_fires_simultaneously():
    sim = Simulator()
    inj = FailureInjector(sim)
    crashed = []
    inj.on_crash(lambda pid, reason: crashed.append((sim.now, pid, reason)))
    inj.crash_at(10.0, ["p1", "p2", "p3"], reason="burst")
    sim.run()
    assert crashed == [(10.0, "p1", "burst"), (10.0, "p2", "burst"), (10.0, "p3", "burst")]


def test_periodic_crashes():
    sim = Simulator()
    inj = FailureInjector(sim)
    crashed = []
    inj.on_crash(lambda pid, reason: crashed.append((sim.now, pid)))
    inj.periodic_crashes(300.0, ["a", "b"])
    sim.run()
    assert crashed == [(300.0, "a"), (600.0, "b")]


def test_injector_without_handler_raises():
    sim = Simulator()
    inj = FailureInjector(sim)
    inj.crash_at(1.0, ["p"])
    with pytest.raises(RuntimeError):
        sim.run()


def test_injector_traces():
    sim = Simulator()
    trace = Trace()
    inj = FailureInjector(sim, trace=trace)
    inj.on_crash(lambda pid, reason: None)
    inj.crash_at(1.0, ["p1", "p2"])
    sim.run()
    assert trace.value("failures.injected") == 2
    assert trace.count_of("failure_injected") == 2


def test_static_mobility_no_events():
    sim = Simulator()
    StaticMobility().start(sim, lambda pid: pytest.fail("no departures expected"))
    sim.run()


def test_scripted_departures_simultaneous():
    sim = Simulator()
    gone = []
    model = ScriptedDepartures.simultaneous(60.0, ["a", "b"])
    model.start(sim, lambda pid: gone.append((sim.now, pid)))
    sim.run()
    assert gone == [(60.0, "a"), (60.0, "b")]


def test_scripted_departures_periodic():
    sim = Simulator()
    gone = []
    model = ScriptedDepartures.periodic(300.0, ["a", "b", "c"])
    model.start(sim, lambda pid: gone.append((sim.now, pid)))
    sim.run()
    assert gone == [(300.0, "a"), (600.0, "b"), (900.0, "c")]
