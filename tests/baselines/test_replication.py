"""Tests for rep-2 active standby (the Flux/Borealis baseline)."""

import pytest

from repro.baselines.replication import ActiveStandby

from tests.baselines._harness import build_system, sink_seqs


def build(seed=5, idle=2, k=2):
    return build_system(lambda: ActiveStandby(k), idle=idle, seed=seed)


def test_k_must_be_at_least_two():
    with pytest.raises(ValueError):
        ActiveStandby(1)


def test_two_chains_run_on_disjoint_phones():
    sys_ = build()
    placement = sys_.regions[0].placement
    assert placement.replication_factor == 2
    for op in placement.operators():
        hosts = placement.nodes_for(op)
        assert len(hosts) == 2
        assert hosts[0] != hosts[1]


def test_faultfree_run_publishes_exactly_once():
    """Replica chains regenerate every result; sinks must deduplicate."""
    sys_ = build()
    sys_.run(300.0)
    seqs = sink_seqs(sys_)
    assert len(seqs) == len(set(seqs))
    assert len(seqs) >= 190  # nearly the whole 200-tuple workload


def test_replication_traffic_is_counted():
    """The duplicated dataflow is rep-2's Fig. 10b network cost."""
    sys_ = build()
    sys_.run(300.0)
    assert sys_.trace.value("ft.network_bytes") > 0
    # No input preservation at all under replication (Fig. 10a: rep-2 = 0).
    assert sys_.trace.value("ft.preserved_bytes") == 0


def test_single_failure_survived_by_other_chain():
    sys_ = build()
    hit = sys_.regions[0].placement.node_for("M1", 0)
    sys_.injector.crash_at(100.0, [hit])
    sys_.run(320.0)
    assert not sys_.regions[0].stopped
    scheme = sys_.schemes[0]
    assert 0 in scheme.dead_chains
    assert scheme.chain_active(1)
    seqs = sink_seqs(sys_)
    assert len(seqs) == len(set(seqs))
    assert len(seqs) >= 190  # the survivor chain keeps publishing


def test_second_chain_loss_is_fatal():
    """rep-2 'can tolerate only single-node failures'."""
    sys_ = build()
    placement = sys_.regions[0].placement
    chain0 = placement.node_for("M1", 0)
    chain1 = placement.node_for("M2", 1)
    sys_.injector.crash_at(100.0, [chain0])
    sys_.injector.crash_at(150.0, [chain1])
    sys_.run(400.0)
    assert sys_.regions[0].stopped


def test_simultaneous_two_chain_burst_is_fatal():
    """A burst hitting both chains at once exceeds rep-2's tolerance."""
    sys_ = build()
    placement = sys_.regions[0].placement
    sys_.injector.crash_at(
        100.0, [placement.node_for("M1", 0), placement.node_for("M1", 1)]
    )
    sys_.run(300.0)
    assert sys_.regions[0].stopped


def test_departure_treated_as_chain_loss():
    """Replication schemes cannot do state transfer; a departure just
    kills the chain that lost the phone."""
    sys_ = build()
    placement = sys_.regions[0].placement
    gone = placement.node_for("M2", 0)
    sys_.sim.call_at(100.0, lambda: sys_.apply_departure(gone))
    sys_.run(320.0)
    scheme = sys_.schemes[0]
    assert scheme.dead_chains  # one chain written off
    assert not sys_.regions[0].stopped  # but the other chain continues


def test_takeover_is_fast():
    """'One of its replicas takes over its work immediately.'"""
    sys_ = build()
    hit = sys_.regions[0].placement.node_for("M1", 0)
    sys_.injector.crash_at(100.0, [hit])
    sys_.run(320.0)
    rec = sys_.trace.last("recovery_finished")
    assert rec is not None
    assert rec.data["outcome"] == "took-over"
    assert rec.data["duration"] < 5.0
