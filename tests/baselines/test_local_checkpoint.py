"""Tests for the ``local`` checkpoint baseline (reboot + intact flash)."""

import pytest

from repro.baselines.local_checkpoint import LocalCheckpoint

from tests.baselines._harness import build_system, sink_seqs


def build(period=60.0, idle=2, seed=5):
    return build_system(lambda: LocalCheckpoint(period_s=period),
                        idle=idle, seed=seed)


def test_period_must_be_positive():
    with pytest.raises(ValueError):
        LocalCheckpoint(period_s=0.0)


def test_checkpoints_land_in_local_flash():
    sys_ = build()
    sys_.run(300.0)
    region = sys_.regions[0]
    m1_phone = region.phones[region.placement.node_for("M1", 0)]
    ckpt_keys = [k for k in m1_phone.storage.keys()
                 if isinstance(k, tuple) and k[0] == "ckpt"]
    assert ckpt_keys, "no checkpoint written to the node's own flash"


def test_old_versions_are_pruned():
    """Only the latest two checkpoint versions are retained in flash."""
    sys_ = build(period=30.0)
    sys_.run(400.0)
    region = sys_.regions[0]
    for nid in set(region.placement.used_nodes()):
        keys = [k for k in region.phones[nid].storage.keys()
                if isinstance(k, tuple) and k[0] == "ckpt"]
        assert len(keys) <= 2


def test_no_checkpoint_bytes_cross_the_network():
    """Fig. 10b: local = 0 (acks only, tiny)."""
    sys_ = build()
    sys_.run(300.0)
    net = sys_.trace.value("ft.network_bytes")
    preserved = sys_.trace.value("ft.preserved_bytes")
    assert preserved > 0  # input preservation is still paid...
    assert net < 0.01 * preserved  # ...but state never leaves the phone


def test_failure_recovers_by_reboot_and_restore():
    sys_ = build()
    hit = sys_.regions[0].placement.node_for("M1", 0)
    sys_.injector.crash_at(130.0, [hit])
    sys_.run(400.0)
    rec = sys_.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"
    assert not sys_.regions[0].stopped
    # The phone itself was revived (unrealistic on real phones, explicitly).
    assert sys_.regions[0].phones[hit].alive
    reboots = list(sys_.trace.select("phone_rebooted"))
    assert any(r.data["phone"] == hit for r in reboots)


def test_recovered_stream_is_exactly_once():
    sys_ = build()
    hit = sys_.regions[0].placement.node_for("M2", 0)
    sys_.injector.crash_at(130.0, [hit])
    sys_.run(420.0)
    seqs = sink_seqs(sys_)
    assert len(seqs) == len(set(seqs))
    assert len(seqs) == 200


def test_state_restored_from_own_flash():
    sys_ = build()
    region = sys_.regions[0]
    hit = region.placement.node_for("M1", 0)
    sys_.injector.crash_at(130.0, [hit])
    sys_.run(400.0)
    node = region.nodes[region.placement.node_for("M1", 0)]
    # Restored from MRC + replay: the counter covers ~all 200 tuples,
    # not just the post-crash tail (~70).
    assert node.ops["M1"].state.get("n", 0) > 150


def test_multi_node_failure_recovers_too():
    """local's fault model revives any number of phones (upper bound)."""
    sys_ = build()
    region = sys_.regions[0]
    hits = [region.placement.node_for("M1", 0), region.placement.node_for("M2", 0)]
    sys_.injector.crash_at(130.0, hits)
    sys_.run(420.0)
    rec = sys_.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"
    assert not region.stopped
