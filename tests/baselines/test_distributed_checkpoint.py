"""Tests for dist-n distributed checkpointing (Cooperative HA / SGuard)."""

import pytest

from repro.baselines.distributed_checkpoint import DistributedCheckpoint

from tests.baselines._harness import build_system, sink_seqs


def build(n=1, period=60.0, idle=4, seed=5):
    return build_system(lambda: DistributedCheckpoint(n, period_s=period),
                        idle=idle, seed=seed)


def test_n_must_be_positive():
    with pytest.raises(ValueError):
        DistributedCheckpoint(0)


def test_label_matches_figures():
    assert DistributedCheckpoint(3).name == "dist-3"


def test_ring_successors_are_the_next_n_nodes():
    sys_ = build(n=2)
    sys_.run(1.0)
    scheme = sys_.schemes[0]
    ring = sorted(set(sys_.regions[0].placement.used_nodes()))
    succ = scheme._ring_successors(ring[0])
    assert succ == [ring[1], ring[2]]
    # Wrap-around at the end of the ring.
    succ_last = scheme._ring_successors(ring[-1])
    assert succ_last == [ring[0], ring[1]]


def test_ring_successors_capped_by_ring_size():
    sys_ = build(n=10)  # more copies than other nodes exist
    sys_.run(1.0)
    scheme = sys_.schemes[0]
    ring = sorted(set(sys_.regions[0].placement.used_nodes()))
    succ = scheme._ring_successors(ring[0])
    assert len(succ) == len(ring) - 1  # never includes the node itself
    assert ring[0] not in succ


def test_copies_land_on_n_other_phones():
    sys_ = build(n=2)
    sys_.run(200.0)
    region = sys_.regions[0]
    scheme = sys_.schemes[0]
    m1 = region.placement.node_for("M1", 0)
    holders = scheme.holders.get(frozenset(region.nodes[m1].op_names), [])
    assert len(holders) == 2
    assert m1 not in holders
    for h in holders:
        keys = [k for k in region.phones[h].storage.keys()
                if isinstance(k, tuple) and k[0] == "ckpt" and k[1] == m1]
        assert keys, f"holder {h} has no copy of {m1}'s state"


def test_checkpoint_network_grows_with_n():
    """Fig. 10b: dist-n sends ~n unicast state copies per period."""
    volumes = {}
    for n in (1, 2, 3):
        sys_ = build(n=n)
        sys_.run(300.0)
        volumes[n] = sys_.trace.value("ft.network_bytes")
    assert volumes[1] < volumes[2] < volumes[3]
    assert volumes[2] / volumes[1] == pytest.approx(2.0, rel=0.25)
    assert volumes[3] / volumes[1] == pytest.approx(3.0, rel=0.25)


def test_recovers_up_to_n_failures():
    sys_ = build(n=2)
    region = sys_.regions[0]
    hits = [region.placement.node_for("M1", 0), region.placement.node_for("M2", 0)]
    sys_.injector.crash_at(130.0, hits)
    sys_.run(420.0)
    rec = sys_.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"
    assert not region.stopped
    seqs = sink_seqs(sys_)
    assert len(seqs) == len(set(seqs))


def test_failure_beyond_n_is_fatal():
    """dist-n 'can only handle up to n-node failures' (Fig. 9 cutoff)."""
    sys_ = build(n=1)
    region = sys_.regions[0]
    hits = [region.placement.node_for("M1", 0), region.placement.node_for("M2", 0)]
    sys_.injector.crash_at(130.0, hits)
    sys_.run(300.0)
    assert region.stopped


def test_failure_of_node_and_all_its_holders_is_fatal():
    """The state copy must survive somewhere; losing every holder of a
    stateful node's MRC makes it unrecoverable even if spares exist."""
    sys_ = build(n=1, idle=6)
    region = sys_.regions[0]
    scheme = sys_.schemes[0]
    sys_.run(130.0)  # let checkpoints complete
    m1 = region.placement.node_for("M1", 0)
    holders = scheme.holders.get(frozenset(region.nodes[m1].op_names), [])
    assert holders
    sys_.injector.crash_at(140.0, [m1] + holders[:1])
    sys_.run(200.0)
    assert region.stopped


def test_state_restored_via_surviving_holder():
    sys_ = build(n=2)
    region = sys_.regions[0]
    hit = region.placement.node_for("M1", 0)
    sys_.injector.crash_at(130.0, [hit])
    sys_.run(420.0)
    node = region.nodes[region.placement.node_for("M1", 0)]
    assert node.ops["M1"].state.get("n", 0) > 150


def test_replacement_comes_from_idle_pool():
    sys_ = build(n=1)
    region = sys_.regions[0]
    idle_before = list(region.idle_ids)
    hit = region.placement.node_for("M2", 0)
    sys_.injector.crash_at(130.0, [hit])
    sys_.run(300.0)
    new_host = region.placement.node_for("M2", 0)
    assert new_host != hit
    assert new_host in idle_before
    assert new_host not in region.idle_ids
