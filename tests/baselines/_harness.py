"""Shared miniature application for baseline-scheme tests.

A 4-node pipeline ``S -> M1 -> M2 -> K`` with counting (stateful)
operators, mirroring the harness used by the MobiStreams recovery tests
so scheme behaviours are directly comparable.
"""

from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import SinkOperator, SourceOperator, StatefulOperator
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.util import KB


class CountingOp(StatefulOperator):
    """Counts tuples; the count is checkpointable state."""

    def __init__(self, name, cost=0.05, state_size=128 * KB):
        super().__init__(name, state_size=state_size)
        self._cost = cost

    def process(self, tup, ctx):
        self.state["n"] = self.state.get("n", 0) + 1
        return [tup.derive({"n": self.state["n"], "v": tup.payload}, 2 * KB)]

    def cost(self, tup):
        return self._cost


class PipelineApp(AppSpec):
    """S -> M1 -> M2 -> K with ``n`` input tuples, one per ``period``."""

    name = "pipeline"

    def __init__(self, n=200, period=1.0, tuple_kb=4, state_kb=128):
        self.n = n
        self.period = period
        self.tuple_kb = tuple_kb
        self.state_kb = state_kb

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("S"))
        g.add_operator(CountingOp("M1", state_size=self.state_kb * KB))
        g.add_operator(CountingOp("M2", state_size=self.state_kb * KB))
        g.add_operator(SinkOperator("K"))
        g.chain("S", "M1", "M2", "K")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups([["S"], ["M1"], ["M2"], ["K"]], phone_ids)

    def build_workloads(self, rng, region_index):
        if region_index != 0:
            return {}

        def wl():
            for i in range(self.n):
                yield (self.period, i, self.tuple_kb * KB)

        return {"S": wl()}


def build_system(scheme_factory, idle=4, period=60.0, seed=5, phones=4, app=None):
    """One-region deployment of :class:`PipelineApp` under a scheme."""
    cfg = SystemConfig(
        n_regions=1, phones_per_region=phones, idle_per_region=idle,
        master_seed=seed, checkpoint_period_s=period,
    )
    return MobiStreamsSystem(cfg, app or PipelineApp(), scheme_factory)


def sink_seqs(system):
    """Sequence numbers of every published result."""
    return [r.data["seq"] for r in system.trace.select("sink_output")]
