"""Tests for the server-based DSPS comparator (Fig. 1c, Table I)."""

import pytest

from repro.baselines.server_dsps import ServerDSPS, ServerDSPSConfig
from repro.net.cellular import CellularConfig
from repro.util.units import Mbps

from tests.baselines._harness import PipelineApp


def build(uplink_mbps=0.3, n=100, period=1.0, tuple_kb=30, **cfg_kw):
    cellular = CellularConfig(
        uplink_phone_bps=(Mbps(uplink_mbps), Mbps(uplink_mbps)),
        uplink_capacity_bps=Mbps(max(1.5, uplink_mbps * 4)),
    )
    app = PipelineApp(n=n, period=period, tuple_kb=tuple_kb)
    return ServerDSPS(app, ServerDSPSConfig(cellular=cellular, master_seed=3, **cfg_kw))


def test_round_robin_placement_covers_all_operators():
    dsps = build()
    assert set(dsps.placement) == {"S", "M1", "M2", "K"}
    assert all(v.startswith("server") for v in dsps.placement.values())


def test_results_flow_end_to_end():
    dsps = build(uplink_mbps=2.0, tuple_kb=4)
    dsps.run(200.0)
    m = dsps.metrics(warmup_s=20.0)
    assert m.per_region["dc"].output_tuples > 0
    assert m.per_region["dc"].mean_latency_s > 0


def test_uplink_is_the_bottleneck():
    """Table I's core effect: throughput tracks the uplink, not the CPUs.

    30 KB tuples once per second need 240 kbps; a 0.05 Mbps uplink can
    carry only ~a fifth of that, so output rate collapses accordingly,
    while a fat uplink passes everything.  The measurement window is cut
    to the workload's active span so idle tail time does not dilute the
    fast deployment's rate.
    """
    slow = build(uplink_mbps=0.05, n=200)
    slow.run(210.0)
    fast = build(uplink_mbps=2.0, n=200)
    fast.run(210.0)
    t_slow = slow.metrics(warmup_s=10.0).per_region["dc"].throughput_tps
    t_fast = fast.metrics(warmup_s=10.0).per_region["dc"].throughput_tps
    assert t_fast > 3.0 * t_slow


def test_backlog_inflates_latency():
    """When sensing outpaces the uplink, queueing delay dominates."""
    slow = build(uplink_mbps=0.05, n=200)
    slow.run(400.0)
    fast = build(uplink_mbps=2.0, n=200)
    fast.run(400.0)
    l_slow = slow.metrics(warmup_s=50.0).per_region["dc"].mean_latency_s
    l_fast = fast.metrics(warmup_s=50.0).per_region["dc"].mean_latency_s
    assert l_slow > 5.0 * l_fast


def test_server_speed_barely_matters_when_uplink_bound():
    """'The fault tolerance function has no impact' — and neither do
    faster servers: the uplink gates everything."""
    normal = build(uplink_mbps=0.05, n=150)
    normal.run(300.0)
    beefy = build(uplink_mbps=0.05, n=150, server_speed=16.0)
    beefy.run(300.0)
    t_normal = normal.metrics(warmup_s=50.0).per_region["dc"].throughput_tps
    t_beefy = beefy.metrics(warmup_s=50.0).per_region["dc"].throughput_tps
    assert t_beefy == pytest.approx(t_normal, rel=0.15)
