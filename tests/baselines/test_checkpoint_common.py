"""Tests for the shared periodic-checkpoint machinery (local / dist-n)."""

import pytest

from repro.baselines.checkpoint_common import SENSOR, PeriodicCheckpointScheme
from repro.baselines.distributed_checkpoint import DistributedCheckpoint
from repro.baselines.local_checkpoint import LocalCheckpoint

from tests.baselines._harness import PipelineApp, build_system


def test_abstract_store_hook_must_be_overridden():
    class Incomplete(PeriodicCheckpointScheme):
        pass

    gen = Incomplete()._store_checkpoint(None, 1, {}, 1)
    with pytest.raises(NotImplementedError):
        next(gen)


def test_input_preservation_buffers_fill_and_trim():
    """Output tuples are retained until downstream checkpoints ack them."""
    sys_ = build_system(lambda: LocalCheckpoint(period_s=50.0))
    sys_.run(30.0)  # before the first checkpoint cycle completes
    scheme = sys_.schemes[0]
    retained_early = sum(len(b) for b in scheme.buffers.values())
    assert retained_early > 0
    sys_.run(270.0)  # several checkpoint cycles
    # Acks trimmed the buffers: retention is bounded by one period's worth
    # of tuples per edge, not the whole history.
    for edge, buf in scheme.buffers.items():
        assert len(buf) <= 60, f"edge {edge} retains {len(buf)} tuples"
    assert scheme.trimmed, "no ack-driven trimming happened"


def test_sensor_input_is_preserved_at_sources():
    sys_ = build_system(lambda: LocalCheckpoint(period_s=60.0))
    sys_.run(120.0)
    scheme = sys_.schemes[0]
    assert (SENSOR, "S") in scheme.buffers
    assert sys_.trace.value("ft.preserved_bytes") > 0


def test_mrc_records_per_node_state():
    sys_ = build_system(lambda: LocalCheckpoint(period_s=60.0))
    sys_.run(200.0)
    scheme = sys_.schemes[0]
    region = sys_.regions[0]
    for nid in set(region.placement.used_nodes()):
        key = frozenset(region.placement.ops_on(nid))
        assert key in scheme.mrc, f"no MRC entry for {nid}"
        version, _state, size, cuts = scheme.mrc[key]
        assert version >= 1
        assert size >= 1
        assert isinstance(cuts, dict)


def test_checkpoint_cadence_independent_of_save_duration():
    """Regression: one slow save must not starve other nodes' cadence.

    dist-3 unicasts a multi-MB state three times over slow WiFi; with a
    sequential driver the nodes after it missed their period slots, which
    made Fig. 10b non-monotonic in n.  Every node must still checkpoint
    about once per period.
    """
    app = PipelineApp(n=400, period=1.0, state_kb=2048)
    sys_ = build_system(lambda: DistributedCheckpoint(3, period_s=60.0), app=app)
    sys_.run(400.0)
    per_node = {}
    for rec in sys_.trace.select("node_checkpoint"):
        per_node[rec.data["node"]] = per_node.get(rec.data["node"], 0) + 1
    # 400 s / 60 s period ≈ 6 slots; every node lands at least 4 saves.
    assert per_node, "no checkpoints at all"
    assert min(per_node.values()) >= 4, per_node
    # And no node double-checkpoints concurrently (in-flight guard).
    assert max(per_node.values()) <= 7, per_node


def test_version_numbers_increase_monotonically():
    sys_ = build_system(lambda: LocalCheckpoint(period_s=40.0))
    sys_.run(300.0)
    versions = [r.data["version"] for r in sys_.trace.select("node_checkpoint")]
    assert versions == sorted(versions)
    assert len(set(versions)) == len(versions)


def test_checkpoints_pause_while_region_paused():
    sys_ = build_system(lambda: LocalCheckpoint(period_s=30.0))
    sys_.run(50.0)
    n_before = sum(1 for _ in sys_.trace.select("node_checkpoint"))
    sys_.regions[0].pause()
    sys_.run(120.0)
    n_paused = sum(1 for _ in sys_.trace.select("node_checkpoint"))
    assert n_paused == n_before  # no saves while paused
    sys_.regions[0].resume()
    sys_.run(120.0)
    assert sum(1 for _ in sys_.trace.select("node_checkpoint")) > n_paused
