"""Unit tests for the FaultToleranceScheme interface and NoFT baseline."""


from repro.baselines.base import NoFaultTolerance
from repro.baselines.interface import FaultToleranceScheme
from repro.core.controller import UNRECOVERABLE

from tests.baselines._harness import build_system, sink_seqs


def test_default_scheme_attributes():
    s = FaultToleranceScheme()
    assert s.replication_factor == 1
    assert s.wants_checkpoint_clock is False
    assert s.region is None


def test_default_failure_hook_is_unrecoverable():
    assert FaultToleranceScheme().on_failure(["p0"]) == UNRECOVERABLE


def test_default_departure_delegates_to_failure():
    """Prior schemes 'cannot handle node departures' (Section IV-B)."""

    class Probe(FaultToleranceScheme):
        def on_failure(self, failed_ids):
            self.seen = failed_ids
            return "custom"

    p = Probe()
    assert p.on_departure("p7") == "custom"
    assert p.seen == ["p7"]


def test_chain_active_defaults_to_true():
    s = FaultToleranceScheme()
    assert s.chain_active(0)
    assert s.chain_active(3)


def test_counters_feed_trace():
    sys_ = build_system(NoFaultTolerance)
    sys_.start()  # attach() binds the scheme to the region's trace
    scheme = sys_.schemes[0]
    scheme.count_preserved(100)
    scheme.count_preserved(50)
    scheme.count_ft_network(7)
    assert sys_.trace.value("ft.preserved_bytes") == 150
    assert sys_.trace.value("ft.network_bytes") == 7


# -- NoFaultTolerance -----------------------------------------------------------
def test_base_runs_with_zero_ft_overhead():
    sys_ = build_system(NoFaultTolerance)
    sys_.run(300.0)
    assert sys_.trace.value("ft.preserved_bytes") == 0
    assert sys_.trace.value("ft.network_bytes") == 0
    seqs = sink_seqs(sys_)
    assert seqs and len(seqs) == len(set(seqs))


def test_base_single_failure_is_fatal():
    sys_ = build_system(NoFaultTolerance)
    sys_.injector.crash_at(100.0, ["region0.p1"])
    sys_.run(300.0)
    assert sys_.regions[0].stopped


def test_base_never_recovers_even_with_idle_spares():
    sys_ = build_system(NoFaultTolerance, idle=8)
    sys_.injector.crash_at(100.0, ["region0.p2"])
    sys_.run(300.0)
    assert sys_.regions[0].stopped
    rec = sys_.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == UNRECOVERABLE
