"""Tests for the calendar-queue scheduler backend.

The heap backend is the determinism oracle: every property here compares
the calendar queue's pop order (or a full Simulator run over it) against
the heap on the same schedule.  Scenario-level equivalence lives in
``tests/scenarios/test_scheduler_equivalence.py``.
"""

import heapq
import random

import pytest

from repro.sim.calendar import CalendarQueue
from repro.sim.core import SCHEDULERS, Simulator


class _Live:
    """Stand-in event: compact() keeps items whose callbacks is not None
    and flags the dropped ones via ``_cancelled`` (the Timeout contract)."""

    __slots__ = ("callbacks", "_cancelled")

    def __init__(self, cancelled: bool = False) -> None:
        self.callbacks = None if cancelled else []
        self._cancelled = cancelled


def _items(rng, n, spread=100.0):
    out = []
    for seq in range(n):
        out.append((rng.random() * spread, rng.choice((0, 1)), seq, _Live()))
    return out


def test_pop_order_matches_heap_on_random_schedules():
    for seed in range(8):
        rng = random.Random(seed)
        items = _items(rng, 500)
        cq = CalendarQueue()
        heap = []
        for it in items:
            cq.push(it)
            heapq.heappush(heap, it)
        got = [cq.pop()[:3] for _ in range(len(items))]
        want = [heapq.heappop(heap)[:3] for _ in range(len(items))]
        assert got == want
        assert not cq


def test_interleaved_push_pop_matches_heap():
    """Monotone non-decreasing pushes interleaved with pops — the
    simulator's actual usage pattern — across grow and shrink resizes."""
    rng = random.Random(42)
    cq, heap = CalendarQueue(), []
    now = 0.0
    seq = 0
    got, want = [], []
    for _ in range(3000):
        if heap and rng.random() < 0.45:
            got.append(cq.pop()[:3])
            want.append(heapq.heappop(heap)[:3])
            now = want[-1][0]
        else:
            seq += 1
            it = (now + rng.expovariate(1.0), rng.choice((0, 1)), seq, _Live())
            cq.push(it)
            heapq.heappush(heap, it)
    while heap:
        got.append(cq.pop()[:3])
        want.append(heapq.heappop(heap)[:3])
    assert got == want


def test_simultaneous_events_keep_seq_order():
    cq = CalendarQueue()
    items = [(5.0, 1, seq, _Live()) for seq in range(20)]
    for it in reversed(items):
        cq.push(it)
    assert [cq.pop()[2] for _ in range(20)] == list(range(20))


def test_urgent_priority_preempts_normal_at_same_time():
    cq = CalendarQueue()
    cq.push((1.0, 1, 1, _Live()))
    cq.push((1.0, 0, 2, _Live()))
    assert cq.pop()[1] == 0
    assert cq.pop()[1] == 1


def test_sparse_tail_uses_the_year_scan_fallback():
    """Items far beyond the current year (epoch + nb windows) must still
    pop in order, via the global-min fallback scan."""
    cq = CalendarQueue(width=1.0)
    cq.push((0.5, 1, 1, _Live()))
    cq.push((1e6, 1, 2, _Live()))
    cq.push((2e6, 1, 3, _Live()))
    assert cq.pop()[2] == 1
    assert cq.pop()[2] == 2
    assert cq.pop()[2] == 3


def test_grow_and_shrink_resizes():
    cq = CalendarQueue()
    items = [(float(i) * 0.1, 1, i, _Live()) for i in range(200)]
    for it in items:
        cq.push(it)
    assert cq._nb > CalendarQueue.MIN_BUCKETS  # grew
    order = [cq.pop()[2] for _ in range(200)]
    assert order == list(range(200))
    assert cq._nb == CalendarQueue.MIN_BUCKETS  # shrank back


def test_peek_returns_min_without_removal():
    cq = CalendarQueue()
    assert cq.peek() is None
    cq.push((3.0, 1, 1, _Live()))
    cq.push((1.0, 1, 2, _Live()))
    assert cq.peek()[0] == 1.0
    assert len(cq) == 2


def test_compact_drops_cancelled_entries():
    cq = CalendarQueue()
    live = [(float(i), 1, i, _Live()) for i in range(0, 10, 2)]
    dead = [(float(i), 1, i, _Live(cancelled=True)) for i in range(1, 10, 2)]
    for it in live + dead:
        cq.push(it)
    cq.compact()
    assert len(cq) == len(live)
    # Dropped entries are flagged so Timeout.add_callback can re-push.
    from repro.sim.events import _DEAD_DROPPED

    assert all(it[3]._cancelled == _DEAD_DROPPED for it in dead)
    assert [cq.pop()[2] for _ in range(len(live))] == [0, 2, 4, 6, 8]


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        CalendarQueue().pop()


# -- Simulator integration ------------------------------------------------
def _mixed_workload(sim: Simulator, log):
    def ticker(name, n, dt):
        for i in range(n):
            yield sim.timeout(dt)
            log.append((sim.now, name, i))

    for k in range(5):
        sim.process(ticker(f"p{k}", 20, 0.1 + 0.03 * k))
    sim.call_in(0.5, lambda: log.append((sim.now, "cb", 0)))
    sim.call_at(1.25, lambda: log.append((sim.now, "cb", 1)))


def test_simulator_run_is_identical_across_backends():
    logs = {}
    for backend in SCHEDULERS:
        log = []
        sim = Simulator(scheduler=backend)
        _mixed_workload(sim, log)
        sim.run()
        logs[backend] = (log, sim.now, sim.events_processed)
    assert logs["heap"] == logs["calendar"]


def test_simulator_run_until_and_step_on_calendar():
    sim = Simulator(scheduler="calendar")
    hits = []
    sim.call_in(1.0, lambda: hits.append(1))
    sim.call_in(3.0, lambda: hits.append(2))
    sim.step()  # first callback
    assert hits == [1]
    sim.run(until=2.0)
    assert sim.now == 2.0
    sim.run()
    assert hits == [1, 2]


def test_scheduler_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "calendar")
    assert Simulator().scheduler == "calendar"
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "")
    assert Simulator().scheduler == "heap"
    monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
    assert Simulator().scheduler == "heap"
    # The explicit argument wins over the environment.
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "calendar")
    assert Simulator(scheduler="heap").scheduler == "heap"


def test_unknown_scheduler_raises():
    with pytest.raises(ValueError, match="unknown scheduler"):
        Simulator(scheduler="wheel")


def test_calendar_cancelled_timeouts_pop_as_noops():
    sim = Simulator(scheduler="calendar")
    fired = []
    keep = sim.timeout(1.0)
    keep.add_callback(lambda ev: fired.append("keep"))
    drop = sim.timeout(2.0)
    drop.add_callback(lambda ev: fired.append("drop"))
    drop.callbacks.clear()
    drop.cancel()
    assert sim.dead_entries == 1
    sim.run()
    assert fired == ["keep"]
    assert sim.dead_entries == 0
