"""Tests for lazy-deletion compaction of the simulator event queue.

Cancelled timeouts are left in place (removing from mid-heap is O(n))
and marked dead; once dead entries hit ``COMPACT_MIN_DEAD`` *and*
outnumber live ones, the queue is rebuilt without them.  These tests
drive the trigger directly and check both scheduler backends agree.
"""

import pytest

from repro.sim.core import SCHEDULERS, Simulator


@pytest.fixture(params=SCHEDULERS)
def sim(request):
    return Simulator(scheduler=request.param)


def _queued(sim):
    return sim._queued()


def test_cancellations_below_threshold_stay_lazy(sim):
    timeouts = [sim.timeout(float(i + 1)) for i in range(100)]
    for t in timeouts[: Simulator.COMPACT_MIN_DEAD - 1]:
        t.cancel()
    # 63 dead of 100: under the count floor, nothing compacts.
    assert sim.dead_entries == Simulator.COMPACT_MIN_DEAD - 1
    assert _queued(sim) == 100


def test_compaction_fires_once_dead_outnumber_live(sim):
    timeouts = [sim.timeout(float(i + 1)) for i in range(200)]
    # Cancel more than half, beyond the count floor.  The trigger is
    # checked per cancellation, so it fires mid-loop the moment both
    # conditions hold (dead >= 64 and dead*2 >= queued).
    for t in timeouts[:130]:
        t.cancel()
    # The trigger tripped at dead == 100 (100*2 >= 200 queued): those
    # entries were physically removed and the ledger reset; the last 30
    # cancellations sit lazily below the 64-count floor.
    assert sim.dead_entries == 30
    assert _queued(sim) == 100
    # Every surviving entry is live.
    sim.run()
    assert sim.dead_entries == 0
    assert _queued(sim) == 0


def test_compaction_preserves_event_order(sim):
    fired = []
    keep = []
    pending = []
    for i in range(200):
        t = sim.timeout(float(i + 1))
        if i % 3 == 0:
            t.add_callback(lambda ev, i=i: fired.append(i))
            keep.append(i)
        else:
            pending.append(t)
    for t in pending:
        t.cancel()  # compaction fires mid-loop once dead*2 >= queued
    assert sim.dead_entries < len(pending)  # at least one compaction ran
    sim.run()
    assert sim.dead_entries == 0
    assert fired == keep


def test_call_every_cancel_leaves_nothing_queued(sim):
    hits = []
    cancel = sim.call_every(1.0, hits.append, 1)
    sim.run(until=3.5)
    assert hits == [1, 1, 1]
    cancel()
    # The in-flight Callback was cancelled; compaction thresholds aside,
    # draining the queue runs nothing further.
    sim.run()
    assert hits == [1, 1, 1]
    assert _queued(sim) == 0
    assert sim.dead_entries == 0


def test_revival_decrements_dead_ledger(sim):
    t = sim.timeout(5.0)
    t.cancel()
    assert sim.dead_entries == 1
    fired = []
    t.add_callback(fired.append)  # revive: fires at its original deadline
    assert sim.dead_entries == 0
    sim.run()
    assert fired == [t]
    assert sim.now == 5.0


def test_popped_dead_entries_settle_ledger(sim):
    """Cancelled entries that never trip compaction pop as no-ops and
    settle ``dead_entries`` back to zero."""
    ts = [sim.timeout(float(i + 1)) for i in range(10)]
    for t in ts[:5]:
        t.cancel()
    assert sim.dead_entries == 5
    sim.run()
    assert sim.dead_entries == 0
    assert sim.events_processed == 10  # dead pops still count


def test_revival_after_compaction_fires_at_deadline(sim):
    """A timeout whose lazily-deleted entry was dropped by a wholesale
    compaction must re-enter the queue on revival, not wait on an entry
    that no longer exists."""
    t = sim.timeout(10.0)
    t.cancel()
    churn = [sim.timeout(50.0) for _ in range(2 * Simulator.COMPACT_MIN_DEAD)]
    for other in churn:
        other.cancel()  # trips compaction, dropping t's queue entry
    assert sim.dead_entries < 2 * Simulator.COMPACT_MIN_DEAD
    fired = []
    t.add_callback(fired.append)  # revive: re-pushes at the deadline
    sim.run()
    assert fired == [t]
    assert t.deadline == 10.0
    assert sim.dead_entries == 0


def test_anyof_loser_yield_after_compaction(sim):
    """The reviewer's repro: an AnyOf loser is auto-cancelled; after a
    compaction drops its entry, ``yield``-ing it must still resume the
    process at the original deadline (it used to hang forever)."""
    results = []

    def proc(sim):
        fast = sim.timeout(1.0)
        slow = sim.timeout(10.0)
        yield sim.any_of([fast, slow])  # slow loses and is auto-cancelled
        churn = [sim.timeout(50.0) for _ in range(2 * Simulator.COMPACT_MIN_DEAD)]
        for other in churn:
            other.cancel()
        yield slow
        results.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert results == [10.0]
    assert sim.dead_entries == 0


def test_popped_dead_entry_add_callback_fires_immediately(sim):
    """Once a cancelled entry has popped at its deadline, a later
    add_callback behaves like on any expired timeout: it runs the
    callback now and must not decrement the dead ledger again."""
    t = sim.timeout(1.0)
    t.cancel()
    sim.run()
    assert sim.dead_entries == 0
    fired = []
    t.add_callback(fired.append)
    assert fired == [t]
    assert sim.dead_entries == 0


def test_dropped_entry_past_deadline_fires_immediately(sim):
    """A compaction-dropped timeout revived after its deadline has
    passed runs the callback immediately instead of scheduling into the
    past."""
    t = sim.timeout(1.0)
    t.cancel()
    churn = [sim.timeout(2.0) for _ in range(2 * Simulator.COMPACT_MIN_DEAD)]
    for other in churn:
        other.cancel()  # compaction drops t's entry
    sim.timeout(3.0)  # live event carrying the clock past t's deadline
    sim.run()
    assert sim.now == 3.0
    fired = []
    t.add_callback(fired.append)
    assert fired == [t]
    assert sim.dead_entries == 0
    assert sim.now == 3.0  # clock never moved backwards


def test_compaction_keeps_run_loop_alive():
    """Heap compaction rebuilds the queue list in place so the inlined
    run loop's local alias keeps draining the same list."""
    sim = Simulator()
    fired = []

    def proc(sim):
        ts = [sim.timeout(float(i + 10)) for i in range(200)]
        yield sim.timeout(1.0)
        for t in ts[:150]:
            t.cancel()  # compacts mid-run, inside the run loop
        yield sim.timeout(100.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert fired == [101.0]
    assert sim.dead_entries == 0
