"""Tests for the named RNG registry."""

import numpy as np

from repro.sim import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("loss")
    b = RngRegistry(42).stream("loss")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_independent():
    reg = RngRegistry(42)
    a = reg.stream("loss").random(10)
    b = reg.stream("workload").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("loss").random(10)
    b = RngRegistry(2).stream("loss").random(10)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")


def test_creation_order_does_not_matter():
    r1 = RngRegistry(7)
    r1.stream("a")
    v1 = r1.stream("b").random(5)
    r2 = RngRegistry(7)
    v2 = r2.stream("b").random(5)  # created first this time
    assert np.array_equal(v1, v2)


def test_fork_produces_independent_registry():
    base = RngRegistry(42)
    f1 = base.fork(1)
    f2 = base.fork(2)
    assert not np.array_equal(f1.stream("x").random(5), f2.stream("x").random(5))
    # forking is deterministic
    g1 = RngRegistry(42).fork(1)
    assert np.array_equal(
        RngRegistry(42).fork(1).stream("x").random(5), g1.stream("x").random(5)
    )


def test_names_listing():
    reg = RngRegistry(0)
    reg.stream("b")
    reg.stream("a")
    assert reg.names() == ["a", "b"]


def test_master_seed_type_check():
    import pytest

    with pytest.raises(TypeError):
        RngRegistry("not-an-int")
