"""Tests for the simulator event loop and clock."""

import pytest

from repro.sim import Simulator, StopSimulation
from repro.sim.core import EmptySchedule


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.call_in(10.0, lambda: fired.append(10))
    sim.call_in(50.0, lambda: fired.append(50))
    sim.run(until=20.0)
    assert fired == [10]
    assert sim.now == 20.0


def test_run_until_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_in(3.0, lambda: order.append("c"))
    sim.call_in(1.0, lambda: order.append("a"))
    sim.call_in(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.call_in(1.0, lambda l=label: order.append(l))
    sim.run()
    assert order == list("abcde")


def test_call_at_absolute_time():
    sim = Simulator()
    times = []
    sim.call_at(7.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [7.5]


def test_call_at_past_raises():
    sim = Simulator(start_time=5.0)
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(3.0)
    sim.timeout(1.0)
    assert sim.peek() == 1.0


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "result"

    p = sim.process(proc(sim))
    assert sim.run_until_event(p) == "result"
    assert sim.now == 2.0


def test_run_until_event_raises_on_failure():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    p = sim.process(proc(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run_until_event(p)


def test_unhandled_failed_event_raises_from_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("lost"))
    with pytest.raises(RuntimeError, match="lost"):
        sim.run()


def test_defused_failed_event_does_not_raise():
    sim = Simulator()
    ev = sim.event()
    ev.defuse()
    ev.fail(RuntimeError("lost"))
    sim.run()  # no exception


def test_stop_simulation_exits_run():
    sim = Simulator()

    def stopper(_e):
        raise StopSimulation()

    ev = sim.timeout(1.0)
    ev.add_callback(stopper)
    sim.call_in(5.0, lambda: pytest.fail("should not run"))
    sim.run()
    assert sim.now == 1.0


def test_call_in_passes_args_without_closure():
    sim = Simulator()
    seen = []
    sim.call_in(1.0, seen.append, "payload")
    sim.call_in(2.0, lambda: seen.append("thunk"))
    sim.run()
    assert seen == ["payload", "thunk"]


def test_call_at_passes_args():
    sim = Simulator()
    seen = []
    sim.call_at(5.0, seen.append, 42)
    sim.run()
    assert seen == [42] and sim.now == 5.0


def test_events_processed_counts_run_and_step():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.step()
    assert sim.events_processed == 1
    sim.run()
    assert sim.events_processed == 2


def test_run_inlined_loop_matches_step_semantics():
    """run() inlines the event loop; a failing un-defused event must
    still surface, exactly as through step()."""
    sim = Simulator()
    ev = sim.event()
    sim.call_in(1.0, lambda: ev.fail(RuntimeError("lost")))
    with pytest.raises(RuntimeError, match="lost"):
        sim.run()
