"""Tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, Store
from repro.sim.resources import FilterStore


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_release_grants_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, uid, hold):
        req = res.request()
        yield req
        order.append(uid)
        yield sim.timeout(hold)
        res.release(req)

    for i in range(4):
        sim.process(user(sim, i, 1.0))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_resource_release_waiting_request_cancels_it():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # cancel while queued
    res.release(r1)
    assert not r2.triggered  # was cancelled, never granted
    assert res.count == 0


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_context_manager():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim):
        with res.request() as req:
            yield req
            yield sim.timeout(1.0)
        return res.count

    p = sim.process(user(sim))
    sim.run()
    assert p.value == 0


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")

    def getter(sim):
        item = yield store.get()
        return item

    p = sim.process(getter(sim))
    sim.run()
    assert p.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def getter(sim):
        item = yield store.get()
        times.append((sim.now, item))

    sim.process(getter(sim))
    sim.call_in(3.0, lambda: store.put("late"))
    sim.run()
    assert times == [(3.0, "late")]


def test_store_fifo_item_order():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    got = []

    def getter(sim):
        for _ in range(5):
            got.append((yield store.get()))

    sim.process(getter(sim))
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_capacity_overflow_raises():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put(1)
    with pytest.raises(OverflowError):
        store.put(2)


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("a")
    assert store.try_get() == "a"
    assert store.try_get() is None


def test_store_clear():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.clear() == 2
    assert len(store) == 0


def test_store_cancel_getters():
    sim = Simulator()
    store = Store(sim)
    caught = []

    def getter(sim):
        try:
            yield store.get()
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(getter(sim))
    sim.call_in(1.0, lambda: store.cancel_getters(RuntimeError("node died")))
    sim.run()
    assert caught == ["node died"]


def test_filter_store_predicate():
    sim = Simulator()
    store = FilterStore(sim)
    store.put({"kind": "data", "v": 1})
    store.put({"kind": "token", "v": 2})

    def getter(sim):
        item = yield store.get(lambda it: it["kind"] == "token")
        return item["v"]

    p = sim.process(getter(sim))
    sim.run()
    assert p.value == 2
    assert len(store) == 1  # the data item remains


def test_filter_store_waits_for_match():
    sim = Simulator()
    store = FilterStore(sim)
    store.put("no-match")
    got = []

    def getter(sim):
        item = yield store.get(lambda it: it == "match")
        got.append((sim.now, item))

    sim.process(getter(sim))
    sim.call_in(2.0, lambda: store.put("match"))
    sim.run()
    assert got == [(2.0, "match")]
