"""Tests for the trace/counter monitor."""

import pytest

from repro.sim import Trace


def test_record_and_select():
    tr = Trace()
    tr.record(1.0, "tuple_done", latency=0.5)
    tr.record(2.0, "tuple_done", latency=0.7)
    tr.record(3.0, "failure", node="B")
    recs = list(tr.select("tuple_done"))
    assert len(recs) == 2
    assert recs[0].data["latency"] == 0.5


def test_select_time_window():
    tr = Trace()
    for t in range(10):
        tr.record(float(t), "tick")
    assert tr.count_of("tick", since=3.0, until=7.0) == 4


def test_series_extraction():
    tr = Trace()
    tr.record(1.0, "x", v=10)
    tr.record(2.0, "x", other=5)
    tr.record(3.0, "x", v=30)
    assert tr.series("x", "v") == [(1.0, 10), (3.0, 30)]


def test_last():
    tr = Trace()
    assert tr.last("x") is None
    tr.record(1.0, "x", v=1)
    tr.record(2.0, "x", v=2)
    assert tr.last("x").data["v"] == 2


def test_counters():
    tr = Trace()
    tr.count("bytes", 100)
    tr.count("bytes", 50)
    assert tr.value("bytes") == 150
    assert tr.value("missing") == 0.0
    assert tr.value("missing", default=-1) == -1


def test_counter_negative_raises():
    tr = Trace()
    with pytest.raises(ValueError):
        tr.count("x", -1)


def test_disabled_trace_skips_records_keeps_counters():
    tr = Trace(enabled=False)
    tr.record(1.0, "x")
    tr.count("c", 5)
    assert tr.records == []
    assert tr.value("c") == 5


def test_clear():
    tr = Trace()
    tr.record(1.0, "x")
    tr.count("c")
    tr.clear()
    assert tr.records == []
    assert tr.value("c") == 0.0
