"""Tests for the trace/counter monitor."""

import pytest

from repro.sim import Trace
from repro.sim.monitor import TraceRecord


def test_record_and_select():
    tr = Trace()
    tr.record(1.0, "tuple_done", latency=0.5)
    tr.record(2.0, "tuple_done", latency=0.7)
    tr.record(3.0, "failure", node="B")
    recs = list(tr.select("tuple_done"))
    assert len(recs) == 2
    assert recs[0].data["latency"] == 0.5


def test_select_time_window():
    tr = Trace()
    for t in range(10):
        tr.record(float(t), "tick")
    assert tr.count_of("tick", since=3.0, until=7.0) == 4


def test_series_extraction():
    tr = Trace()
    tr.record(1.0, "x", v=10)
    tr.record(2.0, "x", other=5)
    tr.record(3.0, "x", v=30)
    assert tr.series("x", "v") == [(1.0, 10), (3.0, 30)]


def test_last():
    tr = Trace()
    assert tr.last("x") is None
    tr.record(1.0, "x", v=1)
    tr.record(2.0, "x", v=2)
    assert tr.last("x").data["v"] == 2


def test_counters():
    tr = Trace()
    tr.count("bytes", 100)
    tr.count("bytes", 50)
    assert tr.value("bytes") == 150
    assert tr.value("missing") == 0.0
    assert tr.value("missing", default=-1) == -1


def test_counter_negative_raises():
    tr = Trace()
    with pytest.raises(ValueError):
        tr.count("x", -1)


def test_disabled_trace_skips_records_keeps_counters():
    tr = Trace(enabled=False)
    tr.record(1.0, "x")
    tr.count("c", 5)
    assert tr.records == []
    assert tr.value("c") == 5


def test_clear():
    tr = Trace()
    tr.record(1.0, "x")
    tr.count("c")
    tr.clear()
    assert tr.records == []
    assert tr.value("c") == 0.0


def test_select_uses_category_index_with_time_window():
    tr = Trace()
    for i in range(100):
        tr.record(float(i), "a" if i % 2 == 0 else "b", i=i)
    got = [r.data["i"] for r in tr.select("a", since=10.0, until=20.0)]
    assert got == [10, 12, 14, 16, 18]
    assert tr.count_of("a", since=10.0, until=20.0) == 5
    assert tr.count_of("b") == 50
    assert tr.count_of("missing") == 0


def test_out_of_order_records_still_select_correctly():
    """Virtual time is monotone in practice, but the index must fall
    back to a scan if a caller ever records out of order."""
    tr = Trace()
    tr.record(5.0, "x", i=0)
    tr.record(2.0, "x", i=1)  # out of order
    tr.record(7.0, "x", i=2)
    assert [r.data["i"] for r in tr.select("x", since=3.0)] == [0, 2]
    assert tr.count_of("x", since=3.0) == 2
    assert tr.last("x").data["i"] == 2


def test_trace_record_slots_and_equality():
    r1 = TraceRecord(1.0, "x", {"k": 1})
    r2 = TraceRecord(1.0, "x", {"k": 1})
    assert r1 == r2
    assert not hasattr(r1, "__dict__")
    with pytest.raises(AttributeError):
        r1.extra = 1


def test_last_follows_insertion_order():
    tr = Trace()
    tr.record(1.0, "x", i=0)
    tr.record(1.0, "x", i=1)
    assert tr.last("x").data["i"] == 1
    assert tr.last("missing") is None


def test_clear_keeps_preresolved_counter_handles_live():
    """Regression: hot paths cache Counter handles; clear() must reset
    them in place, not orphan them from the registry."""
    tr = Trace()
    handle = tr.counter("net.wifi.bytes")
    handle.add(100)
    tr.clear()
    assert tr.value("net.wifi.bytes") == 0.0
    handle.add(7)
    assert tr.value("net.wifi.bytes") == 7.0
    assert tr.counter("net.wifi.bytes") is handle


def test_count_of_rejects_unknown_window_kwargs():
    tr = Trace()
    tr.record(1.0, "x")
    with pytest.raises(TypeError, match="sinse"):
        tr.count_of("x", sinse=0.5)


def test_out_of_order_flip_warns_once_per_category(caplog):
    """The first out-of-order record in a category logs one warning
    (windowed queries on it degrade to linear scans); later ones and
    other still-sorted categories stay quiet."""
    tr = Trace()
    tr.record(5.0, "x")
    tr.record(6.0, "y")
    with caplog.at_level("WARNING", logger="repro"):
        tr.record(2.0, "x", i=1)  # flips x to unsorted: warns
        tr.record(1.0, "x", i=2)  # already unsorted: silent
        tr.record(7.0, "y")       # y still sorted: silent
    warnings = [r for r in caplog.records if "out-of-order" in r.message]
    assert len(warnings) == 1
    assert "'x'" in warnings[0].message
    assert "linear scan" in warnings[0].message


def test_linear_scan_window_and_count_match_sorted_path():
    """The unsorted fallback must answer windowed select/count exactly
    like the bisect path does over the same (sorted) record set."""
    times = [0.0, 1.5, 3.0, 4.5, 6.0, 7.5, 9.0]
    sorted_tr, scan_tr = Trace(), Trace()
    for t in times:
        sorted_tr.record(t, "x", t=t)
    # Same records, but one early-time insertion at the end flips the
    # category's index to linear-scan mode.
    for t in times[1:]:
        scan_tr.record(t, "x", t=t)
    scan_tr.record(times[0], "x", t=times[0])
    for since, until in ((None, None), (1.5, 6.0), (2.0, 2.1), (9.0, None),
                        (None, 0.0), (10.0, None)):
        kwargs = {}
        if since is not None:
            kwargs["since"] = since
        if until is not None:
            kwargs["until"] = until
        want = sorted({r.data["t"] for r in sorted_tr.select("x", **kwargs)})
        got = sorted({r.data["t"] for r in scan_tr.select("x", **kwargs)})
        assert got == want, (since, until)
        assert scan_tr.count_of("x", **kwargs) == \
            sorted_tr.count_of("x", **kwargs), (since, until)


def test_observer_sees_every_record_in_order():
    tr = Trace()
    seen = []
    tr.add_observer(seen.append)
    tr.record(1.0, "a", i=0)
    tr.record(2.0, "b", i=1)
    assert [(r.time, r.category) for r in seen] == [(1.0, "a"), (2.0, "b")]


def test_observer_remove_and_duplicate_registration():
    tr = Trace()
    seen = []
    tr.add_observer(seen.append)
    with pytest.raises(ValueError):
        tr.add_observer(seen.append)
    tr.remove_observer(seen.append)
    tr.remove_observer(seen.append)  # unknown: ignored
    tr.record(1.0, "a")
    assert seen == []


def test_observer_skipped_when_trace_disabled():
    tr = Trace(enabled=False)
    seen = []
    tr.add_observer(seen.append)
    tr.record(1.0, "a")
    assert seen == []


def test_scoped_observer_sees_only_its_categories():
    tr = Trace()
    scoped, everything = [], []
    tr.add_observer(scoped.append, categories=["a", "c"])
    tr.add_observer(everything.append)
    tr.record(1.0, "a")
    tr.record(2.0, "b")
    tr.record(3.0, "c")
    tr.record(4.0, "a")
    assert [r.category for r in scoped] == ["a", "c", "a"]
    assert [r.category for r in everything] == ["a", "b", "c", "a"]


def test_scoped_observer_removal_cleans_every_category():
    tr = Trace()
    seen = []
    tr.add_observer(seen.append, categories=["a", "b"])
    with pytest.raises(ValueError):  # same fn, even with new categories
        tr.add_observer(seen.append, categories=["c"])
    tr.remove_observer(seen.append)
    tr.record(1.0, "a")
    tr.record(2.0, "b")
    assert seen == []
    assert tr._scoped == {}
    # Re-registration after removal works.
    tr.add_observer(seen.append, categories=["b"])
    tr.record(3.0, "b")
    assert [r.time for r in seen] == [3.0]
