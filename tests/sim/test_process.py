"""Tests for generator processes and interrupts."""

import pytest

from repro.sim import Interrupt, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return 99

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 99
    assert not p.is_alive
    assert sim.now == 3.0


def test_process_body_does_not_run_in_constructor():
    sim = Simulator()
    ran = []

    def proc(sim):
        ran.append(sim.now)
        yield sim.timeout(0)

    sim.process(proc(sim))
    assert ran == []  # only runs once the loop starts
    sim.run()
    assert ran == [0.0]


def test_process_waits_on_another_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return ("parent", result, sim.now)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == ("parent", "child-result", 2.0)


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except KeyError:
            return "caught"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "caught"


def test_unwaited_process_failure_raises_in_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(proc(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    p = sim.process(victim(sim))
    sim.call_in(5.0, lambda: p.interrupt("battery-dead"))
    sim.run()
    assert log == [(5.0, "battery-dead")]


def test_interrupt_detaches_from_pending_event():
    sim = Simulator()
    resumed = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        resumed.append(sim.now)

    p = sim.process(victim(sim))
    sim.call_in(5.0, lambda: p.interrupt())
    sim.run()
    # resumed at 5 + 1, not woken again at t=100
    assert resumed == [6.0]
    assert sim.now == 100.0  # the original timeout still fires harmlessly


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.process(proc(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_uncaught_interrupt_fails_process():
    sim = Simulator()

    def victim(sim):
        yield sim.timeout(100.0)

    def killer(sim, victim_proc):
        yield sim.timeout(1.0)
        victim_proc.interrupt("kill")
        try:
            yield victim_proc
        except Interrupt as i:
            return f"victim died: {i.cause}"

    v = sim.process(victim(sim))
    k = sim.process(killer(sim, v))
    sim.run()
    assert k.value == "victim died: kill"


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    p = sim.process(bad(sim))
    p.defuse()
    sim.run()
    assert p.ok is False
    assert "not an Event" in str(p.value)


def test_process_name():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(0)

    p = sim.process(worker(sim), name="node-A")
    assert p.name == "node-A"
    assert "node-A" in repr(p)


def test_many_sequential_processes_deterministic():
    def run_once():
        sim = Simulator()
        order = []

        def worker(sim, wid, delay):
            yield sim.timeout(delay)
            order.append(wid)

        for i in range(50):
            sim.process(worker(sim, i, (i * 7) % 13))
        sim.run()
        return order

    assert run_once() == run_once()
