"""Tests for event primitives: trigger semantics, conditions."""

import pytest

from repro.sim import Simulator
from repro.sim.events import AllOf, AnyOf


def test_event_starts_pending():
    sim = Simulator()
    ev = sim.event()
    assert not ev.triggered
    assert not ev.processed
    assert ev.ok is None


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(AttributeError):
        _ = ev.value


def test_succeed_sets_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    assert ev.triggered
    assert ev.ok is True
    assert ev.value == 42


def test_double_succeed_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_fail_then_succeed_raises():
    sim = Simulator()
    ev = sim.event()
    ev.defuse()
    ev.fail(ValueError("x"))
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callback_invoked_with_event():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.add_callback(seen.append)
    ev.succeed("v")
    sim.run()
    assert seen == [ev]
    assert ev.processed


def test_callback_added_after_processing_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    sim.run()
    seen = []
    ev.add_callback(seen.append)
    assert seen == [ev]


def test_timeout_value():
    sim = Simulator()

    def proc(sim):
        got = yield sim.timeout(1.0, value="payload")
        return got

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "payload"


def test_negative_timeout_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_all_of_waits_for_all():
    sim = Simulator()
    t1 = sim.timeout(1.0)
    t2 = sim.timeout(3.0)
    done = []

    def proc(sim):
        yield AllOf(sim, [t1, t2])
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done == [3.0]


def test_any_of_fires_on_first():
    sim = Simulator()
    t1 = sim.timeout(1.0)
    t2 = sim.timeout(3.0)
    done = []

    def proc(sim):
        result = yield AnyOf(sim, [t1, t2])
        done.append((sim.now, t1 in result))

    sim.process(proc(sim))
    sim.run()
    assert done == [(1.0, True)]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    done = []

    def proc(sim):
        yield AllOf(sim, [])
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done == [0.0]


def test_condition_value_mapping():
    sim = Simulator()
    t1 = sim.timeout(1.0, value="a")
    t2 = sim.timeout(2.0, value="b")
    result = {}

    def proc(sim):
        cv = yield AllOf(sim, [t1, t2])
        result.update(cv.todict())

    sim.process(proc(sim))
    sim.run()
    assert result == {t1: "a", t2: "b"}


def test_condition_fails_when_subevent_fails():
    sim = Simulator()
    ev = sim.event()
    t = sim.timeout(5.0)
    caught = []

    def proc(sim):
        try:
            yield AllOf(sim, [ev, t])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(proc(sim))
    sim.call_in(1.0, lambda: ev.fail(ValueError("sub failed")))
    sim.run()
    assert caught == ["sub failed"]


def test_cross_simulator_event_rejected_by_condition():
    sim1 = Simulator()
    sim2 = Simulator()
    t1 = sim1.timeout(1.0)
    t2 = sim2.timeout(1.0)
    with pytest.raises(ValueError):
        AllOf(sim1, [t1, t2])


def test_event_trigger_copies_state():
    sim = Simulator()
    src = sim.event()
    dst = sim.event()
    src.succeed(7)
    dst.trigger(src)
    assert dst.value == 7


def test_event_trigger_from_pending_source_raises():
    """Regression: trigger() on a still-pending source used to fall into
    fail(PENDING) with the sentinel object; it must raise clearly."""
    sim = Simulator()
    src = sim.event()
    dst = sim.event()
    with pytest.raises(RuntimeError, match="still pending"):
        dst.trigger(src)
    # Neither event was corrupted by the rejected call.
    assert not dst.triggered
    assert not src.triggered
    src.succeed(1)
    dst.trigger(src)
    assert dst.value == 1


def test_event_trigger_copies_failure():
    sim = Simulator()
    src = sim.event()
    dst = sim.event()
    boom = RuntimeError("boom")
    src.fail(boom)
    src.defuse()
    dst.trigger(src)
    dst.defuse()
    assert dst.ok is False
    assert dst._value is boom
    sim.run()
