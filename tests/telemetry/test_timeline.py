"""Tests for the timeline artifact model and its strict loaders."""

import json

import pytest

from repro.telemetry import (
    TIMELINE_SCHEMA_VERSION,
    NetSample,
    OperatorSample,
    RegionSample,
    TelemetrySnapshot,
    Timeline,
    dumps_timeline,
    load_timeline,
)


def _snapshot(t: float, outputs: int = 10) -> TelemetrySnapshot:
    return TelemetrySnapshot(
        time=t,
        events_processed=int(t * 100),
        regions={"region0": RegionSample(
            throughput_tps=1.5, latency_p50_s=0.4, latency_p95_s=0.9,
            latency_mean_s=0.5, sink_outputs=outputs, source_inputs=outputs * 2,
            checkpoints_started=1, checkpoints_committed=1,
            recoveries=0, crashes=0,
        )},
        operators={"region0.S": OperatorSample(
            tuples=outputs * 3, rate_tps=3.0, queue_depth=2)},
        net=NetSample(wifi_bytes_per_s=1024.0, cellular_bytes_per_s=0.0,
                      ft_bytes_per_s=256.0),
    )


def _timeline(n: int = 3) -> Timeline:
    return Timeline(
        scenario="test", app="bcp", scheme="ms-8", seed=3, interval_s=10.0,
        snapshots=tuple(_snapshot(10.0 * (i + 1), outputs=10 * (i + 1))
                        for i in range(n)),
    )


def test_round_trip():
    tl = _timeline()
    assert Timeline.from_dict(tl.to_dict()) == tl


def test_len_iter_final():
    tl = _timeline(4)
    assert len(tl) == 4
    assert [s.time for s in tl] == [10.0, 20.0, 30.0, 40.0]
    assert tl.final is tl.snapshots[-1]
    assert Timeline("s", "a", "x", 0, 1.0).final is None


def test_names():
    tl = _timeline()
    assert tl.region_names() == ["region0"]
    assert tl.operator_names() == ["region0.S"]
    assert Timeline("s", "a", "x", 0, 1.0).region_names() == []


def test_series_region_operator_and_net():
    tl = _timeline(3)
    assert tl.series("sink_outputs", region="region0") == [
        (10.0, 10), (20.0, 20), (30.0, 30)]
    assert tl.series("queue_depth", operator="region0.S") == [
        (10.0, 2), (20.0, 2), (30.0, 2)]
    assert tl.series("wifi_bytes_per_s")[0] == (10.0, 1024.0)
    assert tl.series("events_processed")[0] == (10.0, 1000)


def test_series_errors():
    tl = _timeline()
    with pytest.raises(ValueError, match="not both"):
        tl.series("x", region="region0", operator="region0.S")
    with pytest.raises(ValueError, match="unknown region"):
        tl.series("sink_outputs", region="nope")
    with pytest.raises(ValueError, match="unknown operator"):
        tl.series("tuples", operator="nope")


def test_from_dict_rejects_unknown_keys():
    d = _timeline().to_dict()
    d["surprise"] = 1
    with pytest.raises(ValueError, match="unknown keys"):
        Timeline.from_dict(d)


def test_from_dict_rejects_missing_keys():
    d = _timeline().to_dict()
    del d["interval_s"]
    with pytest.raises(ValueError, match="missing keys"):
        Timeline.from_dict(d)


def test_from_dict_rejects_wrong_version():
    d = _timeline().to_dict()
    d["schema_version"] = TIMELINE_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema_version"):
        Timeline.from_dict(d)


def test_from_dict_rejects_wrong_kind():
    d = _timeline().to_dict()
    d["kind"] = "sweep-artifact"
    with pytest.raises(ValueError, match="not a timeline"):
        Timeline.from_dict(d)


def test_snapshot_strictness_reaches_nested_samples():
    d = _timeline().to_dict()
    d["snapshots"][0]["regions"]["region0"]["bogus"] = 1
    with pytest.raises(ValueError, match="region 'region0'"):
        Timeline.from_dict(d)


def test_dumps_canonical_and_compact_switch():
    d = _timeline(2).to_dict()
    pretty = dumps_timeline(d)
    assert pretty == json.dumps(d, sort_keys=True, indent=2)
    compact = dumps_timeline(d, compact=True)
    assert compact == json.dumps(d, sort_keys=True, separators=(",", ":"))
    # Both parse back to the same value.
    assert json.loads(pretty) == json.loads(compact)


def test_dumps_compacts_large_timelines_automatically():
    tl = Timeline(
        scenario="big", app="bcp", scheme="ms-8", seed=1, interval_s=1.0,
        snapshots=tuple(_snapshot(float(i + 1)) for i in range(200)),
    )
    assert "\n" not in dumps_timeline(tl.to_dict())


def test_load_round_trips_bytes(tmp_path):
    tl = _timeline()
    path = tmp_path / "case.timeline.json"
    text = dumps_timeline(tl.to_dict()) + "\n"
    path.write_text(text, encoding="utf-8")
    loaded = load_timeline(str(path))
    assert loaded == tl
    # Re-dumping the loaded value reproduces the exact bytes (the
    # resume-cache byte-identity contract rides on this).
    assert dumps_timeline(loaded.to_dict()) + "\n" == text
