"""Tests for the incremental telemetry statistics."""

import pytest

from repro.telemetry import OnlineQuantile, RateTracker


class TestRateTracker:
    def test_add_and_sample(self):
        rt = RateTracker()
        rt.add(5.0)
        rt.add(5.0)
        assert rt.sample(2.0) == pytest.approx(5.0)

    def test_sample_resets_window(self):
        rt = RateTracker()
        rt.add(10.0)
        rt.sample(1.0)
        assert rt.sample(1.0) == 0.0

    def test_set_total_tracks_counter_deltas(self):
        rt = RateTracker()
        rt.set_total(100.0)
        assert rt.sample(10.0) == pytest.approx(10.0)
        rt.set_total(100.0)
        assert rt.sample(10.0) == 0.0
        rt.set_total(250.0)
        assert rt.sample(10.0) == pytest.approx(15.0)

    def test_nonpositive_window_raises(self):
        rt = RateTracker()
        with pytest.raises(ValueError):
            rt.sample(0.0)


class TestOnlineQuantile:
    def test_empty(self):
        oq = OnlineQuantile()
        assert oq.count == 0
        assert oq.quantile(0.5) is None
        assert oq.mean is None

    def test_single_value(self):
        oq = OnlineQuantile()
        oq.add(3.0)
        assert oq.quantile(0.5) == pytest.approx(3.0, rel=0.05)
        assert oq.mean == pytest.approx(3.0)

    def test_extremes_within_bin_resolution(self):
        oq = OnlineQuantile()
        for v in (1.0, 2.0, 3.0):
            oq.add(v)
        assert oq.quantile(0.01) == pytest.approx(1.0, rel=0.05)
        assert oq.quantile(1.0) == pytest.approx(3.0, rel=0.05)
        assert oq.min == 1.0
        assert oq.max == 3.0

    def test_accuracy_on_uniform_values(self):
        """Log-spaced bins put the nearest-rank answer within the bin
        resolution (~4% at 64 bins/decade) of the true quantile."""
        oq = OnlineQuantile()
        values = [0.01 + i * (10.0 - 0.01) / 999 for i in range(1000)]
        for v in values:
            oq.add(v)
        svals = sorted(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            true = svals[int(q * (len(svals) - 1))]
            assert oq.quantile(q) == pytest.approx(true, rel=0.05)

    def test_determinism_and_order_independence(self):
        """Integer bin counts: same multiset of inputs, any order ->
        bit-identical quantiles (the cross-process artifact promise)."""
        a, b = OnlineQuantile(), OnlineQuantile()
        vals = [(i * 7919 % 1000) / 100.0 + 0.001 for i in range(500)]
        for v in vals:
            a.add(v)
        for v in reversed(vals):
            b.add(v)
        for q in (0.1, 0.5, 0.95):
            assert a.quantile(q) == b.quantile(q)

    def test_out_of_range_values_clamp_into_edge_bins(self):
        oq = OnlineQuantile(lo=1e-3, hi=1e4)
        oq.add(1e-9)
        oq.add(1e9)
        assert oq.count == 2
        assert oq.min == 1e-9
        assert oq.max == 1e9
        # Small-q lands in the low edge bin (clamped from below by min).
        assert oq.quantile(0.5) <= 2e-3
        assert oq.quantile(1.0) >= 1e3

    def test_invalid_quantile_raises(self):
        oq = OnlineQuantile()
        oq.add(1.0)
        with pytest.raises(ValueError):
            oq.quantile(1.5)
        with pytest.raises(ValueError):
            oq.quantile(0.0)

    def test_invalid_construction_raises(self):
        with pytest.raises(ValueError):
            OnlineQuantile(lo=1.0, hi=0.5)
        with pytest.raises(ValueError):
            OnlineQuantile(bins_per_decade=0)
