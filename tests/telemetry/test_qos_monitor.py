"""Tests for the QoS monitor against real (small) scenario runs."""

import dataclasses

import pytest

from repro.scenarios import TelemetrySpec, get, run_case
from repro.sim.core import Simulator


def _quick_spec(telemetry_interval: float = 10.0):
    spec = get("flash-crowd").quick()
    return dataclasses.replace(
        spec, telemetry=TelemetrySpec(interval_s=telemetry_interval))


@pytest.fixture(scope="module")
def telemetry_case():
    """One telemetry-enabled quick case, shared across read-only tests."""
    spec = _quick_spec()
    return spec, run_case(spec, "bcp", "ms-8", 3)


def test_snapshot_cadence_and_tail(telemetry_case):
    spec, result = telemetry_case
    tl = result.timeline
    # 300s at 10s intervals; run(until=) stops before the t=300 sampler
    # fires, so the final sample comes from monitor.finish().
    assert len(tl) == 30
    assert [s.time for s in tl][:3] == [10.0, 20.0, 30.0]
    assert tl.final.time == pytest.approx(spec.duration_s)


def test_snapshots_cover_regions_and_operators(telemetry_case):
    _spec, result = telemetry_case
    tl = result.timeline
    assert tl.region_names() == ["region0"]
    # Every operator of the BCP graph appears, even never-fired ones.
    ops = tl.operator_names()
    assert "region0.S1" in ops and "region0.K" in ops
    final = tl.final
    assert final.regions["region0"].sink_outputs > 0
    assert final.regions["region0"].latency_p50_s is not None
    assert sum(o.tuples for o in final.operators.values()) > 0
    assert final.net.wifi_bytes_per_s >= 0.0


def test_events_processed_streams_live(telemetry_case):
    """Mid-run snapshots carry a current kernel-event count (the inline
    counting mode), strictly increasing across samples."""
    _spec, result = telemetry_case
    counts = [s.events_processed for s in result.timeline]
    assert counts[0] > 0
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]


def test_checkpoint_counts_surface(telemetry_case):
    _spec, result = telemetry_case
    final = result.timeline.final.regions["region0"]
    assert final.checkpoints_started >= final.checkpoints_committed >= 0
    assert final.checkpoints_started > 0


def test_metrics_row_identical_with_telemetry_on(telemetry_case):
    """The monitor observes only: enabling it cannot change the row."""
    from repro.scenarios.runner import case_to_dict

    spec, result = telemetry_case
    plain = run_case(dataclasses.replace(spec, telemetry=None),
                     "bcp", "ms-8", 3)
    assert case_to_dict(plain) == case_to_dict(result)


def test_timelines_deterministic_across_runs(telemetry_case):
    spec, result = telemetry_case
    again = run_case(spec, "bcp", "ms-8", 3)
    assert again.timeline.to_dict() == result.timeline.to_dict()


def test_report_gains_events_and_counters(telemetry_case):
    """MetricsReport carries the kernel event count and the raw
    hot-counter snapshot (live diagnostics; never in artifact rows)."""
    _spec, result = telemetry_case
    report = result.report
    assert report.events_processed > 0
    assert report.counters.get("net.wifi.bytes", 0.0) > 0.0
    assert "region0.sink_outputs" in report.counters
    # The artifact row schema is untouched.
    from repro.scenarios.runner import case_to_dict

    row = case_to_dict(result)
    assert "events_processed" not in row
    assert "counters" not in row


def test_monitor_detaches_cleanly():
    """finish() removes every tap: regions, trace observer, inline
    counting, and the sampler (idempotently)."""
    from repro.scenarios.runner import build_system
    from repro.telemetry import QoSMonitor

    spec = _quick_spec()
    system = build_system(spec, "bcp", "ms-8", 3)
    monitor = QoSMonitor(system.sim, system.trace, interval_s=10.0)
    system.attach_telemetry(monitor)
    monitor.start()
    system.start()
    system.run(50.0)
    monitor.finish()
    monitor.finish()  # idempotent
    assert all(r.telemetry is None for r in system.regions)
    assert system.sim.count_inline is False
    n = len(monitor.snapshots)
    system.run(100.0)
    assert len(monitor.snapshots) == n  # sampler cancelled


def test_on_snapshot_callback_streams(telemetry_case):
    spec, _result = telemetry_case
    seen = []
    run_case(spec, "bcp", "ms-8", 3, on_snapshot=seen.append)
    assert len(seen) == 30
    assert seen[0].time == pytest.approx(10.0)


def test_monitor_rejects_bad_interval():
    from repro.sim.monitor import Trace
    from repro.telemetry import QoSMonitor

    with pytest.raises(ValueError):
        QoSMonitor(Simulator(), Trace(), interval_s=0.0)


def test_call_every_fires_and_cancels():
    sim = Simulator()
    hits = []
    cancel = sim.call_every(1.0, lambda: hits.append(sim.now))
    sim.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    cancel()
    sim.run(until=10.0)
    assert hits == [1.0, 2.0, 3.0]


def test_call_every_rejects_bad_interval():
    with pytest.raises(ValueError):
        Simulator().call_every(0.0, lambda: None)


def test_inline_counting_matches_batched():
    """count_inline changes when the counter updates, not what it
    counts: both loops end at the same total."""

    def build():
        sim = Simulator()

        def ticker(sim):
            for _ in range(100):
                yield sim.timeout(0.5)

        sim.process(ticker(sim))
        return sim

    batched = build()
    batched.run(until=30.0)
    inline = build()
    inline.count_inline = True
    inline.run(until=30.0)
    assert inline.events_processed == batched.events_processed
    assert inline.now == batched.now
