"""Tests for watch rendering (pure string building)."""

from repro.telemetry import (
    NetSample,
    OperatorSample,
    RegionSample,
    TelemetrySnapshot,
    Timeline,
    render_frame,
    render_progress_line,
    sparkline,
)
from repro.telemetry.watch import replay_frames


def _snapshot(t: float, tput: float) -> TelemetrySnapshot:
    return TelemetrySnapshot(
        time=t,
        events_processed=int(t * 10),
        regions={"region0": RegionSample(
            throughput_tps=tput, latency_p50_s=0.5, latency_p95_s=1.25,
            latency_mean_s=0.6, sink_outputs=int(t), source_inputs=int(2 * t),
            checkpoints_started=2, checkpoints_committed=1,
            recoveries=1, crashes=3,
        )},
        operators={"region0.S": OperatorSample(tuples=7, rate_tps=0.7,
                                               queue_depth=4)},
        net=NetSample(wifi_bytes_per_s=2048.0, cellular_bytes_per_s=10.0,
                      ft_bytes_per_s=512.0),
    )


def _timeline(n: int = 5) -> Timeline:
    return Timeline(
        scenario="demo", app="bcp", scheme="ms-8", seed=3, interval_s=10.0,
        snapshots=tuple(_snapshot(10.0 * (i + 1), float(i)) for i in range(n)),
    )


class TestSparkline:
    def test_scales_to_window_max(self):
        line = sparkline([0.0, 1.0, 2.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_none_renders_as_space(self):
        assert sparkline([None, 1.0])[0] == " "

    def test_empty_and_all_none(self):
        assert sparkline([]) == ""
        assert sparkline([None, None]) == ""

    def test_width_keeps_tail(self):
        line = sparkline([0.0] * 50 + [9.0], width=10)
        assert len(line) == 10
        assert line[-1] == "█"

    def test_all_zero(self):
        assert sparkline([0.0, 0.0]) == "▁▁"


class TestRenderFrame:
    def test_header_and_tables(self):
        frame = render_frame(_timeline())
        assert "scenario=demo" in frame
        assert "app=bcp scheme=ms-8 seed=3" in frame
        assert "region0" in frame
        assert "region0.S" in frame
        assert "1/2" in frame  # ckpt committed/started
        assert "net: wifi 2,048 B/s" in frame

    def test_upto_limits_history(self):
        tl = _timeline(5)
        frame = render_frame(tl, upto=2)
        assert "t=20.0s" in frame
        assert "snapshots=2" in frame

    def test_empty_timeline(self):
        frame = render_frame(Timeline("demo", "bcp", "ms-8", 3, 10.0))
        assert "(no snapshots)" in frame

    def test_none_latency_renders_dash(self):
        snap = TelemetrySnapshot(
            time=10.0, events_processed=1,
            regions={"region0": RegionSample(
                throughput_tps=0.0, latency_p50_s=None, latency_p95_s=None,
                latency_mean_s=None, sink_outputs=0, source_inputs=0,
                checkpoints_started=0, checkpoints_committed=0,
                recoveries=0, crashes=0)},
        )
        tl = Timeline("demo", "bcp", "ms-8", 3, 10.0, (snap,))
        row = [ln for ln in render_frame(tl).splitlines()
               if ln.startswith("region0")][0]
        assert "| -" in row


def test_progress_line():
    line = render_progress_line(_snapshot(30.0, 1.5))
    assert "[" in line and "30.0s]" in line
    assert "1.500 t/s" in line
    assert "queued    4" in line
    assert "events 300" in line


def test_replay_frames_progressive():
    frames = list(replay_frames(_timeline(3)))
    assert len(frames) == 3
    assert "snapshots=1" in frames[0]
    assert "snapshots=3" in frames[2]
