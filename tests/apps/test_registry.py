"""Tests for the application registry and AppRef references."""

import json

import pytest

import repro.apps  # noqa: F401  (registers the built-ins)
from repro.apps.registry import (
    AppRef,
    app_names,
    create_app,
    get_app,
    register_app,
    unregister_app,
)
from repro.core.app import AppSpec


# -- AppRef ------------------------------------------------------------------
def test_ref_from_bare_name():
    ref = AppRef.coerce("bcp")
    assert ref.name == "bcp"
    assert ref.params == {}
    assert ref.key == "bcp"
    assert ref.to_jsonable() == "bcp"


def test_ref_from_mapping_and_canonical_equality():
    a = AppRef.coerce({"name": "bcp", "params": {"n_counters": 8, "crowd_mean": 2.5}})
    b = AppRef.coerce({"name": "bcp", "params": {"crowd_mean": 2.5, "n_counters": 8}})
    assert a == b
    assert hash(a) == hash(b)
    assert a.key == "bcp[crowd_mean=2.5,n_counters=8]"
    assert a.params == {"n_counters": 8, "crowd_mean": 2.5}


def test_ref_json_round_trip():
    for form in ("bcp", {"name": "edgeml", "params": {"n_stages": 2}}):
        ref = AppRef.coerce(form)
        recovered = AppRef.coerce(json.loads(json.dumps(ref.to_jsonable())))
        assert recovered == ref


def test_ref_rejects_non_mapping_params():
    with pytest.raises(ValueError, match="mapping"):
        AppRef.coerce({"name": "edgeml", "params": [["n_stages", 2]]})
    with pytest.raises(ValueError, match="mapping"):
        AppRef.make("edgeml", [("n_stages", 2)])


def test_ref_rejects_garbage():
    with pytest.raises(ValueError):
        AppRef.coerce({"params": {"x": 1}})  # no name
    with pytest.raises(ValueError):
        AppRef.coerce({"name": "bcp", "extra": 1})
    with pytest.raises(ValueError):
        AppRef.coerce(42)
    with pytest.raises(ValueError):
        AppRef.make("bcp", {"fn": object()})  # not JSON-serializable
    with pytest.raises(ValueError):
        AppRef.make("")


# -- registry lookups --------------------------------------------------------
def test_builtins_are_registered():
    assert app_names() == ["bcp", "edgeml", "signalguru"]


def test_unknown_app_error_lists_candidates():
    with pytest.raises(ValueError, match="bcp, edgeml, signalguru"):
        get_app("nope")


def test_duplicate_registration_rejected_unless_replace():
    entry = get_app("bcp")
    with pytest.raises(ValueError):
        register_app("bcp", entry.factory, entry.params_cls)
    register_app("bcp", entry.factory, entry.params_cls,
                 description=entry.description, replace=True)
    assert get_app("bcp").factory is entry.factory


def test_register_and_unregister_custom_app():
    class TinyApp(AppSpec):
        name = "tiny"

        def build_graph(self):  # pragma: no cover - never called
            raise NotImplementedError

        def build_placement(self, phone_ids):  # pragma: no cover
            raise NotImplementedError

        def build_workloads(self, rng, region_index):  # pragma: no cover
            raise NotImplementedError

    register_app("tiny", TinyApp)
    try:
        assert isinstance(create_app("tiny"), TinyApp)
        with pytest.raises(ValueError, match="takes no parameters"):
            create_app({"name": "tiny", "params": {"x": 1}})
    finally:
        unregister_app("tiny")
    assert "tiny" not in app_names()


# -- instantiation -----------------------------------------------------------
def test_create_app_with_default_and_overridden_params():
    from repro.apps import BCPApp

    default = create_app("bcp")
    assert isinstance(default, BCPApp)
    assert default.params.n_counters == 4

    tuned = create_app({"name": "bcp", "params": {"n_counters": 2}})
    assert tuned.params.n_counters == 2
    # The tuned graph really changes shape.
    assert "C1" in tuned.build_graph().names()
    assert "C2" not in tuned.build_graph().names()


def test_create_app_rejects_unknown_params():
    with pytest.raises(ValueError, match="n_boosters"):
        create_app({"name": "bcp", "params": {"n_boosters": 2}})


def test_create_app_params_are_validated_by_the_dataclass():
    with pytest.raises(ValueError):
        create_app({"name": "bcp", "params": {"n_counters": 0}})


def test_create_app_type_checks_json_overrides():
    with pytest.raises(ValueError, match="'n_stages'.*expects int"):
        create_app({"name": "edgeml", "params": {"n_stages": 2.0}})
    with pytest.raises(ValueError, match="expects float"):
        create_app({"name": "bcp", "params": {"camera_period_s": "fast"}})
    with pytest.raises(ValueError, match="expects int"):
        create_app({"name": "bcp", "params": {"n_counters": True}})
    # int is acceptable where float is declared.
    app = create_app({"name": "bcp", "params": {"camera_period_s": 2}})
    assert app.params.camera_period_s == 2


def test_code_only_params_are_rejected_with_a_clear_error():
    with pytest.raises(ValueError, match="'costs'.*code-only"):
        create_app({"name": "bcp", "params": {"costs": {"noise_filter": 0.1}}})
    with pytest.raises(ValueError, match="'signal'.*code-only"):
        create_app({"name": "signalguru", "params": {"signal": {}}})


def test_tuple_params_accept_json_lists():
    app = create_app({"name": "edgeml",
                      "params": {"n_stages": 2, "split_points": [6]}})
    assert app.params.split_points == (6,)
    with pytest.raises(ValueError, match="expects a list"):
        create_app({"name": "edgeml",
                    "params": {"n_stages": 2, "split_points": 6}})


def test_param_fields_schema():
    fields = {name: (type_name, default)
              for name, type_name, default in get_app("edgeml").param_fields()}
    assert fields["n_stages"] == ("int", "4")
    assert "camera_period_s" in fields
    # Nested-dataclass fields are flagged as not JSON-tunable.
    bcp_fields = dict((name, t) for name, t, _ in get_app("bcp").param_fields())
    assert bcp_fields["costs"].endswith("(code-only)")
    assert bcp_fields["n_counters"] == "int"
