"""Tests for BCP's statistical models and SignalGuru's signal model."""

import pytest

from repro.apps.bcp.models import (
    AlightingModel,
    ArrivalTimeModel,
    BoardingModel,
    CapacityModel,
    OnlineStats,
)
from repro.apps.signalguru.signal_model import TrafficSignal


def test_online_stats_converges_to_mean():
    st = OnlineStats(alpha=0.3)
    for _ in range(100):
        st.update(10.0)
    assert st.mean == pytest.approx(10.0, abs=0.1)
    assert st.count == 100


def test_online_stats_snapshot_restore():
    st = OnlineStats(alpha=0.2)
    st.update(5.0)
    snap = st.snapshot()
    st.update(100.0)
    st.restore(snap)
    assert st.mean == snap["mean"]
    st.restore(None)
    assert st.count == 0


def test_online_stats_alpha_validation():
    with pytest.raises(ValueError):
        OnlineStats(alpha=0.0)


def test_boarding_model_learns_fraction():
    m = BoardingModel()
    for _ in range(60):
        m.observe(waiting_count=10, boarded=4)  # 40% board
    assert m.predict(20) == pytest.approx(8.0, rel=0.15)
    assert m.predict(0) == 0.0


def test_alighting_model_learns_fraction():
    m = AlightingModel()
    for _ in range(60):
        m.observe(on_bus=40, alighted=10)  # 25%
    assert m.predict(40) == pytest.approx(10.0, rel=0.15)


def test_arrival_model_tracks_travel_time():
    m = ArrivalTimeModel(prior_s=120.0)
    for _ in range(60):
        m.observe(90.0)
    assert m.predict() == pytest.approx(90.0, rel=0.1)


def test_capacity_model_combines_and_clamps():
    cm = CapacityModel(max_capacity=60)
    assert cm.predict(on_bus=30, alighting=10, boarding=15) == 35
    assert cm.predict(on_bus=59, alighting=0, boarding=20) == 60  # clamp
    assert cm.predict(on_bus=3, alighting=10, boarding=0) == 0    # floor
    with pytest.raises(ValueError):
        CapacityModel(0)


def test_traffic_signal_cycle():
    sig = TrafficSignal(red_s=40, green_s=35, yellow_s=4)
    assert sig.cycle_s == 79
    assert sig.color_at(0) == "red"
    assert sig.color_at(41) == "green"
    assert sig.color_at(76) == "yellow"
    assert sig.color_at(79) == "red"  # wraps


def test_traffic_signal_time_to_transition():
    sig = TrafficSignal(red_s=40, green_s=35, yellow_s=4)
    phase, elapsed, tta = sig.phase_at(10.0)
    assert phase == "red"
    assert elapsed == pytest.approx(10.0)
    assert tta == pytest.approx(30.0)


def test_traffic_signal_validation():
    with pytest.raises(ValueError):
        TrafficSignal(red_s=0)
