"""Tests for the Pegasos linear SVM."""

import numpy as np
import pytest

from repro.apps.signalguru.svm import LinearSVM


def separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, size=(n, 2))
    y = np.where(X[:, 0] + 0.5 * X[:, 1] > 0, 1, -1)
    return X, y


def test_learns_separable_data():
    X, y = separable_data()
    svm = LinearSVM(2, lam=1e-2).fit(X, y, epochs=20)
    assert svm.accuracy(X, y) > 0.95


def test_generalizes_to_fresh_samples():
    X, y = separable_data(seed=1)
    svm = LinearSVM(2, lam=1e-2).fit(X, y, epochs=20)
    Xt, yt = separable_data(seed=2)
    assert svm.accuracy(Xt, yt) > 0.9


def test_partial_fit_streaming():
    X, y = separable_data(seed=3)
    svm = LinearSVM(2, lam=1e-2)
    for _ in range(10):
        for xi, yi in zip(X, y):
            svm.partial_fit(xi, float(yi))
    assert svm.accuracy(X, y) > 0.9


def test_decision_sign_matches_predict():
    svm = LinearSVM(2)
    svm.w = np.array([1.0, 0.0])
    assert svm.predict(np.array([2.0, 0.0])) == 1
    assert svm.predict(np.array([-2.0, 0.0])) == -1
    assert svm.decision(np.array([2.0, 0.0])) > 0


def test_weight_norm_bounded():
    """Pegasos projects onto the 1/sqrt(lambda) ball every step."""
    X, y = separable_data(seed=4)
    svm = LinearSVM(2, lam=0.1).fit(X, y, epochs=5)
    assert np.linalg.norm(svm.w) <= 1.0 / np.sqrt(0.1) + 1e-9


def test_snapshot_restore_roundtrip():
    X, y = separable_data(seed=5)
    svm = LinearSVM(2, lam=1e-2).fit(X, y, epochs=5)
    snap = svm.snapshot()
    before = svm.accuracy(X, y)
    svm.restore(None)
    assert np.all(svm.w == 0)
    svm.restore(snap)
    assert svm.accuracy(X, y) == before


def test_input_validation():
    svm = LinearSVM(3)
    with pytest.raises(ValueError):
        svm.partial_fit(np.zeros(2), 1.0)  # wrong feature count
    with pytest.raises(ValueError):
        svm.partial_fit(np.zeros(3), 0.5)  # label not +/-1
    with pytest.raises(ValueError):
        LinearSVM(0)
    with pytest.raises(ValueError):
        LinearSVM(2, lam=0)
    with pytest.raises(ValueError):
        svm.fit(np.zeros((4, 3)), np.zeros(5))
