"""Tests for the synthetic vision substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.vision import (
    FrameSpec,
    box_sum,
    circularity,
    detect_blobs,
    integral_image,
    render_color,
    render_gray,
    sliding_box_sums,
)


def test_frame_rendering_deterministic():
    spec = FrameSpec(seed=5, n_targets=2)
    img1, c1 = render_gray(spec)
    img2, c2 = render_gray(spec)
    assert np.array_equal(img1, img2)
    assert c1 == c2


def test_frame_shape_and_range():
    spec = FrameSpec(seed=1, width=80, height=60, n_targets=1)
    img, centers = render_gray(spec)
    assert img.shape == (60, 80)
    assert img.min() >= 0.0 and img.max() <= 1.0
    assert len(centers) == 1


def test_integral_image_matches_naive():
    rng = np.random.default_rng(0)
    img = rng.random((17, 23))
    ii = integral_image(img)
    assert ii.shape == (18, 24)
    assert box_sum(ii, 0, 0, 17, 23) == pytest.approx(img.sum())
    assert box_sum(ii, 3, 5, 9, 11) == pytest.approx(img[3:9, 5:11].sum())


def test_box_sum_vectorized_indices():
    rng = np.random.default_rng(1)
    img = rng.random((30, 30))
    ii = integral_image(img)
    y0 = np.array([[0], [5]])
    x0 = np.array([[0, 10]])
    sums = box_sum(ii, y0, x0, y0 + 5, x0 + 5)
    assert sums.shape == (2, 2)
    assert sums[1, 1] == pytest.approx(img[5:10, 10:15].sum())


def test_sliding_box_sums_grid():
    img = np.ones((20, 24))
    sums, ys, xs = sliding_box_sums(integral_image(img), win=4, stride=2)
    assert sums.shape == (len(ys), len(xs))
    assert np.allclose(sums, 16.0)


@pytest.mark.parametrize("n_targets", [0, 1, 3, 6])
def test_detect_blobs_counts_planted_targets(n_targets):
    hits = 0
    trials = 10
    for seed in range(trials):
        spec = FrameSpec(seed=seed * 11 + 1, n_targets=n_targets)
        img, _truth = render_gray(spec)
        if len(detect_blobs(img)) == n_targets:
            hits += 1
    assert hits >= trials * 0.7  # the detector is good, not perfect


def test_detect_blobs_positions_near_truth():
    spec = FrameSpec(seed=9, n_targets=3)
    img, truth = render_gray(spec)
    found = detect_blobs(img)
    for ty, tx in truth:
        assert any(abs(ty - y) + abs(tx - x) < 12 for y, x in found)


def test_color_rendering_channels():
    spec = FrameSpec(seed=4, n_targets=1)
    red = render_color(spec, "red")
    green = render_color(spec, "green")
    yellow = render_color(spec, "yellow")
    assert red[..., 0].max() > red[..., 1].max()
    assert green[..., 1].max() > green[..., 0].max()
    assert yellow[..., 0].max() > 0.8 and yellow[..., 1].max() > 0.8


def test_circularity_of_disc_vs_stripe():
    yy, xx = np.mgrid[0:21, 0:21]
    disc = (((yy - 10) ** 2 + (xx - 10) ** 2) <= 100).astype(float)
    stripe = np.zeros((21, 21))
    stripe[9:12, :] = 1.0
    assert circularity(disc) > 0.8
    assert circularity(stripe) < 0.5
    assert circularity(np.zeros((0, 0))) == 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(0, 5))
def test_render_never_out_of_bounds(seed, n):
    spec = FrameSpec(seed=seed, n_targets=n)
    img, centers = render_gray(spec)
    assert img.shape == (spec.height, spec.width)
    for cy, cx in centers:
        assert 0 <= cy < spec.height
        assert 0 <= cx < spec.width
