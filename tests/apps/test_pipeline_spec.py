"""Tests for the declarative pipeline builder and the app ports onto it."""

import pytest

from repro.apps import BCPApp, SignalGuruApp
from repro.apps.pipeline import (
    OpDef,
    PipelineApp,
    PipelineError,
    PipelineSpec,
    StageSpec,
    stage,
)
from repro.core.operator import MapOperator, SinkOperator, SourceOperator


def src(name):
    return SourceOperator(name)


def mid(name):
    return MapOperator(name, lambda p: p)


def snk(name):
    return SinkOperator(name)


def toy(width=2):
    return PipelineSpec(
        name="toy",
        stages=(
            stage("S", src),
            stage("W", mid, upstream=("S",), width=width),
            stage("K", snk, upstream=("W",)),
        ),
        groups=(("S",), ("W",), ("K",)),
    )


# -- compilation --------------------------------------------------------------
def test_toy_pipeline_compiles_and_validates():
    g = toy().build_graph()
    g.validate()
    assert g.names() == ["S", "W0", "W1", "K"]
    assert g.downstream_of("S") == ["W0", "W1"]
    assert g.upstream_of("K") == ["W0", "W1"]


def test_expanded_groups_pair_parallel_instances():
    p = PipelineSpec(
        name="paired",
        stages=(
            stage("S", src),
            StageSpec("chain", ops=(OpDef("X", mid), OpDef("Y", mid)),
                      width=2, upstream=("S",)),
            stage("K", snk, upstream=("chain",)),
        ),
        groups=(("S",), ("chain",), ("K",)),
    )
    assert p.expanded_groups() == [["S"], ["X0", "Y0"], ["X1", "Y1"], ["K"]]
    g = p.build_graph()
    # Equal-width stages connect pairwise, and chains stay internal.
    assert g.downstream_of("X0") == ["Y0"]
    assert g.downstream_of("Y1") == ["K"]


def test_equal_width_stages_connect_pairwise_not_crosswise():
    p = PipelineSpec(
        name="pairs",
        stages=(
            stage("S", src),
            stage("A", mid, upstream=("S",), width=3),
            stage("B", mid, upstream=("A",), width=3),
            stage("K", snk, upstream=("B",)),
        ),
        groups=(("S",), ("A", "B"), ("K",)),
    )
    g = p.build_graph()
    assert g.downstream_of("A1") == ["B1"]
    assert g.upstream_of("B2") == ["A2"]
    assert p.expanded_groups() == [["S"], ["A0", "B0"], ["A1", "B1"],
                                   ["A2", "B2"], ["K"]]


def test_numbered_flag_keeps_suffix_at_width_one():
    p = PipelineSpec(
        name="one",
        stages=(
            stage("S", src),
            stage("C", mid, upstream=("S",), width=1, numbered=True),
            stage("K", snk, upstream=("C",)),
        ),
        groups=(("S",), ("C",), ("K",)),
    )
    assert p.build_graph().names() == ["S", "C0", "K"]


def test_workloads_bind_in_order_and_can_skip_regions():
    calls = []

    def camera(rng, region):
        calls.append(("cam", region))
        return iter(())

    def feed(rng, region):
        calls.append(("feed", region))
        return iter(()) if region == 0 else None

    p = PipelineSpec(
        name="wl",
        stages=(stage("A", src), stage("B", src),
                stage("K", snk, upstream=("A", "B"))),
        groups=(("A", "B"), ("K",)),
        workloads=(("B", camera), ("A", feed)),
    )
    app = PipelineApp(p)
    assert list(app.build_workloads(None, 0)) == ["B", "A"]
    assert list(app.build_workloads(None, 1)) == ["B"]
    assert calls == [("cam", 0), ("feed", 0), ("cam", 1), ("feed", 1)]


# -- validation errors --------------------------------------------------------
def test_rejects_unknown_or_later_upstream():
    with pytest.raises(PipelineError, match="unknown or later"):
        PipelineSpec("x", stages=(stage("A", src, upstream=("B",)),
                                  stage("B", snk)),
                     groups=(("A", "B"),))


def test_rejects_duplicate_stage_and_colliding_op_names():
    with pytest.raises(PipelineError, match="duplicate stage"):
        PipelineSpec("x", stages=(stage("A", src), stage("A", snk)),
                     groups=(("A",),))
    with pytest.raises(PipelineError, match="collide"):
        PipelineSpec("x", stages=(
            stage("A0", src),
            stage("A", mid, width=2, upstream=("A0",)),  # makes A0, A1
            stage("K", snk, upstream=("A",)),
        ), groups=(("A0",), ("A",), ("K",)))


def test_rejects_bad_placement_groups():
    with pytest.raises(PipelineError, match="exactly once"):
        PipelineSpec("x", stages=(stage("A", src), stage("K", snk, upstream=("A",))),
                     groups=(("A",),))  # K missing
    with pytest.raises(PipelineError, match="mixes stage widths"):
        PipelineSpec("x", stages=(
            stage("A", src),
            stage("B", mid, upstream=("A",), width=2),
            stage("K", snk, upstream=("B",)),
        ), groups=(("A", "B"), ("K",)))


def test_rejects_workload_on_unknown_operator():
    with pytest.raises(PipelineError, match="unknown operator"):
        PipelineSpec("x", stages=(stage("A", src), stage("K", snk, upstream=("A",))),
                     groups=(("A",), ("K",)),
                     workloads=(("Z", lambda rng, r: None),))


# -- the ports ---------------------------------------------------------------
def test_bcp_port_reproduces_the_hand_wired_graph():
    g = BCPApp().build_graph()
    assert g.names() == ["S0", "N", "A", "L", "S1", "H", "D",
                         "C0", "C1", "C2", "C3", "B", "J", "P", "K"]
    assert g.downstream_of("D") == ["C0", "C1", "C2", "C3"]
    assert g.upstream_of("J") == ["A", "L", "B"]
    app = BCPApp()
    assert app.pipeline.expanded_groups() == [
        ["S0", "N"], ["S1", "H", "D"], ["C0"], ["C1"], ["C2"], ["C3"],
        ["A", "L", "B", "J"], ["P", "K"]]
    assert app.compute_phones_needed() == 8


def test_signalguru_port_reproduces_the_hand_wired_graph():
    g = SignalGuruApp().build_graph()
    assert g.names() == ["S0", "S1", "C0", "A0", "M0", "C1", "A1", "M1",
                         "C2", "A2", "M2", "V", "G", "P", "K"]
    assert g.upstream_of("V") == ["M0", "M1", "M2"]
    assert g.upstream_of("G") == ["S0", "V"]
    app = SignalGuruApp()
    assert app.pipeline.expanded_groups() == [
        ["S0"], ["S1"], ["C0", "A0", "M0"], ["C1", "A1", "M1"],
        ["C2", "A2", "M2"], ["V"], ["G", "P"], ["K"]]
    assert app.compute_phones_needed() == 8


def test_describe_summarizes_structure():
    info = BCPApp().describe()
    assert info["phones_needed"] == 8
    assert info["sources"] == ["S0", "S1"]
    assert info["sinks"] == ["K"]
    assert any(op["state_bytes"] > 0 for op in info["operators"])
