"""End-to-end tests of the BCP and SignalGuru applications."""

import pytest

from repro.apps import BCPApp, BCPParams, SignalGuruApp, SignalGuruParams
from repro.baselines import NoFaultTolerance
from repro.checkpoint import MobiStreamsScheme
from repro.core.system import MobiStreamsSystem, SystemConfig


def run_app(app, scheme=NoFaultTolerance, duration=400.0, regions=1, seed=3,
            phones=8, idle=2):
    cfg = SystemConfig(n_regions=regions, phones_per_region=phones,
                       idle_per_region=idle, master_seed=seed)
    s = MobiStreamsSystem(cfg, app, scheme)
    s.run(duration)
    return s


# -- graph structure ---------------------------------------------------------
def test_bcp_graph_matches_fig2():
    g = BCPApp().build_graph()
    g.validate()
    assert set(g.source_names()) == {"S0", "S1"}
    assert g.sink_names() == ["K"]
    assert set(g.downstream_of("D")) == {"C0", "C1", "C2", "C3"}
    assert set(g.upstream_of("J")) == {"A", "L", "B"}
    assert g.downstream_of("P") == ["K"]


def test_signalguru_graph_matches_fig3():
    g = SignalGuruApp().build_graph()
    g.validate()
    assert set(g.source_names()) == {"S0", "S1"}
    assert set(g.downstream_of("S1")) == {"C0", "C1", "C2"}
    assert g.downstream_of("C1") == ["A1"]
    assert g.downstream_of("A1") == ["M1"]
    assert set(g.upstream_of("V")) == {"M0", "M1", "M2"}
    assert set(g.upstream_of("G")) == {"S0", "V"}


def test_bcp_placement_uses_eight_phones():
    app = BCPApp()
    phones = [f"p{i}" for i in range(8)]
    placement = app.build_placement(phones)
    placement.validate(app.build_graph(), phones)
    assert len(placement.used_nodes()) == 8


def test_placements_squeeze_onto_four_phones():
    """rep-2 squeezes a whole chain onto half the phones."""
    for app in (BCPApp(), SignalGuruApp()):
        phones = [f"p{i}" for i in range(4)]
        placement = app.build_placement(phones)
        placement.validate(app.build_graph(), phones)


# -- end-to-end behaviour ------------------------------------------------------
def test_bcp_produces_predictions():
    s = run_app(BCPApp())
    m = s.metrics(warmup_s=60.0)
    rm = m.per_region["region0"]
    assert rm.output_tuples > 50
    assert 0.3 < rm.throughput_tps < 1.0  # Table I ballpark: 0.54
    assert s.trace.value("op_errors") == 0


def test_bcp_prediction_payloads_well_formed():
    s = run_app(BCPApp(), duration=300.0)
    outs = list(s.trace.select("sink_output"))
    assert outs
    # The sink records latency computed from sensed-frame entry.
    assert all(r.data["latency"] > 0 for r in outs)


def test_bcp_counts_track_truth():
    """The Haar-counter pipeline produces usable crowd estimates."""
    from repro.apps.vision import FrameSpec, detect_blobs, render_gray

    errors = []
    for seed in range(12):
        spec = FrameSpec(seed=seed * 7 + 3, n_targets=seed % 5)
        img, truth = render_gray(spec)
        errors.append(abs(len(detect_blobs(img)) - len(truth)))
    assert sum(errors) / len(errors) < 1.0


def test_signalguru_produces_advisories():
    s = run_app(SignalGuruApp())
    m = s.metrics(warmup_s=60.0)
    rm = m.per_region["region0"]
    assert rm.output_tuples > 80
    assert 0.4 < rm.throughput_tps < 1.3  # Table I ballpark: 0.8
    assert s.trace.value("op_errors") == 0


def test_signalguru_svm_trains_online():
    s = run_app(SignalGuruApp(), duration=600.0)
    region = s.regions[0]
    p_node = region.nodes[region.placement.node_for("P", 0)]
    predictor = p_node.ops["P"]
    assert predictor.trained > 5  # grouped transitions became examples


def test_bcp_cascade_over_regions():
    s = run_app(BCPApp(), regions=2, duration=500.0)
    m = s.metrics(warmup_s=100.0)
    assert m.per_region["region1"].output_tuples > 30
    # region1 joins its own camera with region0's predictions.
    assert m.cellular_bytes > 0


def test_bcp_with_mobistreams_checkpointing():
    s = run_app(BCPApp(), scheme=MobiStreamsScheme, duration=700.0)
    assert s.trace.value("ckpt.region_complete") >= 1
    m = s.metrics(warmup_s=100.0)
    assert m.per_region["region0"].output_tuples > 100


def test_bcp_recovers_from_counter_failure():
    cfg = SystemConfig(n_regions=1, phones_per_region=8, idle_per_region=2,
                       master_seed=3)
    s = MobiStreamsSystem(cfg, BCPApp(), MobiStreamsScheme)
    s.start()
    s.injector.crash_at(350.0, ["region0.p3"])  # a counter phone
    s.run(700.0)
    rec = s.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"
    post = s.trace.count_of("sink_output", since=420.0)
    assert post > 30  # stream kept flowing after recovery (catch-up
    # reprocessing at near-saturation throttles the first minutes)


def test_params_validation():
    with pytest.raises(ValueError):
        BCPParams(camera_period_s=0)
    with pytest.raises(ValueError):
        BCPParams(n_counters=0)
    with pytest.raises(ValueError):
        SignalGuruParams(camera_period_s=-1)
    with pytest.raises(ValueError):
        SignalGuruParams(n_chains=0)
