"""Tests for the EdgeML split-DNN application."""

import numpy as np
import pytest

from repro.apps.edgeml import EdgeMLApp, EdgeMLParams
from repro.apps.edgeml.operators import (
    FEATURE_DIM,
    PartitionStage,
    PrototypeClassifier,
    apply_layers,
    pooled_features,
)
from repro.apps.vision import FrameSpec
from repro.baselines import NoFaultTolerance
from repro.checkpoint import MobiStreamsScheme
from repro.core.operator import OperatorContext
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.core.tuples import StreamTuple


# -- params ------------------------------------------------------------------
def test_default_split_is_even():
    p = EdgeMLParams()
    assert p.stage_layers() == [(0, 3), (3, 6), (6, 9), (9, 12)]


def test_explicit_split_points():
    p = EdgeMLParams(n_stages=3, split_points=(2, 8))
    assert p.stage_layers() == [(0, 2), (2, 8), (8, 12)]


def test_params_validation():
    with pytest.raises(ValueError):
        EdgeMLParams(camera_period_s=0)
    with pytest.raises(ValueError):
        EdgeMLParams(n_stages=13)  # more stages than layers
    with pytest.raises(ValueError):
        EdgeMLParams(n_stages=3, split_points=(4,))  # wrong count
    with pytest.raises(ValueError):
        EdgeMLParams(n_stages=3, split_points=(8, 4))  # not increasing
    with pytest.raises(ValueError):
        EdgeMLParams(n_classes=1)


def test_profile_weights_grow_and_tensors_shrink():
    profile = EdgeMLParams().stage_profile()
    weights = [s["weight_bytes"] for s in profile]
    tensors = [s["out_tensor_bytes"] for s in profile]
    assert weights == sorted(weights) and weights[0] < weights[-1]
    assert tensors == sorted(tensors, reverse=True) and tensors[0] > tensors[-1]


def test_split_point_trades_state_for_tensor_bytes():
    """The sparse_framework trade-off: a deeper first partition keeps
    more weights on the first phone but ships a thinner tensor."""
    shallow = EdgeMLParams(n_stages=2, split_points=(3,)).stage_profile()
    deep = EdgeMLParams(n_stages=2, split_points=(9,)).stage_profile()
    assert deep[0]["weight_bytes"] > shallow[0]["weight_bytes"]
    assert deep[0]["out_tensor_bytes"] < shallow[0]["out_tensor_bytes"]


# -- structure ---------------------------------------------------------------
def test_graph_is_a_partition_chain():
    app = EdgeMLApp()
    g = app.build_graph()
    g.validate()
    assert g.names() == ["S0", "S", "F0", "F1", "F2", "F3", "P", "K"]
    assert g.downstream_of("S") == ["F0"]
    assert g.upstream_of("P") == ["S0", "F3"]
    assert app.compute_phones_needed() == 6


def test_stage_count_follows_params():
    app = EdgeMLApp(EdgeMLParams(n_stages=6))
    assert app.compute_phones_needed() == 8
    assert "F5" in app.build_graph().names()


# -- operators ---------------------------------------------------------------
def _ctx():
    return OperatorContext(now=0.0, rng=None, region_name="region0")


def test_pooled_features_reflect_target_count():
    quiet = pooled_features(FrameSpec(seed=7, n_targets=0))
    busy = pooled_features(FrameSpec(seed=7, n_targets=8))
    assert quiet.shape == (FEATURE_DIM,)
    assert busy.sum() > quiet.sum()


def test_apply_layers_is_deterministic():
    feat = pooled_features(FrameSpec(seed=11, n_targets=3))
    a = apply_layers(feat, range(0, 4))
    b = apply_layers(feat, range(0, 4))
    assert np.array_equal(a, b)


def test_partition_stage_transforms_and_tracks_state():
    stage = PartitionStage("F0", layers=[0, 1, 2], weight_bytes=1024,
                           out_tensor_bytes=2048, cost_s=0.1)
    tup = StreamTuple(payload={"frame": FrameSpec(seed=3, n_targets=2),
                               "true_class": 2},
                      size=4096, entered_at=0.0, source_seq=0)
    (out,) = stage.process(tup, _ctx())
    assert out.size == 2048
    assert out.payload["true_class"] == 2
    assert stage.frames_inferred == 1
    assert stage.state_size() == 1024
    snap = stage.snapshot()
    stage.restore({"frames_inferred": 0, "activation_mean": 0.0})
    assert stage.frames_inferred == 0
    stage.restore(snap)
    assert stage.frames_inferred == 1
    assert stage.activation_mean != 0.0


def test_classifier_learns_and_snapshots():
    clf = PrototypeClassifier("P", n_classes=3, cost_s=0.1)
    rng = np.random.default_rng(0)
    protos = rng.normal(size=(3, FEATURE_DIM))
    for i in range(60):
        cls = i % 3
        feat = protos[cls] + rng.normal(scale=0.05, size=FEATURE_DIM)
        tup = StreamTuple(payload={"features": feat, "true_class": cls},
                          size=1024, entered_at=0.0, source_seq=i)
        (out,) = clf.process(tup, _ctx())
        assert set(out.payload) == {"class", "true_class", "correct"}
    # Well-separated clusters: once trained, it should be nearly perfect.
    assert clf.accuracy > 0.8
    snap = clf.snapshot()
    restored = PrototypeClassifier("P", n_classes=3, cost_s=0.1)
    restored.restore(snap)
    assert restored.predictions == clf.predictions
    assert np.array_equal(restored.prototypes, clf.prototypes)


def test_classifier_consumes_upstream_votes_silently():
    clf = PrototypeClassifier("P", n_classes=3, cost_s=0.1)
    tup = StreamTuple(payload={"class": 1, "correct": True, "true_class": 1},
                      size=64, entered_at=0.0, source_seq=0)
    assert clf.process(tup, _ctx()) == []
    assert clf.upstream_votes[1] == 1
    assert clf.predictions == 0


def test_upstream_prior_answers_cold_start():
    """Before any local training, the classifier follows the upstream
    region's consensus instead of guessing class 0."""
    clf = PrototypeClassifier("P", n_classes=3, cost_s=0.1)
    vote = StreamTuple(payload={"class": 2, "correct": True, "true_class": 2},
                       size=64, entered_at=0.0, source_seq=0)
    clf.process(vote, _ctx())
    frame = StreamTuple(payload={"features": np.zeros(FEATURE_DIM),
                                 "true_class": 0},
                        size=1024, entered_at=0.0, source_seq=1)
    (out,) = clf.process(frame, _ctx())
    assert out.payload["class"] == 2


def test_upstream_prior_breaks_prototype_near_ties():
    clf = PrototypeClassifier("P", n_classes=2, cost_s=0.1)
    # Train both classes onto (near-)identical prototypes.
    for i, cls in enumerate((0, 1)):
        tup = StreamTuple(payload={"features": np.ones(FEATURE_DIM),
                                   "true_class": cls},
                          size=1024, entered_at=0.0, source_seq=i)
        clf.process(tup, _ctx())
    vote = StreamTuple(payload={"class": 1, "correct": True, "true_class": 1},
                       size=64, entered_at=0.0, source_seq=2)
    clf.process(vote, _ctx())
    probe = StreamTuple(payload={"features": np.ones(FEATURE_DIM),
                                 "true_class": 1},
                        size=1024, entered_at=0.0, source_seq=3)
    (out,) = clf.process(probe, _ctx())
    assert out.payload["class"] == 1  # argmin alone would say 0


# -- end to end --------------------------------------------------------------
def run_app(app, scheme=NoFaultTolerance, duration=400.0, regions=1, seed=3):
    cfg = SystemConfig(n_regions=regions, phones_per_region=8,
                       idle_per_region=2, master_seed=seed)
    s = MobiStreamsSystem(cfg, app, scheme)
    s.run(duration)
    return s


def test_edgeml_produces_classifications():
    s = run_app(EdgeMLApp())
    m = s.metrics(warmup_s=60.0)
    rm = m.per_region["region0"]
    assert rm.output_tuples > 50
    assert 0.3 < rm.throughput_tps < 0.7  # lightly below the 0.5/s camera
    assert s.trace.value("op_errors") == 0
    region = s.regions[0]
    clf = region.nodes[region.placement.node_for("P", 0)].ops["P"]
    assert clf.predictions > 50
    assert clf.accuracy > 1.5 / clf.n_classes  # visibly above chance


def test_edgeml_with_checkpointing_recovers_partition_crash():
    cfg = SystemConfig(n_regions=1, phones_per_region=8, idle_per_region=4,
                       master_seed=3)
    s = MobiStreamsSystem(cfg, EdgeMLApp(), MobiStreamsScheme)
    s.start()
    s.injector.crash_at(350.0, ["region0.p2"])  # a partition phone
    s.run(800.0)
    rec = s.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"
    assert s.trace.count_of("sink_output", since=400.0) > 20
    assert s.trace.value("op_errors") == 0


def test_edgeml_cascades_over_regions():
    s = run_app(EdgeMLApp(), regions=2, duration=500.0)
    m = s.metrics(warmup_s=100.0)
    assert m.per_region["region1"].output_tuples > 30
    assert m.cellular_bytes > 0
    r1 = s.regions[1]
    clf = r1.nodes[r1.placement.node_for("P", 0)].ops["P"]
    assert clf.upstream_votes.sum() > 0  # region0's consensus arrived
