"""Tests for the data-center Ethernet model."""

import pytest

from repro.net import EthernetSwitch, Message
from repro.sim import Simulator, Trace
from repro.util import MB, Mbps


def test_basic_delivery():
    sim = Simulator()
    sw = EthernetSwitch(sim, port_bps=Mbps(800), latency_s=0.0)
    inbox = []
    sw.attach("s1", lambda m: None)
    sw.attach("s2", inbox.append)
    p = sim.process(sw.send(Message(src="s1", dst="s2", size=MB, kind="t")))
    sim.run()
    assert p.value is True
    assert len(inbox) == 1
    assert sim.now == pytest.approx(MB * 8 / Mbps(800))


def test_unknown_port_raises():
    sim = Simulator()
    sw = EthernetSwitch(sim)
    sw.attach("s1", lambda m: None)

    def proc(sim):
        try:
            yield from sw.send(Message(src="s1", dst="nope", size=1, kind="t"))
        except KeyError:
            return "raised"

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "raised"


def test_ethernet_is_fast_compared_to_cellular():
    """A 200 KB image crosses Ethernet in milliseconds (not the bottleneck)."""
    sim = Simulator()
    sw = EthernetSwitch(sim)
    sw.attach("a", lambda m: None)
    sw.attach("b", lambda m: None)
    sim.process(sw.send(Message(src="a", dst="b", size=200 * 1024, kind="img")))
    sim.run()
    assert sim.now < 0.01


def test_detach():
    sim = Simulator()
    sw = EthernetSwitch(sim)
    sw.attach("a", lambda m: None)
    sw.detach("a")
    with pytest.raises(KeyError):
        sim.process(sw.send(Message(src="x", dst="a", size=1, kind="t")))
        sim.run()


def test_trace_counter():
    trace = Trace()
    sim = Simulator()
    sw = EthernetSwitch(sim, trace=trace)
    sw.attach("a", lambda m: None)
    sw.attach("b", lambda m: None)
    sim.process(sw.send(Message(src="a", dst="b", size=500, kind="t")))
    sim.run()
    assert trace.value("net.ethernet.bytes") == 500


def test_rate_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        EthernetSwitch(sim, port_bps=0)
