"""Tests for the mean/burst-calibrated Gilbert-Elliott constructor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.loss import GilbertElliottLoss


def measured_loss(model, n=200_000, seed=0):
    rng = np.random.default_rng(seed)
    return 1.0 - model.sample(n, rng).mean()


@pytest.mark.parametrize("burst", [1.0, 4.0, 16.0, 64.0])
def test_from_mean_hits_target_loss(burst):
    model = GilbertElliottLoss.from_mean(mean_loss=0.08, mean_burst=burst)
    assert measured_loss(model) == pytest.approx(0.08, abs=0.02)


def test_from_mean_burst_lengths_are_geometric():
    """Bad-state runs average ~mean_burst datagrams."""
    model = GilbertElliottLoss.from_mean(mean_loss=0.1, mean_burst=16.0)
    rng = np.random.default_rng(1)
    ok = model.sample(300_000, rng)
    # Measure run lengths of losses (bad state is 90% lossy, so loss
    # runs approximate bad sojourns).
    losses = ~ok
    runs = []
    count = 0
    for bit in losses:
        if bit:
            count += 1
        elif count:
            runs.append(count)
            count = 0
    mean_run = float(np.mean(runs))
    # Loss runs are shorter than sojourns (10% of bad datagrams get
    # through, splitting runs); they must still far exceed i.i.d.'s ~1.1.
    assert mean_run > 3.0


def test_from_mean_validation():
    with pytest.raises(ValueError):
        GilbertElliottLoss.from_mean(mean_loss=0.95, mean_burst=4.0)
    with pytest.raises(ValueError):
        GilbertElliottLoss.from_mean(mean_loss=0.0, mean_burst=4.0)
    with pytest.raises(ValueError):
        GilbertElliottLoss.from_mean(mean_loss=0.1, mean_burst=0.5)


@given(mean_loss=st.floats(min_value=0.01, max_value=0.5),
       burst=st.floats(min_value=1.0, max_value=100.0))
@settings(max_examples=20, deadline=None)
def test_from_mean_probabilities_always_valid(mean_loss, burst):
    model = GilbertElliottLoss.from_mean(mean_loss=mean_loss, mean_burst=burst)
    for p in (model.p_good, model.p_bad, model.p_g2b, model.p_b2g):
        assert 0.0 <= p <= 1.0
