"""Tests for the ad-hoc WiFi cell."""

import numpy as np
import pytest

from repro.net import Message, WifiCell, WifiConfig
from repro.net.loss import BernoulliLoss, NoLoss
from repro.net.wifi import Unreachable
from repro.sim import RngRegistry, Simulator, Trace
from repro.util import KB, Mbps


def make_cell(loss=0.0, bandwidth=Mbps(2), trace=None, seed=42):
    sim = Simulator()
    cfg = WifiConfig(
        bandwidth_bps=bandwidth,
        loss_factory=lambda: BernoulliLoss(loss) if loss else NoLoss(),
        mean_loss=min(loss, 0.99),
    )
    cell = WifiCell(sim, RngRegistry(seed), cfg, name="r0", trace=trace)
    return sim, cell


def test_membership():
    sim, cell = make_cell()
    inbox = []
    cell.join("A", inbox.append)
    assert cell.is_member("A")
    assert list(cell.iter_members()) == ["A"]
    cell.leave("A")
    assert not cell.is_member("A")
    cell.leave("A")  # idempotent


def test_udp_unicast_delivers_without_loss():
    sim, cell = make_cell()
    inbox = []
    cell.join("A", lambda m: None)
    cell.join("B", inbox.append)
    msg = Message(src="A", dst="B", size=KB, kind="tuple", payload="hello")

    p = sim.process(cell.udp_unicast(msg))
    sim.run()
    assert p.value is True
    assert [m.payload for m in inbox] == ["hello"]


def test_udp_unicast_to_nonmember_returns_false():
    sim, cell = make_cell()
    cell.join("A", lambda m: None)
    msg = Message(src="A", dst="ghost", size=KB, kind="tuple")
    p = sim.process(cell.udp_unicast(msg))
    sim.run()
    assert p.value is False


def test_udp_unicast_lossy_channel_drops():
    sim, cell = make_cell(loss=1.0)
    inbox = []
    cell.join("A", lambda m: None)
    cell.join("B", inbox.append)
    p = sim.process(cell.udp_unicast(Message(src="A", dst="B", size=KB, kind="t")))
    sim.run()
    assert p.value is False
    assert inbox == []


def test_tcp_unicast_reliable_and_timed():
    sim, cell = make_cell(bandwidth=Mbps(2))
    inbox = []
    cell.join("A", lambda m: None)
    cell.join("B", inbox.append)
    size = 100 * KB
    p = sim.process(cell.tcp_unicast(Message(src="A", dst="B", size=size, kind="t")))
    sim.run()
    assert p.value is True
    assert len(inbox) == 1
    expected = (size + cell.config.header_bytes) * 8 / Mbps(2) + cell.config.latency_s
    assert sim.now == pytest.approx(expected, rel=1e-6)


def test_tcp_unicast_loss_derates_goodput():
    _, lossless = make_cell(loss=0.0)
    _, lossy = make_cell(loss=0.5)
    assert lossy.reliable_goodput() == pytest.approx(0.5 * lossless.reliable_goodput())


def test_tcp_unicast_unreachable_raises():
    sim, cell = make_cell()
    cell.join("A", lambda m: None)

    def proc(sim):
        try:
            yield from cell.tcp_unicast(Message(src="A", dst="gone", size=1, kind="t"))
        except Unreachable:
            return "raised"

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "raised"


def test_channel_serializes_transmissions():
    """Two concurrent sends cannot overlap on the half-duplex medium."""
    sim, cell = make_cell(bandwidth=Mbps(1))
    cell.join("A", lambda m: None)
    cell.join("B", lambda m: None)
    cell.join("C", lambda m: None)
    size = 125_000  # = 1 s airtime at 1 Mbps (ignoring headers)
    done = []

    def sender(sim, src, dst):
        yield from cell.tcp_unicast(Message(src=src, dst=dst, size=size, kind="t"))
        done.append(sim.now)

    sim.process(sender(sim, "A", "B"))
    sim.process(sender(sim, "C", "A"))
    sim.run()
    assert len(done) == 2
    # Second completion is ~2x the first: the sends serialized.
    assert done[1] >= 2 * (done[0] - cell.config.latency_s) * 0.99


def test_broadcast_round_reaches_all_members():
    sim, cell = make_cell()
    for m in ("S", "A", "B", "C"):
        cell.join(m, lambda m: None)
    idx = np.arange(100)

    p = sim.process(cell.udp_broadcast_round("S", idx, KB))
    sim.run()
    res = p.value
    assert set(res.received) == {"A", "B", "C"}
    for bm in res.received.values():
        assert bm.all()  # no loss configured
    assert res.bytes_sent == 100 * (KB + cell.config.header_bytes)


def test_broadcast_round_airtime_single_transmission():
    """Broadcast airtime is independent of the receiver count."""
    def run(n_receivers):
        sim, cell = make_cell(bandwidth=Mbps(1))
        cell.join("S", lambda m: None)
        for i in range(n_receivers):
            cell.join(f"R{i}", lambda m: None)
        p = sim.process(cell.udp_broadcast_round("S", np.arange(64), KB))
        sim.run()
        return p.value.duration

    assert run(1) == pytest.approx(run(7))


def test_broadcast_round_lossy_bitmaps_differ():
    sim, cell = make_cell(loss=0.4, seed=7)
    for m in ("S", "A", "B"):
        cell.join(m, lambda m: None)
    p = sim.process(cell.udp_broadcast_round("S", np.arange(2000), KB))
    sim.run()
    res = p.value
    a, b = res.received["A"], res.received["B"]
    assert 0 < a.sum() < 2000  # some but not all received
    assert not np.array_equal(a, b)  # per-receiver independence


def test_broadcast_round_empty_indices():
    sim, cell = make_cell()
    cell.join("S", lambda m: None)
    cell.join("A", lambda m: None)
    p = sim.process(cell.udp_broadcast_round("S", np.arange(0), KB))
    sim.run()
    assert p.value.bytes_sent == 0
    assert p.value.received["A"].size == 0


def test_broadcast_short_last_block_charged_correctly():
    sim, cell = make_cell(bandwidth=Mbps(1))
    cell.join("S", lambda m: None)
    cell.join("A", lambda m: None)
    hdr = cell.config.header_bytes
    p = sim.process(
        cell.udp_broadcast_round("S", np.arange(3), KB, last_block_size=100)
    )
    sim.run()
    assert p.value.bytes_sent == 2 * (KB + hdr) + (100 + hdr)


def test_control_exchange_requires_both_members():
    sim, cell = make_cell()
    cell.join("A", lambda m: None)

    def proc(sim):
        try:
            yield from cell.control_exchange("A", "B", KB)
        except Unreachable:
            return "raised"

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "raised"


def test_trace_counts_bytes():
    trace = Trace()
    sim, cell = make_cell(trace=trace)
    cell.join("A", lambda m: None)
    cell.join("B", lambda m: None)
    sim.process(cell.tcp_unicast(Message(src="A", dst="B", size=1000, kind="t")))
    sim.run()
    assert trace.value("net.wifi.bytes") > 1000


def test_iter_members_and_member_count():
    """Satellite: the hot broadcast path iterates membership without the
    per-access list copy that the ``members`` property makes."""
    sim, cell = make_cell()
    cell.join("A", lambda m: None)
    cell.join("B", lambda m: None)
    assert list(cell.iter_members()) == ["A", "B"]
    assert cell.member_count == 2
    # The deprecated property still returns a fresh, caller-owned list,
    # but warns on every access.
    with pytest.warns(DeprecationWarning, match="iter_members"):
        snapshot = cell.members
    snapshot.append("C")
    assert cell.member_count == 2
    cell.leave("A")
    assert list(cell.iter_members()) == ["B"]


def test_counter_handles_match_trace_counters():
    trace = Trace()
    sim, cell = make_cell(trace=None)
    cell2 = WifiCell(Simulator(), RngRegistry(1), WifiConfig(), name="r9",
                     trace=trace)
    cell2._count(100.0)
    cell2._count(24.0)
    assert trace.value("net.wifi.bytes") == 124.0
    assert trace.value("net.wifi.r9.bytes") == 124.0
    # Traceless cells count nothing and do not crash.
    cell._count(50.0)


def test_set_loss_invalidates_uniform_cache():
    """Replacing a member's loss model after join must not leave the
    batched broadcast path drawing with the stale cached p."""
    sim, cell = make_cell(loss=0.08)
    for m in ("A", "B", "C"):
        cell.join(m, lambda msg: None)
    assert cell._uniform_loss_p() == 0.08
    cell.set_loss("B", BernoulliLoss(0.5))
    assert cell._uniform_loss_p() is None  # heterogeneous: per-member path
    cell.set_loss("B", BernoulliLoss(0.08))
    assert cell._uniform_loss_p() == 0.08  # uniform again, batched path back
