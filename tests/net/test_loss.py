"""Tests for loss models."""

import pytest

from repro.net import BernoulliLoss, GilbertElliottLoss, NoLoss
from repro.sim import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(42).stream("test")


def test_no_loss_receives_everything(rng):
    assert NoLoss().sample(100, rng).all()
    assert NoLoss().sample_one(rng)


def test_bernoulli_zero_loss(rng):
    assert BernoulliLoss(0.0).sample(100, rng).all()


def test_bernoulli_total_loss(rng):
    assert not BernoulliLoss(1.0).sample(100, rng).any()


def test_bernoulli_rate_statistics(rng):
    model = BernoulliLoss(0.2)
    got = model.sample(50_000, rng)
    rate = 1.0 - got.mean()
    assert abs(rate - 0.2) < 0.01


def test_bernoulli_validates_p():
    with pytest.raises(ValueError):
        BernoulliLoss(-0.1)
    with pytest.raises(ValueError):
        BernoulliLoss(1.5)


def test_bernoulli_rejects_negative_n(rng):
    with pytest.raises(ValueError):
        BernoulliLoss(0.1).sample(-1, rng)


def test_gilbert_elliott_steady_state(rng):
    model = GilbertElliottLoss(p_good=0.01, p_bad=0.5, p_g2b=0.05, p_b2g=0.15)
    got = model.sample(100_000, rng)
    rate = 1.0 - got.mean()
    assert abs(rate - model.steady_state_loss) < 0.02


def test_gilbert_elliott_is_bursty(rng):
    """Losses under GE cluster together more than under Bernoulli."""
    ge = GilbertElliottLoss(p_good=0.0, p_bad=1.0, p_g2b=0.02, p_b2g=0.1)
    got = ge.sample(50_000, rng)
    lost = ~got
    # P(loss | previous loss) should far exceed the marginal loss rate.
    pairs = lost[:-1] & lost[1:]
    p_joint = pairs.sum() / max(1, lost[:-1].sum())
    marginal = lost.mean()
    assert p_joint > 2 * marginal


def test_gilbert_elliott_state_persists_between_calls(rng):
    model = GilbertElliottLoss(p_good=0.0, p_bad=1.0, p_g2b=1.0, p_b2g=0.0)
    model.sample(10, rng)  # forces the chain into the bad state
    assert model._in_bad
    got = model.sample(100, rng)
    assert not got.any()  # stuck in bad, everything lost


def test_gilbert_elliott_validation():
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_good=-0.1)


def test_gilbert_elliott_empty_sample(rng):
    assert GilbertElliottLoss().sample(0, rng).size == 0
