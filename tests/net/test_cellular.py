"""Tests for the cellular network model."""

import pytest

from repro.net import CellularConfig, CellularNetwork, Message
from repro.net.cellular import UnknownEndpoint
from repro.sim import RngRegistry, Simulator, Trace
from repro.util import KB, MB, Mbps


def make_net(trace=None, **cfg_kwargs):
    sim = Simulator()
    cfg = CellularConfig(**cfg_kwargs)
    net = CellularNetwork(sim, RngRegistry(42), cfg, trace=trace)
    return sim, net


def test_phone_to_controller_crosses_uplink_only():
    sim, net = make_net(
        uplink_phone_bps=(Mbps(0.1), Mbps(0.1)),
        uplink_capacity_bps=Mbps(10),
        latency_s=0.0,
        header_bytes=0,
    )
    inbox = []
    net.register_phone("p1", lambda m: None)
    net.register_wired("controller", inbox.append)
    size = 12_500  # 1 s at 0.1 Mbps
    p = sim.process(net.send(Message(src="p1", dst="controller", size=size, kind="c")))
    sim.run()
    assert p.value is True
    assert len(inbox) == 1
    assert sim.now == pytest.approx(1.0)


def test_phone_to_phone_crosses_both_directions():
    sim, net = make_net(
        uplink_phone_bps=(Mbps(0.1), Mbps(0.1)),
        downlink_phone_bps=(Mbps(0.5), Mbps(0.5)),
        latency_s=0.0,
        header_bytes=0,
    )
    inbox = []
    net.register_phone("a", lambda m: None)
    net.register_phone("b", inbox.append)
    size = 12_500  # uplink 1 s + downlink 0.2 s
    sim.process(net.send(Message(src="a", dst="b", size=size, kind="t")))
    sim.run()
    assert len(inbox) == 1
    assert sim.now == pytest.approx(1.2)


def test_unknown_endpoint_raises():
    sim, net = make_net()
    net.register_phone("a", lambda m: None)

    def proc(sim):
        try:
            yield from net.send(Message(src="a", dst="nope", size=1, kind="t"))
        except UnknownEndpoint:
            return "raised"

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "raised"


def test_phone_rates_within_band():
    _, net = make_net()
    for i in range(20):
        net.register_phone(f"p{i}", lambda m: None)
        up, dn = net.phone_rates(f"p{i}")
        assert Mbps(0.016) <= up <= Mbps(0.32)
        assert Mbps(0.35) <= dn <= Mbps(1.14)


def test_set_phone_rates_override():
    _, net = make_net()
    net.register_phone("p", lambda m: None)
    net.set_phone_rates("p", Mbps(0.2), Mbps(0.9))
    assert net.phone_rates("p") == (Mbps(0.2), Mbps(0.9))
    with pytest.raises(ValueError):
        net.set_phone_rates("p", 0, Mbps(1))


def test_uplink_contention_many_phones():
    """n simultaneous uploads share the tower capacity (Fig. 9 mechanism)."""

    def run(n):
        sim, net = make_net(
            uplink_phone_bps=(Mbps(0.32), Mbps(0.32)),
            uplink_capacity_bps=Mbps(0.64),
            latency_s=0.0,
            header_bytes=0,
        )
        net.register_wired("ctl", lambda m: None)
        for i in range(n):
            net.register_phone(f"p{i}", lambda m: None)
        for i in range(n):
            sim.process(
                net.send(Message(src=f"p{i}", dst="ctl", size=MB, kind="s"))
            )
        sim.run()
        return sim.now

    t1, t4, t8 = run(1), run(4), run(8)
    assert t1 < t4 < t8
    # With tower capacity 2 phone-links, 8 phones take ~4x one phone-pair.
    assert t8 == pytest.approx(4 * t4 / 2, rel=0.01)


def test_delivery_to_unregistered_mid_transfer_returns_false():
    sim, net = make_net(latency_s=0.0)
    net.register_phone("a", lambda m: None)
    net.register_phone("b", lambda m: None)
    p = sim.process(net.send(Message(src="a", dst="b", size=MB, kind="t")))
    sim.call_in(0.01, lambda: net.unregister("b"))
    sim.run()
    assert p.value is False


def test_trace_counts_cellular_bytes():
    trace = Trace()
    sim, net = make_net(trace=trace, latency_s=0.0)
    net.register_phone("a", lambda m: None)
    net.register_wired("ctl", lambda m: None)
    sim.process(net.send(Message(src="a", dst="ctl", size=KB, kind="c")))
    sim.run()
    assert trace.value("net.cellular.bytes") >= KB


def test_config_validation():
    with pytest.raises(ValueError):
        CellularConfig(uplink_capacity_bps=0)
    with pytest.raises(ValueError):
        CellularConfig(uplink_phone_bps=(Mbps(0.5), Mbps(0.1)))
