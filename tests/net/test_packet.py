"""Tests for messages and fragmentation."""

import pytest

from repro.net import Message, fragment_count
from repro.net.packet import datagram_delivery_probability


def test_message_fields():
    m = Message(src="A", dst="B", size=100, kind="tuple")
    assert not m.is_broadcast
    assert m.size == 100


def test_broadcast_message():
    m = Message(src="A", dst=None, size=10, kind="token")
    assert m.is_broadcast


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Message(src="A", dst="B", size=-1, kind="x")


def test_message_ids_unique():
    a = Message(src="A", dst="B", size=1, kind="x")
    b = Message(src="A", dst="B", size=1, kind="x")
    assert a.msg_id != b.msg_id


def test_fragment_count():
    assert fragment_count(0) == 1
    assert fragment_count(1024) == 1
    assert fragment_count(1500) == 1
    assert fragment_count(1501) == 2
    assert fragment_count(15000) == 10


def test_delivery_probability_shrinks_with_size():
    small = datagram_delivery_probability(1024, 0.1)
    large = datagram_delivery_probability(64 * 1024, 0.1)
    assert small > large
    # 1 KB fits one fragment: delivery = 1 - loss
    assert small == pytest.approx(0.9)


def test_delivery_probability_validation():
    with pytest.raises(ValueError):
        datagram_delivery_probability(100, 1.5)
