"""Tests for max-min fair allocation and the processor-sharing pipe."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import FairSharePipe, max_min_fair_rates
from repro.sim import Simulator
from repro.util import MB, Mbps


# -- allocation ----------------------------------------------------------
def test_equal_shares_without_caps():
    rates = max_min_fair_rates(90.0, [np.inf, np.inf, np.inf])
    assert rates.tolist() == [30.0, 30.0, 30.0]


def test_capped_flow_redistributes():
    rates = max_min_fair_rates(90.0, [10.0, np.inf, np.inf])
    assert rates.tolist() == [10.0, 40.0, 40.0]


def test_all_capped_below_capacity():
    rates = max_min_fair_rates(100.0, [10.0, 20.0])
    assert rates.tolist() == [10.0, 20.0]


def test_empty_flows():
    assert max_min_fair_rates(100.0, []).size == 0


def test_negative_capacity_raises():
    with pytest.raises(ValueError):
        max_min_fair_rates(-1.0, [1.0])


def test_negative_cap_raises():
    with pytest.raises(ValueError):
        max_min_fair_rates(1.0, [-1.0])


@given(
    capacity=st.floats(min_value=0.1, max_value=1e9),
    caps=st.lists(st.floats(min_value=0.01, max_value=1e9), min_size=1, max_size=20),
)
def test_allocation_invariants(capacity, caps):
    rates = max_min_fair_rates(capacity, caps)
    # never exceed individual caps
    assert np.all(rates <= np.asarray(caps) * (1 + 1e-9))
    # never exceed capacity
    assert rates.sum() <= capacity * (1 + 1e-9)
    # work-conserving: uses min(capacity, sum of caps)
    expected = min(capacity, float(np.sum(caps)))
    assert rates.sum() == pytest.approx(expected, rel=1e-6)


@given(
    capacity=st.floats(min_value=1.0, max_value=1e6),
    n=st.integers(min_value=1, max_value=10),
)
def test_uncapped_flows_get_equal_shares(capacity, n):
    rates = max_min_fair_rates(capacity, [np.inf] * n)
    assert np.allclose(rates, capacity / n)


# -- pipe ----------------------------------------------------------------
def test_single_transfer_time():
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps=Mbps(8))
    done = pipe.transfer(MB)  # 1 MB over 8 Mbps ≈ 1.048576 s
    sim.run_until_event(done)
    assert sim.now == pytest.approx(1.048576)


def test_zero_byte_transfer_completes_immediately():
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps=100.0)
    done = pipe.transfer(0)
    assert done.triggered


def test_two_equal_transfers_share_capacity():
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps=Mbps(8))
    d1 = pipe.transfer(MB)
    d2 = pipe.transfer(MB)
    t_done = []
    d1.add_callback(lambda e: t_done.append(sim.now))
    d2.add_callback(lambda e: t_done.append(sim.now))
    sim.run()
    # Both complete at 2x the solo time.
    assert t_done == [pytest.approx(2 * 1.048576)] * 2


def test_late_arrival_slows_first_flow():
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps=800.0)  # 100 B/s
    times = {}
    d1 = pipe.transfer(100)  # alone: 1 s
    d1.add_callback(lambda e: times.__setitem__("d1", sim.now))

    def second(sim):
        yield sim.timeout(0.5)
        d2 = pipe.transfer(100)
        d2.add_callback(lambda e: times.__setitem__("d2", sim.now))

    sim.process(second(sim))
    sim.run()
    # d1: 50 B alone in 0.5 s, then 50 B at half rate -> 0.5 + 1.0 = 1.5 s
    assert times["d1"] == pytest.approx(1.5)
    # d2: 50 B at half rate (to t=1.5), then 50 B alone -> 0.5+1.0+0.5 = 2.0
    assert times["d2"] == pytest.approx(2.0)


def test_per_flow_cap_respected():
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps=1_000_000.0)
    done = pipe.transfer(1000, cap_bps=8000.0)  # capped at 1000 B/s -> 1 s
    sim.run_until_event(done)
    assert sim.now == pytest.approx(1.0)


def test_capped_flow_leaves_room_for_others():
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps=800.0)
    times = {}
    d1 = pipe.transfer(100, cap_bps=80.0)  # 10 B/s cap -> 10 s
    d2 = pipe.transfer(100)  # gets 90 B/s -> ~1.11 s
    d1.add_callback(lambda e: times.__setitem__("d1", sim.now))
    d2.add_callback(lambda e: times.__setitem__("d2", sim.now))
    sim.run()
    assert times["d1"] == pytest.approx(10.0)
    assert times["d2"] == pytest.approx(100.0 / 90.0)


def test_many_flows_contention_scales():
    """n simultaneous identical transfers take ~n times the solo time."""
    def run(n):
        sim = Simulator()
        pipe = FairSharePipe(sim, capacity_bps=8000.0)
        for _ in range(n):
            pipe.transfer(1000)
        sim.run()
        return sim.now

    solo = run(1)
    assert run(4) == pytest.approx(4 * solo)
    assert run(8) == pytest.approx(8 * solo)


def test_transfer_validation():
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps=100.0)
    with pytest.raises(ValueError):
        pipe.transfer(-1)
    with pytest.raises(ValueError):
        pipe.transfer(10, cap_bps=0)
    with pytest.raises(ValueError):
        FairSharePipe(sim, capacity_bps=0)


def test_active_flows_counter():
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps=800.0)
    pipe.transfer(100)
    pipe.transfer(100)
    assert pipe.active_flows == 2
    sim.run()
    assert pipe.active_flows == 0
