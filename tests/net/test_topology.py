"""Tests for planar geometry."""

import pytest

from repro.net import Position, RegionArea, distance, in_range
from repro.sim import RngRegistry


def test_distance():
    assert distance(Position(0, 0), Position(3, 4)) == 5.0


def test_in_range():
    a, b = Position(0, 0), Position(0, 30)
    assert in_range(a, b, 50)
    assert not in_range(a, b, 20)
    assert in_range(a, b, 30)  # boundary inclusive


def test_in_range_negative_raises():
    with pytest.raises(ValueError):
        in_range(Position(0, 0), Position(1, 1), -1)


def test_moved_and_towards():
    p = Position(0, 0)
    assert p.moved(1, 2) == Position(1, 2)
    q = p.towards(Position(10, 0), 4)
    assert q == Position(4, 0)
    assert p.towards(p, 5) == p  # zero distance guard


def test_region_contains():
    r = RegionArea(Position(0, 0), radius=10)
    assert r.contains(Position(5, 5))
    assert not r.contains(Position(20, 0))


def test_region_radius_validation():
    with pytest.raises(ValueError):
        RegionArea(Position(0, 0), radius=0)


def test_region_random_point_inside():
    rng = RngRegistry(1).stream("geo")
    r = RegionArea(Position(10, -5), radius=7)
    for _ in range(200):
        assert r.contains(r.random_point(rng))


def test_region_exit_point_outside():
    rng = RngRegistry(1).stream("geo")
    r = RegionArea(Position(0, 0), radius=10)
    for _ in range(50):
        assert not r.contains(r.exit_point(rng))


def test_as_tuple():
    assert Position(1.5, 2.5).as_tuple() == (1.5, 2.5)
