"""Every example script must run to completion as a real subprocess.

These are the repo's live documentation; a broken example is a broken
deliverable.  The slow Fig. 9-style sweep (``failure_burst.py``) only
gets an import check here — it runs ~25 full simulations.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def run_example(name, timeout=420):
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout, env=env,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "throughput:" in out
    assert "recoveries:       1" in out


def test_scheme_comparison():
    out = run_example("scheme_comparison.py")
    for label in ("base", "rep-2", "local", "dist-1", "ms-8"):
        assert label in out


def test_mobility_handoff():
    out = run_example("mobility_handoff.py")
    assert "urgent mode" in out
    assert "state transfer" in out
    assert "chronic battery" in out
    assert "outcome 'replaced'" in out


def test_region_startup():
    out = run_example("region_startup.py")
    assert "region_bypassed" in out
    assert "region_unbypassed" in out
    assert "boot time" in out


def test_bus_capacity():
    out = run_example("bus_capacity.py")
    assert out.strip()


def test_signalguru_demo():
    out = run_example("signalguru_demo.py")
    assert out.strip()


def test_scenario_sweep():
    out = run_example("scenario_sweep.py")
    assert "built-in scenarios:" in out
    assert "paper-fig8" in out
    assert "round-trips through JSON: True" in out
    assert "ms-8 recovered" in out


def test_edgeml_sweep():
    out = run_example("edgeml_sweep.py")
    assert "edgeml split profiles" in out
    assert "round-trips through JSON: True" in out
    assert "edgeml[n_stages=2]" in out
    assert "edgeml[n_stages=6]" in out


def test_failure_burst_imports():
    """The sweep itself takes minutes; just verify the module loads and
    its scheme/tolerance wiring is consistent."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "failure_burst", EXAMPLES / "failure_burst.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert set(mod.SCHEMES) <= set(mod.TOLERANCE)
