"""Integration tests for node runtime + region mechanics."""

import pytest

from repro.baselines import NoFaultTolerance
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import (
    MapOperator,
    SinkOperator,
    SourceOperator,
)
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig


class PipelineApp(AppSpec):
    """S -> M -> K across three phones, 20 tuples at 1/s."""

    name = "pipeline"

    def __init__(self, cost=0.05, n=20, fanout=False):
        self.cost = cost
        self.n = n
        self.fanout = fanout

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("S"))
        g.add_operator(MapOperator("M", lambda p: p * 2, cost_s=self.cost))
        if self.fanout:
            g.add_operator(MapOperator("M2", lambda p: p + 1, cost_s=self.cost))
        g.add_operator(SinkOperator("K"))
        if self.fanout:
            g.connect("S", "M").connect("S", "M2")
            g.connect("M", "K").connect("M2", "K")
        else:
            g.chain("S", "M", "K")
        return g

    def build_placement(self, phone_ids):
        ops = [["S"], ["M"], ["K"]]
        if self.fanout:
            ops = [["S"], ["M"], ["M2"], ["K"]]
        return Placement.pack_groups(ops, phone_ids)

    def build_workloads(self, rng, region_index):
        if region_index != 0:
            return {}

        def wl():
            for i in range(self.n):
                yield (1.0, i, 5000)

        return {"S": wl()}


def build(app=None, phones=3, idle=1, regions=1, scheme=NoFaultTolerance, seed=1):
    cfg = SystemConfig(
        n_regions=regions, phones_per_region=phones, idle_per_region=idle,
        master_seed=seed,
    )
    return MobiStreamsSystem(cfg, app or PipelineApp(), scheme)


def test_pipeline_delivers_all_tuples():
    s = build()
    s.run(60.0)
    m = s.metrics()
    assert m.per_region["region0"].output_tuples == 20


def test_latency_includes_processing_and_network():
    s = build()
    s.run(60.0)
    m = s.metrics()
    lat = m.per_region["region0"].mean_latency_s
    assert lat > 0.05  # at least the map cost
    assert lat < 5.0


def test_fanout_diamond_no_dedup_loss():
    """A diamond (S feeds M and M2, both feed K) must emit 2 results/tuple."""
    s = build(app=PipelineApp(fanout=True), phones=4)
    s.run(60.0)
    m = s.metrics()
    assert m.per_region["region0"].output_tuples == 40


def test_intra_node_chaining():
    """All ops on one phone: no WiFi traffic for the data path."""

    class OnePhone(PipelineApp):
        def build_placement(self, phone_ids):
            return Placement.from_groups({phone_ids[0]: ["S", "M", "K"]})

    s = build(app=OnePhone(), phones=1, idle=0)
    s.run(60.0)
    m = s.metrics()
    assert m.per_region["region0"].output_tuples == 20
    assert m.wifi_bytes == 0


def test_cascade_forwards_between_regions():
    s = build(regions=3)
    s.run(200.0)
    m = s.metrics()
    for name in ("region0", "region1", "region2"):
        assert m.per_region[name].output_tuples == 20
    # End-to-end latency grows down the cascade.
    assert (
        m.per_region["region2"].mean_latency_s
        > m.per_region["region0"].mean_latency_s
    )


def test_crash_without_ft_stops_region():
    s = build()
    s.injector.crash_at(5.0, ["region0.p1"])  # the M node
    s.run(120.0)
    region = s.regions[0]
    assert region.stopped
    m = s.metrics()
    assert m.per_region["region0"].output_tuples < 20


def test_crash_of_idle_phone_is_harmless():
    s = build()
    s.injector.crash_at(5.0, ["region0.idle0"])
    s.run(60.0)
    assert not s.regions[0].stopped
    assert s.metrics().per_region["region0"].output_tuples == 20


def test_departure_without_ft_stops_region():
    """Prior schemes treat departures as failures (base has no handling)."""
    s = build()
    s.sim.call_at(5.0, lambda: s.apply_departure("region0.p1"))
    s.run(120.0)
    assert s.regions[0].stopped


def test_urgent_mode_keeps_tuples_flowing_briefly():
    """Between departure and controller reaction, traffic uses cellular."""
    s = build()
    s.sim.call_at(5.5, lambda: s.apply_departure("region0.p1"))
    s.run(8.0)  # before the departure is confirmed/acted on
    assert any(True for _ in s.trace.select("urgent_mode"))


def test_region_stop_is_idempotent():
    s = build()
    s.run(30.0)
    s.regions[0].stop()
    s.regions[0].stop()
    assert s.regions[0].stopped


def test_pick_replacements_prefers_idle():
    s = build(phones=3, idle=2)
    s.run(1.0)
    region = s.regions[0]
    repl = region.pick_replacements(["region0.p1"])
    assert repl == {"region0.p1": "region0.idle0"}


def test_pick_replacements_exhausted():
    s = build(phones=3, idle=1)
    s.run(1.0)
    region = s.regions[0]
    assert region.pick_replacements(["region0.p0", "region0.p1"]) is None


def test_metrics_warmup_window():
    s = build()
    s.run(60.0)
    m = s.metrics(warmup_s=10.0)
    assert m.per_region["region0"].output_tuples < 20


def test_system_double_start_rejected():
    s = build()
    s.start()
    with pytest.raises(RuntimeError):
        s.start()


def test_unknown_phone_crash_rejected():
    s = build()
    s.start()
    with pytest.raises(KeyError):
        s.injector.on_crash(s._apply_crash)  # re-register fine
        s._apply_crash("ghost", "test")
