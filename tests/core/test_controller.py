"""Tests for the controller's detection and orchestration (Section III-D)."""

import pytest

from repro.baselines import NoFaultTolerance
from repro.checkpoint import MobiStreamsScheme
from repro.core.controller import UNRECOVERABLE, ControllerConfig

from tests.baselines._harness import build_system


def test_controller_config_validation():
    with pytest.raises(ValueError):
        ControllerConfig(ping_period_s=0)
    with pytest.raises(ValueError):
        ControllerConfig(ping_timeout_s=-1)


def test_ping_loop_detects_dead_source_node():
    """The controller pings source nodes over cellular; a silent source
    is declared failed within ~ping period + timeout."""
    sys_ = build_system(MobiStreamsScheme, period=60.0)
    sys_.start()
    src = sys_.regions[0].placement.node_for("S", 0)
    # Kill the source silently: its downstream neighbours don't probe it
    # (they are downstream), so only the controller ping can find it.
    sys_.injector.crash_at(100.0, [src])
    sys_.run(250.0)
    reported = [r for r in sys_.trace.select("failure_reported")
                if r.data["phone"] == src]
    assert reported
    # 30 s ping period + 10 s timeout (+ scheduling slack).
    assert reported[0].time <= 100.0 + 30.0 + 10.0 + 10.0


def test_burst_reports_coalesce_into_one_recovery():
    sys_ = build_system(MobiStreamsScheme, period=60.0)
    sys_.start()
    region = sys_.regions[0]
    hits = [region.placement.node_for("M1", 0),
            region.placement.node_for("M2", 0),
            region.placement.node_for("K", 0)]
    sys_.injector.crash_at(130.0, hits)
    sys_.run(400.0)
    recs = list(sys_.trace.select("recovery_started"))
    assert len(recs) == 1
    assert sorted(recs[0].data["failed"]) == sorted(hits)


def test_departure_confirm_escalates_if_phone_dies_meanwhile():
    """A departure report whose phone dies during GPS confirmation is
    escalated to a failure (Section III-E's special case)."""
    sys_ = build_system(MobiStreamsScheme, period=60.0)
    sys_.start()
    region = sys_.regions[0]
    gone = region.placement.node_for("M1", 0)
    # Break WiFi (departure report) then crash before confirmation (2 s).
    sys_.sim.call_at(100.0, lambda: region.wifi.leave(gone))
    sys_.sim.call_at(100.5, lambda: region.apply_crash(gone, "died leaving"))
    sys_.run(300.0)
    # Handled as a failure (recovery), not a state transfer.
    assert not any(True for _ in sys_.trace.select("departure_state_transfer"))
    rec = sys_.trace.last("recovery_finished")
    assert rec is not None and rec.data["outcome"] == "recovered"


def test_unrecoverable_outcome_stops_and_bypasses_region():
    sys_ = build_system(NoFaultTolerance)
    sys_.start()
    sys_.injector.crash_at(100.0, ["region0.p1"])
    sys_.run(200.0)
    assert sys_.regions[0].stopped
    rec = sys_.trace.last("recovery_finished")
    assert rec.data["outcome"] == UNRECOVERABLE


def test_checkpoint_clock_fires_every_period():
    sys_ = build_system(MobiStreamsScheme, period=50.0)
    sys_.run(270.0)
    reqs = list(sys_.trace.select("checkpoint_requested"))
    assert len(reqs) == 5  # t ≈ 50, 100, 150, 200, 250
    gaps = [b.time - a.time for a, b in zip(reqs, reqs[1:])]
    assert all(abs(g - 50.0) < 1.0 for g in gaps)


def test_checkpoint_clock_rejects_bad_period():
    sys_ = build_system(MobiStreamsScheme)
    sys_.start()
    with pytest.raises(ValueError):
        sys_.controller.start_checkpoint_clock(sys_.regions[0], 0.0)


def test_failed_phones_unregister_from_cellular():
    sys_ = build_system(MobiStreamsScheme, period=60.0)
    sys_.start()
    hit = sys_.regions[0].placement.node_for("M2", 0)
    sys_.injector.crash_at(130.0, [hit])
    sys_.run(300.0)
    assert not sys_.cellular.is_registered(hit)


def test_duplicate_failure_reports_are_ignored():
    sys_ = build_system(MobiStreamsScheme, period=60.0)
    sys_.start()
    region = sys_.regions[0]
    hit = region.placement.node_for("M1", 0)
    sys_.injector.crash_at(130.0, [hit])
    # File extra manual reports for the same phone.
    sys_.sim.call_at(131.0, lambda: sys_.controller.on_failure_report(region, hit))
    sys_.sim.call_at(132.0, lambda: sys_.controller.on_failure_report(region, hit))
    sys_.run(400.0)
    assert len(list(sys_.trace.select("recovery_started"))) == 1
