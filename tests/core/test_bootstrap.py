"""Tests for the Section III-A startup protocol."""

import pytest

from repro.baselines import NoFaultTolerance
from repro.checkpoint import MobiStreamsScheme
from repro.core.bootstrap import BootstrapConfig
from repro.core.system import MobiStreamsSystem, SystemConfig

from tests.baselines._harness import PipelineApp, sink_seqs


def make_system(n_regions=1, scheme=NoFaultTolerance, phones=4, idle=2, seed=5):
    cfg = SystemConfig(n_regions=n_regions, phones_per_region=phones,
                       idle_per_region=idle, master_seed=seed,
                       checkpoint_period_s=60.0)
    return MobiStreamsSystem(cfg, PipelineApp(), scheme)


def test_config_validation():
    with pytest.raises(ValueError):
        BootstrapConfig(dwell_s=-1.0)
    with pytest.raises(ValueError):
        BootstrapConfig(min_phones=0)


def test_phones_register_after_dwell():
    s = make_system()
    s.start_staged(BootstrapConfig(dwell_s=10.0))
    s.run(5.0)
    assert not any(True for _ in s.trace.select("phone_registered"))
    s.run(20.0)
    regs = list(s.trace.select("phone_registered"))
    assert len(regs) == 6  # 4 compute + 2 idle
    assert all(r.time >= 10.0 for r in regs)


def test_region_boots_and_processes():
    s = make_system()
    boot = s.start_staged(BootstrapConfig(dwell_s=10.0))
    s.run(400.0)
    rec = boot.records["region0"]
    assert not rec.skipped
    assert rec.t_ready is not None
    seqs = sink_seqs(s)
    assert seqs and len(seqs) == len(set(seqs))


def test_boot_takes_about_a_minute_not_more():
    """Paper: 'it takes about 1 minute to start' (4 regions).

    Dwell (10 s) + registration + 256 KB code bundle per phone over the
    shared cellular downlink + WiFi mesh — tens of seconds, well under
    two minutes.
    """
    s = make_system(n_regions=4)
    boot = s.start_staged(BootstrapConfig(dwell_s=10.0))
    s.run(300.0)
    t = boot.max_boot_time()
    assert 10.0 < t < 120.0


def test_boot_time_independent_of_region_count():
    """Regions boot in parallel: 4 regions ≈ 1 region boot time."""
    times = {}
    for n in (1, 4):
        s = make_system(n_regions=n)
        boot = s.start_staged(BootstrapConfig(dwell_s=10.0))
        s.run(300.0)
        times[n] = boot.max_boot_time()
    assert times[4] < 2.0 * times[1]


def test_checkpoint_clock_armed_after_staged_boot():
    s = make_system(scheme=MobiStreamsScheme)
    boot = s.start_staged(BootstrapConfig(dwell_s=5.0))
    s.run(200.0)
    assert any(True for _ in s.trace.select("checkpoint_requested"))


def test_staged_start_claims_the_one_shot_start():
    s = make_system()
    s.start_staged()
    with pytest.raises(RuntimeError):
        s.start()
    with pytest.raises(RuntimeError):
        s.start_staged()


def test_underpopulated_region_is_skipped_and_bypassed():
    """A 3-region cascade whose middle region never reaches the phone
    threshold: the cascade routes around it (Section III-A)."""
    s = make_system(n_regions=3)
    # Phones of region1 never arrive (arrival beyond the deadline).
    arrivals = {pid: 10_000.0 for pid in s.regions[1].phones}
    boot = s.start_staged(
        BootstrapConfig(dwell_s=5.0, deadline_s=60.0), arrivals=arrivals)
    s.run(400.0)
    assert boot.records["region1"].skipped
    assert boot.records["region0"].t_ready is not None
    assert boot.records["region2"].t_ready is not None
    # region0 now feeds region2 directly.
    downs = s.regions[0].downstream_regions()
    assert s.regions[2] in downs and s.regions[1] not in downs
    # End-to-end data still arrives at the final region.
    outs = [r for r in s.trace.select("sink_output")
            if r.data["region"] == "region2"]
    assert outs


def test_skipped_region_boots_when_phones_arrive_late():
    s = make_system(n_regions=3)
    arrivals = {pid: 150.0 for pid in s.regions[1].phones}
    boot = s.start_staged(
        BootstrapConfig(dwell_s=5.0, deadline_s=60.0), arrivals=arrivals)
    s.run(100.0)
    assert boot.records["region1"].skipped
    s.run(300.0)
    rec = boot.records["region1"]
    assert not rec.skipped
    assert rec.t_ready is not None
    # Cascade restored: region0 -> region1 -> region2.
    assert s.regions[1] in s.regions[0].downstream_regions()
    assert s.regions[1] not in [s.regions[2]] and \
        s.regions[2] in s.regions[1].downstream_regions()


def test_late_phone_registration_api():
    s = make_system(n_regions=1)
    arrivals = {pid: 10_000.0 for pid in s.regions[0].phones}
    boot = s.start_staged(
        BootstrapConfig(dwell_s=5.0, deadline_s=30.0), arrivals=arrivals)
    s.run(60.0)
    assert boot.records["region0"].skipped
    for pid in list(s.regions[0].phones):
        boot.register_late_phone(0, pid)
    s.run(100.0)
    assert boot.records["region0"].t_ready is not None
    with pytest.raises(KeyError):
        boot.register_late_phone(0, "nope")


def test_dead_phone_never_registers():
    s = make_system()
    s.regions[0].phones["region0.p1"].alive = False
    s.start_staged(BootstrapConfig(dwell_s=5.0))
    s.run(60.0)
    regs = [r.data["phone"] for r in s.trace.select("phone_registered")]
    assert "region0.p1" not in regs
