"""Tests for tuples and tokens."""

import pytest

from repro.core.tuples import CatchupEnd, StreamTuple, Token


def test_tuple_basics():
    t = StreamTuple(payload={"x": 1}, size=100, entered_at=5.0, source_seq=3)
    assert t.size == 100
    assert not t.replay


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        StreamTuple(payload=None, size=-1, entered_at=0.0)


def test_derive_inherits_lineage():
    t = StreamTuple(payload=1, size=10, entered_at=2.0, source_seq=7, lineage=("S1", 7))
    d = t.derive(payload=2, size=20)
    assert d.entered_at == 2.0
    assert d.source_seq == 7
    assert d.lineage == ("S1", 7)
    assert d.size == 20
    assert d.uid != t.uid


def test_as_replay():
    t = StreamTuple(payload=1, size=10, entered_at=0.0)
    r = t.as_replay()
    assert r.replay and not t.replay
    assert r.uid != t.uid


def test_uids_monotone():
    a = StreamTuple(payload=None, size=0, entered_at=0.0)
    b = StreamTuple(payload=None, size=0, entered_at=0.0)
    assert b.uid > a.uid


def test_token_forwarding():
    t = Token(version=3, origin="nodeA")
    f = t.forwarded_by("nodeB")
    assert f.version == 3
    assert f.origin == "nodeB"
    assert f.size == t.size


def test_token_is_small():
    """The paper: token overhead < 1% of tuple size (tuples are images)."""
    t = Token(version=1, origin="x")
    assert t.size < 0.01 * 100 * 1024


def test_catchup_end_marker():
    m = CatchupEnd(recovery_id=2)
    assert m.size > 0


def test_stream_tuple_has_slots():
    t = StreamTuple(payload=None, size=0, entered_at=0.0)
    assert not hasattr(t, "__dict__")
    with pytest.raises(AttributeError):
        t.extra_field = 1


def test_token_is_immutable_value_type():
    a = Token(version=1, origin="x")
    b = Token(version=1, origin="x")
    c = Token(version=2, origin="x")
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert not hasattr(a, "__dict__")
    with pytest.raises(AttributeError):
        a.version = 9
    assert len({a, b, c}) == 2


def test_token_pickles_and_copies():
    """Regression: the immutability guard must not break pickle/copy,
    which restore slot state via setattr by default."""
    import copy
    import pickle

    t = Token(version=3, origin="nodeA")
    assert pickle.loads(pickle.dumps(t)) == t
    assert copy.copy(t) == t
    assert copy.deepcopy(t) == t
