"""Tests for the query network DAG."""

import pytest

from repro.core.graph import GraphError, QueryGraph
from repro.core.operator import MapOperator, SinkOperator, SourceOperator


def diamond():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    g.add_operator(MapOperator("A", lambda p: p))
    g.add_operator(MapOperator("B", lambda p: p))
    g.add_operator(SinkOperator("K"))
    g.connect("S", "A").connect("S", "B").connect("A", "K").connect("B", "K")
    return g


def test_valid_diamond():
    g = diamond()
    g.validate()
    assert len(g) == 4
    assert g.source_names() == ["S"]
    assert g.sink_names() == ["K"]
    assert set(g.upstream_of("K")) == {"A", "B"}
    assert set(g.downstream_of("S")) == {"A", "B"}


def test_duplicate_name_rejected():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    with pytest.raises(GraphError):
        g.add_operator(SourceOperator("S"))


def test_unknown_operator_in_connect():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    with pytest.raises(GraphError):
        g.connect("S", "missing")


def test_self_loop_rejected():
    g = QueryGraph()
    g.add_operator(MapOperator("A", lambda p: p))
    with pytest.raises(GraphError):
        g.connect("A", "A")


def test_cycle_rejected():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    g.add_operator(MapOperator("A", lambda p: p))
    g.add_operator(MapOperator("B", lambda p: p))
    g.add_operator(SinkOperator("K"))
    g.chain("S", "A", "B", "K")
    g.connect("B", "A")
    with pytest.raises(GraphError, match="cycle"):
        g.validate()


def test_empty_graph_rejected():
    with pytest.raises(GraphError):
        QueryGraph().validate()


def test_no_source_rejected():
    g = QueryGraph()
    g.add_operator(MapOperator("A", lambda p: p))
    g.add_operator(SinkOperator("K"))
    g.connect("A", "K")
    with pytest.raises(GraphError, match="source"):
        g.validate()


def test_source_with_upstream_rejected():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    g.add_operator(SourceOperator("S2"))
    g.add_operator(SinkOperator("K"))
    g.connect("S", "S2")
    g.connect("S2", "K")
    with pytest.raises(GraphError, match="upstream"):
        g.validate()


def test_unreachable_operator_rejected():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    g.add_operator(SinkOperator("K"))
    g.add_operator(MapOperator("orphan", lambda p: p))
    g.add_operator(SinkOperator("K2"))
    g.connect("S", "K")
    g.connect("orphan", "K2")
    with pytest.raises(GraphError, match="unreachable"):
        g.validate()


def test_dangling_operator_rejected():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    g.add_operator(MapOperator("A", lambda p: p))
    g.add_operator(SinkOperator("K"))
    g.connect("S", "K")
    g.connect("S", "A")  # A reaches no sink
    with pytest.raises(GraphError, match="sink"):
        g.validate()


def test_topological_order():
    g = diamond()
    order = g.topological_order()
    assert order.index("S") < order.index("A") < order.index("K")
    assert order.index("S") < order.index("B") < order.index("K")


def test_node_graph_collapse():
    g = diamond()
    ng = g.node_graph({"S": "n0", "A": "n1", "B": "n1", "K": "n2"})
    assert set(ng.nodes) == {"n0", "n1", "n2"}
    assert set(ng.edges) == {("n0", "n1"), ("n1", "n2")}


def test_node_graph_cycle_rejected():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    g.add_operator(MapOperator("A", lambda p: p))
    g.add_operator(MapOperator("B", lambda p: p))
    g.add_operator(SinkOperator("K"))
    g.chain("S", "A", "B", "K")
    # A on n1, B on n2, but K back on n1 with S->A: n1->n2->n1 cycle.
    with pytest.raises(GraphError, match="cycle"):
        g.node_graph({"S": "n0", "A": "n1", "B": "n2", "K": "n1"})


def test_node_graph_missing_assignment():
    g = diamond()
    with pytest.raises(GraphError):
        g.node_graph({"S": "n0"})


def test_contains_and_names():
    g = diamond()
    assert "A" in g
    assert "missing" not in g
    assert g.names() == ["S", "A", "B", "K"]
