"""Tests for windowed operators, including recovery of window state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import MobiStreamsScheme
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import OperatorContext
from repro.core.placement import Placement
from repro.core.operator import SinkOperator, SourceOperator
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.core.tuples import StreamTuple
from repro.core.windows import (
    SlidingCountWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
)
from repro.util import KB


def ctx(now=0.0):
    return OperatorContext(now=now, rng=None)


def feed(op, payloads, t=0.0, dt=0.0):
    """Run payloads through an operator; return emitted payloads."""
    out = []
    now = t
    for i, p in enumerate(payloads):
        tup = StreamTuple(payload=p, size=100, entered_at=now, source_seq=i)
        out.extend(o.payload for o in op.process(tup, ctx(now)))
        now += dt
    return out


# -- tumbling count -----------------------------------------------------------
def test_tumbling_emits_every_size_tuples():
    w = TumblingCountWindow("w", size=3, aggregate=sum)
    assert feed(w, [1, 2, 3, 4, 5, 6, 7]) == [6, 15]
    assert w.window_fill == 1  # the 7 awaits two more


def test_tumbling_validation():
    with pytest.raises(ValueError):
        TumblingCountWindow("w", size=0, aggregate=sum)


def test_tumbling_state_size_tracks_buffer():
    w = TumblingCountWindow("w", size=10, aggregate=sum)
    assert w.state_size() == 0
    feed(w, [1, 2, 3])
    assert w.state_size() == 3 * (100 + 16)


def test_tumbling_snapshot_restore_roundtrip():
    w = TumblingCountWindow("w", size=4, aggregate=sum)
    feed(w, [1, 2, 3])
    snap = w.snapshot()
    w2 = TumblingCountWindow("w", size=4, aggregate=sum)
    w2.restore(snap)
    assert feed(w2, [10]) == [16]  # 1+2+3+10: the buffer travelled


# -- sliding count ------------------------------------------------------------
def test_sliding_overlapping_windows():
    w = SlidingCountWindow("w", size=3, step=1, aggregate=list)
    out = feed(w, [1, 2, 3, 4, 5])
    assert out == [[1, 2, 3], [2, 3, 4], [3, 4, 5]]


def test_sliding_step_equals_size_is_tumbling():
    w = SlidingCountWindow("w", size=2, step=2, aggregate=sum)
    assert feed(w, [1, 2, 3, 4, 5, 6]) == [3, 7, 11]


def test_sliding_step_cannot_exceed_size():
    with pytest.raises(ValueError):
        SlidingCountWindow("w", size=2, step=3, aggregate=sum)


def test_sliding_snapshot_preserves_phase():
    w = SlidingCountWindow("w", size=2, step=2, aggregate=sum)
    feed(w, [1])  # mid-phase
    w2 = SlidingCountWindow("w", size=2, step=2, aggregate=sum)
    w2.restore(w.snapshot())
    assert feed(w2, [2, 3, 4]) == [3, 7]  # identical continuation


@given(st.lists(st.integers(-100, 100), min_size=0, max_size=60),
       st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_sliding_size1_step1_is_identity(values, _n):
    w = SlidingCountWindow("w", size=1, step=1, aggregate=lambda xs: xs[0])
    assert feed(w, values) == values


@given(st.lists(st.integers(0, 100), min_size=0, max_size=80),
       st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_tumbling_never_loses_or_duplicates(values, size):
    """Concatenating all emitted windows + the residue = the input."""
    w = TumblingCountWindow("w", size=size, aggregate=list)
    out = feed(w, values)
    flat = [v for window in out for v in window]
    residue = [p for p, _s in w._buffer]
    assert flat + residue == values
    assert all(len(window) == size for window in out)


# -- tumbling time --------------------------------------------------------------
def test_time_window_closes_on_next_span():
    w = TumblingTimeWindow("w", width_s=10.0, aggregate=list)
    out = feed(w, ["a", "b", "c", "d"], t=1.0, dt=4.0)  # t = 1, 5, 9, 13
    assert out == [["a", "b", "c"]]  # closed by the t=13 arrival
    assert w.window_fill == 1


def test_time_window_skipped_spans_flush_once():
    w = TumblingTimeWindow("w", width_s=1.0, aggregate=list)
    t1 = StreamTuple(payload="x", size=10, entered_at=0.0)
    t2 = StreamTuple(payload="y", size=10, entered_at=7.5)
    assert w.process(t1, ctx(0.5)) == []
    out = w.process(t2, ctx(7.5))
    assert [o.payload for o in out] == [["x"]]


def test_time_window_validation():
    with pytest.raises(ValueError):
        TumblingTimeWindow("w", width_s=0.0, aggregate=list)


# -- window state survives recovery -----------------------------------------------
class WindowApp(AppSpec):
    """S -> 5-wide tumbling sum -> K."""

    name = "windows"

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("S"))
        g.add_operator(TumblingCountWindow("W", size=5, aggregate=sum,
                                           out_size=1 * KB, cost_s=0.02))
        g.add_operator(SinkOperator("K"))
        g.chain("S", "W", "K")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups([["S"], ["W"], ["K"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def wl():
            for i in range(200):
                yield (1.0, 1, 2 * KB)
        return {"S": wl()}


def test_window_contents_survive_recovery():
    """Crash the window host mid-window: the restored operator resumes
    from its checkpointed buffer + replay, so no window is lost and no
    window double-emits."""
    cfg = SystemConfig(n_regions=1, phones_per_region=3, idle_per_region=2,
                       master_seed=5, checkpoint_period_s=60.0)
    s = MobiStreamsSystem(cfg, WindowApp(), MobiStreamsScheme)
    s.start()
    w_host = s.regions[0].placement.node_for("W", 0)
    s.injector.crash_at(97.0, [w_host])  # mid-window (97 = 5*19 + 2)
    s.run(400.0)
    assert not s.regions[0].stopped
    outs = [r for r in s.trace.select("sink_output")]
    # 200 inputs of value 1 -> 40 windows of sum 5, exactly once each.
    seqs = [r.data["seq"] for r in outs]
    assert len(seqs) == len(set(seqs))
    assert len(outs) == 40
