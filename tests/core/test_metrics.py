"""Unit tests for metrics extraction (Section IV's methodology)."""

import math

import pytest

from repro.core.metrics import MetricsReport, compute_metrics
from repro.sim.monitor import Trace


def make_trace(outputs):
    """A trace with sink_output records: (time, region, latency)."""
    trace = Trace()
    for t, region, latency in outputs:
        trace.record(t, "sink_output", region=region,
                     entered_at=t - latency, latency=latency, seq=0)
    return trace


def test_throughput_counts_outputs_over_window():
    """The window is half-open: [warmup, until)."""
    trace = make_trace([(t, "r0", 1.0) for t in (10, 20, 30, 40)])
    m = compute_metrics(trace, ["r0"], warmup_s=0.0, until=45.0)
    assert m.per_region["r0"].output_tuples == 4
    assert m.per_region["r0"].throughput_tps == pytest.approx(4 / 45)
    cut = compute_metrics(trace, ["r0"], warmup_s=0.0, until=40.0)
    assert cut.per_region["r0"].output_tuples == 3


def test_warmup_cut_drops_early_outputs():
    trace = make_trace([(5, "r0", 1.0), (15, "r0", 1.0), (25, "r0", 1.0)])
    m = compute_metrics(trace, ["r0"], warmup_s=10.0, until=30.0)
    assert m.per_region["r0"].output_tuples == 2
    assert m.per_region["r0"].throughput_tps == pytest.approx(2 / 20)


def test_latency_mean_and_p95():
    lats = [1.0, 2.0, 3.0, 4.0, 100.0]
    trace = make_trace([(10 + i, "r0", l) for i, l in enumerate(lats)])
    m = compute_metrics(trace, ["r0"], until=30.0)
    rm = m.per_region["r0"]
    assert rm.mean_latency_s == pytest.approx(sum(lats) / len(lats))
    assert rm.p95_latency_s == 100.0  # the tail point


def test_regions_are_separated():
    trace = make_trace([(10, "r0", 1.0), (11, "r1", 2.0), (12, "r1", 4.0)])
    m = compute_metrics(trace, ["r0", "r1"], until=20.0)
    assert m.per_region["r0"].output_tuples == 1
    assert m.per_region["r1"].output_tuples == 2
    assert m.per_region["r1"].mean_latency_s == pytest.approx(3.0)


def test_empty_region_yields_nan_latency():
    trace = make_trace([(10, "r0", 1.0)])
    m = compute_metrics(trace, ["r0", "r1"], until=20.0)
    assert m.per_region["r1"].output_tuples == 0
    assert math.isnan(m.per_region["r1"].mean_latency_s)
    assert math.isnan(m.per_region["r1"].p95_latency_s)


def test_counters_flow_into_report():
    trace = make_trace([(10, "r0", 1.0)])
    trace.count("ft.preserved_bytes", 111)
    trace.count("ft.network_bytes", 22)
    trace.count("net.wifi.bytes", 3)
    trace.record(15.0, "recovery_finished", outcome="recovered")
    m = compute_metrics(trace, ["r0"], until=20.0)
    assert m.preserved_bytes == 111
    assert m.ft_network_bytes == 22
    assert m.wifi_bytes == 3
    assert m.recoveries == 1


def test_total_throughput_sums_regions():
    trace = make_trace([(10, "r0", 1.0), (11, "r1", 1.0), (12, "r1", 1.0)])
    m = compute_metrics(trace, ["r0", "r1"], until=10.0 + 10.0)
    assert m.total_throughput_tps == pytest.approx(
        m.per_region["r0"].throughput_tps + m.per_region["r1"].throughput_tps)


def test_end_to_end_latency_is_last_region():
    trace = make_trace([(10, "r0", 1.0), (11, "r2", 7.0)])
    m = compute_metrics(trace, ["r0", "r1", "r2"], until=20.0)
    assert m.end_to_end_latency_s == pytest.approx(7.0)


def test_end_to_end_latency_empty_report():
    m = MetricsReport(window_start=0.0, window_end=1.0)
    assert math.isnan(m.end_to_end_latency_s)


def test_until_defaults_to_last_record():
    trace = make_trace([(10, "r0", 1.0), (50, "r0", 1.0)])
    m = compute_metrics(trace, ["r0"])
    assert m.window_end == 50.0


def test_region_lookup_by_name():
    trace = make_trace([(10, "r0", 1.0)])
    m = compute_metrics(trace, ["r0", "r1"], until=20.0)
    assert m.region("r0") is m.per_region["r0"]


def test_region_lookup_unknown_name_lists_known_regions():
    trace = make_trace([(10, "r0", 1.0)])
    m = compute_metrics(trace, ["r0", "r1"], until=20.0)
    with pytest.raises(ValueError, match="unknown region 'dc'.*r0, r1"):
        m.region("dc")


def test_region_lookup_on_empty_report():
    m = MetricsReport(window_start=0.0, window_end=1.0)
    with pytest.raises(ValueError, match="<none>"):
        m.region("r0")
