"""Property-based tests on the core data structures.

Invariants, not examples: random DAGs, random placements, random
checkpoint/preservation interleavings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.store import CheckpointStore, PreservationStore
from repro.core.graph import QueryGraph
from repro.core.operator import MapOperator, SinkOperator, SourceOperator
from repro.core.placement import Placement
from repro.core.tuples import StreamTuple
from repro.device.storage import FlashStorage, StorageFull


# -- random layered DAGs --------------------------------------------------------
@st.composite
def layered_graphs(draw):
    """A random source->layers->sink DAG that always validates."""
    n_layers = draw(st.integers(min_value=1, max_value=4))
    widths = [draw(st.integers(min_value=1, max_value=3)) for _ in range(n_layers)]
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    names = [["S"]]
    for li, w in enumerate(widths):
        layer = []
        for i in range(w):
            name = f"L{li}_{i}"
            g.add_operator(MapOperator(name, lambda x: x))
            layer.append(name)
        names.append(layer)
    g.add_operator(SinkOperator("K"))
    names.append(["K"])
    # Every operator gets >= 1 upstream edge from the previous layer...
    edges = set()
    for prev, layer in zip(names, names[1:]):
        for op in layer:
            ups = draw(st.sets(st.sampled_from(prev), min_size=1))
            for u in ups:
                edges.add((u, op))
    # ...and >= 1 downstream edge into the next layer (reaches a sink).
    for layer, nxt in zip(names[:-1], names[1:]):
        for op in layer:
            if not any(e[0] == op for e in edges):
                down = draw(st.sampled_from(nxt))
                edges.add((op, down))
    for u, v in sorted(edges):
        g.connect(u, v)
    return g


@given(layered_graphs())
@settings(max_examples=30, deadline=None)
def test_layered_graphs_always_validate(g):
    g.validate()
    order = g.topological_order()
    pos = {n: i for i, n in enumerate(order)}
    for u, v in g.edges():
        assert pos[u] < pos[v]


@given(layered_graphs(), st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_contiguous_placement_never_creates_node_cycles(g, n_phones):
    """pack_groups merges adjacent topological groups, which can never
    introduce a node-level cycle on a layered DAG."""
    groups = [[name] for name in g.topological_order()]
    phones = [f"p{i}" for i in range(n_phones)]
    placement = Placement.pack_groups(groups, phones)
    placement.validate(g, phones)  # includes node-graph acyclicity


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_replication_keeps_chains_on_distinct_phones(n_phones, factor):
    if factor > n_phones:
        return
    phones = [f"p{i}" for i in range(n_phones)]
    base = Placement.from_groups({phones[0]: ["a"], phones[1 % n_phones]: ["b"]})
    replicated = base.replicate(phones, factor)
    for op in replicated.operators():
        hosts = replicated.nodes_for(op)
        assert len(hosts) == factor
        assert len(set(hosts)) == factor  # a failure never kills 2 chains


# -- checkpoint store invariants ---------------------------------------------------
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=4),   # version
                          st.integers(min_value=0, max_value=2)),  # node
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_mrc_is_monotone_and_complete(puts):
    nodes = ["n0", "n1", "n2"]
    store = CheckpointStore()
    for v in (1, 2, 3, 4):
        store.begin_version(v, nodes)
    mrc_history = [store.mrc_version]
    for version, node_i in puts:
        store.put(version, nodes[node_i], frozenset([f"op{node_i}"]), {}, 1)
        mrc_history.append(store.mrc_version)
    # The MRC never moves backwards...
    assert all(a <= b for a, b in zip(mrc_history, mrc_history[1:]))
    # ...and is only ever a complete version.
    if store.mrc_version > 0:
        assert store.is_complete(store.mrc_version)
        # Every participant's state is present at the MRC.
        assert len(store.states_at_mrc()) == len(nodes)


@given(st.lists(st.one_of(
    st.tuples(st.just("record"), st.integers(min_value=1, max_value=1000)),
    st.tuples(st.just("segment"), st.integers(min_value=1, max_value=5)),
    st.tuples(st.just("complete"), st.integers(min_value=1, max_value=5)),
), max_size=40))
@settings(max_examples=50, deadline=None)
def test_preservation_bytes_always_match_retained_tuples(ops):
    store = PreservationStore()
    segment = 0
    for kind, arg in ops:
        if kind == "record":
            store.record("S", StreamTuple(payload=None, size=arg, entered_at=0.0))
        elif kind == "segment":
            segment = max(segment, arg)
            store.start_segment(segment)
        else:
            store.on_checkpoint_complete(arg)
        # Invariant: the byte counter equals the retained tuples' sizes.
        retained = sum(t.size for _op, t in store.replay_from(0))
        assert store.total_bytes == retained
        assert store.retained_count() == len(store.replay_from(0))


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),   # key
                          st.integers(min_value=0, max_value=500)),  # size
                max_size=40))
@settings(max_examples=50, deadline=None)
def test_flash_accounting_exact_under_overwrites(ops):
    storage = FlashStorage(capacity_bytes=100_000)
    shadow = {}
    for key, size in ops:
        storage.write(key, size)
        shadow[key] = size
        assert storage.used_bytes == sum(shadow.values())
        assert storage.free_bytes == 100_000 - storage.used_bytes
    for key in list(shadow):
        storage.delete(key)
        del shadow[key]
        assert storage.used_bytes == sum(shadow.values())
    assert storage.used_bytes == 0


@given(st.integers(min_value=1, max_value=100))
@settings(max_examples=20, deadline=None)
def test_flash_never_exceeds_capacity(size):
    storage = FlashStorage(capacity_bytes=50)
    if size <= 50:
        storage.write("a", size)
        assert storage.used_bytes == size
    else:
        with pytest.raises(StorageFull):
            storage.write("a", size)
        assert storage.used_bytes == 0
