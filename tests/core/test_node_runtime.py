"""Focused unit tests for the per-phone node runtime.

Channel blocking, round-robin fairness, dedup, operator-error
containment, and the pending-payload accessor used by handoffs.
"""


from repro.baselines import NoFaultTolerance
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import MapOperator, Operator, SinkOperator, SourceOperator
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.core.tuples import StreamTuple
from repro.net.packet import Message
from repro.util import KB


class Exploding(Operator):
    """Raises on a poison payload; processes everything else."""

    def process(self, tup, ctx):
        if tup.payload == "poison":
            raise RuntimeError("boom")
        return [tup.derive(tup.payload, tup.size)]

    def cost(self, tup):
        return 0.0


class JoinApp(AppSpec):
    """Two sources feeding one join node (multi-channel runtime)."""

    name = "join"

    def __init__(self, n=30):
        self.n = n

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("SA"))
        g.add_operator(SourceOperator("SB"))
        g.add_operator(MapOperator("J", lambda x: x))
        g.add_operator(SinkOperator("K"))
        g.connect("SA", "J").connect("SB", "J")
        g.chain("J", "K")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups([["SA"], ["SB"], ["J"], ["K"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def wl(tag):
            for i in range(self.n):
                yield (1.0, f"{tag}{i}", 1 * KB)
        return {"SA": wl("a"), "SB": wl("b")}


def build(app=None, **kw):
    cfg = SystemConfig(n_regions=1, phones_per_region=4, idle_per_region=1,
                       master_seed=5, **kw)
    return MobiStreamsSystem(cfg, app or JoinApp(), NoFaultTolerance)


def test_blocked_channel_queues_but_does_not_process():
    s = build()
    s.start()
    region = s.regions[0]
    j = region.nodes[region.placement.node_for("J", 0)]
    sa = region.placement.node_for("SA", 0)
    s.run(5.0)
    j.block_channel(sa)
    s.run(20.0)
    # SA tuples pile up on the blocked channel; SB tuples still flow.
    assert j.queued_items() > 0
    outs = [r.data for r in s.trace.select("sink_output")]
    assert any(str(o.get("seq", "")) != "" for o in outs)
    sb_flowing = sum(1 for _ in s.trace.select("sink_output"))
    assert sb_flowing > 0
    j.unblock_all()
    s.run(40.0)
    # Blocked tuples drain after unblocking; nothing was lost.
    assert j.queued_items() == 0


def test_unblock_channel_selectively():
    s = build()
    s.start()
    region = s.regions[0]
    j = region.nodes[region.placement.node_for("J", 0)]
    j.block_channel("x")
    j.block_channel("y")
    assert j.blocked_channels == {"x", "y"}
    j.unblock_channel("x")
    assert j.blocked_channels == {"y"}
    j.unblock_all()
    assert j.blocked_channels == set()


def test_round_robin_drains_both_channels():
    """Neither source starves the other at the join."""
    s = build(app=JoinApp(n=40))
    s.run(60.0)
    payloads = set()
    for rec in s.trace.select("sink_output"):
        payloads.add(rec.data["seq"])
    # Both streams' sequence numbers appear steadily.
    assert len(payloads) > 30


def test_operator_exception_drops_tuple_not_node():
    class PoisonApp(AppSpec):
        name = "poison"

        def build_graph(self):
            g = QueryGraph()
            g.add_operator(SourceOperator("S"))
            g.add_operator(Exploding("X"))
            g.add_operator(SinkOperator("K"))
            g.chain("S", "X", "K")
            return g

        def build_placement(self, phone_ids):
            return Placement.pack_groups([["S"], ["X"], ["K"]], phone_ids)

        def build_workloads(self, rng, region_index):
            def wl():
                for i in range(10):
                    yield (1.0, "poison" if i == 3 else i, 1 * KB)
            return {"S": wl()}

    s = build(app=PoisonApp())
    s.run(40.0)
    assert s.trace.value("op_errors") == 1
    outs = [r for r in s.trace.select("sink_output")]
    assert len(outs) == 9  # the poison tuple vanished, the node survived
    err = s.trace.last("op_error")
    assert "boom" in err.data["error"]


def test_emit_key_dedup_drops_second_copy():
    s = build()
    s.start()
    region = s.regions[0]
    j = region.nodes[region.placement.node_for("J", 0)]
    tup = StreamTuple(payload="x", size=10, entered_at=0.0, source_seq=1,
                      emit_key=("SA", ("r", 1), 0))
    assert j._accept("J", tup)
    assert not j._accept("J", tup.derive("x", 10) and tup)  # same key again


def test_tuples_without_emit_key_always_accepted():
    s = build()
    s.start()
    region = s.regions[0]
    j = region.nodes[region.placement.node_for("J", 0)]
    t1 = StreamTuple(payload="x", size=10, entered_at=0.0)
    t2 = StreamTuple(payload="x", size=10, entered_at=0.0)
    assert j._accept("J", t1) and j._accept("J", t2)


def test_pending_payloads_snapshot_queue_contents():
    s = build()
    s.start()
    region = s.regions[0]
    j = region.nodes[region.placement.node_for("J", 0)]
    j.block_channel(region.placement.node_for("SA", 0))
    j.block_channel(region.placement.node_for("SB", 0))
    s.run(10.0)
    pending = j.pending_payloads()
    assert pending
    assert all(p[0] == "tuple" for p in pending)
    assert len(pending) == j.queued_items()


def test_kill_clears_queues_and_ignores_deliveries():
    s = build()
    s.start()
    region = s.regions[0]
    j = region.nodes[region.placement.node_for("J", 0)]
    s.run(5.0)
    j.kill("test")
    assert not j.alive
    assert j.queued_items() == 0
    j.deliver(Message(src="z", dst=j.id, size=10, kind="tuple",
                      payload=("tuple", "J", StreamTuple(payload=1, size=1,
                                                         entered_at=0.0))))
    assert j.queued_items() == 0  # dead nodes accept nothing
    j.kill("again")  # idempotent


def test_state_size_sums_hosted_operators():
    from repro.core.operator import StatefulOperator

    class Passthrough(StatefulOperator):
        def process(self, tup, ctx):
            return [tup.derive(tup.payload, tup.size)]

    class TwoOpApp(AppSpec):
        name = "twoop"

        def build_graph(self):
            g = QueryGraph()
            g.add_operator(SourceOperator("S"))
            g.add_operator(Passthrough("A", state_size=100))
            g.add_operator(Passthrough("B", state_size=28))
            g.add_operator(SinkOperator("K"))
            g.chain("S", "A", "B", "K")
            return g

        def build_placement(self, phone_ids):
            # A and B share one phone.
            return Placement.from_groups({
                phone_ids[0]: ["S"], phone_ids[1]: ["A", "B"],
                phone_ids[2]: ["K"],
            })

        def build_workloads(self, rng, region_index):
            return {}

    cfg = SystemConfig(n_regions=1, phones_per_region=3, idle_per_region=0,
                       master_seed=5)
    s = MobiStreamsSystem(cfg, TwoOpApp(), NoFaultTolerance)
    s.start()
    region = s.regions[0]
    node = region.nodes[region.placement.node_for("A", 0)]
    assert node.state_size() == 128
    snap = node.snapshot_state()
    assert set(snap) == {"A", "B"}
