"""Tests for operator placement and replication."""

import pytest

from repro.core.graph import QueryGraph
from repro.core.operator import MapOperator, SinkOperator, SourceOperator
from repro.core.placement import Placement, PlacementError


def pipeline_graph():
    g = QueryGraph()
    g.add_operator(SourceOperator("S"))
    g.add_operator(MapOperator("A", lambda p: p))
    g.add_operator(SinkOperator("K"))
    g.chain("S", "A", "K")
    return g


def test_from_groups():
    p = Placement.from_groups({"n0": ["S"], "n1": ["A", "K"]})
    assert p.replication_factor == 1
    assert p.node_for("S") == "n0"
    assert p.ops_on("n1") == ["A", "K"]
    assert set(p.used_nodes()) == {"n0", "n1"}


def test_from_groups_duplicate_operator():
    with pytest.raises(PlacementError):
        Placement.from_groups({"n0": ["S"], "n1": ["S"]})


def test_empty_placement_rejected():
    with pytest.raises(PlacementError):
        Placement({})


def test_validate_against_graph():
    g = pipeline_graph()
    p = Placement.from_groups({"n0": ["S"], "n1": ["A"], "n2": ["K"]})
    p.validate(g, ["n0", "n1", "n2"])


def test_validate_missing_operator():
    g = pipeline_graph()
    p = Placement.from_groups({"n0": ["S", "A"]})
    with pytest.raises(PlacementError, match="missing"):
        p.validate(g, ["n0"])


def test_validate_unknown_node():
    g = pipeline_graph()
    p = Placement.from_groups({"n0": ["S"], "ghost": ["A", "K"]})
    with pytest.raises(PlacementError, match="unknown node"):
        p.validate(g, ["n0"])


def test_replicate_disjoint_chains():
    nodes = [f"n{i}" for i in range(8)]
    base = Placement.from_groups({"n0": ["S"], "n1": ["A"], "n2": ["K"]})
    rep = base.replicate(nodes, 2)
    assert rep.replication_factor == 2
    # Chain 1 is the ring-shifted copy, disjoint from chain 0.
    chain0 = set(rep.chain_assignment(0).values())
    chain1 = set(rep.chain_assignment(1).values())
    assert chain0 == {"n0", "n1", "n2"}
    assert chain1 == {"n4", "n5", "n6"}
    assert not (chain0 & chain1)


def test_replicate_factor_bounds():
    base = Placement.from_groups({"n0": ["S"]})
    with pytest.raises(PlacementError):
        base.replicate(["n0"], 2)  # factor exceeds node count
    with pytest.raises(PlacementError):
        base.replicate(["n0"], 0)


def test_chain_of():
    base = Placement.from_groups({"n0": ["S"], "n1": ["A"], "n2": ["K"]})
    rep = base.replicate([f"n{i}" for i in range(6)], 2)
    assert rep.chain_of("S", "n0") == 0
    assert rep.chain_of("S", "n3") == 1
    with pytest.raises(PlacementError):
        rep.chain_of("S", "n1")


def test_reassign_node():
    p = Placement.from_groups({"n0": ["S"], "n1": ["A", "K"]})
    p.reassign_node("n1", "n9")
    assert p.node_for("A") == "n9"
    assert p.node_for("K") == "n9"
    assert "n1" not in p.used_nodes()


def test_reassign_noop_same_node():
    p = Placement.from_groups({"n0": ["S"]})
    p.reassign_node("n0", "n0")
    assert p.node_for("S") == "n0"


def test_reassign_conflict_with_replica():
    base = Placement.from_groups({"n0": ["S"], "n1": ["A"], "n2": ["K"]})
    rep = base.replicate([f"n{i}" for i in range(6)], 2)
    # Moving chain-0's S host onto chain-1's S host would co-locate replicas.
    with pytest.raises(PlacementError):
        rep.reassign_node("n0", "n3")


def test_pack_groups_one_per_phone():
    p = Placement.pack_groups([["S"], ["A"], ["K"]], ["p0", "p1", "p2"])
    assert p.node_for("S") == "p0"
    assert p.node_for("A") == "p1"
    assert p.node_for("K") == "p2"


def test_pack_groups_merges_adjacent_on_fewer_phones():
    p = Placement.pack_groups([["S"], ["A"], ["B"], ["K"]], ["p0", "p1"])
    assert p.node_for("S") == p.node_for("A") == "p0"
    assert p.node_for("B") == p.node_for("K") == "p1"


def test_pack_groups_empty_phones():
    with pytest.raises(PlacementError):
        Placement.pack_groups([["S"]], [])


def test_mixed_replication_factor_rejected():
    with pytest.raises(PlacementError):
        Placement({"S": ["n0"], "A": ["n1", "n2"]})


def test_duplicate_replica_hosts_rejected():
    with pytest.raises(PlacementError):
        Placement({"S": ["n0", "n0"]})
