"""Tests for operator primitives."""

import pytest

from repro.core.operator import (
    FilterOperator,
    MapOperator,
    OperatorContext,
    SinkOperator,
    SourceOperator,
    StatefulOperator,
)
from repro.core.tuples import StreamTuple
from repro.sim import RngRegistry


def ctx():
    return OperatorContext(now=0.0, rng=RngRegistry(0), region_name="r")


def tup(payload=1, size=100):
    return StreamTuple(payload=payload, size=size, entered_at=0.0, source_seq=0)


def test_map_operator_transforms():
    op = MapOperator("M", lambda p: p * 2)
    outs = op.process(tup(21), ctx())
    assert len(outs) == 1
    assert outs[0].payload == 42
    assert outs[0].size == 100  # inherits input size by default


def test_map_operator_fixed_out_size():
    op = MapOperator("M", lambda p: p, out_size=10)
    assert op.process(tup(), ctx())[0].size == 10


def test_map_operator_callable_out_size():
    op = MapOperator("M", lambda p: p, out_size=lambda in_size, out: in_size // 2)
    assert op.process(tup(size=100), ctx())[0].size == 50


def test_map_operator_callable_cost():
    op = MapOperator("M", lambda p: p, cost_s=lambda t: t.size * 0.001)
    assert op.cost(tup(size=100)) == pytest.approx(0.1)


def test_filter_operator():
    op = FilterOperator("F", lambda p: p > 0)
    assert len(op.process(tup(5), ctx())) == 1
    assert len(op.process(tup(-5), ctx())) == 0


def test_source_and_sink_flags():
    assert SourceOperator("S").is_source
    assert not SourceOperator("S").is_sink
    assert SinkOperator("K").is_sink
    assert not SinkOperator("K").is_source
    assert not MapOperator("M", lambda p: p).is_source


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        MapOperator("", lambda p: p)


def test_stateful_operator_snapshot_restore():
    class Acc(StatefulOperator):
        def process(self, t, ctx):
            self.state["sum"] = self.state.get("sum", 0) + t.payload
            return [t.derive(self.state["sum"], 8)]

    op = Acc("acc", state_size=1024)
    op.process(tup(10), ctx())
    op.process(tup(5), ctx())
    snap = op.snapshot()
    op.process(tup(100), ctx())
    assert op.state["sum"] == 115
    op.restore(snap)
    assert op.state["sum"] == 15
    op.restore(None)
    assert op.state == {}


def test_stateful_state_size():
    class Noop(StatefulOperator):
        def process(self, t, ctx):
            return []

    assert Noop("n", state_size=2048).state_size() == 2048
    with pytest.raises(ValueError):
        Noop("n", state_size=-1)


def test_default_route_is_all_downstream():
    op = MapOperator("M", lambda p: p)
    assert op.route(tup(), ["a", "b"]) == ["a", "b"]


def test_source_passthrough():
    op = SourceOperator("S")
    outs = op.process(tup("data"), ctx())
    assert outs[0].payload == "data"
