"""Warm-pool executor tests: resume cache, streaming writer, determinism."""

import json
import os

import pytest

from repro.results import dumps_artifact
from repro.scenarios import executor
from repro.scenarios.executor import (
    CaseCache,
    StreamingSweepWriter,
    run_sweep,
    spec_digest,
)
from repro.scenarios.spec import MatrixSpec, ScenarioSpec


def small_spec(**kwargs):
    defaults = dict(
        name="exec-t", duration_s=200.0, warmup_s=40.0, idle_per_region=4,
        checkpoint_period_s=60.0,
        matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3, 4)),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


# -- spec digest --------------------------------------------------------------
def test_spec_digest_is_stable_and_content_sensitive():
    a, b = small_spec(), small_spec()
    assert spec_digest(a) == spec_digest(b)
    assert spec_digest(a) != spec_digest(small_spec(duration_s=201.0))


def test_spec_digest_tracks_the_code_version(monkeypatch):
    """A persistent resume cache must invalidate when the simulator
    code changes: the digest folds in the checkout's git HEAD."""
    spec = small_spec()
    monkeypatch.setattr(executor, "_code_token_cache", "commit-a")
    digest_a = spec_digest(spec)
    monkeypatch.setattr(executor, "_code_token_cache", "commit-b")
    assert spec_digest(spec) != digest_a


# -- streaming writer ---------------------------------------------------------
@pytest.mark.parametrize("compact", [True, False])
@pytest.mark.parametrize("n_rows", [0, 1, 3])
def test_streaming_writer_matches_dumps_result(tmp_path, compact, n_rows):
    """The streamed artifact must be byte-identical to the buffered
    canonical serialization, for both layouts, including zero rows."""
    spec = small_spec()
    rows = [
        {"scenario": "exec-t", "app": "bcp", "scheme": "base", "seed": i,
         "metrics": {"latency": 0.5 + i, "none": None}}
        for i in range(n_rows)
    ]
    result = {"scenario": spec.name, "spec": spec.to_dict(),
              "n_cases": n_rows, "cases": rows}
    path = tmp_path / "out.json"
    writer = StreamingSweepWriter(str(path), compact=compact)
    for row in rows:
        writer.write_row(row)
    writer.finish(spec.name, spec.to_dict(), n_rows)
    assert path.read_text() == dumps_artifact(result, compact=compact) + "\n"


def test_aborted_stream_preserves_existing_artifact(tmp_path):
    """A failed sweep must never destroy a previously complete artifact:
    rows stream into a sidecar that is only promoted on finish."""
    path = tmp_path / "sweep.json"
    path.write_text('{"previous": "complete artifact"}\n')
    writer = StreamingSweepWriter(str(path), compact=True)
    writer.write_row({"a": 1})
    writer.abort()
    assert path.read_text() == '{"previous": "complete artifact"}\n'
    assert not os.path.exists(str(path) + ".tmp")


def test_distinct_case_keys_never_share_a_cache_file(tmp_path):
    """Sanitization maps unsafe characters to '_'; the content-hash tag
    keeps sanitize-alike keys (e.g. string params 'a/b' vs 'a:b') from
    colliding on one file."""
    cache = CaseCache(str(tmp_path))
    assert (cache.path("d", 'app[s="a/b"]', "ms-8", 3)
            != cache.path("d", 'app[s="a:b"]', "ms-8", 3))
    assert cache.path("d", "bcp", "ms-8", 3) == cache.path("d", "bcp", "ms-8", 3)


def test_sweep_artifact_streams_byte_identical(tmp_path):
    spec = small_spec(matrix=MatrixSpec(apps=("bcp",), schemes=("base",), seeds=(3,)))
    out = tmp_path / "sweep.json"
    result = run_sweep(spec, jobs=1, out_path=str(out))
    assert out.read_text() == dumps_artifact(result) + "\n"


# -- resume cache -------------------------------------------------------------
def test_case_cache_round_trip_and_corruption(tmp_path):
    cache = CaseCache(str(tmp_path))
    row = {"seed": 3, "throughput": 1.25}
    cache.put("abcd", "edgeml[n_stages=2]", "ms-8", 3, row)
    assert cache.get("abcd", "edgeml[n_stages=2]", "ms-8", 3) == row
    # Unknown key and torn/corrupt files read as misses, never raise.
    assert cache.get("abcd", "bcp", "ms-8", 3) is None
    path = cache.path("abcd", "edgeml[n_stages=2]", "ms-8", 3)
    with open(path, "w") as fh:
        fh.write('{"torn":')
    assert cache.get("abcd", "edgeml[n_stages=2]", "ms-8", 3) is None


def test_partial_sweep_then_resume_is_byte_identical(tmp_path):
    """Kill-half-way recovery: a --max-cases partial run populates the
    cache; the re-run only simulates the missing cases and produces the
    same bytes as an uninterrupted sweep."""
    spec = small_spec()
    fresh = dumps_artifact(run_sweep(spec, jobs=1))

    cache_dir = str(tmp_path / "cache")
    partial = run_sweep(spec, jobs=1, max_cases=2, resume_dir=cache_dir)
    assert partial["n_cases"] == 2

    runs_before = executor.stats["cases_run"]
    hits_before = executor.stats["cache_hits"]
    resumed = dumps_artifact(run_sweep(spec, jobs=1, resume_dir=cache_dir))
    assert resumed == fresh
    assert executor.stats["cache_hits"] - hits_before == 2
    assert executor.stats["cases_run"] - runs_before == 2  # only the missing half


def test_resume_cache_is_spec_keyed(tmp_path):
    """A cached row never leaks into a sweep of a *different* spec."""
    cache_dir = str(tmp_path / "cache")
    run_sweep(small_spec(), jobs=1, max_cases=1, resume_dir=cache_dir)
    hits_before = executor.stats["cache_hits"]
    run_sweep(small_spec(duration_s=201.0), jobs=1, max_cases=1,
              resume_dir=cache_dir)
    assert executor.stats["cache_hits"] == hits_before


def test_fully_cached_resume_runs_no_cases(tmp_path):
    spec = small_spec(matrix=MatrixSpec(apps=("bcp",), schemes=("base",), seeds=(3,)))
    cache_dir = str(tmp_path / "cache")
    first = run_sweep(spec, jobs=1, resume_dir=cache_dir)
    runs_before = executor.stats["cases_run"]
    second = run_sweep(spec, jobs=1, resume_dir=cache_dir)
    assert executor.stats["cases_run"] == runs_before
    assert dumps_artifact(first) == dumps_artifact(second)


def test_max_cases_validation():
    with pytest.raises(ValueError):
        run_sweep(small_spec(), max_cases=0)


# -- determinism across execution modes ---------------------------------------
def test_serial_parallel_resumed_sweeps_are_byte_identical(tmp_path):
    """The executor's acceptance bar: serial, warm-pool parallel, and
    partially-resumed parallel runs all serialize identically."""
    spec = small_spec()
    serial = dumps_artifact(run_sweep(spec, jobs=1))
    parallel = dumps_artifact(run_sweep(spec, jobs=2))
    assert parallel == serial

    cache_dir = str(tmp_path / "cache")
    run_sweep(spec, jobs=2, max_cases=3, resume_dir=cache_dir)
    resumed = dumps_artifact(run_sweep(spec, jobs=2, resume_dir=cache_dir))
    assert resumed == serial


# -- warm pool ----------------------------------------------------------------
def test_warm_pool_is_reused_for_same_spec_and_torn_down_on_change():
    spec = small_spec()
    run_sweep(spec, jobs=2)
    creates_before = executor.stats["pool_creates"]
    reuses_before = executor.stats["pool_reuses"]
    run_sweep(spec, jobs=2)
    assert executor.stats["pool_creates"] == creates_before
    assert executor.stats["pool_reuses"] == reuses_before + 1
    # A mostly-cached resume needing fewer workers still reuses it.
    reuses_mid = executor.stats["pool_reuses"]
    executor._warm_pool(1, spec, executor.spec_digest(spec))
    assert executor.stats["pool_reuses"] == reuses_mid + 1
    assert executor.stats["pool_creates"] == creates_before
    # A different spec re-primes the workers (spec ships once per pool).
    run_sweep(small_spec(duration_s=201.0), jobs=2)
    assert executor.stats["pool_creates"] == creates_before + 1


def test_start_method_avoids_fork_off_linux(monkeypatch):
    """macOS lists fork as available but forking after numpy spawns
    ObjC/Accelerate threads can abort workers — never pick it there."""
    monkeypatch.delenv("REPRO_MP_START", raising=False)
    monkeypatch.setattr(executor.sys, "platform", "darwin")
    assert executor._start_method() != "fork"
    monkeypatch.setattr(executor.sys, "platform", "linux")
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        assert executor._start_method() == "fork"


def test_code_token_tracks_source_edits(tmp_path):
    """The staleness token is a stat-hash of the package sources: any
    edit (size or mtime change), new file, or rename moves it — commits
    and uncommitted changes alike."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    mod = pkg / "mod.py"
    mod.write_text("x = 1\n")
    t0 = executor._code_token(str(pkg))
    assert executor._code_token(str(pkg)) == t0  # stable while untouched
    mod.write_text("x = 22\n")  # content (size) change
    t1 = executor._code_token(str(pkg))
    assert t1 != t0
    (pkg / "new.py").write_text("y = 3\n")  # new module
    assert executor._code_token(str(pkg)) != t1
    (pkg / "notes.txt").write_text("ignored")  # non-source files don't count
    assert executor._code_token(str(pkg)) == executor._code_token(str(pkg))


def test_failed_parallel_sweep_invalidates_the_pool(monkeypatch):
    """An exception escaping a parallel sweep must tear the pool down —
    a reused pool with abandoned imap chunks hangs the next sweep."""
    spec = small_spec()

    class ExplodingPool:
        def imap(self, fn, payloads, chunksize):
            raise RuntimeError("worker died")

    shutdowns = []
    monkeypatch.setattr(executor, "_warm_pool", lambda *a: ExplodingPool())
    monkeypatch.setattr(executor, "shutdown_pool", lambda: shutdowns.append(1))
    with pytest.raises(RuntimeError, match="worker died"):
        run_sweep(spec, jobs=2)
    assert shutdowns


def test_shutdown_pool_is_idempotent():
    executor.shutdown_pool()
    executor.shutdown_pool()
    # And sweeps still work after a shutdown (pool rebuilds on demand).
    result = run_sweep(
        small_spec(matrix=MatrixSpec(apps=("bcp",), schemes=("base",), seeds=(3, 4))),
        jobs=2,
    )
    assert result["n_cases"] == 2


def test_runner_run_sweep_shim_still_works_but_warns():
    from repro.scenarios.runner import run_sweep as runner_run_sweep

    spec = small_spec(matrix=MatrixSpec(apps=("bcp",), schemes=("base",), seeds=(3,)))
    with pytest.warns(DeprecationWarning, match="executor.run_sweep"):
        assert runner_run_sweep(spec, jobs=1)["n_cases"] == 1
