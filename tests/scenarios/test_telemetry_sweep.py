"""Sweep-level telemetry determinism: timelines must be byte-identical
serial vs parallel vs resumed, and enabling telemetry must not change a
single artifact byte."""

import dataclasses
import json
import os

import pytest

from repro.scenarios import TelemetrySpec, get, shutdown_pool
from repro.scenarios.executor import CaseCache, run_sweep, spec_digest


def _specs():
    spec = get("flash-crowd").quick()
    spec_t = dataclasses.replace(spec, telemetry=TelemetrySpec(interval_s=30.0))
    return spec, spec_t


def _read_all(dirname):
    return {name: open(os.path.join(dirname, name), "rb").read()
            for name in sorted(os.listdir(dirname))}


@pytest.fixture(scope="module")
def serial_sweep(tmp_path_factory):
    """One serial telemetry sweep: the reference rows + timeline bytes."""
    _spec, spec_t = _specs()
    tdir = str(tmp_path_factory.mktemp("serial-timelines"))
    result = run_sweep(spec_t, jobs=1, timelines_dir=tdir)
    return spec_t, result, _read_all(tdir)


def test_rows_unchanged_by_telemetry(serial_sweep):
    spec, _spec_t = _specs()
    _spec_t2, result_t, _files = serial_sweep
    result = run_sweep(spec, jobs=1)
    assert result["cases"] == result_t["cases"]
    # The envelope differs only in the spec's telemetry knob.
    assert result["scenario"] == result_t["scenario"]
    assert result["n_cases"] == result_t["n_cases"]


def test_sweep_envelope_unchanged(serial_sweep):
    """Timelines ride beside the artifact: the returned dict keeps the
    exact ResultSet envelope (no extra keys)."""
    _spec_t, result, _files = serial_sweep
    assert sorted(result) == ["cases", "n_cases", "scenario", "spec"]


def test_timeline_files_are_valid_artifacts(serial_sweep):
    from repro.telemetry import Timeline

    _spec_t, result, files = serial_sweep
    assert len(files) == result["n_cases"]
    for name, data in files.items():
        assert name.endswith(".timeline.json")
        tl = Timeline.from_dict(json.loads(data))
        assert len(tl) > 0
        assert tl.scenario == "flash-crowd"


def test_parallel_timelines_byte_identical(serial_sweep, tmp_path):
    spec_t, result, files = serial_sweep
    tdir = str(tmp_path / "par")
    try:
        result2 = run_sweep(spec_t, jobs=2, timelines_dir=tdir)
    finally:
        shutdown_pool()
    assert result2["cases"] == result["cases"]
    assert _read_all(tdir) == files


def test_resumed_timelines_byte_identical(serial_sweep, tmp_path):
    """Kill-half-way then resume: rows and timeline files both come out
    byte-identical, and cached cases are not re-simulated."""
    from repro.scenarios import executor

    spec_t, result, files = serial_sweep
    cache_dir = str(tmp_path / "cache")
    run_sweep(spec_t, resume_dir=cache_dir, max_cases=1)
    runs_before = executor.stats["cases_run"]
    tdir = str(tmp_path / "resumed")
    result2 = run_sweep(spec_t, resume_dir=cache_dir, timelines_dir=tdir)
    assert executor.stats["cases_run"] - runs_before == 1  # one case cached
    assert result2["cases"] == result["cases"]
    assert _read_all(tdir) == files


def test_cached_row_without_sidecar_is_a_miss(serial_sweep, tmp_path):
    """A telemetry resume needs both halves: dropping the timeline
    sidecar forces the case to re-run (and re-persist both)."""
    from repro.scenarios import executor

    spec_t, result, files = serial_sweep
    cache_dir = str(tmp_path / "cache")
    run_sweep(spec_t, resume_dir=cache_dir)
    cache = CaseCache(cache_dir)
    digest = spec_digest(spec_t)
    app, scheme, seed = spec_t.matrix.apps[0], spec_t.matrix.schemes[0], \
        spec_t.matrix.seeds[0]
    sidecar = cache.timeline_path(digest, app.key, scheme, seed)
    assert os.path.exists(sidecar)
    os.unlink(sidecar)
    runs_before = executor.stats["cases_run"]
    result2 = run_sweep(spec_t, resume_dir=cache_dir)
    assert executor.stats["cases_run"] - runs_before == 1
    assert result2["cases"] == result["cases"]
    assert os.path.exists(sidecar)  # re-persisted


def test_timelines_dir_requires_telemetry(tmp_path):
    spec, _spec_t = _specs()
    with pytest.raises(ValueError, match="telemetry"):
        run_sweep(spec, timelines_dir=str(tmp_path / "nope"))


def test_telemetry_spec_round_trips_and_scales():
    from repro.scenarios import ScenarioSpec

    _spec, spec_t = _specs()
    d = spec_t.to_dict()
    assert d["telemetry"] == {"interval_s": 30.0}
    back = ScenarioSpec.from_dict(json.loads(json.dumps(d)))
    assert back.telemetry == TelemetrySpec(interval_s=30.0)
    # scaled() keeps the snapshot count, not the wall interval.
    half = spec_t.scaled(0.5)
    assert half.telemetry.interval_s == 15.0


def test_telemetry_key_absent_when_off():
    """The to_dict() convention that keeps pre-telemetry artifacts,
    golden hashes, and spec digests byte-identical."""
    spec, _spec_t = _specs()
    assert "telemetry" not in spec.to_dict()
    assert spec_digest(spec) != spec_digest(_spec_t)
