"""Scheduler-equivalence properties: heap vs calendar queue.

The heap backend is the determinism oracle.  The calendar queue must be
*observationally identical*: the same ScenarioSpec run under either
backend serializes to byte-identical artifacts.  Fuzzed specs from
``repro.verify.fuzz`` exercise the whole event grammar (crash, cascade,
churn, join, handoff, surge, battery) so agreement is a property, not a
handful of hand-picked cases.
"""

import pytest

from repro import scenarios
from repro.results import dumps_artifact
from repro.verify.fuzz import generate_specs

#: Fuzz-walk seeds to compare.  Each seed's first spec draws a fresh
#: (app, scheme, events) combination, so a few seeds cover several
#: schemes end to end while keeping the suite's wall time sane.
FUZZ_SEEDS = (11, 23, 58)


def _artifact(spec, monkeypatch, backend):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", backend)
    result = scenarios.run_sweep(spec, jobs=1)
    return dumps_artifact(result)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzed_specs_serialize_identically_across_backends(seed, monkeypatch):
    (spec,) = generate_specs(seed, 1)
    heap = _artifact(spec, monkeypatch, "heap")
    calendar = _artifact(spec, monkeypatch, "calendar")
    assert heap == calendar


@pytest.mark.parametrize("name", ("failure-cascade", "fleet-battery-wave"))
def test_named_scenarios_serialize_identically_across_backends(name, monkeypatch):
    spec = scenarios.get(name).quick()
    heap = _artifact(spec, monkeypatch, "heap")
    calendar = _artifact(spec, monkeypatch, "calendar")
    assert heap == calendar


def test_fleet_backend_is_deterministic_per_scheduler(monkeypatch):
    """The fleet device backend composes with either scheduler: two runs
    of the same spec under the same backend are byte-identical."""
    spec = scenarios.get("fleet-idle-churn").quick()
    for backend in ("heap", "calendar"):
        first = _artifact(spec, monkeypatch, backend)
        again = _artifact(spec, monkeypatch, backend)
        assert first == again
