"""Parameterized app refs through the scenario engine, end to end."""

import json

import pytest

from repro import scenarios
from repro.apps.registry import AppRef
from repro.results import dumps_artifact
from repro.scenarios.executor import run_sweep
from repro.scenarios.runner import run_case
from repro.scenarios.spec import MatrixSpec, ScenarioSpec


def edgeml_spec(**kwargs):
    defaults = dict(
        name="edgeml-t", duration_s=200.0, warmup_s=40.0, idle_per_region=4,
        checkpoint_period_s=60.0,
        matrix=MatrixSpec(
            apps=("edgeml", {"name": "edgeml", "params": {"n_stages": 2}}),
            schemes=("ms-8",),
            seeds=(3,),
        ),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


# -- matrix coercion and validation ------------------------------------------
def test_matrix_coerces_mixed_ref_forms():
    m = edgeml_spec().matrix
    assert all(isinstance(a, AppRef) for a in m.apps)
    assert [a.key for a in m.apps] == ["edgeml", "edgeml[n_stages=2]"]


@pytest.mark.parametrize("kwargs", [
    dict(apps=("bcp", "bcp")),
    dict(apps=("bcp", {"name": "bcp", "params": {}})),  # same canonical ref
    dict(schemes=("ms-8", "ms-8")),
    dict(seeds=(3, 3)),
])
def test_matrix_rejects_duplicate_axis_entries(kwargs):
    with pytest.raises(ValueError, match="duplicate"):
        MatrixSpec(**kwargs)


def test_same_app_with_different_params_is_not_a_duplicate():
    m = MatrixSpec(apps=({"name": "edgeml", "params": {"n_stages": 2}},
                         {"name": "edgeml", "params": {"n_stages": 4}}))
    assert len(m.apps) == 2


# -- serialization ------------------------------------------------------------
def test_spec_with_param_refs_round_trips_through_json():
    spec = edgeml_spec()
    recovered = ScenarioSpec.from_json(spec.to_json())
    assert recovered == spec
    # And the JSON itself keeps bare names for param-free refs.
    data = json.loads(spec.to_json())
    assert data["matrix"]["apps"][0] == "edgeml"
    assert data["matrix"]["apps"][1] == {"name": "edgeml",
                                         "params": {"n_stages": 2}}


def test_param_free_matrix_serializes_as_bare_strings():
    """The compatibility contract behind the golden artifact hashes."""
    m = MatrixSpec(apps=("bcp", "signalguru"))
    assert m.to_dict()["apps"] == ["bcp", "signalguru"]


# -- execution ----------------------------------------------------------------
def test_run_case_with_param_ref_changes_the_deployment():
    spec = edgeml_spec()
    result = run_case(spec, {"name": "edgeml", "params": {"n_stages": 2}},
                      "ms-8", 3)
    assert result.app == "edgeml[n_stages=2]"
    assert result.report.per_region["region0"].output_tuples > 0


def test_unknown_app_in_case_names_candidates():
    with pytest.raises(ValueError, match="registered apps"):
        run_case(edgeml_spec(), "unknown-app", "ms-8", 3)


def test_unknown_scheme_in_case_names_candidates():
    with pytest.raises(ValueError, match="known schemes"):
        run_case(edgeml_spec(), "edgeml", "ms-9000", 3)


def test_edgeml_sweep_is_byte_identical_serial_vs_parallel():
    """The acceptance bar: an edgeml sweep with parameterized refs
    aggregated via --jobs 4 serializes byte-for-byte like --jobs 1."""
    spec = edgeml_spec()
    serial = dumps_artifact(run_sweep(spec, jobs=1))
    parallel = dumps_artifact(run_sweep(spec, jobs=4))
    assert serial == parallel
    keys = [c["app"] for c in json.loads(serial)["cases"]]
    assert keys == ["edgeml", "edgeml[n_stages=2]"]


def test_sweep_fails_fast_on_bad_matrix_before_running_cases():
    """A typo'd ref must abort the sweep up front, not after the valid
    cases have burned their simulation time."""
    bad = edgeml_spec(matrix=MatrixSpec(
        apps=("edgeml", {"name": "edgeml", "params": {"n_stages": 2.0}}),
        schemes=("ms-8",), seeds=(3,)))
    with pytest.raises(ValueError, match="expects int"):
        run_sweep(bad, jobs=1)
    with pytest.raises(ValueError, match="known schemes"):
        run_sweep(edgeml_spec(matrix=MatrixSpec(
            apps=("edgeml",), schemes=("ms-9000",), seeds=(3,))), jobs=1)


def test_library_edgeml_scenarios_are_registered():
    names = scenarios.names()
    assert "edgeml-baseline" in names
    assert "edgeml-split-sweep" in names
    sweep = scenarios.get("edgeml-split-sweep")
    assert [a.key for a in sweep.matrix.apps] == [
        "edgeml[n_stages=2]", "edgeml[n_stages=4]", "edgeml[n_stages=6]"]
