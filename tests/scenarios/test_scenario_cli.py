"""Tests for the ``python -m repro scenario`` command group."""

import json

import pytest

from repro import scenarios
from repro.cli import build_parser, main


def test_parser_accepts_scenario_verbs():
    args = build_parser().parse_args(["scenario", "sweep", "flash-crowd",
                                      "--jobs", "4", "--quick"])
    assert args.scenario_command == "sweep"
    assert args.name == "flash-crowd"
    assert args.jobs == 4
    assert args.quick


def test_scenario_requires_a_verb():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["scenario"])


def test_scenario_list_shows_the_library(capsys):
    rc = main(["scenario", "list"])
    out = capsys.readouterr().out
    assert rc == 0
    for name in scenarios.names():
        assert name in out
    assert len(scenarios.names()) >= 6


def test_scenario_show_prints_round_trippable_json(capsys):
    rc = main(["scenario", "show", "failure-cascade"])
    out = capsys.readouterr().out
    assert rc == 0
    spec = scenarios.ScenarioSpec.from_dict(json.loads(out))
    assert spec == scenarios.get("failure-cascade")


def test_scenario_run_prints_case_table(capsys):
    rc = main(["scenario", "run", "flash-crowd", "--quick"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "flash-crowd" in out
    assert "base" in out and "ms-8" in out
    assert "ok" in out


def test_scenario_sweep_writes_artifact(tmp_path, capsys):
    out_file = tmp_path / "sweep.json"
    rc = main(["scenario", "sweep", "battery-cliff", "--quick",
               "--out", str(out_file)])
    printed = capsys.readouterr().out
    assert rc == 0
    assert str(out_file) in printed
    data = json.loads(out_file.read_text())
    assert data["scenario"] == "battery-cliff"
    assert data["n_cases"] == len(scenarios.get("battery-cliff").matrix)


def test_scenario_unknown_name_is_a_clean_error(capsys):
    rc = main(["scenario", "show", "no-such-scenario"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown scenario" in err
    assert "paper-fig8" in err  # the error lists what IS registered


def test_scenario_bad_jobs_is_a_clean_error(capsys):
    rc = main(["scenario", "sweep", "flash-crowd", "--jobs", "0"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "--jobs" in err
