"""Tests for the sweep executor: determinism, parallelism, artifacts."""

import json
import os

import pytest

from repro.results import dumps_artifact
from repro.scenarios.executor import run_sweep
from repro.scenarios.runner import case_to_dict, run_case
from repro.scenarios.spec import EventSpec, MatrixSpec, ScenarioSpec


def small_spec(**kwargs):
    defaults = dict(
        name="sweep-t", duration_s=200.0, warmup_s=40.0, idle_per_region=4,
        checkpoint_period_s=60.0,
        matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3, 4)),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def test_run_case_produces_metrics():
    result = run_case(small_spec(), "bcp", "base", 3)
    assert result.report.per_region["region0"].output_tuples > 0
    assert result.region_stopped == [False]


def test_case_dict_is_strict_json():
    d = case_to_dict(run_case(small_spec(), "bcp", "base", 3))
    parsed = json.loads(json.dumps(d))  # would raise on NaN with allow_nan=False below
    json.dumps(d, allow_nan=False)
    assert parsed["app"] == "bcp"
    assert parsed["regions"]["region0"]["output_tuples"] > 0


def test_sweep_runs_the_whole_matrix_in_order():
    spec = small_spec()
    result = run_sweep(spec, jobs=1)
    assert result["n_cases"] == 4
    order = [(c["app"], c["scheme"], c["seed"]) for c in result["cases"]]
    assert order == [(app.key, scheme, seed)
                     for app, scheme, seed in spec.matrix.cases()]


def test_parallel_sweep_is_byte_identical_to_serial():
    """The acceptance bar: a 2 (scheme) x 2 (seed) sweep aggregated via
    --jobs 4 must serialize byte-for-byte the same as --jobs 1."""
    spec = small_spec()
    serial = dumps_artifact(run_sweep(spec, jobs=1))
    parallel = dumps_artifact(run_sweep(spec, jobs=4))
    assert serial == parallel


def test_parallel_sweep_with_events_is_deterministic():
    spec = small_spec(events=(
        EventSpec(kind="crash", time=100.0, phones=(3,)),
        EventSpec(kind="surge", time=60.0, factor=2.0, until=120.0),
    ))
    serial = dumps_artifact(run_sweep(spec, jobs=1))
    parallel = dumps_artifact(run_sweep(spec, jobs=2))
    assert serial == parallel


def test_sweep_writes_canonical_artifact(tmp_path):
    spec = small_spec(matrix=MatrixSpec(apps=("bcp",), schemes=("base",), seeds=(3,)))
    out = tmp_path / "artifacts" / "sweep.json"
    result = run_sweep(spec, jobs=1, out_path=str(out))
    assert out.exists()
    on_disk = out.read_text()
    assert on_disk == dumps_artifact(result) + "\n"
    assert json.loads(on_disk)["scenario"] == "sweep-t"


def test_sweep_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_sweep(small_spec(), jobs=0)


def test_run_experiment_equals_scenario_path():
    """The refactored harness and the scenario runner are the same code
    path: identical numbers for the identical deployment."""
    from repro.bench.harness import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(app="bcp", scheme="ms-8", duration_s=400.0,
                           warmup_s=40.0, seed=3, idle_per_region=4,
                           checkpoint_period_s=60.0, crash=(100.0, [3]))
    out = run_experiment(cfg)
    case = run_case(cfg.to_scenario(), "bcp", "ms-8", 3)
    assert out.report.per_region["region0"].output_tuples > 0
    assert out.throughput == case.report.per_region["region0"].throughput_tps
    assert out.latency == case.report.per_region["region0"].mean_latency_s
    assert out.recoveries == case.report.recoveries


@pytest.mark.skipif(os.cpu_count() in (None, 1),
                    reason="speedup needs more than one core")
def test_parallel_sweep_is_faster_on_multicore():
    import time

    spec = small_spec(
        duration_s=600.0, warmup_s=100.0,
        matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3, 4)),
    )
    t0 = time.time(); run_sweep(spec, jobs=1); serial = time.time() - t0
    t0 = time.time(); run_sweep(spec, jobs=min(4, os.cpu_count())); par = time.time() - t0
    assert par < serial


def test_dumps_artifact_compact_flag_and_threshold():
    from repro.results import COMPACT_THRESHOLD

    small = {"scenario": "s", "n_cases": 2, "cases": [{"a": 1}]}
    big = {"scenario": "s", "n_cases": COMPACT_THRESHOLD, "cases": [{"a": 1}]}
    # Small sweeps stay pretty by default; big ones go compact.
    assert "\n" in dumps_artifact(small)
    assert "\n" not in dumps_artifact(big)
    # Explicit flags override the size heuristic, both ways.
    assert "\n" not in dumps_artifact(small, compact=True)
    assert "\n" in dumps_artifact(big, compact=False)
    # Both layouts parse back to the same canonical payload.
    assert json.loads(dumps_artifact(big)) == json.loads(
        dumps_artifact(big, compact=False))


def test_sweep_writes_compact_artifact(tmp_path):
    spec = small_spec()
    out = tmp_path / "sweep.json"
    result = run_sweep(spec, jobs=1, out_path=str(out), compact=True)
    raw = out.read_text()
    assert raw.endswith("\n")
    assert "\n" not in raw[:-1]
    # Compare post-JSON (the spec's tuples round-trip into lists).
    assert json.loads(raw) == json.loads(json.dumps(result))
    # Compact and pretty artifacts carry identical data.
    pretty = tmp_path / "pretty.json"
    run_sweep(spec, jobs=1, out_path=str(pretty), compact=False)
    assert json.loads(pretty.read_text()) == json.loads(raw)
