"""Executor robustness: pool-worker death, case errors, corrupt cache.

These are the local (non-fabric) halves of the PR's failure-injection
story — a SIGKILLed pool worker must cost one pool rebuild, a raising
case must become a structured error record after one retry, and a
corrupt resume-cache entry must degrade to a warned cache miss.
"""

import json
import logging
import os

import pytest

from repro.fabric.testing import (
    CHAOS_ERROR,
    CHAOS_KILL,
    ENABLE_ENV,
    KILL_DIR_ENV,
    KILL_LIMIT_ENV,
    chaos_schemes,
)
from repro.scenarios import executor
from repro.scenarios.executor import CaseCache, run_sweep, spec_digest
from repro.scenarios.spec import MatrixSpec, ScenarioSpec


def small_spec(**kwargs):
    defaults = dict(
        name="robust-t", duration_s=200.0, warmup_s=40.0, idle_per_region=4,
        checkpoint_period_s=60.0,
        matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3, 4)),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def _stats():
    return dict(executor.stats)


@pytest.fixture
def fresh_pool():
    """Env-sensitive tests must not inherit (or leak) warm pool workers
    forked under a different environment."""
    executor.shutdown_pool()
    yield
    executor.shutdown_pool()


def test_sigkilled_pool_worker_costs_one_rebuild_not_the_sweep(
        tmp_path, monkeypatch, fresh_pool):
    """S1: a case SIGKILLs its pool worker mid-sweep; the pool is
    rebuilt once, the case retried, and the artifact still matches a
    serial run."""
    kill_dir = tmp_path / "kills"
    kill_dir.mkdir()
    monkeypatch.setenv(ENABLE_ENV, "1")
    monkeypatch.setenv(KILL_DIR_ENV, str(kill_dir))
    monkeypatch.setenv(KILL_LIMIT_ENV, "1")

    with chaos_schemes():
        spec = small_spec(matrix=MatrixSpec(
            apps=("bcp",), schemes=("base", CHAOS_KILL), seeds=(3, 4)))
        before = _stats()
        parallel = tmp_path / "parallel.json"
        envelope = run_sweep(spec, jobs=2, out_path=str(parallel))
        after = _stats()

        # Exactly one kill was delivered (budget 1), costing one rebuild.
        assert len(list(kill_dir.iterdir())) == 1
        assert after["pool_rebuilds"] - before["pool_rebuilds"] == 1
        assert envelope["n_cases"] == 4
        assert "errors" not in envelope

        # The kill budget is spent, so the scheme is inert now and the
        # serial reference is safe to run in-process.
        serial = tmp_path / "serial.json"
        run_sweep(spec, jobs=1, out_path=str(serial))
    assert parallel.read_bytes() == serial.read_bytes()


@pytest.mark.parametrize("jobs", [1, 2])
def test_raising_case_becomes_an_error_record(tmp_path, jobs, fresh_pool,
                                              monkeypatch):
    """S2: a case that raises is retried once, then recorded under the
    envelope's ``errors`` key — and never as an artifact row."""
    monkeypatch.setenv(ENABLE_ENV, "1")  # register schemes in pool workers
    with chaos_schemes():
        spec = small_spec(matrix=MatrixSpec(
            apps=("bcp",), schemes=("base", CHAOS_ERROR), seeds=(3,)))
        before = _stats()
        out = tmp_path / f"out-{jobs}.json"
        envelope = run_sweep(spec, jobs=jobs, out_path=str(out))
        after = _stats()

    assert after["case_retries"] - before["case_retries"] == 1
    assert after["case_errors"] - before["case_errors"] == 1
    assert envelope["n_cases"] == 1
    assert [row["scheme"] for row in envelope["cases"]] == ["base"]
    (record,) = envelope["errors"]
    assert record["scheme"] == CHAOS_ERROR and record["attempts"] == 2
    assert record["error"]["type"] == "RuntimeError"
    assert "chaos-error" in record["error"]["message"]
    assert "traceback" in record["error"]
    # The error sidecar stays out of the on-disk artifact.
    artifact = json.loads(out.read_text())
    assert "errors" not in artifact and len(artifact["cases"]) == 1


def test_corrupt_cache_entry_warns_once_and_reruns_the_case(
        tmp_path, caplog):
    """S3: a truncated/garbage resume-cache file is a warned cache miss,
    not a crash — the case silently re-simulates."""
    spec = small_spec(matrix=MatrixSpec(
        apps=("bcp",), schemes=("base",), seeds=(3, 4)))
    cache_dir = tmp_path / "cache"
    reference = run_sweep(spec, jobs=1, resume_dir=str(cache_dir))

    cache = CaseCache(str(cache_dir))
    app = next(iter(spec.matrix.cases()))[0]
    path = cache.path(spec_digest(spec), app.key, "base", 3)
    assert os.path.exists(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"row": {"truncated...')

    before = _stats()
    with caplog.at_level(logging.WARNING, logger="repro"):
        resumed = run_sweep(spec, jobs=1, resume_dir=str(cache_dir))
    after = _stats()

    warnings = [r for r in caplog.records
                if "corrupt entry" in r.getMessage()]
    assert len(warnings) == 1
    assert path in warnings[0].getMessage()
    # One case re-simulated, one still served from cache.
    assert after["cache_misses"] - before["cache_misses"] == 1
    assert after["cache_hits"] - before["cache_hits"] == 1
    assert resumed["cases"] == reference["cases"]
