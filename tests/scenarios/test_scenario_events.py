"""Tests for the scripted-event injector driving a live system."""

import pytest

from repro.scenarios import EventDirector, build_system
from repro.scenarios.spec import EventSpec, MatrixSpec, ScenarioSpec


def run_spec(spec, app="bcp", scheme="ms-8", seed=3):
    system = build_system(spec, app, scheme, seed)
    director = EventDirector(system, spec)
    director.install()
    system.start()
    director.schedule()
    system.run(spec.duration_s)
    return system


def base_spec(**kwargs):
    defaults = dict(
        name="t", duration_s=240.0, warmup_s=40.0, idle_per_region=4,
        checkpoint_period_s=60.0,
        matrix=MatrixSpec(apps=("bcp",), schemes=("ms-8",), seeds=(3,)),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def categories(system, category):
    return [r for r in system.trace.records if r.category == category]


def test_crash_event_fires_the_injector():
    spec = base_spec(events=(EventSpec(kind="crash", time=100.0, phones=(3, 4)),))
    system = run_spec(spec)
    crashed = {r.data["phone"] for r in categories(system, "phone_crashed")}
    assert {"region0.p3", "region0.p4"} <= crashed
    assert system.metrics(warmup_s=0.0).recoveries >= 1


def test_cascade_staggers_crashes():
    spec = base_spec(events=(
        EventSpec(kind="cascade", time=100.0, phones=(3, 4, 5), interval=25.0),
    ))
    system = run_spec(spec)
    times = {r.data["phone"]: r.time for r in categories(system, "failure_injected")}
    assert times["region0.p3"] == pytest.approx(100.0)
    assert times["region0.p4"] == pytest.approx(125.0)
    assert times["region0.p5"] == pytest.approx(150.0)


def test_depart_event_walks_phones_out():
    spec = base_spec(events=(EventSpec(kind="depart", time=100.0, phones=(3,)),))
    system = run_spec(spec)
    departed = {r.data["phone"] for r in categories(system, "phone_departed")}
    assert "region0.p3" in departed
    assert system.metrics(warmup_s=0.0).departures_handled >= 1


def test_join_event_admits_idle_spares():
    spec = base_spec(events=(EventSpec(kind="join", time=50.0, count=2),))
    system = run_spec(spec)
    joined = categories(system, "phone_joined")
    assert len(joined) == 2
    region = system.regions[0]
    new_ids = {r.data["phone"] for r in joined}
    assert new_ids <= set(region.phones)
    assert new_ids <= set(region.idle_ids)


def test_joined_phone_is_promotable_after_later_crashes():
    # Exhaust the original spares, then crash once more: the recovery must
    # promote the joined phone.
    spec = base_spec(
        idle_per_region=1,
        events=(
            EventSpec(kind="join", time=30.0, count=1),
            EventSpec(kind="crash", time=80.0, phones=(3,)),
            EventSpec(kind="crash", time=150.0, phones=(4,)),
        ),
    )
    system = run_spec(spec)
    assert not system.regions[0].stopped
    assert system.metrics(warmup_s=0.0).recoveries >= 2


def test_handoff_moves_phone_down_the_cascade():
    spec = base_spec(
        n_regions=2,
        events=(EventSpec(kind="handoff", time=100.0, region=0, phones=(3,),
                          to_region=1),),
    )
    system = run_spec(spec)
    departed = {r.data["phone"] for r in categories(system, "phone_departed")}
    assert "region0.p3" in departed
    joined = [r for r in categories(system, "phone_joined")
              if r.data["region"] == "region1"]
    assert len(joined) == 1
    new_id = joined[0].data["phone"]
    assert new_id in system.regions[1].phones


def test_handoff_default_target_is_next_region():
    spec = base_spec(
        n_regions=2,
        events=(EventSpec(kind="handoff", time=100.0, region=0, phones=(3,)),),
    )
    system = run_spec(spec)
    assert any(r.data["region"] == "region1"
               for r in categories(system, "phone_joined"))


def test_surge_speeds_sources_up_then_restores():
    quiet = run_spec(base_spec(), scheme="base")
    surged = run_spec(base_spec(events=(
        EventSpec(kind="surge", time=80.0, factor=4.0, until=160.0),
    )), scheme="base")
    n_quiet = quiet.trace.value("region0.source_inputs")
    n_surged = surged.trace.value("region0.source_inputs")
    assert n_surged > n_quiet * 1.3
    marks = categories(surged, "workload_surge")
    assert [m.data["factor"] for m in marks] == [4.0, 1.0]


def test_battery_event_triggers_chronic_self_report():
    spec = base_spec(events=(
        EventSpec(kind="battery", time=100.0, phones=(3,), charge=0.02),
    ))
    system = run_spec(spec)
    assert categories(system, "battery_dropped")
    reported = {r.data["phone"] for r in categories(system, "self_report")}
    assert "region0.p3" in reported


def test_churn_departs_phones_at_random_times_deterministically():
    spec = base_spec(events=(
        EventSpec(kind="churn", time=20.0, phones=(3, 4), interval=40.0),
    ))
    a = run_spec(spec)
    b = run_spec(spec)
    times_a = [(r.time, r.data["phone"]) for r in categories(a, "phone_departed")]
    times_b = [(r.time, r.data["phone"]) for r in categories(b, "phone_departed")]
    assert times_a and times_a == times_b


def test_concurrent_churn_waves_are_independent():
    # Two churn events must not share an RNG stream: their departure gap
    # sequences have to differ.
    spec = base_spec(
        n_regions=2,
        events=(
            EventSpec(kind="churn", time=20.0, region=0, phones=(3, 4), interval=40.0),
            EventSpec(kind="churn", time=20.0, region=1, phones=(3, 4), interval=40.0),
        ),
    )
    system = run_spec(spec)
    by_region = {}
    for r in categories(system, "phone_departed"):
        by_region.setdefault(r.data["region"], []).append(r.time)
    assert by_region["region0"] != by_region["region1"]


def test_battery_event_skips_departed_phones():
    spec = base_spec(events=(
        EventSpec(kind="depart", time=60.0, phones=(3,)),
        EventSpec(kind="battery", time=120.0, phones=(3,), charge=0.02),
    ))
    system = run_spec(spec)
    assert not categories(system, "battery_dropped")


def test_event_order_is_preserved_for_same_time_events():
    # Two events at the same instant apply in listed order: the crash is
    # observed before the departure of a different phone.
    spec = base_spec(events=(
        EventSpec(kind="crash", time=100.0, phones=(3,)),
        EventSpec(kind="depart", time=100.0, phones=(4,)),
    ))
    system = run_spec(spec)
    at_100 = [r.category for r in system.trace.records
              if r.time == 100.0 and r.category in ("phone_crashed", "phone_departed")]
    assert at_100.index("phone_crashed") < at_100.index("phone_departed")
