"""Tests for the declarative scenario specification."""

import json

import pytest

from repro.scenarios.spec import EventSpec, MatrixSpec, RegionSpec, ScenarioSpec


def rich_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="everything",
        description="one of each",
        duration_s=600.0,
        warmup_s=100.0,
        n_regions=3,
        idle_per_region=4,
        regions=(
            RegionSpec(phones=8, idle=6, cpu_speed=1.3, charge_fraction=0.8),
            RegionSpec(cpu_speed=0.7),
        ),
        events=(
            EventSpec(kind="crash", time=200.0, phones=(3, 4)),
            EventSpec(kind="cascade", time=250.0, phones=(5, 6), interval=20.0),
            EventSpec(kind="depart", time=300.0, region=1, phones=(2,)),
            EventSpec(kind="churn", time=100.0, phones=(3, 4), interval=50.0, until=500.0),
            EventSpec(kind="join", time=320.0, region=2, count=2),
            EventSpec(kind="handoff", time=400.0, region=0, phones=(7,), to_region=1),
            EventSpec(kind="surge", time=150.0, factor=2.5, until=450.0),
            EventSpec(kind="battery", time=350.0, phones=(1,), charge=0.02),
        ),
        matrix=MatrixSpec(apps=("bcp", "signalguru"), schemes=("base", "ms-8"),
                          seeds=(3, 4)),
    )


# -- round trips -------------------------------------------------------------
def test_dict_round_trip():
    spec = rich_spec()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_json_round_trip():
    spec = rich_spec()
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_json_is_canonical_and_parseable():
    text = rich_spec().to_json(indent=2)
    assert json.loads(text)  # strict JSON
    assert text == rich_spec().to_json(indent=2)


def test_from_dict_accepts_json_lists():
    # JSON turns tuples into lists; from_dict must coerce them back.
    data = json.loads(rich_spec().to_json())
    assert isinstance(data["events"][0]["phones"], list)
    assert ScenarioSpec.from_dict(data) == rich_spec()


# -- matrix ------------------------------------------------------------------
def test_matrix_expands_in_deterministic_order():
    from repro.apps.registry import AppRef

    m = MatrixSpec(apps=("a", "b"), schemes=("x",), seeds=(1, 2))
    a, b = AppRef.make("a"), AppRef.make("b")
    assert list(m.cases()) == [(a, "x", 1), (a, "x", 2),
                               (b, "x", 1), (b, "x", 2)]
    assert len(m) == 4


def test_matrix_rejects_empty_axes():
    with pytest.raises(ValueError):
        MatrixSpec(apps=())


# -- validation --------------------------------------------------------------
def test_unknown_event_kind_rejected():
    with pytest.raises(ValueError):
        EventSpec(kind="meteor", time=1.0)


def test_event_region_must_exist():
    with pytest.raises(ValueError):
        ScenarioSpec(name="s", events=(EventSpec(kind="crash", time=1.0, region=5),))


def test_handoff_target_must_exist():
    with pytest.raises(ValueError):
        ScenarioSpec(
            name="s", n_regions=2,
            events=(EventSpec(kind="handoff", time=1.0, phones=(1,), to_region=9),),
        )


def test_warmup_must_fit_duration():
    with pytest.raises(ValueError):
        ScenarioSpec(name="s", duration_s=100.0, warmup_s=100.0)


def test_surge_factor_positive():
    with pytest.raises(ValueError):
        EventSpec(kind="surge", time=1.0, factor=0.0)


# -- scaling -----------------------------------------------------------------
def test_scaled_compresses_everything_together():
    spec = rich_spec().scaled(0.5)
    assert spec.duration_s == 300.0
    assert spec.warmup_s == 50.0
    assert spec.checkpoint_period_s == 150.0
    crash = spec.events[0]
    assert crash.time == 100.0
    surge = spec.events[6]
    assert (surge.time, surge.until) == (75.0, 225.0)
    assert surge.factor == 2.5  # magnitudes don't scale


def test_quick_is_noop_for_short_scenarios():
    spec = ScenarioSpec(name="s", duration_s=200.0, warmup_s=50.0)
    assert spec.quick(300.0) is spec


def test_region_spec_fallback():
    spec = rich_spec()
    assert spec.region_spec(0).cpu_speed == 1.3
    assert spec.region_spec(2) == RegionSpec()
