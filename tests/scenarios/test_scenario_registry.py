"""Tests for the scenario registry and the built-in library."""

import pytest

from repro import scenarios
from repro.scenarios import registry
from repro.scenarios.spec import ScenarioSpec


def test_library_registers_at_least_six_scenarios():
    assert len(scenarios.names()) >= 6


def test_expected_names_present():
    names = scenarios.names()
    for expected in ("paper-fig8", "rush-hour-churn", "flash-crowd",
                     "failure-cascade", "handoff-storm", "heterogeneous-fleet"):
        assert expected in names


def test_get_returns_the_registered_spec():
    spec = scenarios.get("paper-fig8")
    assert spec.name == "paper-fig8"
    assert len(spec.matrix) == 14  # 2 apps x 7 schemes


def test_get_unknown_name_is_a_helpful_error():
    with pytest.raises(KeyError, match="registered"):
        scenarios.get("nope")


def test_register_rejects_duplicates_unless_replace():
    spec = ScenarioSpec(name="tmp-dup")
    registry.register(spec)
    try:
        with pytest.raises(ValueError):
            registry.register(spec)
        registry.register(spec, replace=True)
    finally:
        registry.unregister("tmp-dup")
    assert "tmp-dup" not in scenarios.names()


def test_every_library_spec_round_trips():
    for spec in scenarios.all_specs():
        assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_library_covers_event_kinds_beyond_the_old_harness():
    kinds = {ev.kind for spec in scenarios.all_specs() for ev in spec.events}
    # The old harness could only express one crash burst and one departure
    # burst; the library must exercise the new vocabulary.
    for new_kind in ("cascade", "churn", "join", "handoff", "surge", "battery"):
        assert new_kind in kinds


def test_library_includes_heterogeneous_regions():
    spec = scenarios.get("heterogeneous-fleet")
    speeds = {r.cpu_speed for r in spec.regions}
    assert len(speeds) > 1
