"""Events scheduled at or past ``duration_s`` are dead script entries:
``late_events()`` finds them, spec load warns about them once, and
``repro scenario show`` surfaces them on stderr."""

import logging

from repro import cli
from repro.scenarios.spec import EventSpec, MatrixSpec, ScenarioSpec


def _spec(events, duration=120.0, name="late"):
    return ScenarioSpec(
        name=name, duration_s=duration, warmup_s=10.0,
        checkpoint_period_s=40.0, events=tuple(events),
        matrix=MatrixSpec(apps=("bcp",), schemes=("base",), seeds=(3,)))


def test_late_events_returns_only_dead_entries():
    ok = EventSpec(kind="crash", time=60.0, phones=(2,))
    at = EventSpec(kind="depart", time=120.0, phones=(3,))
    past = EventSpec(kind="surge", time=150.0, factor=2.0)
    spec = _spec([ok, at, past])
    assert spec.late_events() == (at, past)


def test_no_late_events_means_no_warning(caplog):
    with caplog.at_level(logging.WARNING, logger="repro.sim"):
        spec = _spec([EventSpec(kind="crash", time=60.0, phones=(2,))])
    assert spec.late_events() == ()
    assert not [r for r in caplog.records if "never fire" in r.getMessage()]


def test_load_warns_about_late_events(caplog):
    with caplog.at_level(logging.WARNING, logger="repro.sim"):
        _spec([EventSpec(kind="crash", time=500.0, phones=(2,))])
    warnings = [r for r in caplog.records if "never fire" in r.getMessage()]
    assert len(warnings) == 1
    message = warnings[0].getMessage()
    assert "crash@500s" in message and "'late'" in message


def test_json_round_trip_warns_too(caplog, tmp_path):
    spec = _spec([EventSpec(kind="crash", time=500.0, phones=(2,))])
    with caplog.at_level(logging.WARNING, logger="repro.sim"):
        loaded = ScenarioSpec.from_json(spec.to_json())
    assert loaded.late_events() == spec.late_events()
    assert [r for r in caplog.records if "never fire" in r.getMessage()]


def test_quick_scaling_keeps_late_events_late():
    """Event times scale with duration, so a dead entry stays dead (and
    a live one stays live) in a ``quick()`` copy."""
    spec = _spec([EventSpec(kind="crash", time=60.0, phones=(2,)),
                  EventSpec(kind="depart", time=150.0, phones=(3,))],
                 duration=600.0)
    quick = spec.quick(120.0)
    assert [ev.kind for ev in quick.late_events()] == []
    late = _spec([EventSpec(kind="depart", time=700.0, phones=(3,))],
                 duration=600.0).quick(120.0)
    assert [ev.kind for ev in late.late_events()] == ["depart"]


def test_scenario_show_surfaces_late_events(tmp_path, capsys):
    spec = _spec([EventSpec(kind="crash", time=500.0, phones=(2,))])
    path = tmp_path / "late.json"
    path.write_text(spec.to_json(indent=2) + "\n")
    assert cli.main(["scenario", "show", str(path)]) == 0
    captured = capsys.readouterr()
    assert '"name": "late"' in captured.out
    assert "never fires" in captured.err and "t=500s" in captured.err


def test_scenario_show_is_quiet_without_late_events(capsys):
    assert cli.main(["scenario", "show", "paper-fig8"]) == 0
    assert "never fires" not in capsys.readouterr().err
