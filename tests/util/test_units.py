"""Tests for unit helpers."""

import pytest

from repro.util import (
    KB,
    MB,
    Mbps,
    bits_to_bytes,
    bytes_to_bits,
    fmt_bytes,
    fmt_rate,
    kbps,
    transmission_time,
)


def test_constants():
    assert KB == 1024
    assert MB == 1024 * 1024


def test_rate_conversions():
    assert Mbps(1) == 1_000_000
    assert kbps(2) == 2_000


def test_bit_byte_roundtrip():
    assert bytes_to_bits(10) == 80
    assert bits_to_bytes(80) == 10


def test_transmission_time_basic():
    # 1 MB over 8 Mbps = 1,048,576 * 8 bits / 8e6 bps ≈ 1.0486 s
    t = transmission_time(MB, Mbps(8))
    assert t == pytest.approx(1.048576)


def test_transmission_time_paper_uplink():
    # A 200 KB image over the paper's worst-case 0.016 Mbps uplink
    # takes ~102 s -> ~0.01 tuples/s, matching Table I's server floor.
    t = transmission_time(200 * KB, Mbps(0.016))
    assert 90 < t < 110


def test_transmission_time_validation():
    with pytest.raises(ValueError):
        transmission_time(10, 0)
    with pytest.raises(ValueError):
        transmission_time(-1, 100)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(8 * MB) == "8.00 MB"
    assert fmt_bytes(2 * KB) == "2.00 KB"


def test_fmt_rate():
    assert fmt_rate(1_500_000) == "1.50 Mbps"
    assert fmt_rate(2_000) == "2.00 kbps"
    assert fmt_rate(500) == "500 bps"
