"""Tests for statistics helpers."""

import math

from repro.util import mean, mean_ci, percentile, summarize


def test_mean():
    assert mean([1, 2, 3]) == 2.0
    assert math.isnan(mean([]))


def test_percentile():
    assert percentile([1, 2, 3, 4, 5], 50) == 3.0
    assert math.isnan(percentile([], 50))


def test_mean_ci_single_value():
    m, half = mean_ci([5.0])
    assert m == 5.0
    assert half == 0.0


def test_mean_ci_width_shrinks_with_n():
    small = mean_ci([1, 2, 3, 4])[1]
    big = mean_ci([1, 2, 3, 4] * 25)[1]
    assert big < small


def test_mean_ci_empty():
    m, half = mean_ci([])
    assert math.isnan(m) and math.isnan(half)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0])
    assert s.n == 3
    assert s.mean == 2.0
    assert s.minimum == 1.0
    assert s.maximum == 3.0
    assert s.p50 == 2.0
    assert "n=3" in str(s)


def test_summarize_empty():
    s = summarize([])
    assert s.n == 0
    assert math.isnan(s.mean)
