"""Tests for bitmap arithmetic, including Fig. 6's exact numbers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import KB
from repro.util.bitmaps import (
    all_received,
    and_bitmaps,
    bitmap_bytes,
    count_received,
    make_bitmap,
    missing_indices,
    received_bytes,
)


def test_make_bitmap():
    bm = make_bitmap(8, [0, 2, 7])
    assert bm.tolist() == [True, False, True, False, False, False, False, True]


def test_make_bitmap_out_of_range():
    with pytest.raises(IndexError):
        make_bitmap(4, [4])


def test_and_bitmaps():
    a = make_bitmap(4, [0, 1, 2])
    b = make_bitmap(4, [1, 2, 3])
    assert and_bitmaps([a, b]).tolist() == [False, True, True, False]


def test_and_bitmaps_length_mismatch():
    with pytest.raises(ValueError):
        and_bitmaps([make_bitmap(3), make_bitmap(4)])


def test_and_bitmaps_empty_list():
    with pytest.raises(ValueError):
        and_bitmaps([])


def test_missing_indices():
    anded = make_bitmap(5, [0, 2, 4])
    assert missing_indices(anded).tolist() == [1, 3]


def test_count_and_all_received():
    bm = make_bitmap(4, [0, 1, 2, 3])
    assert count_received(bm) == 4
    assert all_received(bm)
    assert not all_received(make_bitmap(4, [0]))


def test_bitmap_bytes_fig6():
    # 8192 messages -> 1 KB bitmap, exactly as in Fig. 6.
    assert bitmap_bytes(8192) == 1024


def test_bitmap_bytes_rounding():
    assert bitmap_bytes(1) == 1
    assert bitmap_bytes(8) == 1
    assert bitmap_bytes(9) == 2


def test_received_bytes_full():
    n = 8192
    bm = np.ones(n, dtype=bool)
    assert received_bytes(bm, KB, n * KB) == 8192 * KB


def test_received_bytes_fig6_node_c_round3():
    # Node C at t=6: all messages except M2 (index 1) -> 8191 KB.
    n = 8192
    bm = np.ones(n, dtype=bool)
    bm[1] = False
    assert received_bytes(bm, KB, n * KB) == 8191 * KB


def test_received_bytes_short_last_block():
    # 3 blocks of 1 KB covering 2.5 KB: last block is 512 B.
    total = 2 * KB + 512
    bm = np.ones(3, dtype=bool)
    assert received_bytes(bm, KB, total) == total
    bm[-1] = False
    assert received_bytes(bm, KB, total) == 2 * KB


def test_received_bytes_validates_block_count():
    with pytest.raises(ValueError):
        received_bytes(np.ones(3, dtype=bool), KB, 10 * KB)


# -- property-based ------------------------------------------------------
@given(
    n=st.integers(min_value=1, max_value=256),
    data=st.data(),
)
def test_and_is_subset_of_each_bitmap(n, data):
    k = data.draw(st.integers(min_value=1, max_value=4))
    bitmaps = [
        make_bitmap(n, data.draw(st.sets(st.integers(0, n - 1))))
        for _ in range(k)
    ]
    anded = and_bitmaps(bitmaps)
    for bm in bitmaps:
        assert not np.any(anded & ~bm)  # anded ⊆ bm


@given(n=st.integers(min_value=1, max_value=256), data=st.data())
def test_missing_plus_received_partition(n, data):
    bm = make_bitmap(n, data.draw(st.sets(st.integers(0, n - 1))))
    anded = and_bitmaps([bm])
    assert len(missing_indices(anded)) + count_received(bm) == n


@given(
    n_blocks=st.integers(min_value=1, max_value=64),
    last=st.integers(min_value=1, max_value=KB),
    data=st.data(),
)
def test_received_bytes_bounds(n_blocks, last, data):
    total = (n_blocks - 1) * KB + last
    bm = make_bitmap(n_blocks, data.draw(st.sets(st.integers(0, n_blocks - 1))))
    got = received_bytes(bm, KB, total)
    assert 0 <= got <= total
    if all_received(bm):
        assert got == total
