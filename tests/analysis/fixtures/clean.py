"""Counterpart to ``seeded_violation.py``: equivalent code written the
sanctioned way; must lint clean under every rule.
"""

import random
import time


def jitter(seed: int) -> float:
    return random.Random(seed).random()


def elapsed(t0: float) -> float:
    return time.perf_counter() - t0
