"""Deliberately broken fixture: the CI seeded-violation smoke lints this
file and greps for the expected rule IDs.  Never imported by anything.
"""

import random
import time


def jitter() -> float:
    # unseeded-rng: process-global stream.
    return random.random()


def stamp() -> float:
    # wall-clock: host clock leaks into output.
    return time.time()
