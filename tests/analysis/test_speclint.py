"""Spec lint: static ScenarioSpec JSON checks without execution."""

import json

import pytest

from repro.analysis import lint_spec_file
from repro.cli import main
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture
def base_spec():
    return ScenarioSpec(name="spec-lint-fixture", duration_s=600.0).to_dict()


def _write(tmp_path, payload):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload) if isinstance(payload, dict)
                    else payload)
    return str(path)


def _rules(path):
    return sorted({f.rule for f in lint_spec_file(path)})


def test_canonical_spec_is_clean(tmp_path, base_spec):
    assert lint_spec_file(_write(tmp_path, base_spec)) == []


def test_late_event_detected(tmp_path, base_spec):
    base_spec["events"] = [{"kind": "surge", "time": 600.0, "region": 0}]
    path = _write(tmp_path, base_spec)
    hits = lint_spec_file(path)
    assert [f.rule for f in hits] == ["spec-late-event"]
    assert "never fire" in hits[0].message


def test_unknown_app_and_scheme_detected(tmp_path, base_spec):
    base_spec["matrix"]["apps"] = ["bcp", "not-an-app"]
    base_spec["matrix"]["schemes"] = ["ms-8", "not-a-scheme"]
    assert _rules(_write(tmp_path, base_spec)) == [
        "spec-unknown-app", "spec-unknown-scheme"]


def test_default_valued_keys_flagged_as_noncanonical(tmp_path, base_spec):
    base_spec["telemetry"] = None
    base_spec["device_backend"] = "object"
    hits = lint_spec_file(_write(tmp_path, base_spec))
    assert [f.rule for f in hits] == ["spec-noncanonical-key"] * 2
    flagged = {f.code for f in hits}
    assert flagged == {"key=telemetry", "key=device_backend"}


def test_unparseable_and_unloadable_specs(tmp_path, base_spec):
    assert _rules(_write(tmp_path, "{not json")) == ["spec-invalid"]
    base_spec["events"] = [{"kind": "surge", "time": 10.0, "region": 99}]
    assert _rules(_write(tmp_path, base_spec)) == ["spec-invalid"]


def test_cli_routes_json_paths_to_spec_lint(tmp_path, base_spec, capsys):
    base_spec["events"] = [{"kind": "surge", "time": 600.0, "region": 0}]
    path = _write(tmp_path, base_spec)
    assert main(["lint", path, "--no-baseline", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["new"][0]["rule"] == "spec-late-event"


def test_cli_spec_rule_filter(tmp_path, base_spec, capsys):
    base_spec["events"] = [{"kind": "surge", "time": 600.0, "region": 0}]
    base_spec["telemetry"] = None
    path = _write(tmp_path, base_spec)
    assert main(["lint", path, "--no-baseline", "--rule",
                 "spec-noncanonical-key", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in report["new"]} == {"spec-noncanonical-key"}
