"""Observer-purity rule: the callback closure must stay observe-only."""

import textwrap

from repro.analysis import lint_source


def findings(source, relpath="repro/telemetry/fixture.py"):
    source = textwrap.dedent(source)
    return [f for f in lint_source(source, relpath)
            if f.rule == "observer-purity"]


def test_fires_when_registered_callback_calls_scheduler():
    hits = findings(
        """
        class Monitor:
            def start(self):
                self.trace.add_observer(self.observe)

            def observe(self, rec):
                self.sim.call_in(1.0, self._poke)
        """)
    assert len(hits) == 1
    assert "call_in" in hits[0].message


def test_fires_transitively_through_helpers():
    hits = findings(
        """
        class Monitor:
            def start(self):
                self.trace.add_observer(self.observe)

            def observe(self, rec):
                self._handle(rec)

            def _handle(self, rec):
                rec.event.trigger(None)
        """)
    assert len(hits) == 1
    assert "_handle" in hits[0].message


def test_fires_through_handler_dispatch_table():
    hits = findings(
        """
        class Monitor:
            def __init__(self):
                self._handlers = {"tick": self._on_tick}

            def start(self):
                self.trace.add_observer(self.observe, categories=self._handlers)

            def observe(self, rec):
                fn = self._handlers.get(rec.category)
                if fn is not None:
                    fn(rec)

            def _on_tick(self, rec):
                self.rng.stream("obs")
        """)
    assert len(hits) == 1
    assert "RNG" in hits[0].message


def test_fires_on_rng_module_call_in_callback():
    hits = findings(
        """
        import random

        class Monitor:
            def start(self):
                self.trace.add_observer(self.observe)

            def observe(self, rec):
                return random.random()
        """)
    assert len(hits) == 1


def test_quiet_for_pure_observer_and_scheduling_registrar():
    # start() may schedule its own flush timer: it is the registrar,
    # not the callback, so scheduler calls there are legitimate.
    hits = findings(
        """
        class Monitor:
            def __init__(self):
                self.rows = []

            def start(self):
                self.trace.add_observer(self.observe)
                self.sim.call_every(1.0, self.flush)

            def observe(self, rec):
                self.rows.append(rec.category)

            def flush(self):
                pass
        """)
    assert hits == []


def test_quiet_for_non_observer_class_calling_scheduler():
    hits = findings(
        """
        class Driver:
            def kick(self):
                self.sim.call_in(0.0, self.kick)
        """)
    assert hits == []
