"""API-contract rules: firing and non-firing fixtures per rule."""

import textwrap

from repro.analysis import lint_source


def findings(source, rule, relpath="repro/scenarios/fixture.py"):
    source = textwrap.dedent(source)
    return [f for f in lint_source(source, relpath) if f.rule == rule]


# -- deprecated-members ---------------------------------------------------

def test_deprecated_members_fires_outside_wifi():
    hits = findings(
        """
        def peers(cell):
            return [p.phone_id for p in cell.members]
        """, "deprecated-members")
    assert len(hits) == 1
    assert "member_ids()" in hits[0].message


def test_deprecated_members_quiet_in_wifi_module_and_for_member_ids():
    assert findings(
        """
        def peers(cell):
            return cell.members
        """, "deprecated-members", relpath="repro/net/wifi.py") == []
    assert findings(
        """
        def peers(cell):
            return cell.member_ids()
        """, "deprecated-members") == []


# -- raw-loss-poke --------------------------------------------------------

def test_raw_loss_poke_fires_on_internal_attrs():
    hits = findings(
        """
        def rig(cell):
            cell._uniform_p = 0.5
            cell._loss[(1, 2)] = 0.1
            return cell._uniform_loss_p()
        """, "raw-loss-poke")
    assert len(hits) == 3


def test_raw_loss_poke_quiet_for_set_loss_and_inside_wifi():
    assert findings(
        """
        def rig(cell):
            cell.set_loss(0.5)
        """, "raw-loss-poke") == []
    assert findings(
        """
        def rig(self):
            self._uniform_p = 0.5
        """, "raw-loss-poke", relpath="repro/net/wifi.py") == []


# -- missing-slots --------------------------------------------------------

def test_missing_slots_fires_on_slotted_base_subclass():
    hits = findings(
        """
        class Event:
            __slots__ = ("sim", "_value")

        class Flaky(Event):
            pass
        """, "missing-slots")
    assert len(hits) == 1
    assert "Flaky" in hits[0].message


def test_missing_slots_fires_on_known_base_without_local_definition():
    hits = findings(
        """
        class MyTimeout(Timeout):
            def __init__(self, sim):
                super().__init__(sim, 0.0)
        """, "missing-slots")
    assert len(hits) == 1


def test_missing_slots_fires_on_hot_path_init_attrs():
    hits = findings(
        """
        class Box:
            def __init__(self, x):
                self.x = x
        """, "missing-slots", relpath="repro/sim/events.py")
    assert len(hits) == 1


def test_missing_slots_quiet_with_empty_slots_or_off_hot_path():
    assert findings(
        """
        class Event:
            __slots__ = ("sim",)

        class Fine(Event):
            __slots__ = ()
        """, "missing-slots") == []
    # Plain classes off the hot path don't need slots.
    assert findings(
        """
        class Box:
            def __init__(self, x):
                self.x = x
        """, "missing-slots") == []


def test_missing_slots_quiet_for_dataclasses_and_exceptions():
    assert findings(
        """
        from dataclasses import dataclass

        @dataclass
        class Row:
            x: int = 0

        class BoxError(ValueError):
            def __init__(self, x):
                super().__init__(x)
                self.x = x
        """, "missing-slots", relpath="repro/sim/events.py") == []


# -- default-key-emit -----------------------------------------------------

def test_default_key_emit_fires_when_optional_field_not_filtered():
    hits = findings(
        """
        import dataclasses
        from dataclasses import dataclass
        from typing import Optional

        @dataclass
        class Spec:
            name: str = "x"
            extra: Optional[int] = None

            def to_dict(self):
                return dataclasses.asdict(self)
        """, "default-key-emit")
    assert len(hits) == 1
    assert "extra" in hits[0].message


def test_default_key_emit_quiet_when_field_is_deleted_or_guarded():
    assert findings(
        """
        import dataclasses
        from dataclasses import dataclass
        from typing import Optional

        @dataclass
        class Spec:
            name: str = "x"
            extra: Optional[int] = None

            def to_dict(self):
                d = dataclasses.asdict(self)
                if self.extra is None:
                    del d["extra"]
                return d
        """, "default-key-emit") == []


def test_default_key_emit_quiet_without_asdict_or_optional_fields():
    assert findings(
        """
        import dataclasses
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str = "x"

            def to_dict(self):
                return dataclasses.asdict(self)
        """, "default-key-emit") == []
