"""Framework mechanics: registry, suppressions, baseline, CLI gate."""

import json
import textwrap

import pytest

import repro.analysis as analysis
from repro.analysis import (
    Rule,
    diff_against,
    get_rule,
    lint_source,
    load_baseline,
    register_rule,
    rule_names,
    write_baseline,
)
from repro.analysis.core import _RULES
from repro.cli import main

VIOLATION = textwrap.dedent(
    """
    import random

    def draw():
        return random.random()
    """)


# -- registry -------------------------------------------------------------

def test_unknown_rule_error_lists_known_names():
    with pytest.raises(ValueError) as err:
        get_rule("no-such-rule")
    message = str(err.value)
    assert "no-such-rule" in message
    for name in ("unseeded-rng", "lock-discipline"):
        assert name in message


def test_catalog_has_all_ten_rules_across_four_families():
    names = rule_names()
    assert len(names) == 10
    families = {get_rule(n).family for n in names}
    assert families == {"determinism", "api-contract", "observer-purity",
                        "lock-discipline"}


def test_duplicate_registration_rejected():
    class Dupe(Rule):
        name = "unseeded-rng"
        family = "determinism"
        description = "dupe"

    with pytest.raises(ValueError, match="already registered"):
        register_rule(Dupe)
    assert _RULES["unseeded-rng"] is not Dupe


def test_bad_family_rejected():
    class Wrong(Rule):
        name = "wrong-family"
        family = "vibes"
        description = "x"

    with pytest.raises(ValueError, match="vibes"):
        register_rule(Wrong)


# -- suppressions ---------------------------------------------------------

def test_disable_comment_suppresses_that_rule_on_that_line():
    src = ("import random\n"
           "x = random.random()  # repro-lint: disable=unseeded-rng\n"
           "y = random.random()\n")
    hits = lint_source(src, "repro/sim/fixture.py")
    assert [f.line for f in hits if f.rule == "unseeded-rng"] == [3]


def test_disable_all_and_multi_rule_lists():
    src = ("import random, time\n"
           "a = random.random()  # repro-lint: disable=all\n"
           "b = time.time()  # repro-lint: disable=wall-clock,unseeded-rng\n")
    assert lint_source(src, "repro/sim/fixture.py") == []


def test_disable_comment_on_other_line_does_not_suppress():
    src = ("import random\n"
           "# repro-lint: disable=unseeded-rng\n"
           "x = random.random()\n")
    hits = lint_source(src, "repro/sim/fixture.py")
    assert len(hits) == 1


# -- fingerprints & baseline ----------------------------------------------

def test_fingerprint_is_stable_across_line_churn():
    before = lint_source(VIOLATION, "repro/sim/fixture.py")
    after = lint_source("\n\n\n" + VIOLATION, "repro/sim/fixture.py")
    assert [f.fingerprint for f in before] == [f.fingerprint for f in after]
    assert before[0].line != after[0].line


def test_baseline_roundtrip_and_diff(tmp_path):
    findings = lint_source(VIOLATION, "repro/sim/fixture.py")
    path = str(tmp_path / "baseline.json")
    write_baseline(path, findings)
    baseline = load_baseline(path)
    new, matched = diff_against(findings, baseline)
    assert new == []
    assert sum(matched.values()) == len(findings)


def test_baseline_diff_uses_multiset_counts():
    f = lint_source(VIOLATION, "repro/sim/fixture.py")[0]
    twice = [f, f]
    baseline_one = {f.fingerprint: 1}
    new, matched = diff_against(twice, baseline_one)
    assert len(new) == 1 and matched == {f.fingerprint: 1}


def test_corrupt_baseline_raises_with_path(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{}")
    with pytest.raises(ValueError, match=str(path)):
        load_baseline(str(path))


def test_parse_error_becomes_a_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    hits = analysis.lint_file(str(bad))
    assert [f.rule for f in hits] == ["parse-error"]


# -- CLI ------------------------------------------------------------------

def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return str(path)


def test_cli_exit_zero_on_clean_file(tmp_path, capsys):
    clean = _write(tmp_path, "clean.py", "x = 1\n")
    assert main(["lint", clean, "--no-baseline"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exit_one_on_violation_with_json_report(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert main(["lint", bad, "--no-baseline", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["total"] == 1
    assert report["new"][0]["rule"] == "unseeded-rng"


def test_cli_exit_two_on_unknown_rule_and_missing_path(tmp_path):
    clean = _write(tmp_path, "clean.py", "x = 1\n")
    assert main(["lint", clean, "--rule", "nope"]) == 2
    assert main(["lint", str(tmp_path / "absent.py")]) == 2


def test_cli_rule_filter_narrows_the_run(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py",
                 "import random, time\n"
                 "a = random.random()\n"
                 "b = time.time()\n")
    assert main(["lint", bad, "--no-baseline", "--rule", "wall-clock",
                 "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in report["new"]} == {"wall-clock"}


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    baseline = str(tmp_path / "lint-baseline.json")
    assert main(["lint", bad, "--write-baseline", "--baseline", baseline]) == 0
    capsys.readouterr()
    # Gate: the old finding is known, so the run is clean...
    assert main(["lint", bad, "--baseline", baseline]) == 0
    out = capsys.readouterr().out
    assert "known from baseline" in out
    # ...until a new violation appears.
    worse = _write(tmp_path, "bad.py", VIOLATION + "\nimport time\nt = time.time()\n")
    assert main(["lint", worse, "--baseline", baseline]) == 1


def test_cli_default_baseline_discovered_from_cwd(tmp_path, monkeypatch):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    nested = tmp_path / "deep" / "er"
    nested.mkdir(parents=True)
    write_baseline(str(tmp_path / "lint-baseline.json"),
                   analysis.lint_file(bad))
    monkeypatch.chdir(nested)
    assert main(["lint", bad]) == 0


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in rule_names():
        assert name in out
    assert "spec-late-event" in out
