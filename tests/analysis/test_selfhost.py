"""Self-hosting: the tree must lint clean against the committed baseline.

This is the same check CI's lint-smoke job runs; keeping it in the
test suite means a violation fails `pytest` locally before a push.
"""

import os

from repro.analysis import (
    default_baseline_path,
    diff_against,
    lint_paths,
    load_baseline,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def test_src_is_clean_against_committed_baseline():
    baseline_path = os.path.join(REPO_ROOT, "lint-baseline.json")
    assert os.path.isfile(baseline_path), "lint-baseline.json must be committed"
    baseline = load_baseline(baseline_path)
    findings = lint_paths([os.path.join(REPO_ROOT, "src")])
    new, _ = diff_against(findings, baseline)
    assert new == [], "new lint findings:\n" + "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in new)


def test_committed_baseline_is_empty():
    # The satellite contract: all debt was paid in this PR.  If a later
    # PR must baseline a finding, it should consciously relax this.
    baseline = load_baseline(os.path.join(REPO_ROOT, "lint-baseline.json"))
    assert sum(baseline.values()) == 0


def test_default_baseline_discovery_finds_repo_root():
    found = default_baseline_path(start=os.path.dirname(__file__))
    assert found == os.path.join(REPO_ROOT, "lint-baseline.json")


def test_violation_fixture_fires_expected_rules():
    fixtures = os.path.join(os.path.dirname(__file__), "fixtures")
    findings = lint_paths([os.path.join(fixtures, "seeded_violation.py")])
    assert {f.rule for f in findings} == {"unseeded-rng", "wall-clock"}
    assert lint_paths([os.path.join(fixtures, "clean.py")]) == []
