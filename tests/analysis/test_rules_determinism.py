"""Determinism-family rules: firing and non-firing fixtures per rule."""

import textwrap

from repro.analysis import lint_source

SERIAL_PATH = "repro/checkpoint/fixture.py"


def findings(source, rule, relpath=SERIAL_PATH):
    source = textwrap.dedent(source)
    return [f for f in lint_source(source, relpath) if f.rule == rule]


# -- set-iteration --------------------------------------------------------

def test_set_iteration_fires_on_for_loop_over_set_literal():
    hits = findings(
        """
        def dump(out):
            for x in {1, 2, 3}:
                out.append(x)
        """, "set-iteration")
    assert len(hits) == 1
    assert "sorted" in hits[0].message


def test_set_iteration_fires_on_assigned_set_name_and_self_attr():
    hits = findings(
        """
        class C:
            def __init__(self):
                self.pending = set()

            def dump(self, items):
                seen = {i.key for i in items}
                a = [k for k in seen]
                b = list(self.pending)
                return a, b
        """, "set-iteration")
    assert len(hits) == 2


def test_set_iteration_fires_on_join():
    hits = findings(
        """
        def render(tags):
            return ",".join(set(tags))
        """, "set-iteration")
    assert len(hits) == 1


def test_set_iteration_quiet_when_sorted_or_membership_or_reduction():
    hits = findings(
        """
        def dump(items, pending):
            keys = set(items)
            for k in sorted(keys):
                yield k
            if "x" in keys:
                yield "x"
            return len(keys), min(keys), sum(keys)
        """, "set-iteration")
    assert hits == []


def test_set_iteration_quiet_for_set_comp_over_set():
    # Unordered in, unordered out: no order leaks.
    hits = findings(
        """
        def surviving(done, node):
            return {k for k in done if k[0] != node}
        """, "set-iteration")
    assert hits == []


def test_set_iteration_quiet_outside_serialization_paths():
    hits = findings(
        """
        def spin():
            for x in {1, 2}:
                pass
        """, "set-iteration", relpath="repro/sim/fixture.py")
    assert hits == []


# -- unseeded-rng ---------------------------------------------------------

def test_unseeded_rng_fires_on_global_random_calls():
    hits = findings(
        """
        import random

        def draw(xs):
            random.shuffle(xs)
            return random.random()
        """, "unseeded-rng")
    assert len(hits) == 2


def test_unseeded_rng_fires_on_from_import_and_numpy():
    hits = findings(
        """
        import numpy as np
        from random import choice

        def draw(xs):
            np.random.seed(0)
            rng = np.random.default_rng()
            return choice(xs)
        """, "unseeded-rng")
    assert len(hits) == 3


def test_unseeded_rng_fires_on_seedless_random_ctor():
    hits = findings(
        """
        import random

        def make():
            return random.Random()
        """, "unseeded-rng")
    assert len(hits) == 1


def test_unseeded_rng_quiet_for_seeded_generators():
    hits = findings(
        """
        import random
        import numpy as np

        def make(seed):
            return random.Random(seed), np.random.default_rng(seed)
        """, "unseeded-rng")
    assert hits == []


def test_unseeded_rng_quiet_inside_rng_module():
    hits = findings(
        """
        import random

        def stream():
            return random.random()
        """, "unseeded-rng", relpath="repro/sim/rng.py")
    assert hits == []


# -- wall-clock -----------------------------------------------------------

def test_wall_clock_fires_on_time_time_and_datetime_now():
    hits = findings(
        """
        import time
        from datetime import datetime

        def stamp():
            return time.time(), datetime.now()
        """, "wall-clock")
    assert len(hits) == 2
    assert "perf_counter" in hits[0].message


def test_wall_clock_fires_on_from_import():
    hits = findings(
        """
        from time import time

        def stamp():
            return time()
        """, "wall-clock")
    assert len(hits) == 1


def test_wall_clock_quiet_for_monotonic_clocks():
    hits = findings(
        """
        import time

        def elapsed(t0):
            return time.perf_counter() - t0, time.monotonic()
        """, "wall-clock")
    assert hits == []


# -- id-order -------------------------------------------------------------

def test_id_order_fires_on_sort_keys_and_comparisons():
    hits = findings(
        """
        def order(xs, a, b):
            xs.sort(key=id)
            ranked = sorted(xs, key=lambda o: id(o))
            return ranked, id(a) < id(b)
        """, "id-order")
    assert len(hits) == 3


def test_id_order_quiet_for_identity_memo_and_stable_keys():
    hits = findings(
        """
        def memo(xs):
            seen = {}
            for x in xs:
                seen[id(x)] = x
            return sorted(xs, key=str)
        """, "id-order")
    assert hits == []
