"""Lock-discipline rule: guarded attrs must be touched under the lock."""

import textwrap

from repro.analysis import lint_source


def findings(source, relpath="repro/fabric/fixture.py"):
    source = textwrap.dedent(source)
    return [f for f in lint_source(source, relpath)
            if f.rule == "lock-discipline"]


def test_fires_on_unlocked_read_of_guarded_attr():
    hits = findings(
        """
        import threading

        class Coord:
            def __init__(self):
                self._lock = threading.Lock()
                self._closing = False

            def close(self):
                with self._lock:
                    self._closing = True

            def loop(self):
                while not self._closing:
                    pass
        """)
    assert len(hits) == 1
    assert "_closing" in hits[0].message and "read" in hits[0].message


def test_fires_on_unlocked_write():
    hits = findings(
        """
        import threading

        class Coord:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._n += 1

            def reset(self):
                self._n = 0
        """)
    assert len(hits) == 1
    assert "written" in hits[0].message


def test_condition_counts_as_holding_the_lock():
    hits = findings(
        """
        import threading

        class Coord:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)
                self._done = False

            def finish(self):
                with self._lock:
                    self._done = True

            def wait(self):
                with self._cond:
                    while not self._done:
                        self._cond.wait()
        """)
    assert hits == []


def test_lock_context_helpers_are_exempt():
    # _spawn is only ever called with the lock held, so its unlocked
    # body is fine (the "caller holds the lock" idiom).
    hits = findings(
        """
        import threading

        class Fleet:
            def __init__(self):
                self._lock = threading.Lock()
                self._spawned = 0

            def start(self):
                with self._lock:
                    self._spawn()

            def maintain(self):
                with self._lock:
                    self._spawn()

            def _spawn(self):
                self._spawned += 1
        """)
    assert hits == []


def test_init_and_repr_are_exempt():
    hits = findings(
        """
        import threading

        class Coord:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = "new"

            def go(self):
                with self._lock:
                    self._state = "running"

            def __repr__(self):
                return f"<Coord {self._state}>"
        """)
    assert hits == []


def test_nested_function_bodies_count_as_unlocked():
    # A closure handed to a thread runs later, without the lock.
    hits = findings(
        """
        import threading

        class Coord:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def start(self):
                with self._lock:
                    self._n = 1

                    def work():
                        self._n += 1
                    threading.Thread(target=work).start()
        """)
    assert len(hits) == 1


def test_quiet_outside_fabric_paths_and_without_locks():
    source = """
        import threading

        class Coord:
            def __init__(self):
                self._lock = threading.Lock()
                self._x = 0

            def a(self):
                with self._lock:
                    self._x = 1

            def b(self):
                return self._x
        """
    assert findings(source, relpath="repro/sim/fixture.py") == []
    assert findings(
        """
        class Plain:
            def a(self):
                self._x = 1

            def b(self):
                return self._x
        """) == []
