"""End-to-end contract tests: real sweep artifacts through the API.

The acceptance bar of the results redesign: every artifact a sweep
writes — buffered, streamed, pretty, or compact — loads into a typed
:class:`ResultSet` and serializes back to the *identical bytes*, and the
deprecated runner shims keep working (with a warning) while producing
those same bytes.
"""

import json

import pytest

from repro.results import ResultSet, dumps_artifact
from repro.scenarios.executor import run_sweep
from repro.scenarios.spec import MatrixSpec, ScenarioSpec


@pytest.fixture(scope="module")
def spec():
    return ScenarioSpec(
        name="results-t", duration_s=200.0, warmup_s=40.0, idle_per_region=4,
        checkpoint_period_s=60.0,
        matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3,)),
    )


@pytest.fixture(scope="module")
def sweep(spec, tmp_path_factory):
    """One real sweep, written to disk in both layouts."""
    root = tmp_path_factory.mktemp("artifacts")
    pretty = root / "pretty.json"
    compact = root / "compact.json"
    result = run_sweep(spec, jobs=1, out_path=str(pretty))
    run_sweep(spec, jobs=1, out_path=str(compact), compact=True)
    return {"result": result, "pretty": pretty, "compact": compact}


def test_from_sweep_to_json_matches_canonical_bytes(sweep):
    rs = ResultSet.from_sweep(sweep["result"])
    assert rs.to_json() == dumps_artifact(sweep["result"])
    assert rs.to_json(compact=True) == dumps_artifact(
        sweep["result"], compact=True)


@pytest.mark.parametrize("layout", ["pretty", "compact"])
def test_load_round_trips_artifact_files_byte_exactly(sweep, layout):
    path = sweep[layout]
    rs = ResultSet.load(str(path))
    compact = layout == "compact"
    assert rs.to_json(compact=compact) + "\n" == path.read_text()


def test_save_reproduces_the_streamed_artifact(sweep, tmp_path):
    rs = ResultSet.load(str(sweep["pretty"]))
    out = tmp_path / "resaved.json"
    rs.save(str(out))
    assert out.read_bytes() == sweep["pretty"].read_bytes()


def test_typed_cases_match_the_raw_rows(sweep):
    rs = ResultSet.from_sweep(sweep["result"])
    for case, raw in zip(rs, sweep["result"]["cases"]):
        assert case.to_dict() == raw
        assert case.scenario == "results-t"
    assert rs.schemes == ["base", "ms-8"]


def test_query_surface_over_a_real_artifact(sweep):
    rs = ResultSet.load(str(sweep["pretty"]))
    rel = rs.relative_to("base", metrics=("throughput", "latency"))
    assert rel["base"]["throughput"] == pytest.approx(1.0)
    assert rel["ms-8"]["throughput"] > 0
    pv = rs.pivot(rows="scheme", cols="app", metric="throughput")
    assert pv.cell("ms-8", "bcp") == rs.filter(
        scheme="ms-8").aggregate("throughput").value


def test_resume_cache_rows_load_as_single_cases(spec, tmp_path):
    run_sweep(spec, jobs=1, resume_dir=str(tmp_path))
    row_files = sorted(tmp_path.rglob("*.json"))
    assert row_files
    for path in row_files:
        rs = ResultSet.load(str(path))
        assert len(rs) == 1
        assert rs[0].scenario == "results-t"


# -- deprecated shims ---------------------------------------------------------
def test_dumps_result_shim_warns_and_matches_dumps_artifact(sweep):
    from repro.scenarios.runner import dumps_result

    with pytest.warns(DeprecationWarning, match="dumps_artifact"):
        legacy = dumps_result(sweep["result"])
    assert legacy == dumps_artifact(sweep["result"])


def test_runner_run_sweep_shim_warns(spec):
    from repro.scenarios.runner import run_sweep as legacy_run_sweep

    with pytest.warns(DeprecationWarning, match="executor.run_sweep"):
        result = legacy_run_sweep(spec, jobs=1)
    assert result["n_cases"] == 2


def test_experiment_outcome_carries_the_typed_case():
    from repro.bench.harness import ExperimentConfig, run_experiment

    out = run_experiment(ExperimentConfig(
        app="bcp", scheme="base", duration_s=200.0, warmup_s=40.0, seed=3))
    assert out.case.scheme == "base"
    assert out.throughput == out.case.throughput
    assert out.latency == out.case.latency_s
    json.dumps(out.case.to_dict(), allow_nan=False)
