"""ResultSet queries: filter, group, aggregate, normalize, export."""

import json
import math

import pytest

from repro.results import ResultSet, dumps_artifact
from repro.util.stats import mean_ci
from tests.results._cases import make_case


@pytest.fixture()
def rs():
    return ResultSet.from_cases([
        make_case(scheme="base", seed=3, tput=10.0, lat=2.0, preserved=0.0),
        make_case(scheme="base", seed=4, tput=14.0, lat=4.0, preserved=0.0),
        make_case(scheme="ms-8", seed=3, tput=8.0, lat=3.0, preserved=100.0),
        make_case(scheme="ms-8", seed=4, tput=6.0, lat=5.0, preserved=300.0),
        make_case(app="signalguru", scheme="ms-8", seed=3, tput=20.0,
                  lat=1.0, preserved=50.0),
    ], scenario="synth")


# -- filter -------------------------------------------------------------------
def test_filter_by_scalar_and_collection(rs):
    assert len(rs.filter(scheme="base")) == 2
    assert len(rs.filter(scheme="ms-8", app="bcp")) == 2
    assert len(rs.filter(seed=(3, 4))) == 5
    assert len(rs.filter(seed=[4])) == 2


def test_filter_by_predicate(rs):
    heavy = rs.filter(lambda c: c.preserved_bytes > 75.0)
    assert len(heavy) == 2
    assert all(c.scheme == "ms-8" for c in heavy)


def test_filter_unknown_axis_lists_axes(rs):
    with pytest.raises(ValueError, match="scenario, app, scheme, seed"):
        rs.filter(color="red")


def test_filter_keeps_provenance(rs):
    assert rs.filter(scheme="base").scenario == "synth"


# -- axis views / group_by ----------------------------------------------------
def test_axis_views_keep_first_seen_order(rs):
    assert rs.schemes == ["base", "ms-8"]
    assert rs.apps == ["bcp", "signalguru"]
    assert rs.seeds == [3, 4]


def test_group_by_single_axis(rs):
    groups = rs.group_by("scheme")
    assert groups.keys() == ["base", "ms-8"]
    assert len(groups["base"]) == 2
    assert len(groups["ms-8"]) == 3


def test_group_by_multiple_axes_keys_by_tuple(rs):
    groups = rs.group_by("app", "scheme")
    assert ("bcp", "base") in groups
    assert len(groups[("signalguru", "ms-8")]) == 1


def test_group_lookup_error_lists_known_groups(rs):
    with pytest.raises(ValueError, match="'base', 'ms-8'"):
        rs.group_by("scheme")["nope"]


def test_group_by_without_axes_is_an_error(rs):
    with pytest.raises(ValueError, match="at least one axis"):
        rs.group_by()


# -- aggregate ----------------------------------------------------------------
def test_aggregate_mean_min_max(rs):
    base = rs.filter(scheme="base")
    assert base.aggregate("throughput").value == pytest.approx(12.0)
    assert base.aggregate("throughput", "min").value == 10.0
    assert base.aggregate("throughput", "max").value == 14.0
    assert base.aggregate("throughput", "sum").value == 24.0
    assert base.aggregate("throughput", "count").value == 2


def test_aggregate_p95_is_nearest_rank(rs):
    agg = rs.aggregate("throughput", "p95")
    # Sorted sample: 6, 8, 10, 14, 20 -> ceil(0.95*5)=5 -> index 4.
    assert agg.value == 20.0
    assert agg.n == 5


def test_aggregate_skips_null_metrics():
    rs2 = ResultSet.from_cases([
        make_case(seed=3, lat=2.0),
        make_case(seed=4, lat=None),
    ])
    agg = rs2.aggregate("latency")
    assert agg.value == 2.0
    assert agg.n == 1


def test_aggregate_empty_sample_is_nan():
    rs2 = ResultSet.from_cases([make_case(lat=None)])
    assert math.isnan(rs2.aggregate("latency").value)
    assert rs2.aggregate("latency", "count").value == 0


def test_aggregate_ci_matches_stats_helper(rs):
    base = rs.filter(scheme="base")
    agg = base.aggregate("throughput", ci=True)
    expected_half = mean_ci([10.0, 14.0])[1]
    assert agg.ci_half == pytest.approx(expected_half)
    assert agg.low == pytest.approx(agg.value - expected_half)
    assert agg.high == pytest.approx(agg.value + expected_half)
    assert float(agg) == agg.value


def test_aggregate_ci_requires_mean(rs):
    with pytest.raises(ValueError, match="stat='mean'"):
        rs.aggregate("throughput", "p95", ci=True)


def test_aggregate_unknown_stat_lists_stats(rs):
    with pytest.raises(ValueError, match="unknown stat"):
        rs.aggregate("throughput", "mode")


def test_grouped_aggregate(rs):
    per_scheme = rs.group_by("scheme").aggregate("throughput")
    assert per_scheme["base"].value == pytest.approx(12.0)
    assert per_scheme["ms-8"].n == 3


# -- relative_to --------------------------------------------------------------
def test_relative_to_normalizes_group_means(rs):
    rel = rs.filter(app="bcp").relative_to(
        "base", metrics=("throughput", "latency"))
    assert rel["base"]["throughput"] == pytest.approx(1.0)
    assert rel["base"]["latency"] == pytest.approx(1.0)
    # ms-8 mean tput 7 vs base mean 12; latency 4 vs 3.
    assert rel["ms-8"]["throughput"] == pytest.approx(7.0 / 12.0)
    assert rel["ms-8"]["latency"] == pytest.approx(4.0 / 3.0)


def test_relative_to_zero_baseline_yields_default(rs):
    rel = rs.filter(app="bcp").relative_to(
        "base", metrics=("preserved_bytes",), default=0.0)
    assert rel["ms-8"]["preserved_bytes"] == 0.0  # base preserved 0


def test_relative_to_floor_clamps_the_denominator(rs):
    rel = rs.filter(app="bcp").relative_to(
        "base", metrics=("preserved_bytes",), floor=1.0)
    # Denominator max(0, 1.0) = 1.0 -> ratios are the raw means.
    assert rel["ms-8"]["preserved_bytes"] == pytest.approx(200.0)


def test_relative_to_unknown_baseline_lists_groups(rs):
    with pytest.raises(ValueError, match="'base', 'ms-8'"):
        rs.relative_to("nope")


# -- pivot --------------------------------------------------------------------
def test_pivot_scheme_by_app(rs):
    pv = rs.pivot(rows="scheme", cols="app", metric="throughput")
    assert pv.row_keys == ("base", "ms-8")
    assert pv.col_keys == ("bcp", "signalguru")
    assert pv.cell("base", "bcp") == pytest.approx(12.0)
    assert pv.cell("ms-8", "signalguru") == 20.0
    assert math.isnan(pv.cell("base", "signalguru"))  # no such case
    text = pv.to_text()
    assert "scheme\\app" in text
    assert "-" in text  # the empty cell renders as a dash


# -- export -------------------------------------------------------------------
def test_to_rows_flattens_region_metrics(rs):
    rows = rs.to_rows()
    assert len(rows) == 5
    assert rows[0]["scheme"] == "base"
    assert rows[0]["region0.throughput_tps"] == 10.0
    assert rows[0]["stopped"] is False


# -- envelope / serialization -------------------------------------------------
def envelope(cases, **extra):
    d = {"cases": [c.to_dict() for c in cases], "n_cases": len(cases)}
    d.update(extra)
    return d


def test_from_sweep_round_trips_to_identical_bytes(rs):
    result = envelope(rs.cases, scenario="synth", spec={"name": "synth"})
    again = ResultSet.from_sweep(result)
    assert again.to_json() == dumps_artifact(result)
    assert again.to_json(compact=True) == dumps_artifact(result, compact=True)


def test_from_sweep_rejects_torn_artifacts(rs):
    result = envelope(rs.cases)
    result["n_cases"] = 99
    with pytest.raises(ValueError, match="torn"):
        ResultSet.from_sweep(result)


def test_from_sweep_rejects_unknown_envelope_keys(rs):
    with pytest.raises(ValueError, match="unknown key"):
        ResultSet.from_sweep(envelope(rs.cases, extra=1))


def test_from_sweep_accepts_and_reemits_schema_version(rs):
    result = envelope(rs.cases, schema_version=1)
    again = ResultSet.from_sweep(result)
    assert again.schema_version == 1
    assert json.loads(again.to_json())["schema_version"] == 1


def test_from_sweep_rejects_future_schema_versions(rs):
    with pytest.raises(ValueError, match="schema version 2"):
        ResultSet.from_sweep(envelope(rs.cases, schema_version=2))


def test_load_accepts_sweep_case_list_and_single_case(tmp_path, rs):
    sweep = tmp_path / "sweep.json"
    rs.save(str(sweep))
    assert len(ResultSet.load(str(sweep))) == 5

    row = tmp_path / "case.json"
    row.write_text(json.dumps(rs[0].to_dict()))
    single = ResultSet.load(str(row))
    assert len(single) == 1 and single[0] == rs[0]

    listing = tmp_path / "rows.json"
    listing.write_text(json.dumps([c.to_dict() for c in rs.cases[:2]]))
    assert len(ResultSet.load(str(listing))) == 2

    junk = tmp_path / "junk.json"
    junk.write_text('{"hello": 1}')
    with pytest.raises(ValueError, match="not a sweep artifact"):
        ResultSet.load(str(junk))


def test_save_load_is_byte_stable(tmp_path, rs):
    path = tmp_path / "a.json"
    rs.save(str(path))
    again = ResultSet.load(str(path))
    assert again.to_json() + "\n" == path.read_text()
    assert again.cases == rs.cases


def test_from_sweep_rejects_non_list_cases(rs):
    with pytest.raises(ValueError, match="'cases' must be a list"):
        ResultSet.from_sweep({"cases": 1, "n_cases": 1})


def test_format_table_is_shared_with_the_bench_harness():
    """One renderer: the bench layout and the report layout must never
    drift apart (regression: report.py carried a copy)."""
    from repro.bench import harness
    from repro.results import report
    from repro.util.tables import format_table

    assert harness.format_table is format_table
    assert report.format_table is format_table
