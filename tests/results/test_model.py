"""Typed case rows: schema round-trip, accessors, strict errors."""

import json
import math

import pytest

from repro.core.metrics import MetricsReport, RegionMetrics
from repro.results import SCHEMA_VERSION, CaseResult, RegionResult


def make_report():
    """A two-region report; region1 never produced output (NaN latency)."""
    report = MetricsReport(window_start=40.0, window_end=200.0)
    report.per_region["region0"] = RegionMetrics(
        region="region0", output_tuples=10, throughput_tps=0.0625,
        mean_latency_s=1.5, p95_latency_s=3.25)
    report.per_region["region1"] = RegionMetrics(
        region="region1", output_tuples=0, throughput_tps=0.0,
        mean_latency_s=float("nan"), p95_latency_s=float("nan"))
    report.preserved_bytes = 1024.0
    report.ft_network_bytes = 512.0
    report.wifi_bytes = 4096.0
    report.cellular_bytes = 64.0
    report.recoveries = 2
    report.departures_handled = 1
    return report


EXPECTED_ROW = {
    "scenario": "t",
    "app": "bcp",
    "scheme": "ms-8",
    "seed": 3,
    "regions": {
        "region0": {"output_tuples": 10, "throughput_tps": 0.0625,
                    "mean_latency_s": 1.5, "p95_latency_s": 3.25,
                    "stopped": False},
        "region1": {"output_tuples": 0, "throughput_tps": 0.0,
                    "mean_latency_s": None, "p95_latency_s": None,
                    "stopped": True},
    },
    # e2e latency reads the *last* region, which is NaN here -> null.
    "end_to_end_latency_s": None,
    "preserved_bytes": 1024.0,
    "ft_network_bytes": 512.0,
    "wifi_bytes": 4096.0,
    "cellular_bytes": 64.0,
    "recoveries": 2,
    "departures_handled": 1,
}


@pytest.fixture()
def case():
    return CaseResult.from_report(
        scenario="t", app="bcp", scheme="ms-8", seed=3,
        report=make_report(), region_stopped=[False, True])


def test_schema_version_is_one():
    assert SCHEMA_VERSION == 1


def test_from_report_produces_the_exact_artifact_row(case):
    assert case.to_dict() == EXPECTED_ROW
    # NaN became null: the row is strict JSON.
    json.dumps(case.to_dict(), allow_nan=False)


def test_row_round_trips_byte_exactly(case):
    row = case.to_dict()
    again = CaseResult.from_dict(row).to_dict()
    assert json.dumps(again, sort_keys=True) == json.dumps(row, sort_keys=True)
    # Typed equality holds too.
    assert CaseResult.from_dict(row) == case


def test_from_dict_rejects_unknown_keys(case):
    row = case.to_dict()
    row["surprise"] = 1
    with pytest.raises(ValueError, match="unknown key.*surprise"):
        CaseResult.from_dict(row)


def test_from_dict_rejects_missing_keys(case):
    row = case.to_dict()
    del row["preserved_bytes"]
    with pytest.raises(ValueError, match="missing key.*preserved_bytes"):
        CaseResult.from_dict(row)


def test_region_row_is_strict_too(case):
    row = case.to_dict()
    row["regions"]["region0"]["extra"] = 1
    with pytest.raises(ValueError, match="region 'region0'"):
        CaseResult.from_dict(row)


def test_region_lookup_lists_known_names(case):
    assert case.region("region1").output_tuples == 0
    with pytest.raises(ValueError, match="region0, region1"):
        case.region("region9")


def test_first_region_and_stopped(case):
    assert case.first_region.name == "region0"
    assert case.stopped  # region1 stopped
    assert case.total_output_tuples == 10


def test_numeric_accessors_coerce_null_to_nan(case):
    assert case.throughput == 0.0625
    assert case.latency_s == 1.5
    assert math.isnan(case.e2e_latency_s)
    assert case.end_to_end_latency_s is None  # the raw artifact value
    assert math.isnan(case.region("region1").latency_s)


def test_value_resolves_aliases_fields_and_dotted_metrics(case):
    assert case.value("throughput") == 0.0625
    assert case.value("latency") == 1.5
    assert case.value("p95_latency") == 3.25
    assert case.value("e2e_latency") is None
    assert case.value("output_tuples") == 10
    assert case.value("preserved_bytes") == 1024.0
    assert case.value("recoveries") == 2
    assert case.value("region1.output_tuples") == 0
    assert case.value("region1.mean_latency_s") is None


def test_value_unknown_metric_lists_candidates(case):
    with pytest.raises(ValueError, match="unknown metric 'nope'"):
        case.value("nope")
    with pytest.raises(ValueError, match="region metrics"):
        case.value("region0.nope")
    with pytest.raises(ValueError, match="regions in this case"):
        case.value("region9.output_tuples")


def test_axis_lookup(case):
    assert case.axis("scheme") == "ms-8"
    assert case.axis("seed") == 3
    with pytest.raises(ValueError, match="unknown case axis"):
        case.axis("nope")


def test_replace_swaps_fields_on_the_frozen_case(case):
    other = case.replace(scheme="other")
    assert other.scheme == "other"
    assert case.scheme == "ms-8"
    assert other.regions == case.regions


def test_key_is_the_matrix_coordinates(case):
    assert case.key == ("bcp", "ms-8", 3)


def test_region_result_to_dict_excludes_the_name():
    rr = RegionResult(name="r", output_tuples=1, throughput_tps=1.0,
                      mean_latency_s=2.0, p95_latency_s=3.0, stopped=False)
    assert "name" not in rr.to_dict()
    assert RegionResult.from_dict("r", rr.to_dict()) == rr


def test_from_dict_rejects_non_mapping_rows():
    with pytest.raises(ValueError, match="must be a mapping"):
        CaseResult.from_dict(1)
    with pytest.raises(ValueError, match="must be a mapping"):
        RegionResult.from_dict("r0", [1, 2])
