"""The report renderer and the ``repro report`` CLI."""

import json

import pytest

from repro.cli import main
from repro.results import ResultSet, build_report
from tests.results._cases import make_case


@pytest.fixture()
def rs():
    return ResultSet.from_cases([
        make_case(scheme="base", seed=3, tput=10.0, lat=2.0, preserved=0.0),
        make_case(scheme="base", seed=4, tput=14.0, lat=4.0, preserved=0.0),
        make_case(scheme="ms-8", seed=3, tput=8.0, lat=3.0, preserved=100.0),
        make_case(scheme="ms-8", seed=4, tput=6.0, lat=5.0, preserved=300.0),
    ], scenario="synth")


@pytest.fixture()
def artifact(tmp_path, rs):
    path = tmp_path / "sweep.json"
    rs.save(str(path))
    return str(path)


# -- build_report -------------------------------------------------------------
def test_table_report_groups_and_normalizes(rs):
    text = build_report(rs, group_by=["scheme"], relative_to="base",
                        metrics=["throughput", "latency"])
    assert "relative to 'base'" in text
    lines = text.splitlines()
    assert any("base" in l and "(1.00x)" in l for l in lines)
    # ms-8 mean tput 7 vs base 12 -> 0.58x.
    assert any("ms-8" in l and "(0.58x)" in l for l in lines)


def test_default_group_by_picks_the_varying_axis(rs):
    text = build_report(rs, metrics=["throughput"])
    assert "by scheme" in text
    seeds_only = rs.filter(scheme="ms-8")
    assert "by seed" in build_report(seeds_only, metrics=["throughput"])


def test_md_report_is_a_pipe_table(rs):
    text = build_report(rs, metrics=["throughput"], fmt="md")
    assert text.splitlines()[-1].startswith("| ")
    assert "| --- |" in text


def test_json_report_is_schema_versioned(rs):
    doc = json.loads(build_report(
        rs, group_by=["scheme"], relative_to="base",
        metrics=["throughput"], ci=True, fmt="json"))
    assert doc["schema_version"] == 1
    assert doc["n_cases"] == 4
    base, ms = doc["groups"]
    assert base["key"] == "base" and base["n"] == 2
    assert base["metrics"]["throughput"]["relative"] == pytest.approx(1.0)
    assert ms["metrics"]["throughput"]["value"] == pytest.approx(7.0)
    assert "ci_half" in ms["metrics"]["throughput"]


def test_report_rejects_bad_inputs(rs):
    with pytest.raises(ValueError, match="unknown format"):
        build_report(rs, fmt="yaml")
    with pytest.raises(ValueError, match="empty"):
        build_report(rs.filter(scheme="nope"))
    with pytest.raises(ValueError, match="single group-by axis"):
        build_report(rs, group_by=["scheme", "seed"], relative_to="base")


def test_report_multi_axis_grouping(rs):
    text = build_report(rs, group_by=["scheme", "seed"],
                        metrics=["throughput"])
    assert "scheme/seed" in text
    assert any("base/3" in l for l in text.splitlines())


# -- CLI ----------------------------------------------------------------------
def test_cli_report_table(capsys, artifact):
    rc = main(["report", artifact, "--group-by", "scheme",
               "--relative-to", "base"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "ms-8" in out and "(1.00x)" in out


def test_cli_report_json_and_metrics(capsys, artifact):
    rc = main(["report", artifact, "--format", "json",
               "--metrics", "throughput,preserved_bytes", "--ci"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert set(doc["groups"][0]["metrics"]) == {"throughput",
                                                "preserved_bytes"}


def test_cli_report_filter(capsys, artifact):
    rc = main(["report", artifact, "--filter", "scheme=ms-8",
               "--group-by", "seed", "--metrics", "throughput"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "base" not in out


def test_cli_report_unknown_baseline_is_a_clean_error(capsys, artifact):
    rc = main(["report", artifact, "--group-by", "scheme",
               "--relative-to", "nope"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "'base', 'ms-8'" in err


def test_cli_report_missing_file_is_a_clean_error(capsys, tmp_path):
    rc = main(["report", str(tmp_path / "absent.json")])
    err = capsys.readouterr().err
    assert rc == 2
    assert "cannot read" in err


def test_cli_report_bad_filter_is_a_clean_error(capsys, artifact):
    rc = main(["report", artifact, "--filter", "scheme"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "AXIS=VALUE" in err


def test_cli_report_rejects_non_artifact_json(capsys, tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"nope": 1}')
    rc = main(["report", str(path)])
    err = capsys.readouterr().err
    assert rc == 2
    assert "not a sweep artifact" in err


def test_cli_report_relative_to_a_seed_group(capsys, artifact):
    """Seed group keys are ints; the CLI's string baseline must still
    resolve (regression: --group-by seed --relative-to 3 errored)."""
    rc = main(["report", artifact, "--group-by", "seed",
               "--relative-to", "3", "--metrics", "throughput"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "(1.00x)" in out


def test_cli_report_unknown_seed_baseline_is_a_clean_error(capsys, artifact):
    rc = main(["report", artifact, "--group-by", "seed",
               "--relative-to", "nope"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown seed group" in err


def test_cli_report_non_dict_rows_are_a_clean_error(capsys, tmp_path):
    """Regression: a junk row used to escape as a TypeError traceback."""
    path = tmp_path / "bad.json"
    path.write_text("[1, 2]")
    rc = main(["report", str(path)])
    err = capsys.readouterr().err
    assert rc == 2
    assert "must be a mapping" in err
