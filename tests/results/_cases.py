"""Shared synthetic-case builder for the results-API tests."""

from repro.results import CaseResult, RegionResult


def make_case(app="bcp", scheme="ms-8", seed=3, tput=10.0, lat=2.0,
              preserved=100.0, recoveries=0, stopped=False,
              scenario="synth", outputs=50):
    """One artifact-shaped case with a single region."""
    region = RegionResult(
        name="region0", output_tuples=outputs, throughput_tps=tput,
        mean_latency_s=lat, p95_latency_s=None if lat is None else lat * 2,
        stopped=stopped)
    return CaseResult(
        scenario=scenario, app=app, scheme=scheme, seed=seed,
        regions=(region,), end_to_end_latency_s=lat,
        preserved_bytes=preserved, ft_network_bytes=preserved / 2,
        wifi_bytes=0.0, cellular_bytes=0.0, recoveries=recoveries,
        departures_handled=0)
