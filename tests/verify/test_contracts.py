"""Contract resolution: every scheme declares the promise the paper
(and Flux/Borealis before it) assigns to its recovery class."""

import pytest

from repro.scenarios.runner import scheme_factories
from repro.verify.contracts import CONTRACTS, DeliveryContract, contract_for

#: scheme label -> the contract its class must declare.
EXPECTED = {
    "base": "none",
    "rep-2": "duplication-free",
    "local": "bounded-loss",
    "dist-1": "bounded-loss",
    "dist-2": "bounded-loss",
    "dist-3": "bounded-loss",
    "ms-8": "exactly-once",
}


@pytest.mark.parametrize("label,contract_name", sorted(EXPECTED.items()))
def test_builtin_scheme_contracts(label, contract_name):
    scheme = scheme_factories()[label]()
    assert contract_for(scheme).name == contract_name


def test_every_builtin_scheme_is_covered():
    assert set(scheme_factories()) == set(EXPECTED)


def test_exactly_once_is_the_strictest():
    c = CONTRACTS["exactly-once"]
    assert c.duplication_free and c.token_protocol
    assert c.replay_covers_gap and c.monotone_versions
    assert c.progress_after_recovery


def test_bounded_loss_tolerates_loss_not_duplication():
    c = CONTRACTS["bounded-loss"]
    assert c.duplication_free and c.monotone_versions
    assert c.progress_after_recovery
    assert not c.replay_covers_gap and not c.token_protocol


def test_none_checks_nothing():
    c = CONTRACTS["none"]
    assert c == DeliveryContract("none")


def test_undeclared_scheme_falls_back_to_none():
    class ThirdParty:
        pass

    assert contract_for(ThirdParty()).name == "none"


def test_unknown_declaration_raises():
    class Typo:
        delivery_contract = "exactly-onec"

    with pytest.raises(ValueError, match="unknown.*delivery contract"):
        contract_for(Typo())
