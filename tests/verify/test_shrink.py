"""Delta-debug shrinking: the acceptance path.

A seeded synthetic bug (the broken-preservation fixture) plus a noisy
3-event scenario must shrink to a minimal failing spec — at most 3
events, in practice one — that still re-triggers the same violation
through ``repro scenario run <file> --verify``.
"""

import json

import pytest

from repro import cli
from repro.scenarios.spec import EventSpec, MatrixSpec, ScenarioSpec
from repro.verify.shrink import failing_invariants, shrink
from repro.verify.testing import BROKEN_REPLAY, broken_replay_scheme


def _noisy_failing_spec():
    """A post-checkpoint crash buried among decoy events."""
    return ScenarioSpec(
        name="fuzz-bug",
        description="synthetic failing spec for the shrink acceptance test",
        duration_s=300.0,
        warmup_s=10.0,
        n_regions=1,
        phones_per_region=8,
        idle_per_region=2,
        checkpoint_period_s=60.0,
        events=(
            EventSpec(kind="battery", time=100.0, phones=(5,), charge=0.5),
            EventSpec(kind="crash", time=203.0, phones=(2, 3)),
            EventSpec(kind="surge", time=120.0, factor=1.5, until=150.0),
        ),
        matrix=MatrixSpec(apps=("signalguru",), schemes=(BROKEN_REPLAY,),
                          seeds=(3,)),
    )


def test_shrink_produces_minimal_retriggering_spec(tmp_path):
    spec_path = tmp_path / "fuzz-bug.json"
    spec_path.write_text(_noisy_failing_spec().to_json(indent=2) + "\n")
    with broken_replay_scheme():
        # The acceptance workflow, end to end through the CLI:
        # shrink the failing spec file...
        assert cli.main(["fuzz", "shrink", str(spec_path)]) == 0
        min_path = tmp_path / "fuzz-bug.min.json"
        assert min_path.exists()
        minimized = ScenarioSpec.from_json(min_path.read_text())
        assert minimized.name.endswith(".min")
        assert len(minimized.events) <= 3
        # ...the decoys are gone and the crash is what survived...
        assert {ev.kind for ev in minimized.events} == {"crash"}
        # ...and the minimized file re-triggers via scenario run --verify.
        assert cli.main(["scenario", "run", str(min_path), "--verify"]) == 1
        assert "replay-gap" in failing_invariants(minimized)
    # Canonical JSON: the reproducer is diffable/committable as-is.
    assert json.loads(min_path.read_text())["name"] == minimized.name


def test_shrink_refuses_a_passing_spec():
    spec = ScenarioSpec(
        name="passing", duration_s=120.0, warmup_s=10.0,
        checkpoint_period_s=40.0,
        matrix=MatrixSpec(apps=("signalguru",), schemes=("base",),
                          seeds=(3,)))
    with pytest.raises(ValueError, match="does not violate"):
        shrink(spec)


def test_shrink_rejects_an_invariant_the_spec_does_not_violate():
    with broken_replay_scheme():
        with pytest.raises(ValueError, match="not 'duplication-free'"):
            shrink(_noisy_failing_spec(), invariant="duplication-free")


def test_shrink_respects_the_run_cap():
    with broken_replay_scheme():
        minimized, runs = shrink(_noisy_failing_spec(), max_runs=3)
        assert runs <= 3
        # Budget exhausted early: the spec may be unshrunk, but it must
        # still be a *failing* spec (shrink never returns a passing one).
        assert failing_invariants(minimized)
