"""The harness must *catch* a real defect: the broken-preservation
fixture (an off-by-one prune that loses one checkpoint interval of
replay input) trips ``replay-gap`` on a post-checkpoint crash, while
vanilla ms-8 stays clean on the identical scenario.

SignalGuru is the app here because its per-node state is small enough
that checkpoint waves actually *complete* within the run (v1 commits
around t=137 with a 60s period) — the defect only fires on a crash
after a completed checkpoint.
"""

import pytest

from repro.scenarios.runner import run_case
from repro.scenarios.spec import EventSpec, MatrixSpec, ScenarioSpec
from repro.verify.testing import BROKEN_REPLAY, broken_replay_scheme


def _crash_spec(name="verify-crash"):
    return ScenarioSpec(
        name=name,
        description="post-checkpoint crash for harness fixtures",
        duration_s=300.0,
        warmup_s=10.0,
        n_regions=1,
        phones_per_region=8,
        idle_per_region=2,
        checkpoint_period_s=60.0,
        events=(EventSpec(kind="crash", time=200.0, phones=(2,)),),
        matrix=MatrixSpec(apps=("signalguru",), schemes=("ms-8",), seeds=(3,)),
    )


@pytest.fixture(scope="module")
def spec():
    return _crash_spec()


def test_vanilla_ms8_is_clean_on_the_crash(spec):
    result = run_case(spec, "signalguru", "ms-8", 3, verify=True)
    assert result.violations == ()
    assert result.report.recoveries >= 1


def test_broken_preservation_trips_replay_gap(spec):
    with broken_replay_scheme():
        result = run_case(spec, "signalguru", BROKEN_REPLAY, 3, verify=True)
    names = {v.invariant for v in result.violations}
    assert "replay-gap" in names
    gap = next(v for v in result.violations if v.invariant == "replay-gap")
    # The defect loses real input: fewer tuples replayed than ingested
    # since the restored cut, with the evidence window attached.
    assert gap.details["replayed"] < gap.details["expected"]
    assert gap.region == "region0"
    assert gap.window


def test_violations_are_deterministic(spec):
    with broken_replay_scheme():
        a = run_case(spec, "signalguru", BROKEN_REPLAY, 3, verify=True)
        b = run_case(spec, "signalguru", BROKEN_REPLAY, 3, verify=True)
    assert [v.to_dict() for v in a.violations] == \
        [v.to_dict() for v in b.violations]


def test_broken_scheme_unregisters_cleanly():
    from repro.scenarios.runner import scheme_factories

    with broken_replay_scheme():
        assert BROKEN_REPLAY in scheme_factories()
    assert BROKEN_REPLAY not in scheme_factories()
