"""Fuzzer determinism and spec-grammar hygiene.

The contract under test: generation is a pure function of the seed —
byte-identical spec files across invocations — and every generated spec
is well-formed (valid events inside the run window, no dead entries).
"""

import os

from repro import cli
from repro.verify.fuzz import (
    FUZZ_APPS,
    FUZZ_SCHEMES,
    generate_spec,
    generate_specs,
    load_spec,
    write_specs,
)


def test_generation_is_deterministic():
    a = generate_specs(seed=11, count=8)
    b = generate_specs(seed=11, count=8)
    assert [s.to_json() for s in a] == [s.to_json() for s in b]


def test_generate_spec_is_index_stable():
    """Spec i of a walk never depends on how many specs were asked for."""
    few = generate_specs(seed=4, count=3)
    many = generate_specs(seed=4, count=10)
    assert [s.to_json() for s in few] == [s.to_json() for s in many[:3]]


def test_different_seeds_differ():
    assert (generate_spec(1, 0).to_json() != generate_spec(2, 0).to_json())


def test_generated_specs_are_well_formed():
    for spec in generate_specs(seed=99, count=30):
        assert spec.late_events() == ()
        assert 0 < spec.warmup_s < spec.duration_s
        assert spec.checkpoint_period_s < spec.duration_s
        assert spec.events  # every walk spec exercises the grammar
        for ev in spec.events:
            assert 0 <= ev.region < spec.n_regions
            assert all(0 <= p < spec.phones_per_region for p in ev.phones)
        (app,), (scheme,), _ = (spec.matrix.apps, spec.matrix.schemes,
                                spec.matrix.seeds)
        assert app.key in FUZZ_APPS
        assert scheme in FUZZ_SCHEMES


def test_write_and_load_round_trip(tmp_path):
    specs = generate_specs(seed=5, count=3)
    paths = write_specs(specs, str(tmp_path))
    assert [os.path.basename(p) for p in paths] == [
        f"{s.name}.json" for s in specs]
    for spec, path in zip(specs, paths):
        assert load_spec(path).to_json() == spec.to_json()


def test_cli_gen_is_byte_identical_across_invocations(tmp_path):
    d1, d2 = str(tmp_path / "a"), str(tmp_path / "b")
    assert cli.main(["fuzz", "gen", "--seed", "3",
                     "--count", "4", "--out-dir", d1]) == 0
    assert cli.main(["fuzz", "gen", "--seed", "3",
                     "--count", "4", "--out-dir", d2]) == 0
    names = sorted(os.listdir(d1))
    assert names == sorted(os.listdir(d2)) and len(names) == 4
    for name in names:
        with open(os.path.join(d1, name), "rb") as f1, \
                open(os.path.join(d2, name), "rb") as f2:
            assert f1.read() == f2.read()


def test_cli_rejects_bad_count(capsys):
    assert cli.main(["fuzz", "gen", "--count", "0"]) == 2
    assert "--count" in capsys.readouterr().err
