"""``scenario run/sweep --verify``: violations land on stderr and in
the exit status, while the artifact bytes stay identical to a disarmed
sweep — violations ride beside the artifact, never inside it."""

from repro import cli
from repro.scenarios.spec import EventSpec, MatrixSpec, ScenarioSpec
from repro.verify.testing import BROKEN_REPLAY, broken_replay_scheme


def _write(tmp_path, spec):
    path = tmp_path / f"{spec.name}.json"
    path.write_text(spec.to_json(indent=2) + "\n")
    return str(path)


def _crash_spec(scheme, name):
    return ScenarioSpec(
        name=name, duration_s=300.0, warmup_s=10.0,
        phones_per_region=8, idle_per_region=2,
        checkpoint_period_s=60.0,
        events=(EventSpec(kind="crash", time=200.0, phones=(2,)),),
        matrix=MatrixSpec(apps=("signalguru",), schemes=(scheme,),
                          seeds=(3,)))


def test_clean_run_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, _crash_spec("ms-8", "clean"))
    assert cli.main(["scenario", "run", path, "--verify"]) == 0
    captured = capsys.readouterr()
    assert "0 violation(s)" in captured.err
    assert "VIOLATION" not in captured.err


def test_violating_run_exits_one_with_stderr_report(tmp_path, capsys):
    path = _write(tmp_path, _crash_spec(BROKEN_REPLAY, "broken"))
    with broken_replay_scheme():
        assert cli.main(["scenario", "run", path, "--verify"]) == 1
    captured = capsys.readouterr()
    assert "VIOLATION [replay-gap]" in captured.err
    assert "scheme=broken-replay" in captured.err


def test_sweep_verify_artifact_bytes_are_unchanged(tmp_path, capsys):
    """An armed sweep's on-disk artifact is byte-identical to a
    disarmed one, even when the sweep found violations."""
    path = _write(tmp_path, _crash_spec(BROKEN_REPLAY, "broken"))
    plain, armed = str(tmp_path / "plain.json"), str(tmp_path / "armed.json")
    with broken_replay_scheme():
        assert cli.main(["scenario", "sweep", path, "--out", plain]) == 0
        assert cli.main(
            ["scenario", "sweep", path, "--verify", "--out", armed]) == 1
    capsys.readouterr()  # drain
    with open(plain, "rb") as f1, open(armed, "rb") as f2:
        assert f1.read() == f2.read()


def test_unknown_scenario_name_still_errors(capsys):
    assert cli.main(["scenario", "run", "no-such-thing", "--verify"]) == 2
    assert "error" in capsys.readouterr().err
