"""Commit-token safety checkers, driven by synthetic trace records.

A stub system (one region, exactly-once contract) lets each checker be
exercised in isolation: tokens, commits, abandons, restores, and sink
outputs are plain ``trace.record`` calls, so every violating interleaving
is a three-line scenario.
"""

import pytest

from repro.sim.monitor import Trace
from repro.verify.harness import InvariantHarness, InvariantViolation


class _StubScheme:
    delivery_contract = "exactly-once"


class _StubRegion:
    name = "region0"
    scheme = _StubScheme()


class _StubSim:
    now = 0.0


class _StubSystem:
    def __init__(self):
        self.trace = Trace()
        self.regions = [_StubRegion()]
        self.sim = _StubSim()


def _armed():
    system = _StubSystem()
    harness = InvariantHarness(system)
    harness.start()
    return system, harness


def _names(harness):
    return [v.invariant for v in harness.violations]


def test_commit_with_outstanding_tokens_violates():
    system, harness = _armed()
    t = system.trace
    t.record(10.0, "token_received", region="region0", node="E",
             version=1, ready=False)
    t.record(11.0, "checkpoint_complete", region="region0", version=1)
    assert _names(harness) == ["token-safety"]
    v = harness.violations[0]
    assert v.details["nodes"] == ["E"]
    assert any(r["category"] == "token_received" for r in v.window)


def test_snapshot_clears_outstanding_tokens():
    system, harness = _armed()
    t = system.trace
    t.record(10.0, "token_received", region="region0", node="E",
             version=1, ready=False)
    t.record(10.5, "node_snapshot", region="region0", node="E", version=1)
    t.record(11.0, "checkpoint_complete", region="region0", version=1)
    assert harness.violations == []


def test_commit_of_abandoned_version_violates():
    system, harness = _armed()
    t = system.trace
    t.record(9.0, "checkpoint_abandoned", region="region0", version=2)
    t.record(12.0, "checkpoint_complete", region="region0", version=2)
    assert "token-safety" in _names(harness)


def test_restore_from_abandoned_version_violates():
    system, harness = _armed()
    t = system.trace
    t.record(5.0, "checkpoint_abandoned", region="region0", version=1)
    t.record(20.0, "catchup_started", region="region0", mrc=1, tuples=0)
    assert "token-safety" in _names(harness)


def test_restore_from_never_completed_version_violates():
    system, harness = _armed()
    system.trace.record(
        20.0, "catchup_started", region="region0", mrc=3, tuples=0)
    assert "token-safety" in _names(harness)


def test_restore_from_completed_version_is_clean():
    system, harness = _armed()
    t = system.trace
    t.record(10.0, "checkpoint_requested", region="region0", version=1)
    t.record(12.0, "checkpoint_complete", region="region0", version=1)
    t.record(20.0, "catchup_started", region="region0", mrc=1, tuples=0)
    assert harness.violations == []


def test_replay_gap_checker_counts_from_the_cut():
    system, harness = _armed()
    t = system.trace
    for i in range(5):
        t.record(float(i), "source_ingest", region="region0")
    t.record(10.0, "checkpoint_requested", region="region0", version=1)
    t.record(12.0, "checkpoint_complete", region="region0", version=1)
    for i in range(3):
        t.record(13.0 + i, "source_ingest", region="region0")
    # 3 ingested since the v1 cut but only 2 replayed: one tuple lost.
    t.record(20.0, "catchup_started", region="region0", mrc=1, tuples=2)
    assert _names(harness) == ["replay-gap"]
    v = harness.violations[0]
    assert v.details == {"mrc": 1, "replayed": 2, "expected": 3}


def test_duplicate_sink_emit_key_violates():
    system, harness = _armed()
    t = system.trace
    t.record(1.0, "sink_output", region="region0", op="K",
             key=("w", 7), latency=0.5)
    t.record(2.0, "sink_output", region="region0", op="K",
             key=("w", 8), latency=0.5)
    t.record(3.0, "sink_output", region="region0", op="K",
             key=("w", 7), latency=0.5)
    assert _names(harness) == ["duplication-free"]


def test_checkpoint_version_must_advance():
    system, harness = _armed()
    t = system.trace
    t.record(10.0, "checkpoint_requested", region="region0", version=2)
    t.record(20.0, "checkpoint_requested", region="region0", version=1)
    assert "monotone-versions" in _names(harness)


def test_mrc_must_not_move_backwards():
    system, harness = _armed()
    t = system.trace
    for version in (1, 2):
        t.record(10.0 * version, "checkpoint_requested",
                 region="region0", version=version)
        t.record(10.0 * version + 2, "checkpoint_complete",
                 region="region0", version=version)
    t.record(30.0, "catchup_started", region="region0", mrc=2, tuples=0)
    t.record(40.0, "catchup_started", region="region0", mrc=1, tuples=0)
    assert "monotone-versions" in _names(harness)


def test_raise_on_violation_mode():
    system = _StubSystem()
    harness = InvariantHarness(system, raise_on_violation=True)
    harness.start()
    with pytest.raises(InvariantViolation, match="token-safety"):
        system.trace.record(
            20.0, "catchup_started", region="region0", mrc=3, tuples=0)


def test_harness_refuses_a_disabled_trace():
    system = _StubSystem()
    system.trace.enabled = False
    with pytest.raises(ValueError, match="enabled trace"):
        InvariantHarness(system).start()


def test_finish_detaches_the_observer():
    system, harness = _armed()
    assert system.trace._observers
    harness.finish()
    assert system.trace._observers == []
    # Idempotent, and records after finish are no longer observed.
    harness.finish()
    system.trace.record(50.0, "catchup_started", region="region0",
                        mrc=9, tuples=0)
    assert harness.violations == []
