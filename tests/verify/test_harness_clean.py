"""Armed runs over correct schemes are violation-free, and arming the
harness cannot change what a case *measures* — the observe-only half of
the verification contract."""

import pytest

from repro.scenarios import get
from repro.scenarios.runner import build_system, case_to_dict, run_case


@pytest.fixture(scope="module")
def quick_fig8():
    return get("paper-fig8").quick(120.0)


@pytest.mark.parametrize("scheme", ["base", "rep-2", "dist-2", "ms-8"])
def test_armed_fig8_case_is_clean(quick_fig8, scheme):
    result = run_case(quick_fig8, "bcp", scheme, 3, verify=True)
    assert result.violations == ()


def test_armed_crash_recovery_case_is_clean():
    """The interesting case: an ms-8 run that actually crashes,
    recovers, and replays — the full exactly-once machinery armed."""
    spec = get("failure-cascade").quick(120.0)
    result = run_case(spec, "bcp", "ms-8", 3, verify=True)
    assert result.violations == ()


def test_armed_row_is_byte_identical_to_disarmed(quick_fig8):
    disarmed = run_case(quick_fig8, "bcp", "ms-8", 3)
    armed = run_case(quick_fig8, "bcp", "ms-8", 3, verify=True)
    assert case_to_dict(armed) == case_to_dict(disarmed)
    assert disarmed.violations == ()


def test_disarmed_run_builds_no_harness(quick_fig8):
    """Disarmed (the default) must not register any trace observer —
    the structural guarantee behind 'artifacts byte-identical'."""
    system = build_system(quick_fig8, "bcp", "ms-8", 3)
    assert system.trace._observers == []
    result = run_case(quick_fig8, "bcp", "ms-8", 3)
    assert result.violations == ()
