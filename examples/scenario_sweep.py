"""Scenario engine tour: specs, the library, and a parallel sweep.

Run with::

    PYTHONPATH=src python examples/scenario_sweep.py

Shows the three layers of the scenario subsystem:

1. the named library (``repro.scenarios.library``) and what each spec
   declares,
2. a custom declarative spec — a crash burst *plus* a flash-crowd surge,
   something the classic ``ExperimentConfig`` harness cannot express,
3. the sweep executor fanning a scheme × seed matrix out over worker
   processes, with results identical to a serial run.
"""

import os

from repro import scenarios
from repro.results import ResultSet
from repro.scenarios.spec import EventSpec, MatrixSpec, ScenarioSpec


def main() -> None:
    # -- 1. the built-in library --------------------------------------------
    print("built-in scenarios:")
    for spec in scenarios.all_specs():
        print(f"  {spec.name:<20s} {len(spec.matrix)} cases, "
              f"{len(spec.events)} scripted events")

    # -- 2. a custom declarative scenario ------------------------------------
    spec = ScenarioSpec(
        name="surge-under-failure",
        description="A flash crowd doubles the load while two phones die.",
        duration_s=300.0,
        warmup_s=50.0,
        idle_per_region=4,
        checkpoint_period_s=60.0,
        events=(
            EventSpec(kind="surge", time=80.0, factor=2.0, until=220.0),
            EventSpec(kind="crash", time=140.0, phones=(3, 4)),
        ),
        matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3, 4)),
    )
    print(f"\ncustom scenario {spec.name!r} round-trips through JSON: "
          f"{scenarios.ScenarioSpec.from_json(spec.to_json()) == spec}")

    # -- 3. sweep the matrix in parallel, query it typed ---------------------
    jobs = min(4, os.cpu_count() or 1)
    rs = ResultSet.from_sweep(scenarios.run_sweep(spec, jobs=jobs))
    print(f"\nsweep of {len(rs)} cases (jobs={jobs}):")
    print(f"{'scheme':<8s} {'seed':<5s} {'tput t/s':<9s} {'recoveries'}")
    for case in rs:
        print(f"{case.scheme:<8s} {case.seed:<5d} "
              f"{case.throughput:<9.3f} {case.recoveries}")

    # The results API answers the paper-style questions directly: mean
    # cross-seed throughput per scheme, normalized to the base system.
    rel = rs.relative_to("base", metrics=("throughput", "latency"))
    print(f"\nms-8 vs base: {rel['ms-8']['throughput']:.0%} throughput, "
          f"{rel['ms-8']['latency']:.2f}x latency under the surge+crash mix")

    ms = rs.filter(scheme="ms-8")
    assert all(c.recoveries >= 1 for c in ms), "ms-8 must have recovered"
    print("ms-8 recovered from the burst in every seed; sweep artifacts are")
    print("byte-identical at any --jobs level.")


if __name__ == "__main__":  # the sweep pool re-imports this module on
    main()                  # spawn-start platforms; keep the body guarded
