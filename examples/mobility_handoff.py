#!/usr/bin/env python
"""Mobility and energy: phones leaving a region and dying batteries.

Walks through two MobiStreams scenarios that no server DSPS handles
(Sections III-D/E):

1. **Departure (Fig. 7)** — a computing phone walks out of WiFi range:
   the region falls back to cellular (urgent mode), the controller
   confirms via GPS, the departing phone transfers its live state to a
   spare over cellular, and the DSPS resumes on the replacement — no
   rollback, no catch-up.
2. **Chronic battery** — a phone reports its own imminent failure; the
   state moves to a spare over WiFi *before* the battery dies.

Run::

    python examples/mobility_handoff.py
"""

from repro.checkpoint import MobiStreamsScheme
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import (
    SinkOperator,
    SourceOperator,
    StatefulOperator,
)
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.util import KB


class RunningAverage(StatefulOperator):
    """Keeps a running mean — state a handoff must not lose."""

    def __init__(self, name):
        super().__init__(name, state_size=256 * KB)

    def process(self, tup, ctx):
        n = self.state.get("n", 0) + 1
        mean = self.state.get("mean", 0.0)
        self.state["n"] = n
        self.state["mean"] = mean + (tup.payload - mean) / n
        return [tup.derive(self.state["mean"], 1 * KB)]

    def cost(self, tup):
        return 0.04


class MonitorApp(AppSpec):
    """sensor -> average -> publish, one operator per phone."""

    name = "monitor"

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("sensor"))
        g.add_operator(RunningAverage("average"))
        g.add_operator(SinkOperator("publish"))
        g.chain("sensor", "average", "publish")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups(
            [["sensor"], ["average"], ["publish"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def readings():
            gen = rng.stream("monitor.sensor")
            for _ in range(400):
                yield (1.0, float(gen.normal(20.0, 5.0)), 2 * KB)

        return {"sensor": readings()}


def banner(title):
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def run_departure():
    banner("Scenario 1 — a phone walks out of the region (Fig. 7)")
    system = MobiStreamsSystem(
        SystemConfig(n_regions=1, phones_per_region=3, idle_per_region=2,
                     master_seed=7, checkpoint_period_s=60.0),
        MonitorApp(), MobiStreamsScheme)
    system.start()
    avg_host = system.regions[0].placement.node_for("average", 0)
    print(f"'average' runs on {avg_host}; it departs at t=120s")
    system.sim.call_at(120.0, lambda: system.apply_departure(avg_host))
    system.run(420.0)

    region = system.regions[0]
    for rec in system.trace.select("urgent_mode"):
        print(f"  t={rec.time:6.1f}  urgent mode: {rec.data['src']} -> "
              f"{rec.data['dst']} now over cellular")
    for rec in system.trace.select("departure_state_transfer"):
        print(f"  t={rec.time:6.1f}  state transfer: {rec.data['departed']} -> "
              f"{rec.data['replacement']} ({rec.data['size'] / KB:.0f} KB)")
    new_host = region.placement.node_for("average", 0)
    node = region.nodes[new_host]
    print(f"'average' now runs on {new_host} "
          f"(count={node.ops['average'].state.get('n')})")
    m = system.metrics(warmup_s=20.0).per_region["region0"]
    print(f"published {m.output_tuples} results, no rollback "
          f"(catch-ups: {sum(1 for _ in system.trace.select('catchup_started'))})")


def run_battery_handoff():
    banner("Scenario 2 — chronic battery triggers a proactive handoff")
    system = MobiStreamsSystem(
        SystemConfig(n_regions=1, phones_per_region=3, idle_per_region=2,
                     master_seed=7, checkpoint_period_s=60.0),
        MonitorApp(), MobiStreamsScheme)
    system.start()
    avg_host = system.regions[0].placement.node_for("average", 0)

    def drain():
        phone = system.regions[0].phones[avg_host]
        phone.battery.remaining_j = phone.battery.config.capacity_j * 0.02
        print(f"  t={system.sim.now:6.1f}  {avg_host} battery down to 2%")

    system.sim.call_at(150.0, drain)
    system.run(420.0)

    for rec in system.trace.select("battery_critical"):
        print(f"  t={rec.time:6.1f}  {rec.data['phone']} reports chronic "
              f"battery ({rec.data['fraction']:.1%})")
    for rec in system.trace.select("handoff_finished"):
        print(f"  t={rec.time:6.1f}  handoff: {rec.data['phone']} "
              f"-> outcome {rec.data['outcome']!r}")
    region = system.regions[0]
    new_host = region.placement.node_for("average", 0)
    print(f"'average' now runs on {new_host}; the drained phone was "
          f"retired before it died")
    m = system.metrics(warmup_s=20.0).per_region["region0"]
    print(f"published {m.output_tuples} results across the handoff")


if __name__ == "__main__":
    run_departure()
    run_battery_handoff()
