#!/usr/bin/env python
"""Bus Capacity Prediction along a 4-stop route (the paper's Fig. 2).

Four regions (bus stops) cascaded over the cellular network; each runs
the BCP pipeline on 8 phones: camera frames are face-counted by four
parallel Haar-style counters, statistical models predict boarding and
alighting, and the capacity prediction travels to the next stop.  Run::

    python examples/bus_capacity.py
"""

from repro.apps import BCPApp
from repro.checkpoint import MobiStreamsScheme
from repro.core.system import MobiStreamsSystem, SystemConfig


def main() -> None:
    config = SystemConfig(
        n_regions=4,              # four bus stops, cascaded in a line
        phones_per_region=8,      # the paper's region size
        idle_per_region=2,
        master_seed=7,
        checkpoint_period_s=300.0,  # the paper's 5-minute period
    )
    system = MobiStreamsSystem(config, BCPApp(), MobiStreamsScheme)
    system.start()

    # A commuter's phone leaves stop 2 after ten minutes (mobility,
    # Section III-E): urgent mode -> state transfer -> replacement.
    system.sim.call_at(600.0, lambda: system.apply_departure("region1.p5"))

    print("simulating 20 minutes of a 4-stop bus route...")
    system.run(1200.0)

    m = system.metrics(warmup_s=150.0)
    print(f"{'stop':10s} {'predictions':>12s} {'tuples/s':>9s} {'latency':>9s}")
    for name, r in m.per_region.items():
        print(f"{name:10s} {r.output_tuples:12d} {r.throughput_tps:9.3f} "
              f"{r.mean_latency_s:8.1f}s")
    print(f"\ncheckpoints completed: {system.trace.value('ckpt.region_complete'):.0f}")
    print(f"departures handled:    {m.departures_handled}")
    dep = system.trace.last("departure_state_transfer")
    if dep:
        print(f"  state transferred:   {dep.data['size'] / 1024:.0f} KB "
              f"{dep.data['departed']} -> {dep.data['replacement']}")
    print(f"WiFi traffic:          {m.wifi_bytes / 1e6:.1f} MB")
    print(f"cellular traffic:      {m.cellular_bytes / 1e6:.1f} MB "
          f"(control + inter-stop only)")


if __name__ == "__main__":
    main()
