#!/usr/bin/env python
"""Staged startup: the Section III-A boot protocol, end to end.

Three water-quality monitoring stations (regions) cascaded along a
river.  Phones drift into each region over time; each registers with the
controller after a dwell period, regions boot once they hold enough
phones, and an underpopulated region is bypassed until its phones show
up.  Run::

    python examples/region_startup.py
"""

from repro.checkpoint import MobiStreamsScheme
from repro.core.app import AppSpec
from repro.core.bootstrap import BootstrapConfig
from repro.core.graph import QueryGraph
from repro.core.operator import (
    MapOperator,
    SinkOperator,
    SourceOperator,
)
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.util import KB


class WaterQualityApp(AppSpec):
    """S0 (upstream station) + probe -> calibrate -> aggregate -> K."""

    name = "waterq"

    def build_graph(self):
        g = QueryGraph()
        g.add_operator(SourceOperator("S0"))     # data from upstream station
        g.add_operator(SourceOperator("probe"))  # local turbidity probe
        g.add_operator(MapOperator("calibrate", lambda v: v * 0.97, cost_s=0.02))
        g.add_operator(MapOperator("aggregate", lambda v: v, cost_s=0.02))
        g.add_operator(SinkOperator("K"))
        g.chain("probe", "calibrate", "aggregate", "K")
        g.connect("S0", "aggregate")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups(
            [["S0"], ["probe"], ["calibrate"], ["aggregate"], ["K"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def readings():
            gen = rng.stream(f"waterq.{region_index}")
            for _ in range(500):
                yield (2.0, float(gen.normal(5.0, 1.0)), 1 * KB)

        return {"probe": readings()}


def main():
    system = MobiStreamsSystem(
        SystemConfig(n_regions=3, phones_per_region=5, idle_per_region=1,
                     master_seed=9, checkpoint_period_s=120.0),
        WaterQualityApp(), MobiStreamsScheme)

    # Stations 0 and 2 are populated from the start; station 1's phones
    # only arrive at t=200s (a bus brings the field team).
    arrivals = {pid: 200.0 for pid in system.regions[1].phones}

    boot = system.start_staged(
        BootstrapConfig(dwell_s=15.0, deadline_s=90.0), arrivals=arrivals)
    system.run(600.0)

    print("boot records:")
    for name, rec in boot.records.items():
        status = "SKIPPED, then booted late" if rec.t_ready and rec.t_ready > 100 \
            else ("ready" if rec.t_ready else "never booted")
        t = f"{rec.boot_time:6.1f}s" if rec.boot_time else "   -  "
        print(f"  {name}: boot time {t}  registered {rec.registered} phones"
              f"  [{status}]")

    print("\nevents:")
    for cat in ("region_bypassed", "region_booted", "region_unbypassed"):
        for rec in system.trace.select(cat):
            print(f"  t={rec.time:6.1f}  {cat:18s} {rec.data.get('region')}")

    m = system.metrics(warmup_s=100.0)
    print("\nper-station throughput (tuples/s):")
    for name, rm in m.per_region.items():
        print(f"  {name}: {rm.throughput_tps:.3f}  ({rm.output_tuples} outputs)")
    print("\nthe cascade delivered data end-to-end even while station 1 "
          "was bypassed,\nand re-included it once its phones arrived.")


if __name__ == "__main__":
    main()
