#!/usr/bin/env python
"""Burst failures: the paper's headline fault-tolerance scenario.

"In a smartphone platform, it is common that several phones fail
simultaneously" (Section I).  This demo crashes 1..5 of BCP's eight
phones at once under each fault-tolerance scheme and reports who
survives — the essence of Fig. 9.  Run::

    python examples/failure_burst.py
"""

from repro.bench.fig9 import FAIL_ORDER, TOLERANCE, run_fig9_point

SCHEMES = ["rep-2", "dist-1", "dist-2", "dist-3", "ms-8"]
DURATION = 600.0
FAULT_AT = 300.0


def main():
    print("BCP, 8 phones/region; n phones crash simultaneously at "
          f"t={FAULT_AT:.0f}s (phones {FAIL_ORDER[:5]}...)\n")
    header = f"{'burst n':>8s} | " + " | ".join(f"{s:^12s}" for s in SCHEMES)
    print(header)
    print("-" * len(header))
    for n in (1, 2, 3, 4, 5):
        cells = []
        for scheme in SCHEMES:
            tol = TOLERANCE[scheme]
            if tol is not None and n > tol:
                cells.append(f"{'— dead —':^12s}")
                continue
            tput, lat, ok = run_fig9_point(
                "bcp", scheme, n, mode="fail",
                duration_s=DURATION, fault_time=FAULT_AT)
            cells.append(f"{tput:5.3f} t/s " + ("✓" if ok else "✗"))
        print(f"{n:>8d} | " + " | ".join(f"{c:^12s}" for c in cells))

    print("""
Reading the table:
  * rep-2 tolerates exactly one failure; dist-n exactly n.
  * ms-8 (MobiStreams) recovers every burst at ~constant cost: every
    phone holds the MRC checkpoint and the preserved input, so a 5-node
    restore is as parallel as a 1-node one (Section III-D).""")


if __name__ == "__main__":
    main()
