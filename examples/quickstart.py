#!/usr/bin/env python
"""Quickstart: build a tiny stream application, run it on simulated phones.

A three-operator pipeline (sensor -> doubler -> sink) deployed on three
phones in one region, with MobiStreams checkpointing on.  Run::

    python examples/quickstart.py
"""

from repro.checkpoint import MobiStreamsScheme
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import MapOperator, SinkOperator, SourceOperator
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig


class HelloApp(AppSpec):
    """The smallest useful stream application."""

    name = "hello"

    def build_graph(self) -> QueryGraph:
        g = QueryGraph()
        g.add_operator(SourceOperator("sensor"))
        g.add_operator(MapOperator("double", lambda x: x * 2, cost_s=0.05))
        g.add_operator(SinkOperator("out"))
        g.chain("sensor", "double", "out")
        return g

    def build_placement(self, phone_ids):
        return Placement.pack_groups([["sensor"], ["double"], ["out"]], phone_ids)

    def build_workloads(self, rng, region_index):
        def readings():
            gen = rng.stream("hello.sensor")
            for i in range(120):
                yield (float(gen.exponential(1.0)), i, 4096)

        return {"sensor": readings()}


def main() -> None:
    config = SystemConfig(
        n_regions=1,
        phones_per_region=3,
        idle_per_region=1,       # a spare phone for failure recovery
        master_seed=42,
        checkpoint_period_s=60.0,
    )
    system = MobiStreamsSystem(config, HelloApp(), MobiStreamsScheme)
    system.start()

    # Kill the middle phone mid-run: MobiStreams restores it from the MRC
    # on the idle phone and replays preserved input.
    system.injector.crash_at(90.0, ["region0.p1"])

    system.run(240.0)

    m = system.metrics(warmup_s=10.0)
    r = m.per_region["region0"]
    print(f"outputs:          {r.output_tuples}")
    print(f"throughput:       {r.throughput_tps:.3f} tuples/s")
    print(f"mean latency:     {r.mean_latency_s:.3f} s")
    print(f"checkpoints done: {system.trace.value('ckpt.region_complete'):.0f}")
    print(f"recoveries:       {m.recoveries}")
    rec = system.trace.last("recovery_finished")
    if rec:
        print(f"recovery took:    {rec.data['duration']:.1f} s "
              f"(outcome: {rec.data['outcome']})")


if __name__ == "__main__":
    main()
