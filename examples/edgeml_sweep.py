"""EdgeML tour: split-DNN inference and parameterized app refs.

Run with::

    PYTHONPATH=src python examples/edgeml_sweep.py

Shows the app platform's new axis: the *application parameters* of a
scenario matrix.  One declarative spec sweeps the same split-DNN
pipeline at three split depths — shallow splits keep weights off the
phones but ship fat inter-stage tensors, deep splits invert the trade —
and the sweep executor runs the cases in parallel with byte-identical
artifacts at any ``--jobs`` level.
"""

import os

from repro import scenarios
from repro.apps import EdgeMLParams, create_app
from repro.results import ResultSet
from repro.scenarios.spec import MatrixSpec, ScenarioSpec


def main() -> None:
    # -- 1. the workload family ----------------------------------------------
    print("edgeml split profiles (weights on phones vs tensor on the WiFi):")
    for n_stages in (2, 4, 6):
        profile = EdgeMLParams(n_stages=n_stages).stage_profile()
        weights = max(s["weight_bytes"] for s in profile) / 1024
        tensor = max(s["out_tensor_bytes"] for s in profile) / 1024
        print(f"  n_stages={n_stages}: heaviest partition {weights:7.0f} KB "
              f"weights, fattest tensor {tensor:4.0f} KB")

    # -- 2. parameterized app refs -------------------------------------------
    app = create_app({"name": "edgeml", "params": {"n_stages": 2}})
    print(f"\ncreate_app ref -> {type(app).__name__} with "
          f"{app.params.n_stages} partitions on "
          f"{app.compute_phones_needed()} phones")

    spec = ScenarioSpec(
        name="edgeml-split-demo",
        description="Split-depth sweep of the inference pipeline.",
        duration_s=300.0,
        warmup_s=50.0,
        checkpoint_period_s=60.0,
        matrix=MatrixSpec(
            apps=tuple({"name": "edgeml", "params": {"n_stages": n}}
                       for n in (2, 4, 6)),
            schemes=("ms-8",),
            seeds=(3,),
        ),
    )
    print(f"spec round-trips through JSON: "
          f"{scenarios.ScenarioSpec.from_json(spec.to_json()) == spec}")

    # -- 3. sweep the split depths in parallel -------------------------------
    jobs = min(4, os.cpu_count() or 1)
    rs = ResultSet.from_sweep(scenarios.run_sweep(spec, jobs=jobs))
    print(f"\nsweep of {len(rs)} cases (jobs={jobs}):")
    print(f"{'app':<22s} {'tput t/s':<9s} {'e2e lat s':<10s} {'ft KB'}")
    for case in rs:
        lat = case.end_to_end_latency_s
        print(f"{case.app:<22s} {case.throughput:<9.3f} "
              f"{lat if lat is None else round(lat, 1)!s:<10s} "
              f"{case.ft_network_bytes / 1024:.0f}")
    print("\ndeeper splits spread the weight state over more phones; the")
    print("checkpoint bytes each scheme must move follow the split point.")


if __name__ == "__main__":  # the sweep pool re-imports this module on
    main()                  # spawn-start platforms; keep the body guarded
