#!/usr/bin/env python
"""Compare every fault-tolerance scheme on one workload (Fig. 8 in small).

Runs base / rep-2 / local / dist-n / ms-8 on the BCP pipeline, without
faults, and prints relative throughput and latency.  Run::

    python examples/scheme_comparison.py
"""

from repro.bench.fig8 import SCHEME_ORDER, relative, run_fig8


def main() -> None:
    print("running 7 schemes x 10 simulated minutes of BCP...")
    outcomes = run_fig8("bcp", duration_s=600.0, warmup_s=100.0)
    rel = relative(outcomes)

    print(f"\n{'scheme':8s} {'tput':>7s} {'rel':>6s} {'latency':>9s} {'rel':>7s}")
    for label in SCHEME_ORDER:
        o = outcomes[label]
        print(f"{label:8s} {o.throughput:7.3f} {rel[label]['throughput']*100:5.0f}% "
              f"{o.latency:8.1f}s {rel[label]['latency']:6.2f}x")

    prior = ["rep-2", "dist-1", "dist-2", "dist-3"]
    lat_cut = sum(1 - rel["ms-8"]["latency"] / rel[p]["latency"] for p in prior) / len(prior)
    print(f"\nMobiStreams vs prior art (avg): {lat_cut * 100:.0f}% latency reduction")
    print("(the paper reports -40% latency, +230% throughput on its testbed)")


if __name__ == "__main__":
    main()
