#!/usr/bin/env python
"""SignalGuru at an intersection, surviving a burst failure (Fig. 3).

Windshield-camera frames pass three parallel color/shape/motion filter
chains; a voting stage smooths detections and an online SVM learns the
signal's transition schedule.  Half-way through, three phones die at
once — the paper's burst-failure scenario that single-failure schemes
cannot survive.  Run::

    python examples/signalguru_demo.py
"""

from repro.apps import SignalGuruApp
from repro.checkpoint import MobiStreamsScheme
from repro.core.system import MobiStreamsSystem, SystemConfig


def main() -> None:
    config = SystemConfig(
        n_regions=2,              # two intersections along the road
        phones_per_region=8,
        idle_per_region=4,        # enough spares for a 3-phone burst
        master_seed=11,
        checkpoint_period_s=300.0,
    )
    system = MobiStreamsSystem(config, SignalGuruApp(), MobiStreamsScheme)
    system.start()

    # Three cars drive off simultaneously and their phones crash out of
    # the cluster (burst failure).
    system.injector.crash_at(
        420.0, ["region0.p2", "region0.p4", "region0.p6"], reason="burst"
    )

    print("simulating 15 minutes at two intersections...")
    system.run(900.0)

    m = system.metrics(warmup_s=120.0)
    for name, r in m.per_region.items():
        print(f"{name}: {r.output_tuples} advisories, "
              f"{r.throughput_tps:.3f}/s, latency {r.mean_latency_s:.1f}s")

    rec = system.trace.last("recovery_finished")
    if rec:
        print(f"\nburst of {len(rec.data['failed'])} failures -> "
              f"{rec.data['outcome']} in {rec.data['duration']:.1f}s")
    region = system.regions[0]
    p_node = region.nodes[region.placement.node_for("P", 0)]
    print(f"SVM training examples absorbed: {p_node.ops['P'].trained}")
    print(f"checkpoints completed: {system.trace.value('ckpt.region_complete'):.0f}")


if __name__ == "__main__":
    main()
