"""Virtual-time-aware logging.

A thin wrapper over :mod:`logging` that prefixes each message with the
simulator clock, so protocol traces read like the paper's walk-throughs
(``[  12.500s] region-2/node-B checkpoint start``).  Disabled by default;
tests and examples enable it for debugging.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

_LOGGER_NAME = "repro"


def get_logger() -> logging.Logger:
    """The package-wide logger (``repro``)."""
    return logging.getLogger(_LOGGER_NAME)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the package logger (idempotent)."""
    logger = get_logger()
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    logger.setLevel(level)


class SimLogger:
    """Logger bound to a simulator clock and a component name."""

    __slots__ = ("sim", "component", "_logger")

    def __init__(self, sim: "Simulator", component: str) -> None:
        self.sim = sim
        self.component = component
        self._logger = get_logger()

    def debug(self, msg: str, *args: object) -> None:
        """Debug-level message stamped with virtual time."""
        if self._logger.isEnabledFor(logging.DEBUG):
            self._logger.debug(self._fmt(msg), *args)

    def info(self, msg: str, *args: object) -> None:
        """Info-level message stamped with virtual time."""
        if self._logger.isEnabledFor(logging.INFO):
            self._logger.info(self._fmt(msg), *args)

    def warning(self, msg: str, *args: object) -> None:
        """Warning-level message stamped with virtual time."""
        self._logger.warning(self._fmt(msg), *args)

    def child(self, suffix: str) -> "SimLogger":
        """A logger for a sub-component (``region-2`` -> ``region-2/node-B``)."""
        return SimLogger(self.sim, f"{self.component}/{suffix}")

    def _fmt(self, msg: str) -> str:
        return f"[{self.sim.now:10.3f}s] {self.component}: {msg}"
