"""Byte / bandwidth unit helpers.

All sizes in this codebase are plain ``int`` bytes and all rates are
``float`` bits per second; these helpers exist so call sites read like the
paper ("1 KB blocks", "1∼5 Mbps ad-hoc WiFi", "0.016 Mbps uplink").
"""

from __future__ import annotations

#: One kibibyte in bytes (the paper's "1KB block").
KB = 1024
#: One mebibyte in bytes.
MB = 1024 * KB
#: One gibibyte in bytes.
GB = 1024 * MB


def Mbps(x: float) -> float:
    """Megabits per second -> bits per second."""
    return x * 1_000_000.0


def kbps(x: float) -> float:
    """Kilobits per second -> bits per second."""
    return x * 1_000.0


def bytes_to_bits(n_bytes: float) -> float:
    """Bytes -> bits."""
    return n_bytes * 8.0


def bits_to_bytes(n_bits: float) -> float:
    """Bits -> bytes."""
    return n_bits / 8.0


def transmission_time(size_bytes: float, bandwidth_bps: float) -> float:
    """Seconds needed to push ``size_bytes`` through ``bandwidth_bps``."""
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return bytes_to_bits(size_bytes) / bandwidth_bps


def fmt_bytes(n: float) -> str:
    """Human-readable byte count ('8.0 MB')."""
    n = float(n)
    for unit, div in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(bps: float) -> str:
    """Human-readable bit rate ('1.50 Mbps')."""
    if abs(bps) >= 1_000_000:
        return f"{bps / 1_000_000:.2f} Mbps"
    if abs(bps) >= 1_000:
        return f"{bps / 1_000:.2f} kbps"
    return f"{bps:.0f} bps"
