"""Shared utilities: units, bitmap arithmetic, statistics, logging."""

from repro.util.bitmaps import (
    all_received,
    and_bitmaps,
    bitmap_bytes,
    count_received,
    make_bitmap,
    missing_indices,
)
from repro.util.stats import mean, mean_ci, percentile, summarize
from repro.util.units import (
    GB,
    KB,
    MB,
    Mbps,
    bits_to_bytes,
    bytes_to_bits,
    fmt_bytes,
    fmt_rate,
    kbps,
    transmission_time,
)

__all__ = [
    "GB",
    "KB",
    "MB",
    "Mbps",
    "all_received",
    "and_bitmaps",
    "bitmap_bytes",
    "bits_to_bytes",
    "bytes_to_bits",
    "count_received",
    "fmt_bytes",
    "fmt_rate",
    "kbps",
    "make_bitmap",
    "mean",
    "mean_ci",
    "missing_indices",
    "percentile",
    "summarize",
    "transmission_time",
]
