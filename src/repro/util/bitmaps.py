"""Reception bitmaps for the multi-phase UDP broadcast protocol.

Section III-C of the paper: after each broadcast round, every receiver
returns a bitmap with one bit per message (1 = received).  The sender ANDs
the bitmaps to find messages missed by at least one receiver, and compares
the byte *gain* of the round against its byte *cost*.

Bitmaps are ``numpy`` boolean arrays; the helpers below keep all bitmap
arithmetic vectorized (per the HPC guide: no per-bit Python loops).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

Bitmap = np.ndarray  # alias: 1-D bool array


def make_bitmap(n_messages: int, received: Iterable[int] = ()) -> Bitmap:
    """A bitmap of ``n_messages`` bits with the given indices set."""
    if n_messages < 0:
        raise ValueError("n_messages must be >= 0")
    bm = np.zeros(n_messages, dtype=bool)
    idx = np.fromiter(received, dtype=np.int64, count=-1)
    if idx.size:
        if idx.min() < 0 or idx.max() >= n_messages:
            raise IndexError("received index out of range")
        bm[idx] = True
    return bm


def and_bitmaps(bitmaps: Sequence[Bitmap]) -> Bitmap:
    """AND of all receiver bitmaps: bits every receiver got.

    The complement of this bitmap is the retransmission set: a message must
    be resent if *any* receiver missed it.
    """
    if not bitmaps:
        raise ValueError("need at least one bitmap")
    n = len(bitmaps[0])
    out = np.ones(n, dtype=bool)
    for bm in bitmaps:
        if len(bm) != n:
            raise ValueError("bitmap length mismatch")
        np.logical_and(out, bm, out=out)
    return out


def missing_indices(anded: Bitmap) -> np.ndarray:
    """Indices of messages that must be resent (bits that are 0)."""
    return np.flatnonzero(~anded)


def count_received(bitmap: Bitmap) -> int:
    """Number of messages a receiver holds."""
    return int(np.count_nonzero(bitmap))


def all_received(bitmap: Bitmap) -> bool:
    """Whether a receiver holds every message."""
    return bool(bitmap.all())


def received_bytes(
    bitmap: Bitmap, block_size: int, total_size: int
) -> int:
    """Bytes held by a receiver, honouring a short final block.

    The paper partitions checkpoint data into 1 KB blocks where "the last
    block may be less than 1KB"; Fig. 6's arithmetic (e.g. node C holding
    all blocks but M2 = 8191 KB) depends on this.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    n = len(bitmap)
    if n == 0:
        return 0
    expected_blocks = max(1, math.ceil(total_size / block_size))
    if expected_blocks != n:
        raise ValueError(
            f"bitmap has {n} blocks but total_size {total_size} implies "
            f"{expected_blocks}"
        )
    last_block = total_size - (n - 1) * block_size
    full = int(np.count_nonzero(bitmap[:-1])) * block_size
    return full + (last_block if bitmap[-1] else 0)


def bitmap_bytes(n_messages: int) -> int:
    """Wire size of a bitmap reply for ``n_messages`` messages.

    One bit per message, rounded up to whole bytes (Fig. 6: 8192 messages
    -> 1 KB bitmap).
    """
    return max(1, math.ceil(n_messages / 8))
