"""Plain-text table rendering shared by the bench reports and the
results API (one implementation; layouts are pinned by golden tests)."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: List[Sequence],
                 title: str = "") -> str:
    """Column-aligned text table (paper-vs-measured report layout)."""
    cols = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            cols[i].append(cell if isinstance(cell, str) else f"{cell}")
    widths = [max(len(c) for c in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        cells = [
            (cell if isinstance(cell, str) else str(cell)).ljust(w)
            for cell, w in zip(row, widths)
        ]
        lines.append(" | ".join(cells))
    return "\n".join(lines)
