"""Small statistics helpers used by the bench harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; NaN for an empty sequence."""
    if len(values) == 0:
        return float("nan")
    return float(np.mean(np.asarray(values, dtype=float)))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100); NaN for an empty sequence."""
    if len(values) == 0:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending non-empty sample: the
    smallest value with at least ``q`` of the sample at or below it.

    This is the artifact contract's percentile (the metrics layer's
    ``p95_latency_s`` and ``ResultSet.aggregate('p95')`` both use it),
    so the formula must live in exactly one place.
    """
    return sorted_values[max(0, math.ceil(q * len(sorted_values)) - 1)]


def mean_ci(values: Sequence[float], z: float = 1.96) -> Tuple[float, float]:
    """(mean, half-width of the normal-approximation CI)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan"), float("nan")
    if arr.size == 1:
        return float(arr[0]), 0.0
    m = float(arr.mean())
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return m, half


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p50: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} p50={self.p50:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` for ``values``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.median(arr)),
        maximum=float(arr.max()),
    )
