"""Device substrate: smartphones, batteries, storage, mobility, failures.

The paper's platform is a fleet of iPhone 3GSs (600 MHz Cortex-A8, 256 MB
RAM, 16 GB flash).  Phones differ from servers in exactly the ways this
package models:

* limited, drainable **battery** — the dominant failure cause,
* modest **CPU** — operator compute costs scale with CPU speed,
* **mobility** — phones physically leave regions (Section III-E),
* **burst failures** — several phones can die or depart simultaneously,
  the failure model prior DSPS work does not handle (Section I).
"""

from repro.device.battery import Battery, BatteryConfig
from repro.device.fleet import Fleet, FleetBattery, FleetPhone
from repro.device.failures import (
    DepartureEvent,
    FailureEvent,
    FailureInjector,
    PhoneFailure,
)
from repro.device.mobility import (
    MobilityModel,
    ScriptedDepartures,
    StaticMobility,
)
from repro.device.phone import Phone, PhoneConfig
from repro.device.storage import FlashStorage

__all__ = [
    "Battery",
    "BatteryConfig",
    "DepartureEvent",
    "FailureEvent",
    "FailureInjector",
    "Fleet",
    "FleetBattery",
    "FleetPhone",
    "FlashStorage",
    "MobilityModel",
    "Phone",
    "PhoneConfig",
    "PhoneFailure",
    "ScriptedDepartures",
    "StaticMobility",
]
