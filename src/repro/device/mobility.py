"""Mobility models: when and how phones leave their regions.

Section III-E: a phone physically walking out of WiFi range breaks its
links; GPS tells the controller the phone is leaving, triggering urgent
mode, state transfer, and replacement.  The experiments need two shapes:

* :class:`StaticMobility` — nobody moves (the paper's default scenario).
* :class:`ScriptedDepartures` — exactly n phones leave at a chosen time
  (Fig. 9's "n nodes leave simultaneously within one checkpoint period",
  and Table I's "a phone leaves its region every five minutes").

Models *announce* departures through a callback; the region runtime owns
the consequences (breaking WiFi membership etc.).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

#: Callback invoked as ``on_departure(phone_id)`` when a phone exits.
DepartureCallback = Callable[[str], None]


class MobilityModel(ABC):
    """Schedules phone movement for one region."""

    @abstractmethod
    def start(self, sim: "Simulator", on_departure: DepartureCallback) -> None:
        """Arm the model; call ``on_departure`` whenever a phone leaves."""


class StaticMobility(MobilityModel):
    """No movement at all."""

    def start(self, sim: "Simulator", on_departure: DepartureCallback) -> None:
        """Nothing to schedule."""


@dataclass
class ScriptedDepartures(MobilityModel):
    """Phones leave at scripted (time, phone_id) points.

    ``simultaneous(t, ids)`` builds the Fig. 9 scenario where a whole group
    walks out together (e.g. a bus arrives and n people board it).
    """

    schedule: Sequence[Tuple[float, str]] = ()

    @classmethod
    def simultaneous(cls, time: float, phone_ids: Sequence[str]) -> "ScriptedDepartures":
        """All of ``phone_ids`` leave at ``time``."""
        return cls(schedule=[(time, pid) for pid in phone_ids])

    @classmethod
    def periodic(cls, period: float, phone_ids: Sequence[str]) -> "ScriptedDepartures":
        """One phone leaves every ``period`` seconds (Table I scenario 2)."""
        return cls(
            schedule=[(period * (i + 1), pid) for i, pid in enumerate(phone_ids)]
        )

    def start(self, sim: "Simulator", on_departure: DepartureCallback) -> None:
        """Schedule every departure on the simulator."""
        for time, phone_id in self.schedule:
            sim.call_at(time, lambda pid=phone_id: on_departure(pid))


@dataclass
class PoissonChurn(MobilityModel):
    """Organic churn: phones trickle out at exponential intervals.

    Rush-hour style mobility — each phone in ``phone_ids`` departs once,
    in listed order, with i.i.d. exponential gaps of mean
    ``mean_interval_s`` starting at ``start_at``.  Departures after
    ``until`` (if set) are dropped.  Fully deterministic for a given
    ``seed``, so scenario runs stay reproducible.
    """

    phone_ids: Sequence[str] = ()
    mean_interval_s: float = 60.0
    start_at: float = 0.0
    until: Optional[float] = None
    seed: int = 0

    def start(self, sim: "Simulator", on_departure: DepartureCallback) -> None:
        """Draw the departure times and schedule them.

        The draw is vectorized (one ``exponential(n)`` call instead of n
        scalar draws) but stream- and float-identical to the original
        scalar loop: PCG64 produces the same doubles either way, and
        seeding the cumsum with ``start_at`` makes the running sum
        associate in the same order as ``t += gap``.
        """
        n = len(self.phone_ids)
        if not n:
            return
        gen = np.random.default_rng(self.seed)
        gaps = gen.exponential(self.mean_interval_s, n)
        times = np.cumsum(np.concatenate(([float(self.start_at)], gaps)))[1:]
        for t, phone_id in zip(times, self.phone_ids):
            t = float(t)
            if self.until is not None and t > self.until:
                break
            sim.call_at(t, lambda pid=phone_id: on_departure(pid))
