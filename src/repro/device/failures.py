"""Failure injection: crashes and departures on schedules.

The paper's central fault-model claim (Section I): on a smartphone
platform, *burst* failures — several phones at once — are common, unlike
the single-node failures prior server DSPS schemes assume.  The injector
produces exactly those scenarios:

* ``crash_at(t, ids)`` — n phones die simultaneously (Fig. 9 failures).
* ``periodic_crashes`` — one phone fails every checkpoint period
  (Table I scenario 3).
* Battery-driven organic failures are modelled by the phones themselves;
  the injector is for *controlled* experiments.

Injection is routed through a registered handler (the region runtime), so
the injector stays decoupled from DSPS internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.util.simlog import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.monitor import Trace


class PhoneFailure(Exception):
    """Interrupt cause delivered to processes on a crashing phone."""

    def __init__(self, phone_id: str, reason: str = "crash") -> None:
        super().__init__(f"{phone_id}: {reason}")
        self.phone_id = phone_id
        self.reason = reason


@dataclass(frozen=True)
class FailureEvent:
    """A scheduled crash of one phone."""

    time: float
    phone_id: str
    reason: str = "injected"


@dataclass(frozen=True)
class DepartureEvent:
    """A scheduled departure of one phone."""

    time: float
    phone_id: str


class FailureInjector:
    """Schedules crash events against registered handlers."""

    def __init__(self, sim: "Simulator", trace: Optional["Trace"] = None) -> None:
        self.sim = sim
        self.trace = trace
        self._crash_handler: Optional[Callable[[str, str], None]] = None
        self._liveness: Optional[Callable[[str], bool]] = None
        self._warned_dead = False
        self.injected: List[FailureEvent] = []

    def on_crash(self, handler: Callable[[str, str], None]) -> None:
        """Register ``handler(phone_id, reason)`` to apply crashes."""
        self._crash_handler = handler

    def on_liveness(self, probe: Callable[[str], bool]) -> None:
        """Register ``probe(phone_id) -> bool`` saying whether a phone is
        still alive.  With a probe installed, firing a crash against an
        already-dead (or departed) phone becomes a logged no-op instead
        of reaching the handler.  Probes should return True for *unknown*
        ids so typos still fail loudly in the handler."""
        self._liveness = probe

    # -- schedules ----------------------------------------------------------
    def crash_at(self, time: float, phone_ids: Sequence[str], reason: str = "injected") -> None:
        """All of ``phone_ids`` crash simultaneously at ``time``."""
        for pid in phone_ids:
            self.sim.call_at(time, lambda p=pid: self._fire(p, reason))
            self.injected.append(FailureEvent(time, pid, reason))

    def schedule(self, events: Sequence[FailureEvent]) -> None:
        """Schedule an arbitrary list of timed crash events."""
        for ev in events:
            self.sim.call_at(ev.time, lambda e=ev: self._fire(e.phone_id, e.reason))
            self.injected.append(ev)

    def cascade(
        self,
        start: float,
        interval: float,
        phone_ids: Sequence[str],
        reason: str = "cascade",
    ) -> None:
        """Staggered burst: one phone of ``phone_ids`` crashes every
        ``interval`` seconds starting at ``start`` (a failure cascade
        rolling through the region within one checkpoint period)."""
        self.schedule([
            FailureEvent(start + i * interval, pid, reason)
            for i, pid in enumerate(phone_ids)
        ])

    def periodic_crashes(
        self, period: float, phone_ids: Sequence[str], reason: str = "injected"
    ) -> None:
        """One phone from ``phone_ids`` crashes every ``period`` seconds."""
        for i, pid in enumerate(phone_ids):
            t = period * (i + 1)
            self.sim.call_at(t, lambda p=pid: self._fire(p, reason))
            self.injected.append(FailureEvent(t, pid, reason))

    def _fire(self, phone_id: str, reason: str) -> None:
        if self._liveness is not None and not self._liveness(phone_id):
            # Scripted double-kill (a cascade overlapping an organic
            # battery death, a spec listing one phone twice): nothing to
            # crash.  Warn once per injector so a mis-written scenario is
            # visible without flooding the log.
            if not self._warned_dead:
                self._warned_dead = True
                get_logger().warning(
                    "injector: crash of already-dead/departed phone %r at "
                    "t=%.3fs is a no-op (further skips logged silently)",
                    phone_id, self.sim.now,
                )
            if self.trace is not None:
                self.trace.count("failures.skipped_dead")
            return
        if self.trace is not None:
            self.trace.record(self.sim.now, "failure_injected", phone=phone_id, reason=reason)
            self.trace.count("failures.injected")
        if self._crash_handler is None:
            raise RuntimeError("no crash handler registered")
        self._crash_handler(phone_id, reason)
