"""Vectorized fleet state: struct-of-arrays device/battery storage.

At paper scale (tens of phones) one Python object per phone is fine.  At
fleet scale — the ROADMAP's 10k–1M idle spares churning through a region
— the per-phone objects themselves become the bottleneck: every battery
tick walks a Python loop over every phone, and every phone costs ~1 KB
of object headers before it stores a single float.

:class:`Fleet` keeps the numeric device state (battery ledger, power
draws, position, liveness) in flat numpy arrays and hands out
:class:`FleetPhone` / :class:`FleetBattery` proxies that duck-type the
classic :class:`~repro.device.phone.Phone` /
:class:`~repro.device.battery.Battery` API, so the node runtime, region
bookkeeping, and failure injector run unchanged.  Bulk work — idle-drain
ticks, liveness/critical sweeps, churn sampling — runs as batch array
ops over index slices instead of per-object method calls.

Float parity matters: a drain computed through a proxy and one computed
through a batch op must produce bit-identical IEEE-754 results, so the
object and fleet backends can be compared event-for-event at small n
(see ``tests/device/test_fleet.py``).  Every batch op mirrors the scalar
arithmetic exactly: same operand order, same clamps, float64 throughout.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.device.battery import BatteryConfig
from repro.device.phone import PhoneConfig
from repro.device.storage import FlashStorage
from repro.net.topology import Position

#: Initial array capacity; grown geometrically.
_INITIAL_CAPACITY = 64


class Fleet:
    """Struct-of-arrays storage for a population of phones.

    One Fleet instance backs a whole system (phones keep globally unique
    ids); regions slice into it with index arrays.  Phones are never
    removed — like the object backend, departed/crashed phones simply
    stop being referenced — so indices are stable for a phone's lifetime.
    """

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(int(capacity), 1)
        self.n = 0
        # Battery ledger + power draws (float64 for scalar parity).
        self.remaining_j = np.zeros(capacity)
        self.capacity_j = np.zeros(capacity)
        self.idle_w = np.zeros(capacity)
        self.cpu_w = np.zeros(capacity)
        self.wifi_j_per_byte = np.zeros(capacity)
        self.cellular_j_per_byte = np.zeros(capacity)
        self.critical_fraction = np.zeros(capacity)
        self.cpu_speed = np.zeros(capacity)
        self.alive = np.zeros(capacity, dtype=bool)
        self.pos_x = np.zeros(capacity)
        self.pos_y = np.zeros(capacity)
        # Per-phone Python-side state (ids, configs, lazy proxies).
        self._ids: List[str] = []
        self._configs: List[PhoneConfig] = []
        self._phones: List["FleetPhone"] = []
        self._index: dict = {}
        # Default-configured phones share one PhoneConfig: the numeric
        # fields already live in the arrays, and a fresh config dataclass
        # per phone would cost more than the phone's whole array slot.
        self._default_config = PhoneConfig()

    def __len__(self) -> int:
        return self.n

    # -- population ------------------------------------------------------
    def _grow(self) -> None:
        new_cap = max(len(self.remaining_j) * 2, _INITIAL_CAPACITY)
        for name in (
            "remaining_j",
            "capacity_j",
            "idle_w",
            "cpu_w",
            "wifi_j_per_byte",
            "cellular_j_per_byte",
            "critical_fraction",
            "cpu_speed",
            "alive",
            "pos_x",
            "pos_y",
        ):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[: self.n] = old[: self.n]
            setattr(self, name, grown)

    def create_phone(
        self,
        phone_id: str,
        position: Position,
        config: Optional[PhoneConfig] = None,
        charge_fraction: float = 1.0,
    ) -> "FleetPhone":
        """Register a phone and return its proxy (same signature as Phone)."""
        if phone_id in self._index:
            raise ValueError(f"phone id {phone_id!r} already in fleet")
        if not 0.0 <= charge_fraction <= 1.0:
            raise ValueError("charge_fraction must be in [0, 1]")
        config = config or self._default_config
        if self.n == len(self.remaining_j):
            self._grow()
        i = self.n
        battery = config.battery
        self.remaining_j[i] = battery.capacity_j * charge_fraction
        self.capacity_j[i] = battery.capacity_j
        self.idle_w[i] = battery.idle_w
        self.cpu_w[i] = battery.cpu_w
        self.wifi_j_per_byte[i] = battery.wifi_j_per_byte
        self.cellular_j_per_byte[i] = battery.cellular_j_per_byte
        self.critical_fraction[i] = battery.critical_fraction
        self.cpu_speed[i] = config.cpu_speed
        self.alive[i] = True
        self.pos_x[i] = position.x
        self.pos_y[i] = position.y
        self.n = i + 1
        phone = FleetPhone(self, i, phone_id, config)
        self._ids.append(phone_id)
        self._configs.append(config)
        self._phones.append(phone)
        self._index[phone_id] = i
        return phone

    def id_at(self, index: int) -> str:
        """Phone id for a fleet index."""
        return self._ids[index]

    def phone_at(self, index: int) -> "FleetPhone":
        """Proxy for a fleet index."""
        return self._phones[index]

    def index_of(self, phone_id: str) -> int:
        """Fleet index for a phone id."""
        return self._index[phone_id]

    # -- batch ops -------------------------------------------------------
    def drain_idle_tick(self, indices: np.ndarray, seconds: float) -> None:
        """Vectorized ``battery.drain_idle(seconds)`` over ``indices``.

        Dead phones are left untouched (the object-backend loop skips
        them before draining).
        """
        sel = indices[self.alive[indices]]
        rem = self.remaining_j
        rem[sel] = np.maximum(rem[sel] - self.idle_w[sel] * seconds, 0.0)

    def sweep_battery(
        self, indices: np.ndarray, seconds: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One battery tick: idle-drain + liveness/critical sweep.

        Returns ``(newly_dead, critical)`` fleet-index arrays, each in
        ascending index order (== phone creation order, matching the
        object backend's dict-iteration order).  ``critical`` excludes
        the dead, mirroring the scalar ``is_dead``/``elif is_critical``
        ladder.
        """
        sel = indices[self.alive[indices]]
        rem = self.remaining_j
        drained = np.maximum(rem[sel] - self.idle_w[sel] * seconds, 0.0)
        rem[sel] = drained
        dead = drained <= 0.0
        # fraction = max(0, rem/cap); for live phones rem > 0 so the
        # clamp is moot, and dead ones are excluded by ~dead.
        critical = ~dead & (drained / self.capacity_j[sel] <= self.critical_fraction[sel])
        return sel[dead], sel[critical]

    def sample_departure_times(
        self, n: int, mean_interval_s: float, start_at: float, seed: int
    ) -> np.ndarray:
        """Vectorized Poisson-churn departure schedule for ``n`` phones.

        Stream-identical to drawing ``n`` exponentials one at a time and
        accumulating in Python floats (the cumsum is seeded with
        ``start_at`` so the additions associate in the same order).
        """
        gen = np.random.default_rng(seed)
        gaps = gen.exponential(mean_interval_s, n)
        return np.cumsum(np.concatenate(([float(start_at)], gaps)))[1:]


class FleetBattery:
    """Battery proxy over one fleet slot; duck-types :class:`Battery`."""

    __slots__ = ("fleet", "index")

    def __init__(self, fleet: Fleet, index: int) -> None:
        self.fleet = fleet
        self.index = index

    @property
    def config(self) -> BatteryConfig:
        return self.fleet._configs[self.index].battery

    @property
    def remaining_j(self) -> float:
        return float(self.fleet.remaining_j[self.index])

    @remaining_j.setter
    def remaining_j(self, value: float) -> None:
        self.fleet.remaining_j[self.index] = value

    @property
    def fraction(self) -> float:
        return max(0.0, self.remaining_j / float(self.fleet.capacity_j[self.index]))

    @property
    def is_critical(self) -> bool:
        return self.fraction <= float(self.fleet.critical_fraction[self.index])

    @property
    def is_dead(self) -> bool:
        return self.remaining_j <= 0.0

    def drain(self, joules: float) -> None:
        if joules < 0:
            raise ValueError("cannot drain negative energy")
        arr = self.fleet.remaining_j
        arr[self.index] = max(0.0, float(arr[self.index]) - joules)

    def drain_idle(self, seconds: float) -> None:
        self.drain(float(self.fleet.idle_w[self.index]) * seconds)

    def drain_cpu(self, seconds: float) -> None:
        self.drain(float(self.fleet.cpu_w[self.index]) * seconds)

    def drain_wifi(self, n_bytes: float) -> None:
        self.drain(float(self.fleet.wifi_j_per_byte[self.index]) * n_bytes)

    def drain_cellular(self, n_bytes: float) -> None:
        self.drain(float(self.fleet.cellular_j_per_byte[self.index]) * n_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FleetBattery {self.fraction * 100:.1f}%>"


class FleetPhone:
    """Phone proxy over one fleet slot; duck-types :class:`Phone`.

    Numeric state lives in the fleet arrays; the flash storage object is
    created lazily (idle spares never touch flash, and an eager
    FlashStorage per phone would defeat the memory win).
    """

    __slots__ = ("fleet", "index", "id", "config", "_battery", "_storage")

    def __init__(
        self, fleet: Fleet, index: int, phone_id: str, config: PhoneConfig
    ) -> None:
        self.fleet = fleet
        self.index = index
        self.id = phone_id
        self.config = config
        self._battery: Optional[FleetBattery] = None
        self._storage: Optional[FlashStorage] = None

    @property
    def battery(self) -> FleetBattery:
        if self._battery is None:
            self._battery = FleetBattery(self.fleet, self.index)
        return self._battery

    @property
    def storage(self) -> FlashStorage:
        if self._storage is None:
            self._storage = FlashStorage(self.config.storage_bytes)
        return self._storage

    @property
    def alive(self) -> bool:
        return bool(self.fleet.alive[self.index])

    @alive.setter
    def alive(self, value: bool) -> None:
        self.fleet.alive[self.index] = value

    @property
    def position(self) -> Position:
        return Position(
            float(self.fleet.pos_x[self.index]), float(self.fleet.pos_y[self.index])
        )

    @position.setter
    def position(self, value: Position) -> None:
        self.fleet.pos_x[self.index] = value.x
        self.fleet.pos_y[self.index] = value.y

    # -- compute ---------------------------------------------------------
    def compute_time(self, reference_seconds: float) -> float:
        if reference_seconds < 0:
            raise ValueError("work must be >= 0")
        return reference_seconds / self.config.cpu_speed

    # -- GPS -------------------------------------------------------------
    def gps_reading(self, rng) -> Position:
        gen = rng.stream(f"gps.{self.id}")
        noise = self.config.gps_noise_m
        pos = self.position
        return Position(
            pos.x + float(gen.normal(0.0, noise)),
            pos.y + float(gen.normal(0.0, noise)),
        )

    # -- lifecycle -------------------------------------------------------
    def crash(self) -> None:
        """Hard failure (see :meth:`Phone.crash`)."""
        self.fleet.alive[self.index] = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"<FleetPhone {self.id} {state} battery={self.battery.fraction:.0%}>"


__all__ = ["Fleet", "FleetBattery", "FleetPhone"]
