"""The smartphone: CPU, battery, flash, GPS, and liveness.

A :class:`Phone` is a passive container of device state; the DSPS node
runtime (:mod:`repro.core.node`) drives it.  CPU work is expressed in
*reference seconds* — the time the work would take on the reference device
(an iPhone 3GS-class 600 MHz core); a faster phone divides by its
``cpu_speed`` multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.device.battery import Battery, BatteryConfig
from repro.device.storage import FlashStorage
from repro.net.topology import Position
from repro.util.units import GB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


@dataclass
class PhoneConfig:
    """Hardware parameters (defaults: the paper's iPhone 3GS)."""

    #: Compute speed relative to the reference device (1.0 = iPhone 3GS).
    cpu_speed: float = 1.0
    #: Number of cores able to run operators concurrently.
    cores: int = 1
    #: Flash capacity.
    storage_bytes: int = 16 * GB
    #: Battery parameters.
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    #: Std-dev of GPS position noise in metres (Section III-E notes GPS
    #: inaccuracy can misreport whether a phone left its region).
    gps_noise_m: float = 3.0

    def __post_init__(self) -> None:
        if self.cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


class Phone:
    """One smartphone."""

    def __init__(
        self,
        phone_id: str,
        position: Position,
        config: Optional[PhoneConfig] = None,
        charge_fraction: float = 1.0,
    ) -> None:
        self.id = phone_id
        self.position = position
        self.config = config or PhoneConfig()
        self.battery = Battery(self.config.battery, charge_fraction)
        self.storage = FlashStorage(self.config.storage_bytes)
        #: False once the phone has crashed (battery death, failure
        #: injection); a dead phone never comes back with its state.
        self.alive = True

    # -- compute -----------------------------------------------------------
    def compute_time(self, reference_seconds: float) -> float:
        """Virtual seconds this phone needs for ``reference_seconds`` of work."""
        if reference_seconds < 0:
            raise ValueError("work must be >= 0")
        return reference_seconds / self.config.cpu_speed

    # -- GPS ----------------------------------------------------------------
    def gps_reading(self, rng: "RngRegistry") -> Position:
        """Noisy position estimate, as reported to the controller."""
        gen = rng.stream(f"gps.{self.id}")
        noise = self.config.gps_noise_m
        return Position(
            self.position.x + float(gen.normal(0.0, noise)),
            self.position.y + float(gen.normal(0.0, noise)),
        )

    # -- lifecycle ------------------------------------------------------------
    def crash(self) -> None:
        """Hard failure: the phone stops and its volatile state is lost.

        Flash contents survive a crash, but (matching the paper's fault
        model for the *dist*/*ms* schemes) a crashed phone does not rejoin,
        so its local data is unreachable — with the notable exception of
        the unrealistic ``local`` baseline, which assumes reboot + intact
        storage.
        """
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"<Phone {self.id} {state} battery={self.battery.fraction:.0%}>"
