"""Flash storage: a bounded key/value byte store per phone.

Checkpoint versions, source-preservation buffers, and operator code all
land in flash (the paper: "each node reads the state data from local
storage" during parallel restoration).  We track *sizes*, not contents —
payloads ride along uninterpreted.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.util.units import GB


class StorageFull(Exception):
    """Raised when a write would exceed the device's flash capacity."""


class FlashStorage:
    """Named byte-buckets with a capacity cap (default 16 GB, iPhone 3GS)."""

    def __init__(self, capacity_bytes: int = 16 * GB) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._objects: Dict[Any, Tuple[int, Any]] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        """Total bytes currently stored."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used

    def write(self, key: Any, size: int, payload: Any = None) -> None:
        """Store (or overwrite) ``key`` with ``size`` bytes of data."""
        if size < 0:
            raise ValueError("size must be >= 0")
        old = self._objects.get(key)
        delta = size - (old[0] if old else 0)
        if self._used + delta > self.capacity_bytes:
            raise StorageFull(
                f"write of {size} B would exceed capacity "
                f"({self._used}/{self.capacity_bytes} used)"
            )
        self._objects[key] = (size, payload)
        self._used += delta

    def read(self, key: Any) -> Any:
        """Payload stored under ``key`` (KeyError if absent)."""
        return self._objects[key][1]

    def size_of(self, key: Any) -> int:
        """Size in bytes of the object under ``key``."""
        return self._objects[key][0]

    def contains(self, key: Any) -> bool:
        """Whether ``key`` is present."""
        return key in self._objects

    def delete(self, key: Any) -> None:
        """Remove ``key`` (silently idempotent)."""
        old = self._objects.pop(key, None)
        if old is not None:
            self._used -= old[0]

    def keys(self):
        """All stored keys."""
        return list(self._objects)

    def wipe(self) -> None:
        """Erase everything (an idle node leaving deletes its copies)."""
        self._objects.clear()
        self._used = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlashStorage {self._used}/{self.capacity_bytes} B>"
