"""Battery model: energy budget drained by CPU, radio, and idle load.

The paper cites "limited battery" as a primary failure cause for phone
DSPS nodes; a node whose battery reaches the critical threshold *actively
reports* its own imminent failure to the controller (Section III-D).  The
model is a simple energy ledger — coarse, but enough to (a) cause organic
failures in long runs and (b) let the failure injector use battery
exhaustion as a realistic cause.

Power figures are order-of-magnitude for a 2010-era smartphone.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BatteryConfig:
    """Battery capacity and component power draws."""

    #: Usable energy in joules (iPhone 3GS: ~4.5 Wh ≈ 16 kJ).
    capacity_j: float = 16_000.0
    #: Baseline system draw, watts.
    idle_w: float = 0.15
    #: Additional draw while the CPU crunches, watts.
    cpu_w: float = 0.9
    #: Energy per byte over WiFi (J/B).
    wifi_j_per_byte: float = 6e-7
    #: Energy per byte over cellular (J/B) — radios cost more than WiFi.
    cellular_j_per_byte: float = 2.5e-6
    #: Fraction of capacity at which the phone reports chronic battery.
    critical_fraction: float = 0.03

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= self.critical_fraction < 1.0:
            raise ValueError("critical_fraction must be in [0, 1)")


class Battery:
    """Energy ledger for one phone."""

    def __init__(self, config: BatteryConfig | None = None, charge_fraction: float = 1.0) -> None:
        self.config = config or BatteryConfig()
        if not 0.0 <= charge_fraction <= 1.0:
            raise ValueError("charge_fraction must be in [0, 1]")
        self.remaining_j = self.config.capacity_j * charge_fraction

    @property
    def fraction(self) -> float:
        """Remaining charge as a fraction of capacity."""
        return max(0.0, self.remaining_j / self.config.capacity_j)

    @property
    def is_critical(self) -> bool:
        """True once charge is at or below the chronic threshold."""
        return self.fraction <= self.config.critical_fraction

    @property
    def is_dead(self) -> bool:
        """True when no energy remains."""
        return self.remaining_j <= 0.0

    def drain(self, joules: float) -> None:
        """Remove ``joules`` (clamped at zero)."""
        if joules < 0:
            raise ValueError("cannot drain negative energy")
        self.remaining_j = max(0.0, self.remaining_j - joules)

    def drain_idle(self, seconds: float) -> None:
        """Account baseline draw over ``seconds``."""
        self.drain(self.config.idle_w * seconds)

    def drain_cpu(self, seconds: float) -> None:
        """Account CPU-active draw over ``seconds`` (on top of idle)."""
        self.drain(self.config.cpu_w * seconds)

    def drain_wifi(self, n_bytes: float) -> None:
        """Account WiFi radio energy for ``n_bytes`` sent or received."""
        self.drain(self.config.wifi_j_per_byte * n_bytes)

    def drain_cellular(self, n_bytes: float) -> None:
        """Account cellular radio energy for ``n_bytes``."""
        self.drain(self.config.cellular_j_per_byte * n_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Battery {self.fraction * 100:.1f}%>"
