"""Canonical artifact serialization: the bytes of the public contract.

Every sweep artifact in this repo — buffered, streamed, or resumed — is
produced by (or byte-identical to) :func:`dumps_artifact`: key-sorted
JSON, indented for small sweeps and separators-only at
:data:`COMPACT_THRESHOLD` cases.  The function used to live in
:mod:`repro.scenarios.runner` as ``dumps_result``; it is the *format*
half of the results contract, so it lives with the results API now and
the runner keeps a deprecated shim.

Nothing here imports simulation code: the format must be loadable (and
testable) without building a system.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Sweeps at or above this many cases default to compact JSON: pretty-
#: printing a huge artifact burns real time and disk for no reader.
COMPACT_THRESHOLD = 100


def dumps_artifact(result: Dict[str, Any], compact: Optional[bool] = None) -> str:
    """Canonical serialization (sorted keys, fixed layout) so serial,
    parallel, resumed, and streamed sweeps of the same scenario compare
    byte-for-byte.

    ``compact=None`` keeps the human-readable indented layout for small
    sweeps and switches to separators-only JSON at
    :data:`COMPACT_THRESHOLD` cases; both layouts stay canonical
    (key-sorted), just differently whitespaced.
    """
    if compact is None:
        compact = result.get("n_cases", 0) >= COMPACT_THRESHOLD
    if compact:
        return json.dumps(result, sort_keys=True, separators=(",", ":"))
    return json.dumps(result, sort_keys=True, indent=2)


def load_artifact(path: str) -> Dict[str, Any]:
    """Parse one artifact file into its raw dict form."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
