"""The results API: typed sweep artifacts, queries, and reports.

The one surface between "a sweep ran" and "a human, figure, or test
consumes numbers":

* :mod:`repro.results.model` — :class:`CaseResult` /
  :class:`RegionResult`, the schema-versioned typed form of one
  artifact row (round-trips byte-exactly).
* :mod:`repro.results.resultset` — :class:`ResultSet`, the query
  surface: ``load``/``from_sweep``, ``filter``/``group_by``,
  ``aggregate``/``relative_to``/``pivot``, ``to_rows``/``to_json``.
* :mod:`repro.results.io` — the canonical artifact serialization
  (:func:`dumps_artifact`) and :data:`COMPACT_THRESHOLD`.
* :mod:`repro.results.report` — ``repro report``'s renderer
  (:func:`build_report`: table / markdown / json).

>>> from repro.results import ResultSet
>>> rs = ResultSet.load("sweep.json")
>>> rs.filter(app="bcp").group_by("scheme").aggregate("throughput")
>>> rs.relative_to("base", metrics=("throughput", "latency"))
"""

from repro.results.io import COMPACT_THRESHOLD, dumps_artifact, load_artifact
from repro.results.model import (
    AXES,
    SCHEMA_VERSION,
    CaseResult,
    RegionResult,
)
from repro.results.report import DEFAULT_METRICS, build_report
from repro.results.resultset import (
    STAT_NAMES,
    Aggregate,
    GroupedResults,
    Pivot,
    ResultSet,
)

__all__ = [
    "AXES",
    "Aggregate",
    "CaseResult",
    "COMPACT_THRESHOLD",
    "DEFAULT_METRICS",
    "GroupedResults",
    "Pivot",
    "RegionResult",
    "ResultSet",
    "SCHEMA_VERSION",
    "STAT_NAMES",
    "build_report",
    "dumps_artifact",
    "load_artifact",
]
