"""Typed case results: the schema behind every sweep artifact row.

:class:`CaseResult` / :class:`RegionResult` are frozen dataclasses that
round-trip to *exactly* the JSON rows sweeps have always written — the
artifact format is a versioned public contract (:data:`SCHEMA_VERSION`),
not an accident of serialization code.  Three ways in:

* :meth:`CaseResult.from_report` — from a live
  :class:`~repro.core.metrics.MetricsReport` (what the scenario runner
  uses to *produce* rows; NaN metrics become JSON ``null`` here).
* :meth:`CaseResult.from_dict` — from a saved artifact row (strict:
  unknown or missing keys are schema violations and raise).
* :meth:`CaseResult.to_dict` — the inverse, reproducing the row
  byte-for-byte under canonical serialization.

Values are stored exactly as they appear in JSON (``None`` for a NaN
metric, ints staying ints); the numeric accessors (:attr:`throughput`,
:attr:`latency_s`, ...) coerce ``None`` back to ``nan`` so arithmetic
consumers never branch on missing data.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import MetricsReport

#: Version of the artifact row/envelope schema.  The current shape —
#: unversioned on disk for byte-compatibility with every artifact ever
#: written — is version 1; loaders accept an explicit
#: ``"schema_version": 1`` in the sweep envelope and reject anything
#: newer.
SCHEMA_VERSION = 1

#: The per-region row fields, artifact key order.
REGION_FIELDS = (
    "output_tuples", "throughput_tps", "mean_latency_s", "p95_latency_s",
    "stopped",
)

#: The case-level row fields besides ``regions``.
CASE_FIELDS = (
    "scenario", "app", "scheme", "seed", "end_to_end_latency_s",
    "preserved_bytes", "ft_network_bytes", "wifi_bytes", "cellular_bytes",
    "recoveries", "departures_handled",
)

#: The axes a case can be filtered/grouped by.
AXES = ("scenario", "app", "scheme", "seed")


def _nan_to_none(x: Any) -> Any:
    """NaN-free value for strict JSON (the artifact's null convention)."""
    return None if isinstance(x, float) and math.isnan(x) else x


def _none_to_nan(x: Any) -> float:
    """Numeric view of a JSON value: ``null`` reads back as ``nan``."""
    return float("nan") if x is None else x


def _check_keys(what: str, data: Any,
                expected: Sequence[str]) -> None:
    """Schema guard: a row must be a mapping carrying exactly the
    contract's keys."""
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{what} must be a mapping with keys {list(expected)}, "
            f"got {data!r}"
        )
    missing = [k for k in expected if k not in data]
    unknown = sorted(set(data) - set(expected))
    if missing or unknown:
        problems = []
        if missing:
            problems.append(f"missing key(s) {missing}")
        if unknown:
            problems.append(f"unknown key(s) {unknown}")
        raise ValueError(
            f"{what} does not match artifact schema v{SCHEMA_VERSION}: "
            f"{'; '.join(problems)}; expected exactly {list(expected)}"
        )


@dataclass(frozen=True)
class RegionResult:
    """One region's measurements inside a case row.

    ``name`` is the artifact's ``regions`` mapping key; the remaining
    fields mirror the row values exactly (``None`` where the artifact
    holds ``null``).
    """

    name: str
    output_tuples: int
    throughput_tps: Optional[float]
    mean_latency_s: Optional[float]
    p95_latency_s: Optional[float]
    stopped: bool

    # -- numeric views --------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Throughput in tuples/s (``nan`` when the row holds null)."""
        return _none_to_nan(self.throughput_tps)

    @property
    def latency_s(self) -> float:
        """Mean latency in seconds (``nan`` when the row holds null)."""
        return _none_to_nan(self.mean_latency_s)

    @property
    def p95_s(self) -> float:
        """p95 latency in seconds (``nan`` when the row holds null)."""
        return _none_to_nan(self.p95_latency_s)

    # -- serialization --------------------------------------------------------
    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "RegionResult":
        """Parse one ``regions[name]`` entry (strict)."""
        _check_keys(f"region {name!r}", data, REGION_FIELDS)
        return cls(name=name, **{k: data[k] for k in REGION_FIELDS})

    def to_dict(self) -> Dict[str, Any]:
        """The exact ``regions[name]`` artifact entry."""
        return {k: getattr(self, k) for k in REGION_FIELDS}


@dataclass(frozen=True)
class CaseResult:
    """One executed (scenario, app, scheme, seed) case, artifact-shaped.

    ``app`` is the app ref's deterministic case key (``"bcp"``, or
    ``"edgeml[n_stages=2]"`` for parameterized refs).  ``regions`` keeps
    cascade order, matching the report the row was reduced from.
    """

    scenario: str
    app: str
    scheme: str
    seed: int
    regions: Tuple[RegionResult, ...]
    end_to_end_latency_s: Optional[float]
    preserved_bytes: float
    ft_network_bytes: float
    wifi_bytes: float
    cellular_bytes: float
    recoveries: int
    departures_handled: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", tuple(self.regions))

    # -- region access --------------------------------------------------------
    @property
    def region_names(self) -> Tuple[str, ...]:
        """Region names in cascade order."""
        return tuple(r.name for r in self.regions)

    def region(self, name: str) -> RegionResult:
        """One region by name; unknown names raise listing the known ones."""
        for r in self.regions:
            if r.name == name:
                return r
        known = ", ".join(self.region_names) or "<none>"
        raise ValueError(
            f"unknown region {name!r}; regions in this case: {known}"
        )

    @property
    def first_region(self) -> RegionResult:
        """The cascade's first region (the classic headline metrics)."""
        if not self.regions:
            raise ValueError("case has no regions")
        return self.regions[0]

    @property
    def stopped(self) -> bool:
        """True when any region ended the run stopped (unrecoverable)."""
        return any(r.stopped for r in self.regions)

    # -- headline numeric views ----------------------------------------------
    @property
    def throughput(self) -> float:
        """First-region steady throughput (tuples/s)."""
        return self.first_region.throughput

    @property
    def latency_s(self) -> float:
        """First-region mean latency (s)."""
        return self.first_region.latency_s

    @property
    def p95_latency_s(self) -> float:
        """First-region p95 latency (s)."""
        return self.first_region.p95_s

    @property
    def e2e_latency_s(self) -> float:
        """End-to-end latency (s); ``nan`` when the row holds null."""
        return _none_to_nan(self.end_to_end_latency_s)

    @property
    def total_output_tuples(self) -> int:
        """Output tuples summed across every region."""
        return sum(r.output_tuples for r in self.regions)

    @property
    def key(self) -> Tuple[str, str, int]:
        """The case's matrix coordinates: (app key, scheme, seed)."""
        return (self.app, self.scheme, self.seed)

    def axis(self, name: str) -> Any:
        """One filter/group axis value; unknown axes raise listing known."""
        if name not in AXES:
            raise ValueError(
                f"unknown case axis {name!r}; axes: {', '.join(AXES)}"
            )
        return getattr(self, name)

    # -- metric resolution ----------------------------------------------------
    #: alias -> how to read it (documented in :meth:`metric_names`).
    _ALIASES = {
        "throughput": lambda c: c.first_region.throughput_tps,
        "latency": lambda c: c.first_region.mean_latency_s,
        "p95_latency": lambda c: c.first_region.p95_latency_s,
        "e2e_latency": lambda c: c.end_to_end_latency_s,
        "output_tuples": lambda c: c.total_output_tuples,
    }
    _FIELD_METRICS = (
        "end_to_end_latency_s", "preserved_bytes", "ft_network_bytes",
        "wifi_bytes", "cellular_bytes", "recoveries", "departures_handled",
        "seed",
    )

    @classmethod
    def metric_names(cls) -> List[str]:
        """Every non-dotted metric :meth:`value` resolves."""
        return sorted(set(cls._ALIASES) | set(cls._FIELD_METRICS))

    def value(self, metric: str) -> Any:
        """One metric value, exactly as the artifact stores it.

        Accepts the case-level field names (``preserved_bytes``, ...),
        the headline aliases (``throughput`` / ``latency`` /
        ``p95_latency`` / ``e2e_latency`` read the *first* region,
        ``output_tuples`` sums all regions), and dotted region metrics
        (``region1.throughput_tps``).  A null metric returns ``None``;
        use the numeric properties for nan-coerced arithmetic.
        """
        if metric in self._ALIASES:
            return self._ALIASES[metric](self)
        if metric in self._FIELD_METRICS:
            return getattr(self, metric)
        if "." in metric:
            region_name, _, field = metric.partition(".")
            if field not in REGION_FIELDS:
                raise ValueError(
                    f"unknown region metric {field!r}; region metrics: "
                    f"{', '.join(REGION_FIELDS)}"
                )
            return getattr(self.region(region_name), field)
        known = ", ".join(self.metric_names())
        raise ValueError(
            f"unknown metric {metric!r}; metrics: {known} "
            "(or '<region>.<field>' for per-region values)"
        )

    def replace(self, **changes: Any) -> "CaseResult":
        """A copy with the given fields swapped (frozen-friendly)."""
        return dataclasses.replace(self, **changes)

    # -- constructors / serialization -----------------------------------------
    @classmethod
    def from_report(
        cls,
        scenario: str,
        app: str,
        scheme: str,
        seed: int,
        report: "MetricsReport",
        region_stopped: Sequence[bool],
    ) -> "CaseResult":
        """Reduce a live metrics report to the artifact row shape.

        This is where NaN metrics (a region with no steady-state output)
        become JSON ``null`` — the single place the simulation-side
        types meet the artifact contract.
        """
        regions = tuple(
            RegionResult(
                name=name,
                output_tuples=rm.output_tuples,
                throughput_tps=_nan_to_none(rm.throughput_tps),
                mean_latency_s=_nan_to_none(rm.mean_latency_s),
                p95_latency_s=_nan_to_none(rm.p95_latency_s),
                stopped=region_stopped[i],
            )
            for i, (name, rm) in enumerate(report.per_region.items())
        )
        return cls(
            scenario=scenario,
            app=app,
            scheme=scheme,
            seed=seed,
            regions=regions,
            end_to_end_latency_s=_nan_to_none(report.end_to_end_latency_s),
            preserved_bytes=report.preserved_bytes,
            ft_network_bytes=report.ft_network_bytes,
            wifi_bytes=report.wifi_bytes,
            cellular_bytes=report.cellular_bytes,
            recoveries=report.recoveries,
            departures_handled=report.departures_handled,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CaseResult":
        """Parse one artifact case row (strict schema check)."""
        _check_keys("case row", data, CASE_FIELDS + ("regions",))
        regions_data = data["regions"]
        if not isinstance(regions_data, Mapping):
            raise ValueError(
                f"case row 'regions' must be a mapping, got {regions_data!r}"
            )
        regions = tuple(
            RegionResult.from_dict(name, rd) for name, rd in regions_data.items()
        )
        return cls(regions=regions, **{k: data[k] for k in CASE_FIELDS})

    def to_dict(self) -> Dict[str, Any]:
        """The exact artifact row (stable, timestamp-free).

        Byte-identical under canonical serialization to every row a
        sweep has ever written: same keys, same value types, regions in
        the same order.
        """
        return {
            "scenario": self.scenario,
            "app": self.app,
            "scheme": self.scheme,
            "seed": self.seed,
            "regions": {r.name: r.to_dict() for r in self.regions},
            "end_to_end_latency_s": self.end_to_end_latency_s,
            "preserved_bytes": self.preserved_bytes,
            "ft_network_bytes": self.ft_network_bytes,
            "wifi_bytes": self.wifi_bytes,
            "cellular_bytes": self.cellular_bytes,
            "recoveries": self.recoveries,
            "departures_handled": self.departures_handled,
        }
