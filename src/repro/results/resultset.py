"""ResultSet: the query surface over sweep artifacts.

One typed collection sits between "a sweep ran" and "a human, figure,
or test consumes numbers":

* load it — :meth:`ResultSet.load` (artifact file),
  :meth:`ResultSet.from_sweep` (the dict :func:`repro.scenarios.executor.
  run_sweep` returns), :meth:`ResultSet.from_cases` (typed cases).
* slice it — :meth:`ResultSet.filter` by axis values or predicates,
  :meth:`ResultSet.group_by` into ordered per-key subsets.
* reduce it — :meth:`ResultSet.aggregate` (mean/median/p95/... with an
  optional normal-approximation CI) across seeds or any other slice,
  :meth:`ResultSet.relative_to` for the paper's normalized comparisons,
  :meth:`ResultSet.pivot` for scheme × app tables.
* export it — :meth:`ResultSet.to_rows` (flat dicts),
  :meth:`ResultSet.to_json` (byte-identical to the canonical artifact
  serialization, so ``load(path).to_json()`` round-trips exactly).

Everything returns plain data or further ``ResultSet``s; nothing here
re-runs simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.results.io import dumps_artifact, load_artifact
from repro.results.model import AXES, SCHEMA_VERSION, CaseResult
from repro.util.stats import mean, mean_ci, nearest_rank

#: The envelope keys a sweep artifact may carry.  ``violations`` (a
#: ``verify=True`` sweep), ``errors`` (cases that raised and exhausted
#: their retry), and ``quarantined`` (fabric cases that kept killing
#: their workers) only appear on in-memory envelopes — the on-disk
#: artifact never carries them; they are tolerated, not stored.
_ENVELOPE_REQUIRED = ("cases", "n_cases")
_ENVELOPE_OPTIONAL = ("scenario", "spec", "schema_version", "violations",
                      "errors", "quarantined")


#: stat name -> reducer over a non-empty numeric sample.
_STATS: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": mean,
    "median": lambda v: float(np.median(np.asarray(v, dtype=float))),
    "min": min,
    "max": max,
    "sum": lambda v: float(sum(v)),
    "std": lambda v: (float(np.asarray(v, dtype=float).std(ddof=1))
                      if len(v) > 1 else 0.0),
    "p95": lambda v: nearest_rank(sorted(v), 0.95),
    "count": len,
}

STAT_NAMES = tuple(_STATS)


@dataclass(frozen=True)
class Aggregate:
    """One reduced metric: ``value`` plus the sample it came from.

    ``n`` counts the cases that actually carried the metric (null rows
    are skipped); an empty sample reduces to ``nan``.  With ``ci``
    requested, ``ci_half`` is the 95% normal-approximation half-width
    of the *mean* (0 for a single sample).
    """

    metric: str
    stat: str
    value: float
    n: int
    ci_half: Optional[float] = None

    @property
    def low(self) -> Optional[float]:
        """Lower CI bound (None when no CI was requested)."""
        return None if self.ci_half is None else self.value - self.ci_half

    @property
    def high(self) -> Optional[float]:
        """Upper CI bound (None when no CI was requested)."""
        return None if self.ci_half is None else self.value + self.ci_half

    def __float__(self) -> float:
        return float(self.value)


GroupKey = Union[Any, Tuple[Any, ...]]


class GroupedResults:
    """An ordered mapping of group key -> :class:`ResultSet`.

    Keys appear in first-seen case order (matrix order for a sweep
    artifact).  Unknown keys raise a :class:`ValueError` naming the
    known ones, registry-style.
    """

    def __init__(self, axes: Tuple[str, ...],
                 groups: "Dict[GroupKey, ResultSet]") -> None:
        self.axes = axes
        self._groups = groups

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[GroupKey]:
        return iter(self._groups)

    def __contains__(self, key: GroupKey) -> bool:
        return key in self._groups

    def keys(self) -> List[GroupKey]:
        return list(self._groups)

    def items(self) -> List[Tuple[GroupKey, "ResultSet"]]:
        return list(self._groups.items())

    def values(self) -> List["ResultSet"]:
        return list(self._groups.values())

    def __getitem__(self, key: GroupKey) -> "ResultSet":
        try:
            return self._groups[key]
        except KeyError:
            known = ", ".join(repr(k) for k in self._groups) or "<none>"
            axis = "×".join(self.axes)
            raise ValueError(
                f"unknown {axis} group {key!r}; groups: {known}"
            ) from None

    def aggregate(self, metric: str, stat: str = "mean",
                  ci: bool = False) -> Dict[GroupKey, Aggregate]:
        """One :class:`Aggregate` per group, in group order."""
        return {key: rs.aggregate(metric, stat, ci=ci)
                for key, rs in self._groups.items()}


@dataclass(frozen=True)
class Pivot:
    """A rows-axis × cols-axis table of one aggregated metric."""

    rows_axis: str
    cols_axis: str
    metric: str
    stat: str
    row_keys: Tuple[Any, ...]
    col_keys: Tuple[Any, ...]
    cells: Mapping[Tuple[Any, Any], Aggregate]

    def cell(self, row: Any, col: Any) -> float:
        """One cell's value; ``nan`` where no case lands."""
        agg = self.cells.get((row, col))
        return float("nan") if agg is None else agg.value

    def to_text(self, title: str = "") -> str:
        """Render as a plain-text table."""
        from repro.results.report import format_table

        header = [f"{self.rows_axis}\\{self.cols_axis}"]
        header += [str(c) for c in self.col_keys]
        rows = []
        for r in self.row_keys:
            cells = []
            for c in self.col_keys:
                v = self.cell(r, c)
                cells.append("-" if math.isnan(v) else f"{v:.4g}")
            rows.append([str(r)] + cells)
        return format_table(
            header, rows,
            title=title or f"{self.stat}({self.metric}) by "
                           f"{self.rows_axis} × {self.cols_axis}",
        )


class ResultSet:
    """An immutable, queryable collection of :class:`CaseResult`."""

    def __init__(
        self,
        cases: Iterable[CaseResult],
        scenario: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
        schema_version: Optional[int] = None,
    ) -> None:
        self.cases: Tuple[CaseResult, ...] = tuple(cases)
        #: Scenario name from the sweep envelope (provenance; survives
        #: filtering even though the subset no longer spans the matrix).
        self.scenario = scenario
        #: The raw spec dict from the envelope, kept verbatim so
        #: serialization round-trips byte-for-byte.
        self.spec = spec
        #: Explicit envelope schema version, when the artifact carried
        #: one (current artifacts are implicitly version 1).
        self.schema_version = schema_version

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_cases(
        cls,
        cases: Iterable[CaseResult],
        scenario: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
    ) -> "ResultSet":
        """Wrap already-typed cases."""
        return cls(cases, scenario=scenario, spec=spec)

    @classmethod
    def from_sweep(cls, result: Mapping[str, Any]) -> "ResultSet":
        """Adopt a sweep result dict (the executor's return value or a
        parsed artifact).  Strict: unknown envelope keys, a ``n_cases``
        that disagrees with the rows (a torn artifact), or a schema
        version this code doesn't speak all raise ``ValueError``.
        """
        known = set(_ENVELOPE_REQUIRED) | set(_ENVELOPE_OPTIONAL)
        missing = [k for k in _ENVELOPE_REQUIRED if k not in result]
        unknown = sorted(set(result) - known)
        if missing or unknown:
            problems = []
            if missing:
                problems.append(f"missing key(s) {missing}")
            if unknown:
                problems.append(f"unknown key(s) {unknown}")
            raise ValueError(
                f"not a sweep artifact: {'; '.join(problems)}; "
                f"expected {sorted(known)}"
            )
        version = result.get("schema_version")
        if version is not None and version != SCHEMA_VERSION:
            raise ValueError(
                f"artifact schema version {version!r} is not supported; "
                f"this code speaks version {SCHEMA_VERSION}"
            )
        if not isinstance(result["cases"], (list, tuple)):
            raise ValueError(
                f"artifact 'cases' must be a list, got {result['cases']!r}"
            )
        cases = tuple(CaseResult.from_dict(row) for row in result["cases"])
        if result["n_cases"] != len(cases):
            raise ValueError(
                f"artifact is torn: n_cases={result['n_cases']} but "
                f"{len(cases)} case row(s) present"
            )
        return cls(
            cases,
            scenario=result.get("scenario"),
            spec=result.get("spec"),
            schema_version=version,
        )

    @classmethod
    def load(cls, path: str) -> "ResultSet":
        """Load an artifact file: a sweep envelope, a bare list of case
        rows, or a single case row (e.g. a resume-cache entry)."""
        data = load_artifact(path)
        if isinstance(data, list):
            return cls(CaseResult.from_dict(row) for row in data)
        if isinstance(data, Mapping) and "cases" in data:
            return cls.from_sweep(data)
        if isinstance(data, Mapping) and "regions" in data:
            return cls([CaseResult.from_dict(data)])
        raise ValueError(
            f"{path}: not a sweep artifact, case-row list, or case row"
        )

    # -- collection protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self) -> Iterator[CaseResult]:
        return iter(self.cases)

    def __getitem__(self, index: int) -> CaseResult:
        return self.cases[index]

    def __repr__(self) -> str:
        scen = f" scenario={self.scenario!r}" if self.scenario else ""
        return f"<ResultSet{scen} n={len(self.cases)}>"

    def _derive(self, cases: Iterable[CaseResult]) -> "ResultSet":
        """A subset carrying this set's provenance."""
        return ResultSet(cases, scenario=self.scenario, spec=self.spec,
                         schema_version=self.schema_version)

    # -- axis views -----------------------------------------------------------
    def _axis_values(self, axis: str) -> List[Any]:
        seen: Dict[Any, None] = {}
        for case in self.cases:
            seen.setdefault(case.axis(axis))
        return list(seen)

    @property
    def apps(self) -> List[str]:
        """App case keys, first-seen order."""
        return self._axis_values("app")

    @property
    def schemes(self) -> List[str]:
        """Scheme labels, first-seen order."""
        return self._axis_values("scheme")

    @property
    def seeds(self) -> List[int]:
        """Seeds, first-seen order."""
        return self._axis_values("seed")

    # -- query ----------------------------------------------------------------
    def filter(
        self,
        *predicates: Callable[[CaseResult], bool],
        **axes: Any,
    ) -> "ResultSet":
        """Cases matching every axis constraint and predicate.

        Axis constraints (``app=``, ``scheme=``, ``seed=``,
        ``scenario=``) accept a single value or a collection of allowed
        values; extra callables run per case.

        >>> rs.filter(scheme="ms-8", seed=(3, 4))
        >>> rs.filter(lambda c: c.recoveries > 0)
        """
        unknown = sorted(set(axes) - set(AXES))
        if unknown:
            raise ValueError(
                f"unknown filter axis(es) {unknown}; axes: {', '.join(AXES)}"
            )
        allowed = {
            axis: (set(want) if isinstance(want, (list, tuple, set, frozenset))
                   else {want})
            for axis, want in axes.items()
        }
        kept = [
            case for case in self.cases
            if all(case.axis(a) in want for a, want in allowed.items())
            and all(pred(case) for pred in predicates)
        ]
        return self._derive(kept)

    def group_by(self, *axes: str) -> GroupedResults:
        """Split into ordered per-key subsets along one or more axes.

        A single axis keys groups by its value (``group_by("scheme")``
        -> ``"ms-8"``); several axes key by tuple.
        """
        if not axes:
            raise ValueError(f"group_by needs at least one axis of {AXES}")
        groups: Dict[GroupKey, List[CaseResult]] = {}
        for case in self.cases:
            values = tuple(case.axis(a) for a in axes)
            key = values[0] if len(axes) == 1 else values
            groups.setdefault(key, []).append(case)
        return GroupedResults(
            tuple(axes),
            {key: self._derive(cases) for key, cases in groups.items()},
        )

    # -- reduction ------------------------------------------------------------
    def values(self, metric: str) -> List[Any]:
        """The metric per case, artifact-raw (``None`` where null)."""
        return [case.value(metric) for case in self.cases]

    def aggregate(self, metric: str, stat: str = "mean",
                  ci: bool = False) -> Aggregate:
        """Reduce a metric across the set's cases.

        ``stat`` is one of :data:`STAT_NAMES`; null metrics (a region
        with no steady-state output) are skipped, and an empty sample
        reduces to ``nan``.  ``ci=True`` (mean only) adds the 95%
        normal-approximation half-width across the sample — the
        cross-seed error bar.
        """
        if stat not in _STATS:
            raise ValueError(
                f"unknown stat {stat!r}; stats: {', '.join(_STATS)}"
            )
        if ci and stat != "mean":
            raise ValueError("ci=True is only meaningful with stat='mean'")
        sample = [v for v in self.values(metric) if v is not None]
        n = len(sample)
        if stat == "count":
            value = float(n)
        elif n == 0:
            value = float("nan")
        else:
            value = float(_STATS[stat](sample))
        half: Optional[float] = None
        if ci:
            half = mean_ci(sample)[1] if n else float("nan")
        return Aggregate(metric=metric, stat=stat, value=value, n=n,
                         ci_half=half)

    def relative_to(
        self,
        baseline: Any,
        axis: str = "scheme",
        metrics: Sequence[str] = ("throughput", "latency"),
        stat: str = "mean",
        floor: Optional[float] = None,
        default: float = 0.0,
    ) -> Dict[Any, Dict[str, float]]:
        """Paper-style normalized comparison along one axis.

        Groups the set by ``axis``, aggregates each metric per group,
        and divides by the ``baseline`` group's aggregate — Fig. 8's
        "normalized to base" bars in one call.  ``floor`` clamps the
        denominator from below (Fig. 10 normalizes byte counts against
        ``max(base, 1.0)`` so an all-zero baseline stays finite);
        without a floor, a falsy baseline yields ``default``.  Unknown
        baselines raise naming the known groups.

        Returns ``{group key: {metric: ratio}}`` in group order.
        """
        groups = self.group_by(axis)
        base = groups[baseline]  # ValueError naming known groups
        base_values = {m: base.aggregate(m, stat).value for m in metrics}
        out: Dict[Any, Dict[str, float]] = {}
        for key, rs in groups.items():
            row: Dict[str, float] = {}
            for m in metrics:
                denom = base_values[m]
                if floor is not None:
                    denom = max(denom, floor)
                value = rs.aggregate(m, stat).value
                row[m] = value / denom if denom else default
            out[key] = row
        return out

    def pivot(
        self,
        rows: str = "scheme",
        cols: str = "app",
        metric: str = "throughput",
        stat: str = "mean",
    ) -> Pivot:
        """A rows × cols table of one aggregated metric (scheme × app
        by default), keys in first-seen order."""
        row_keys = tuple(self._axis_values(rows))
        col_keys = tuple(self._axis_values(cols))
        cells: Dict[Tuple[Any, Any], Aggregate] = {}
        for (r, c), rs in self.group_by(rows, cols).items():
            cells[(r, c)] = rs.aggregate(metric, stat)
        return Pivot(rows_axis=rows, cols_axis=cols, metric=metric, stat=stat,
                     row_keys=row_keys, col_keys=col_keys, cells=cells)

    # -- export ---------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, Any]]:
        """Flat export rows: one dict per case, region metrics dotted
        (``region0.throughput_tps``) — ready for CSV/dataframe tools."""
        rows = []
        for case in self.cases:
            row: Dict[str, Any] = {
                "scenario": case.scenario,
                "app": case.app,
                "scheme": case.scheme,
                "seed": case.seed,
                "end_to_end_latency_s": case.end_to_end_latency_s,
                "preserved_bytes": case.preserved_bytes,
                "ft_network_bytes": case.ft_network_bytes,
                "wifi_bytes": case.wifi_bytes,
                "cellular_bytes": case.cellular_bytes,
                "recoveries": case.recoveries,
                "departures_handled": case.departures_handled,
                "stopped": case.stopped,
            }
            for region in case.regions:
                for field, value in region.to_dict().items():
                    row[f"{region.name}.{field}"] = value
            rows.append(row)
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """The sweep-envelope dict (the executor's return shape)."""
        out: Dict[str, Any] = {
            "cases": [case.to_dict() for case in self.cases],
            "n_cases": len(self.cases),
        }
        if self.scenario is not None:
            out["scenario"] = self.scenario
        if self.spec is not None:
            out["spec"] = self.spec
        if self.schema_version is not None:
            out["schema_version"] = self.schema_version
        return out

    def to_json(self, compact: Optional[bool] = None) -> str:
        """Canonical artifact serialization of this set.

        For a freshly loaded artifact this reproduces the input bytes
        exactly (modulo the file's trailing newline); :meth:`save`
        writes a byte-identical file.
        """
        return dumps_artifact(self.to_dict(), compact=compact)

    def save(self, path: str, compact: Optional[bool] = None) -> None:
        """Write the canonical artifact file (trailing newline, like
        the streaming writer)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(compact=compact) + "\n")
