"""Artifact reports: the rendering layer behind ``repro report``.

:func:`build_report` turns a :class:`~repro.results.resultset.ResultSet`
into a grouped, aggregated, optionally baseline-normalized report in
three formats: a plain-text table (the CLI default), a Markdown pipe
table, and a JSON document (which carries the explicit
``schema_version`` — the artifact files themselves stay implicitly
version 1 for byte-compatibility).

The module only consumes the results API; it never touches simulation
code, so any saved artifact — resumed, streamed, years old — can be
analyzed without re-running anything.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.results.model import SCHEMA_VERSION, _nan_to_none
from repro.results.resultset import Aggregate, ResultSet
from repro.util.tables import format_table

#: The default report columns: the paper's headline metrics.
DEFAULT_METRICS = (
    "throughput", "latency", "e2e_latency", "preserved_bytes",
    "ft_network_bytes", "recoveries",
)

FORMATS = ("table", "json", "md")


def _markdown_table(headers: Sequence[str], rows: List[Sequence],
                    title: str = "") -> str:
    """GitHub-flavored pipe table."""
    lines = []
    if title:
        lines.extend([f"**{title}**", ""])
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _fmt_number(value: float) -> str:
    """Compact numeric cell; missing data prints as ``-``."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _fmt_cell(agg: Aggregate, relative: Optional[float], ci: bool) -> str:
    """One table cell: value, optional ±CI, optional (ratio)."""
    text = _fmt_number(agg.value)
    if ci and agg.ci_half is not None and not math.isnan(agg.ci_half):
        text += f" ±{_fmt_number(agg.ci_half)}"
    if relative is not None:
        text += (" (-)" if math.isnan(relative)
                 else f" ({relative:.2f}x)")
    return text


def _default_group_by(rs: ResultSet) -> str:
    """The axis a human most likely wants: the one that varies."""
    if len(rs.schemes) > 1:
        return "scheme"
    if len(rs.apps) > 1:
        return "app"
    if len(rs.seeds) > 1:
        return "seed"
    return "scheme"


def build_report(
    rs: ResultSet,
    group_by: Optional[Sequence[str]] = None,
    relative_to: Optional[Any] = None,
    metrics: Optional[Sequence[str]] = None,
    stat: str = "mean",
    ci: bool = False,
    fmt: str = "table",
) -> str:
    """Render one grouped/aggregated report over ``rs``.

    ``group_by`` is one or more case axes (default: whichever of
    scheme/app/seed actually varies); ``relative_to`` names the group
    whose aggregates normalize every metric (paper-style ratios,
    single-axis grouping only); ``metrics`` defaults to the paper's
    headline columns.  ``fmt`` is ``table`` (plain text), ``md``
    (Markdown), or ``json`` (machine-readable, schema-versioned).
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown format {fmt!r}; formats: {', '.join(FORMATS)}")
    if not len(rs):
        raise ValueError("result set is empty; nothing to report")
    axes: Tuple[str, ...] = (
        tuple(group_by) if group_by else (_default_group_by(rs),)
    )
    metric_list: Tuple[str, ...] = tuple(metrics) if metrics else DEFAULT_METRICS
    if relative_to is not None and len(axes) != 1:
        raise ValueError("--relative-to needs a single group-by axis")
    if axes[0] == "seed" and isinstance(relative_to, str):
        # CLI baselines arrive as strings; seed group keys are ints.
        try:
            relative_to = int(relative_to)
        except ValueError:
            pass  # let the group lookup raise, naming the known seeds

    groups = rs.group_by(*axes)
    aggs: Dict[Any, Dict[str, Aggregate]] = {
        key: {m: sub.aggregate(m, stat, ci=ci) for m in metric_list}
        for key, sub in groups.items()
    }
    rel: Optional[Dict[Any, Dict[str, float]]] = None
    if relative_to is not None:
        groups[relative_to]  # unknown baselines raise naming the groups
        base_values = {m: aggs[relative_to][m].value for m in metric_list}
        rel = {
            key: {
                m: (aggs[key][m].value / base_values[m]
                    if base_values[m] else float("nan"))
                for m in metric_list
            }
            for key in groups
        }

    if fmt == "json":
        doc = {
            "schema_version": SCHEMA_VERSION,
            "scenario": rs.scenario,
            "n_cases": len(rs),
            "group_by": list(axes),
            "stat": stat,
            "relative_to": relative_to,
            "groups": [
                {
                    "key": list(key) if isinstance(key, tuple) else key,
                    "n": len(groups[key]),
                    "metrics": {
                        m: {
                            "value": _nan_to_none(agg.value),
                            "n": agg.n,
                            **({"ci_half": _nan_to_none(agg.ci_half)}
                               if ci else {}),
                            **({"relative": _nan_to_none(rel[key][m])}
                               if rel is not None else {}),
                        }
                        for m, agg in aggs[key].items()
                    },
                }
                for key in groups
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    headers = ["/".join(axes), "n"] + list(metric_list)
    rows = []
    for key in groups:
        label = "/".join(str(v) for v in key) if isinstance(key, tuple) else str(key)
        cells = [label, str(len(groups[key]))]
        for m in metric_list:
            relative = rel[key][m] if rel is not None else None
            cells.append(_fmt_cell(aggs[key][m], relative, ci))
        rows.append(cells)
    title = f"{rs.scenario or 'results'} — {len(rs)} case(s), {stat} by " \
            f"{'/'.join(axes)}"
    if relative_to is not None:
        title += f", relative to {relative_to!r}"
    render = _markdown_table if fmt == "md" else format_table
    return render(headers, rows, title=title)
