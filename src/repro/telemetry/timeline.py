"""The timeline artifact: a schema-versioned sequence of QoS snapshots.

A :class:`Timeline` is to live telemetry what
:class:`repro.results.ResultSet` is to sweep rows: the typed,
loadable, queryable form of one case's sampled run.  Like the results
model, this module is pure data — it must stay loadable without
importing any simulation code — and like the artifact contract in
:mod:`repro.results.io`, serialization is canonical (sorted keys,
layout chosen by size) so serial, parallel, and resumed sweeps write
byte-identical timeline files.

Schema (version 1)::

    {
      "schema_version": 1,
      "kind": "qos-timeline",
      "scenario": ..., "app": ..., "scheme": ..., "seed": ...,
      "interval_s": 10.0,
      "snapshots": [
        {"time": ..., "events_processed": ...,
         "regions":   {"region0": {"throughput_tps": ..., ...}},
         "operators": {"region0.S": {"tuples": ..., ...}},
         "net":       {"wifi_bytes_per_s": ..., ...}},
        ...
      ]
    }

Loaders are strict: unknown keys and unsupported schema versions raise
``ValueError`` instead of silently dropping data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Version written by this code; loaders reject anything else.
TIMELINE_SCHEMA_VERSION = 1
#: Artifact discriminator (a sweep row file is not a timeline).
TIMELINE_KIND = "qos-timeline"
#: Timelines with at least this many snapshots serialize compactly.
COMPACT_SNAPSHOTS = 200


def _check_keys(data: Mapping[str, Any], required: Tuple[str, ...],
                optional: Tuple[str, ...], what: str) -> None:
    missing = [k for k in required if k not in data]
    unknown = [k for k in data if k not in required and k not in optional]
    if missing:
        raise ValueError(f"{what}: missing keys {sorted(missing)}")
    if unknown:
        raise ValueError(f"{what}: unknown keys {sorted(unknown)}")


def _dataclass_from_dict(cls, data: Mapping[str, Any], what: str):
    names = tuple(f.name for f in fields(cls))
    _check_keys(data, names, (), what)
    return cls(**data)


@dataclass(frozen=True)
class OperatorSample:
    """One operator's stats at one sampling instant."""

    #: Tuples completed by this operator since the run began.
    tuples: int
    #: Completion rate over the sampling window (tuples/s).
    rate_tps: float
    #: Input items queued on the operator's host node right now.
    queue_depth: int

    def to_dict(self) -> Dict[str, Any]:
        return {"tuples": self.tuples, "rate_tps": self.rate_tps,
                "queue_depth": self.queue_depth}


@dataclass(frozen=True)
class RegionSample:
    """One region's stats at one sampling instant."""

    #: Sink-output rate over the sampling window (tuples/s).
    throughput_tps: float
    #: Online latency quantiles over all sink outputs so far (None
    #: before the first output reaches a sink).
    latency_p50_s: Optional[float]
    latency_p95_s: Optional[float]
    latency_mean_s: Optional[float]
    #: Cumulative counts since the run began.
    sink_outputs: int
    source_inputs: int
    checkpoints_started: int
    checkpoints_committed: int
    recoveries: int
    crashes: int

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class NetSample:
    """Per-network transfer rates over the sampling window (bytes/s)."""

    wifi_bytes_per_s: float
    cellular_bytes_per_s: float
    ft_bytes_per_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class TelemetrySnapshot:
    """The whole system's QoS state at one virtual-time instant."""

    time: float
    #: Simulator kernel events processed so far (shares its name with
    #: ``MetricsReport.events_processed`` — see the namespace doc in
    #: :mod:`repro.telemetry`).
    events_processed: int
    regions: Dict[str, RegionSample] = field(default_factory=dict)
    operators: Dict[str, OperatorSample] = field(default_factory=dict)
    net: NetSample = field(
        default_factory=lambda: NetSample(0.0, 0.0, 0.0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "events_processed": self.events_processed,
            "regions": {k: v.to_dict() for k, v in self.regions.items()},
            "operators": {k: v.to_dict() for k, v in self.operators.items()},
            "net": self.net.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySnapshot":
        _check_keys(data, ("time", "events_processed", "regions",
                           "operators", "net"), (), "snapshot")
        return cls(
            time=data["time"],
            events_processed=data["events_processed"],
            regions={k: _dataclass_from_dict(RegionSample, v, f"region {k!r}")
                     for k, v in data["regions"].items()},
            operators={k: _dataclass_from_dict(OperatorSample, v,
                                               f"operator {k!r}")
                       for k, v in data["operators"].items()},
            net=_dataclass_from_dict(NetSample, data["net"], "net"),
        )


@dataclass(frozen=True)
class Timeline:
    """A full case timeline: identity plus the snapshot sequence."""

    scenario: str
    app: str
    scheme: str
    seed: int
    interval_s: float
    snapshots: Tuple[TelemetrySnapshot, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "snapshots", tuple(self.snapshots))

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)

    @property
    def final(self) -> Optional[TelemetrySnapshot]:
        """The last snapshot (None for an empty timeline)."""
        return self.snapshots[-1] if self.snapshots else None

    def region_names(self) -> List[str]:
        """Region names, cascade order (from the first snapshot)."""
        return list(self.snapshots[0].regions) if self.snapshots else []

    def operator_names(self) -> List[str]:
        """Operator keys (``region0.S``), stable graph order."""
        return list(self.snapshots[0].operators) if self.snapshots else []

    def series(self, metric: str, region: Optional[str] = None,
               operator: Optional[str] = None) -> List[Tuple[float, Any]]:
        """``(time, value)`` pairs of one metric across the timeline.

        Exactly one scope must be picked: ``region=`` reads a
        :class:`RegionSample` field, ``operator=`` an
        :class:`OperatorSample` field, and neither reads a snapshot-level
        field (``events_processed``, or a :class:`NetSample` field).
        """
        if region is not None and operator is not None:
            raise ValueError("pick region= or operator=, not both")
        out: List[Tuple[float, Any]] = []
        for snap in self.snapshots:
            if region is not None:
                sample = snap.regions.get(region)
                if sample is None:
                    known = ", ".join(snap.regions) or "<none>"
                    raise ValueError(
                        f"unknown region {region!r}; have: {known}")
                out.append((snap.time, getattr(sample, metric)))
            elif operator is not None:
                osample = snap.operators.get(operator)
                if osample is None:
                    known = ", ".join(snap.operators) or "<none>"
                    raise ValueError(
                        f"unknown operator {operator!r}; have: {known}")
                out.append((snap.time, getattr(osample, metric)))
            elif hasattr(snap.net, metric):
                out.append((snap.time, getattr(snap.net, metric)))
            else:
                out.append((snap.time, getattr(snap, metric)))
        return out

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict, the schema documented at module top."""
        return {
            "schema_version": TIMELINE_SCHEMA_VERSION,
            "kind": TIMELINE_KIND,
            "scenario": self.scenario,
            "app": self.app,
            "scheme": self.scheme,
            "seed": self.seed,
            "interval_s": self.interval_s,
            "snapshots": [s.to_dict() for s in self.snapshots],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Timeline":
        """Strict inverse of :meth:`to_dict` (version-checked)."""
        _check_keys(data, ("schema_version", "kind", "scenario", "app",
                           "scheme", "seed", "interval_s", "snapshots"),
                    (), "timeline")
        version = data["schema_version"]
        if version != TIMELINE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported timeline schema_version {version!r} "
                f"(this build reads version {TIMELINE_SCHEMA_VERSION})")
        if data["kind"] != TIMELINE_KIND:
            raise ValueError(
                f"not a timeline artifact (kind={data['kind']!r})")
        return cls(
            scenario=data["scenario"],
            app=data["app"],
            scheme=data["scheme"],
            seed=data["seed"],
            interval_s=data["interval_s"],
            snapshots=tuple(TelemetrySnapshot.from_dict(s)
                            for s in data["snapshots"]),
        )

    @classmethod
    def load(cls, path: str) -> "Timeline":
        """Load one timeline artifact file."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def dumps_timeline(timeline: Dict[str, Any],
                   compact: Optional[bool] = None) -> str:
    """Canonical timeline serialization (sorted keys, fixed layout) —
    the timeline twin of :func:`repro.results.io.dumps_artifact`.
    ``compact=None`` switches to separators-only JSON at
    :data:`COMPACT_SNAPSHOTS` snapshots."""
    if compact is None:
        compact = len(timeline.get("snapshots", ())) >= COMPACT_SNAPSHOTS
    if compact:
        return json.dumps(timeline, sort_keys=True, separators=(",", ":"))
    return json.dumps(timeline, sort_keys=True, indent=2)


def load_timeline(path: str) -> Timeline:
    """Module-level alias of :meth:`Timeline.load` (mirrors
    :func:`repro.results.io.load_artifact`)."""
    return Timeline.load(path)
