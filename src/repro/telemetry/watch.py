"""Rendering for ``python -m repro watch``: tables + ASCII sparklines.

Pure string building over :class:`~repro.telemetry.timeline.Timeline`
values — no simulator imports, no terminal control here beyond what the
caller asks for.  The CLI decides between live-updating (ANSI clear
between frames on a TTY) and append-only output (CI logs, pipes); both
use the same :func:`render_frame`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.telemetry.timeline import TelemetrySnapshot, Timeline
from repro.util.tables import format_table

#: Eight-level block ramp (empty slot for "no data yet").
SPARK_CHARS = "▁▂▃▄▅▆▇█"
#: ANSI: clear screen + home (the live-watch frame reset).
ANSI_CLEAR = "\x1b[H\x1b[2J"


def sparkline(values: Sequence[Optional[float]], width: int = 40) -> str:
    """Block-character sparkline of the last ``width`` values.

    ``None`` entries (metric not yet defined) render as spaces; all
    remaining values scale against the window maximum, so the line shows
    shape, not absolute magnitude.
    """
    tail = list(values)[-width:] if width > 0 else list(values)
    present = [v for v in tail if v is not None]
    if not present:
        return ""
    top = max(present)
    chars: List[str] = []
    for v in tail:
        if v is None:
            chars.append(" ")
        elif top <= 0:
            chars.append(SPARK_CHARS[0])
        else:
            idx = int(v / top * (len(SPARK_CHARS) - 1) + 0.5)
            chars.append(SPARK_CHARS[max(0, min(idx, len(SPARK_CHARS) - 1))])
    return "".join(chars)


def _fmt(value: Optional[float], spec: str = ".2f") -> str:
    return "-" if value is None else format(value, spec)


def render_frame(timeline: Timeline, upto: Optional[int] = None,
                 spark_width: int = 40) -> str:
    """One full watch frame over ``timeline.snapshots[:upto]``.

    Layout: a header line, per-region rows with a throughput sparkline
    over the visible history, then the per-operator table from the
    latest visible snapshot.
    """
    snaps = timeline.snapshots[:upto] if upto is not None else timeline.snapshots
    header = (f"qos timeline — scenario={timeline.scenario or '-'} "
              f"app={timeline.app or '-'} scheme={timeline.scheme or '-'} "
              f"seed={timeline.seed}")
    if not snaps:
        return header + "\n(no snapshots)"
    last = snaps[-1]
    lines = [
        header,
        f"t={last.time:.1f}s  snapshots={len(snaps)}  "
        f"interval={timeline.interval_s:g}s  "
        f"events_processed={last.events_processed}",
        "",
    ]

    region_rows = []
    for name, sample in last.regions.items():
        history = [s.regions[name].throughput_tps if name in s.regions
                   else None for s in snaps]
        region_rows.append([
            name,
            f"{sample.throughput_tps:.3f}",
            _fmt(sample.latency_p50_s),
            _fmt(sample.latency_p95_s),
            f"{sample.checkpoints_committed}/{sample.checkpoints_started}",
            f"{sample.recoveries}",
            f"{sample.sink_outputs}",
            sparkline(history, spark_width),
        ])
    lines.append(format_table(
        ["region", "throughput t/s", "p50 s", "p95 s", "ckpt c/s",
         "recov", "outputs", "history"],
        region_rows))
    lines.append("")

    op_rows = []
    for key, sample in last.operators.items():
        op_rows.append([
            key,
            f"{sample.tuples}",
            f"{sample.rate_tps:.3f}",
            f"{sample.queue_depth}",
        ])
    lines.append(format_table(
        ["operator", "tuples", "rate t/s", "queue"], op_rows))

    net = last.net
    lines.append("")
    lines.append(
        f"net: wifi {net.wifi_bytes_per_s:,.0f} B/s  "
        f"cellular {net.cellular_bytes_per_s:,.0f} B/s  "
        f"ft {net.ft_bytes_per_s:,.0f} B/s")
    return "\n".join(lines)


def render_progress_line(snapshot: TelemetrySnapshot) -> str:
    """One-line per-sample progress (append-only mode: pipes, CI logs)."""
    tput = sum(s.throughput_tps for s in snapshot.regions.values())
    queued = sum(s.queue_depth for s in snapshot.operators.values())
    return (f"[{snapshot.time:10.1f}s] throughput {tput:8.3f} t/s  "
            f"queued {queued:4d}  events {snapshot.events_processed}")


def replay_frames(timeline: Timeline, spark_width: int = 40):
    """Yield successive frames of a saved timeline (``--replay``)."""
    for i in range(1, len(timeline.snapshots) + 1):
        yield render_frame(timeline, upto=i, spark_width=spark_width)
