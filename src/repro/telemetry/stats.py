"""Incremental statistics for live QoS sampling.

Everything here is built to be *deterministic across processes*: the
sweep executor promises byte-identical artifacts at any ``--jobs``
level, and timeline artifacts ride that promise.  So there is no
randomized sketching and no data-dependent marker movement (the reason
we use fixed bins instead of the classic P² estimator, whose float
marker heights drift with arrival order in ways that are exact only on
one interleaving).  Counts are integers, rates are one division, and
quantiles come from a fixed logarithmic grid.
"""

from __future__ import annotations

import math
from typing import List, Optional


class RateTracker:
    """A cumulative count that yields windowed rates on demand.

    ``add`` accumulates on the hot path (one float add); ``sample``
    closes the current window and returns the delta-per-second since
    the previous ``sample`` call.
    """

    __slots__ = ("total", "_mark")

    def __init__(self) -> None:
        self.total = 0.0
        self._mark = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into the running total."""
        self.total += amount

    def set_total(self, total: float) -> None:
        """Adopt an externally-maintained cumulative total (counter
        mirroring: the hot path already increments a trace counter, so
        the sampler reads it instead of double-counting)."""
        self.total = total

    def sample(self, dt: float) -> float:
        """Rate over the window since the last sample (``delta / dt``)."""
        if dt <= 0:
            raise ValueError(f"window must be positive, got {dt}")
        delta = self.total - self._mark
        self._mark = self.total
        return delta / dt


class OnlineQuantile:
    """Fixed-bin online quantile estimator over a logarithmic grid.

    Observations land in log-spaced bins between ``lo`` and ``hi``
    (clamping beyond the edges); ``quantile(q)`` walks the cumulative
    counts to the nearest-rank bin and returns its geometric midpoint.
    The relative error is bounded by the bin ratio — about 3.7% at the
    default 64 bins per decade — which is plenty for a dashboard while
    costing O(1) memory and zero floating-point drift: the state is a
    vector of integer counts, so two processes that see the same values
    in the same order (or any order!) report the same quantiles.

    The exact mean/min/max are tracked alongside the grid.
    """

    __slots__ = ("lo", "hi", "bins_per_decade", "_nbins", "_counts",
                 "count", "_sum", "min", "max")

    def __init__(self, lo: float = 1e-3, hi: float = 1e4,
                 bins_per_decade: int = 64) -> None:
        if not 0 < lo < hi:
            raise ValueError("need 0 < lo < hi")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")
        self.lo = lo
        self.hi = hi
        self.bins_per_decade = bins_per_decade
        self._nbins = max(1, int(math.ceil(
            math.log10(hi / lo) * bins_per_decade)))
        self._counts: List[int] = [0] * self._nbins
        self.count = 0
        self._sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self._sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= self.lo:
            idx = 0
        else:
            idx = int(math.log10(value / self.lo) * self.bins_per_decade)
            if idx >= self._nbins:
                idx = self._nbins - 1
        self._counts[idx] += 1

    @property
    def mean(self) -> Optional[float]:
        """Exact running mean (None before any observation)."""
        return self._sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile estimate (None before any observation)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        rank = int(math.ceil(q * self.count))
        seen = 0
        for idx, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                # Geometric midpoint of the bin, clamped by the exact
                # extremes so tiny samples don't report impossible values.
                mid = self.lo * 10.0 ** ((idx + 0.5) / self.bins_per_decade)
                if self.min is not None:
                    mid = max(mid, self.min)
                if self.max is not None:
                    mid = min(mid, self.max)
                return mid
        return self.max  # pragma: no cover - unreachable (counts sum = count)
