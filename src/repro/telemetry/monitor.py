"""The streaming QoS monitor: live per-operator/per-region stats.

:class:`QoSMonitor` watches a running :class:`~repro.core.system.
MobiStreamsSystem` through three read-only taps:

* a **trace observer** (:meth:`repro.sim.monitor.Trace.add_observer`)
  for discrete QoS events — sink outputs (latency), checkpoint round
  start/commit, recoveries, crashes;
* a **node hook** (``region.telemetry``) on the operator runtime's
  tuple-completion path for per-operator throughput;
* a **periodic sampler** (:meth:`repro.sim.core.Simulator.call_every`)
  that every ``interval_s`` of *virtual* time closes the window: it
  reads the hot counters (``net.*.bytes``, ``ft.network_bytes``,
  per-region ``sink_outputs``/``source_inputs``), polls queue depths,
  and freezes everything into a
  :class:`~repro.telemetry.timeline.TelemetrySnapshot`.

Determinism contract: the monitor *observes only*.  It draws no random
numbers, mutates no simulation state, and its sampling events schedule
nothing but the next sample — so enabling telemetry cannot change a
case's metrics row, and two processes running the same case produce
byte-identical timelines.  When telemetry is off, the hot paths pay one
``is None``/empty-list check and nothing else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry.stats import OnlineQuantile, RateTracker
from repro.telemetry.timeline import (
    NetSample,
    OperatorSample,
    RegionSample,
    TelemetrySnapshot,
    Timeline,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.region import Region
    from repro.sim.core import Simulator
    from repro.sim.monitor import Trace, TraceRecord


class _OpStats:
    """Hot-path accumulator for one (region, operator) pair."""

    __slots__ = ("tuples", "rate")

    def __init__(self) -> None:
        self.tuples = 0
        self.rate = RateTracker()


class _RegionStats:
    """Observer-fed accumulator for one region."""

    __slots__ = ("latency", "throughput", "checkpoints_started",
                 "checkpoints_committed", "recoveries", "crashes")

    def __init__(self) -> None:
        self.latency = OnlineQuantile()
        self.throughput = RateTracker()
        self.checkpoints_started = 0
        self.checkpoints_committed = 0
        self.recoveries = 0
        self.crashes = 0


#: Trace counters sampled into :class:`NetSample` rates.
_NET_COUNTERS = ("net.wifi.bytes", "net.cellular.bytes", "ft.network_bytes")


class QoSMonitor:
    """Streaming QoS telemetry over one live system.

    Wiring order (what :func:`repro.scenarios.runner.run_case` does)::

        monitor = QoSMonitor(system.sim, system.trace, interval_s=10.0,
                             meta={"scenario": ..., "app": ..., ...})
        system.attach_telemetry(monitor)   # hooks regions + nodes
        monitor.start()                    # trace observer + sampler
        system.run(duration)
        monitor.finish()                   # final snapshot, detach
        timeline = monitor.timeline()
    """

    def __init__(
        self,
        sim: "Simulator",
        trace: "Trace",
        interval_s: float = 10.0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.trace = trace
        self.interval_s = interval_s
        self.meta = dict(meta or {})
        self.snapshots: List[TelemetrySnapshot] = []

        self._regions: List["Region"] = []
        self._region_stats: Dict[str, _RegionStats] = {}
        #: (region name, op name) -> stats, in watch order (region
        #: cascade order, then graph operator order) — the order every
        #: snapshot's ``operators`` mapping preserves.
        self._op_stats: Dict[Tuple[str, str], _OpStats] = {}
        self._net_rates = {name: RateTracker() for name in _NET_COUNTERS}
        self._on_snapshot: List[Callable[[TelemetrySnapshot], None]] = []
        self._handlers = {
            "sink_output": self._on_sink_output,
            "checkpoint_requested": self._on_checkpoint_requested,
            "checkpoint_complete": self._on_checkpoint_complete,
            "recovery_finished": self._on_recovery_finished,
            "phone_crashed": self._on_phone_crashed,
        }
        self._started = False
        self._finished = False
        self._cancel_sampler: Optional[Callable[[], None]] = None
        self._last_sample_time: Optional[float] = None

    # -- wiring --------------------------------------------------------------
    def watch_region(self, region: "Region") -> None:
        """Hook one region: node runtimes start reporting completions
        and every operator in its graph gets a stats row (operators
        that never process a tuple still show up, at zero)."""
        if region.name in self._region_stats:
            raise ValueError(f"already watching region {region.name!r}")
        region.telemetry = self
        self._regions.append(region)
        self._region_stats[region.name] = _RegionStats()
        for op_name in region.graph.names():
            self._op_stats[(region.name, op_name)] = _OpStats()

    def add_callback(self, fn: Callable[[TelemetrySnapshot], None]) -> None:
        """Call ``fn(snapshot)`` after every sample (live watch feeds)."""
        self._on_snapshot.append(fn)

    def start(self) -> None:
        """Attach the trace observer and arm the virtual-time sampler."""
        if self._started:
            raise RuntimeError("monitor already started")
        self._started = True
        self._last_sample_time = self.sim.now
        # Mid-run samples need a current kernel-event count; the default
        # run loop batch-flushes it only at exit.
        self.sim.count_inline = True
        # Category-scoped: per-tuple categories (source ingests, sink
        # discards) never reach this observer at all.
        self.trace.add_observer(self.observe, categories=self._handlers)
        self._cancel_sampler = self.sim.call_every(self.interval_s, self._tick)

    def finish(self) -> None:
        """Close the run: final partial-window snapshot, detach all taps.

        ``Simulator.run(until=...)`` stops *at* the deadline before a
        sample scheduled for that exact instant fires, so the tail
        window is sampled here (idempotent; no-op on an empty window).
        """
        if self._finished:
            return
        self._finished = True
        if self._started:
            if self.sim.now > (self._last_sample_time or 0.0):
                self._tick()
            if self._cancel_sampler is not None:
                self._cancel_sampler()
            self.trace.remove_observer(self.observe)
            self.sim.count_inline = False
        for region in self._regions:
            region.telemetry = None

    # -- hot-path taps -------------------------------------------------------
    def tuple_complete(self, region_name: str, op_name: str, n_out: int) -> None:
        """Operator runtime hook: one tuple finished processing.

        Called from :meth:`NodeRuntime._process_chain` for every tuple,
        so this stays two dict ops and two adds.  ``n_out`` (emitted
        tuples) is accepted for forward compatibility but not yet
        aggregated separately from completions.
        """
        st = self._op_stats.get((region_name, op_name))
        if st is None:
            # An operator outside the watched graphs (defensive; recovery
            # rebuilds reuse graph names, so this should never fire).
            st = self._op_stats[(region_name, op_name)] = _OpStats()
        st.tuples += 1
        st.rate.add(1.0)

    def observe(self, rec: "TraceRecord") -> None:
        """Trace observer: route QoS-relevant records to accumulators."""
        handler = self._handlers.get(rec.category)
        if handler is not None:
            handler(rec.data)

    def _region(self, data: Dict[str, Any]) -> Optional[_RegionStats]:
        return self._region_stats.get(data.get("region"))

    def _on_sink_output(self, data: Dict[str, Any]) -> None:
        st = self._region(data)
        if st is not None:
            st.latency.add(data["latency"])

    def _on_checkpoint_requested(self, data: Dict[str, Any]) -> None:
        st = self._region(data)
        if st is not None:
            st.checkpoints_started += 1

    def _on_checkpoint_complete(self, data: Dict[str, Any]) -> None:
        st = self._region(data)
        if st is not None:
            st.checkpoints_committed += 1

    def _on_recovery_finished(self, data: Dict[str, Any]) -> None:
        st = self._region(data)
        if st is not None:
            st.recoveries += 1

    def _on_phone_crashed(self, data: Dict[str, Any]) -> None:
        st = self._region(data)
        if st is not None:
            st.crashes += 1

    # -- sampling ------------------------------------------------------------
    def _tick(self) -> None:
        snapshot = self._sample()
        self.snapshots.append(snapshot)
        for fn in self._on_snapshot:
            fn(snapshot)

    def _sample(self) -> TelemetrySnapshot:
        now = self.sim.now
        dt = now - (self._last_sample_time or 0.0)
        if dt <= 0:
            dt = self.interval_s
        self._last_sample_time = now

        trace_value = self.trace.value
        regions: Dict[str, RegionSample] = {}
        for region in self._regions:
            name = region.name
            st = self._region_stats[name]
            sink_outputs = trace_value(f"{name}.sink_outputs")
            st.throughput.set_total(sink_outputs)
            regions[name] = RegionSample(
                throughput_tps=st.throughput.sample(dt),
                latency_p50_s=st.latency.quantile(0.5),
                latency_p95_s=st.latency.quantile(0.95),
                latency_mean_s=st.latency.mean,
                sink_outputs=int(sink_outputs),
                source_inputs=int(trace_value(f"{name}.source_inputs")),
                checkpoints_started=st.checkpoints_started,
                checkpoints_committed=st.checkpoints_committed,
                recoveries=st.recoveries,
                crashes=st.crashes,
            )

        operators: Dict[str, OperatorSample] = {}
        region_by_name = {r.name: r for r in self._regions}
        for (region_name, op_name), st in self._op_stats.items():
            region = region_by_name.get(region_name)
            depth = 0
            if region is not None and op_name in region.graph:
                node = region.nodes.get(region.placement.node_for(op_name, 0))
                if node is not None and node.alive:
                    depth = node.queued_items()
            operators[f"{region_name}.{op_name}"] = OperatorSample(
                tuples=st.tuples,
                rate_tps=st.rate.sample(dt),
                queue_depth=depth,
            )

        wifi, cellular, ft = (
            self._net_rates[name] for name in _NET_COUNTERS)
        for name, tracker in self._net_rates.items():
            tracker.set_total(trace_value(name))
        return TelemetrySnapshot(
            time=now,
            events_processed=self.sim.events_processed,
            regions=regions,
            operators=operators,
            net=NetSample(
                wifi_bytes_per_s=wifi.sample(dt),
                cellular_bytes_per_s=cellular.sample(dt),
                ft_bytes_per_s=ft.sample(dt),
            ),
        )

    # -- results -------------------------------------------------------------
    def timeline(self) -> Timeline:
        """The run's snapshots as a :class:`Timeline` artifact value."""
        return Timeline(
            scenario=str(self.meta.get("scenario", "")),
            app=str(self.meta.get("app", "")),
            scheme=str(self.meta.get("scheme", "")),
            seed=int(self.meta.get("seed", 0)),
            interval_s=self.interval_s,
            snapshots=tuple(self.snapshots),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<QoSMonitor regions={len(self._regions)} "
                f"snapshots={len(self.snapshots)} every={self.interval_s}s>")
