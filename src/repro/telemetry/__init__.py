"""Live QoS telemetry: streaming per-operator metrics and timelines.

The paper's argument is about behavior *during* a run — throughput dips
at checkpoint rounds, recovery stalls after burst failures — and this
package is the layer that can see it happen: a
:class:`~repro.telemetry.monitor.QoSMonitor` hooks the sim kernel and
the operator runtime, maintains incremental windowed stats, and samples
them on a virtual-time interval into a schema-versioned
:class:`~repro.telemetry.timeline.Timeline` artifact that
``python -m repro watch`` renders live or from disk.  It is also the
substrate the ROADMAP's adaptive controllers (dynamic EdgeML split
selection, adaptive checkpoint intervals) will read from.

The metric namespace
--------------------
Post-hoc (:class:`~repro.core.metrics.MetricsReport`) and live
(:class:`~repro.telemetry.timeline.TelemetrySnapshot`) views share one
vocabulary; a name means the same thing wherever it appears.

======================  ================================================
name                    meaning
======================  ================================================
``events_processed``    simulator kernel events executed so far
                        (``Simulator.events_processed``; cumulative)
``throughput_tps``      sink outputs per second — windowed (since the
                        last sample) in snapshots, steady-state (post
                        warm-up) in reports
``latency_*_s``         sink-output end-to-end latency seconds: ``p50``/
                        ``p95``/``mean``; online fixed-bin estimates in
                        snapshots (:class:`~repro.telemetry.stats.
                        OnlineQuantile`), exact in reports
``queue_depth``         items waiting in a node's input channels *now*
``sink_outputs``        cumulative published results per region
                        (counter ``{region}.sink_outputs``)
``source_inputs``       cumulative sensor tuples ingested per region
                        (counter ``{region}.source_inputs``)
``checkpoints_*``       checkpoint rounds ``started`` (trace category
                        ``checkpoint_requested``) / ``committed``
                        (``checkpoint_complete``)
``recoveries``          finished recovery rounds (``recovery_finished``)
``crashes``             phone crashes observed (``phone_crashed``)
``*_bytes_per_s``       windowed transfer rates from the hot counters
                        ``net.wifi.bytes`` / ``net.cellular.bytes`` /
                        ``ft.network_bytes``
======================  ================================================

``MetricsReport.counters`` exposes the raw counter values under exactly
these counter names, so a live dashboard and a post-hoc report can be
diffed metric by metric.  None of this ever reaches a sweep artifact
row: rows keep the strict :mod:`repro.results.model` schema, and
timelines are a separate schema-versioned artifact.
"""

from repro.telemetry.monitor import QoSMonitor
from repro.telemetry.stats import OnlineQuantile, RateTracker
from repro.telemetry.timeline import (
    TIMELINE_SCHEMA_VERSION,
    NetSample,
    OperatorSample,
    RegionSample,
    TelemetrySnapshot,
    Timeline,
    dumps_timeline,
    load_timeline,
)
from repro.telemetry.watch import render_frame, render_progress_line, sparkline

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "NetSample",
    "OnlineQuantile",
    "OperatorSample",
    "QoSMonitor",
    "RateTracker",
    "RegionSample",
    "TelemetrySnapshot",
    "Timeline",
    "dumps_timeline",
    "load_timeline",
    "render_frame",
    "render_progress_line",
    "sparkline",
]
