"""Data-center Ethernet: the server-DSPS interconnect of Fig. 1(c).

Servers in the baseline deployment talk over a high-bandwidth, lossless
switch.  We model each server's NIC as a max-min fair share of the switch
fabric; at data-center rates the network never bottlenecks the baseline —
exactly the paper's premise (the *cellular uplink* is the bottleneck).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.net.fairshare import FairSharePipe
from repro.net.packet import Message
from repro.util.units import Mbps

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.monitor import Trace

DeliverFn = Callable[[Message], None]


class EthernetSwitch:
    """A non-blocking switch with per-port rate caps."""

    def __init__(
        self,
        sim: "Simulator",
        port_bps: float = Mbps(1000.0),
        fabric_bps: float = Mbps(16000.0),
        latency_s: float = 0.0002,
        trace: Optional["Trace"] = None,
    ) -> None:
        if port_bps <= 0 or fabric_bps <= 0:
            raise ValueError("rates must be positive")
        self.sim = sim
        self.port_bps = port_bps
        self.latency_s = latency_s
        self.trace = trace
        self.fabric = FairSharePipe(sim, fabric_bps)
        self._ports: Dict[Any, DeliverFn] = {}

    def attach(self, endpoint_id: Any, deliver: DeliverFn) -> None:
        """Plug a server into the switch."""
        self._ports[endpoint_id] = deliver

    def detach(self, endpoint_id: Any) -> None:
        """Unplug a server."""
        self._ports.pop(endpoint_id, None)

    def send(self, msg: Message):
        """Process: reliable delivery through the fabric."""
        if msg.dst not in self._ports:
            raise KeyError(f"unknown Ethernet endpoint {msg.dst!r}")
        yield self.fabric.transfer(msg.size, cap_bps=self.port_bps)
        yield self.sim.timeout(self.latency_s)
        if self.trace is not None:
            self.trace.count("net.ethernet.bytes", msg.size)
        deliver = self._ports.get(msg.dst)
        if deliver is not None:
            msg.created_at = self.sim.now
            deliver(msg)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EthernetSwitch ports={len(self._ports)}>"
