"""Cellular (3G) network: slow shared uplink, faster shared downlink.

Used for (Section III):

* phone ↔ controller control traffic (registration, pings, failure reports),
* inter-region tuple forwarding (sink of region i → source of region i+1),
* *urgent mode* tuple transport when WiFi links break (Section III-E),
* state transfer of a departing phone to its replacement.

The model: one uplink pipe and one downlink pipe shared by all phones
(max-min fair processor sharing, :class:`~repro.net.fairshare.FairSharePipe`),
with per-phone link-rate caps drawn from the paper's measured bands
(uplink 0.016∼0.32 Mbps, downlink 0.35∼1.14 Mbps).  A transfer from phone
A to phone B crosses uplink then downlink; endpoints that are not phones
(controller, data-center servers) sit behind the tower and only cross one
side.

This single shared-capacity abstraction yields both headline effects:
Table I's server-DSPS collapse (every camera image crosses the skinny
uplink) and Fig. 9's departure contention (n simultaneous state transfers
share the uplink).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.net.fairshare import FairSharePipe
from repro.net.packet import Message
from repro.util.units import Mbps

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.monitor import Trace
    from repro.sim.rng import RngRegistry

DeliverFn = Callable[[Message], None]


class UnknownEndpoint(Exception):
    """Raised when sending to an id never registered with the network."""


@dataclass
class CellularConfig:
    """Cellular parameters (defaults from Section IV's measurements)."""

    #: Per-phone uplink rate band (bits/s). Paper: 0.016∼0.32 Mbps.
    uplink_phone_bps: Tuple[float, float] = (Mbps(0.016), Mbps(0.32))
    #: Per-phone downlink rate band (bits/s). Paper: 0.35∼1.14 Mbps.
    downlink_phone_bps: Tuple[float, float] = (Mbps(0.35), Mbps(1.14))
    #: Aggregate tower capacity per direction (bits/s).
    uplink_capacity_bps: float = Mbps(1.5)
    downlink_capacity_bps: float = Mbps(6.0)
    #: One-way latency (3G RTTs are long).
    latency_s: float = 0.08
    #: Per-message header overhead.
    header_bytes: int = 40

    def __post_init__(self) -> None:
        if self.uplink_capacity_bps <= 0 or self.downlink_capacity_bps <= 0:
            raise ValueError("capacities must be positive")
        for lo, hi in (self.uplink_phone_bps, self.downlink_phone_bps):
            if not 0 < lo <= hi:
                raise ValueError("phone rate bands must satisfy 0 < lo <= hi")


class CellularNetwork:
    """The cellular substrate shared by every phone and the controller."""

    def __init__(
        self,
        sim: "Simulator",
        rng: "RngRegistry",
        config: Optional[CellularConfig] = None,
        trace: Optional["Trace"] = None,
    ) -> None:
        self.sim = sim
        self.config = config or CellularConfig()
        self.trace = trace
        self.uplink = FairSharePipe(sim, self.config.uplink_capacity_bps)
        self.downlink = FairSharePipe(sim, self.config.downlink_capacity_bps)
        self._endpoints: Dict[Any, DeliverFn] = {}
        self._is_phone: Dict[Any, bool] = {}
        self._phone_rates: Dict[Any, Tuple[float, float]] = {}
        self._rng = rng.stream("cellular.rates")

    # -- registration ------------------------------------------------------
    def register_phone(self, phone_id: Any, deliver: DeliverFn) -> None:
        """Attach a phone; its link rates are drawn from the config bands."""
        self._endpoints[phone_id] = deliver
        self._is_phone[phone_id] = True
        if phone_id not in self._phone_rates:
            up_lo, up_hi = self.config.uplink_phone_bps
            dn_lo, dn_hi = self.config.downlink_phone_bps
            self._phone_rates[phone_id] = (
                float(self._rng.uniform(up_lo, up_hi)),
                float(self._rng.uniform(dn_lo, dn_hi)),
            )

    def register_wired(self, endpoint_id: Any, deliver: DeliverFn) -> None:
        """Attach a wired endpoint (controller, data-center ingress)."""
        self._endpoints[endpoint_id] = deliver
        self._is_phone[endpoint_id] = False

    def unregister(self, endpoint_id: Any) -> None:
        """Detach an endpoint (failed/departed phone)."""
        self._endpoints.pop(endpoint_id, None)

    def is_registered(self, endpoint_id: Any) -> bool:
        """Whether the endpoint can currently receive."""
        return endpoint_id in self._endpoints

    def phone_rates(self, phone_id: Any) -> Tuple[float, float]:
        """(uplink_bps, downlink_bps) caps assigned to a phone."""
        return self._phone_rates[phone_id]

    def set_phone_rates(self, phone_id: Any, uplink_bps: float, downlink_bps: float) -> None:
        """Override a phone's link caps (used to pin experiment configs)."""
        if uplink_bps <= 0 or downlink_bps <= 0:
            raise ValueError("rates must be positive")
        self._phone_rates[phone_id] = (float(uplink_bps), float(downlink_bps))

    # -- transport ----------------------------------------------------------
    def send(self, msg: Message):
        """Process: reliably deliver ``msg.src`` → ``msg.dst``.

        Crosses the uplink when the source is a phone, the downlink when
        the destination is a phone; either leg is skipped for wired
        endpoints.  Raises :class:`UnknownEndpoint` for unknown ids (a
        failed phone is unknown: the 3G radio is dead).
        """
        if msg.src not in self._endpoints:
            raise UnknownEndpoint(f"source {msg.src} is not attached")
        if msg.dst not in self._endpoints:
            raise UnknownEndpoint(f"destination {msg.dst} is not attached")
        size = msg.size + self.config.header_bytes

        if self._is_phone.get(msg.src, False):
            up_cap = self._phone_rates[msg.src][0]
            yield self.uplink.transfer(size, cap_bps=up_cap)
        if self._is_phone.get(msg.dst, False):
            dn_cap = self._phone_rates[msg.dst][1]
            yield self.downlink.transfer(size, cap_bps=dn_cap)
        yield self.sim.timeout(self.config.latency_s)

        if self.trace is not None:
            self.trace.count("net.cellular.bytes", size)
        deliver = self._endpoints.get(msg.dst)
        if deliver is None:
            # Receiver disappeared mid-transfer: message is lost, but the
            # bandwidth was spent.
            return False
        msg.created_at = self.sim.now
        deliver(msg)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CellularNetwork endpoints={len(self._endpoints)}>"
