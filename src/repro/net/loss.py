"""Packet-loss models for the wireless channels.

Loss is sampled *per receiver per datagram*: a broadcast is one
transmission, but each receiver independently may or may not hear it.
Models return vectorized numpy boolean arrays (True = received) so that an
8192-block broadcast round costs one RNG call per receiver, not 8192.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class LossModel(ABC):
    """Samples which of ``n`` consecutive datagrams a receiver hears."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean array of length ``n``; True = datagram received."""

    def sample_one(self, rng: np.random.Generator) -> bool:
        """Convenience: fate of a single datagram."""
        return bool(self.sample(1, rng)[0])


class NoLoss(LossModel):
    """Perfect channel (used for Ethernet and unit tests)."""

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be >= 0")
        return np.ones(n, dtype=bool)

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """I.i.d. loss: each datagram independently lost with probability ``p``."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0,1], got {p}")
        self.p = p

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be >= 0")
        return rng.random(n) >= self.p

    def __repr__(self) -> str:
        return f"BernoulliLoss(p={self.p})"


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (Gilbert-Elliott).

    The channel alternates between a *good* state (loss ``p_good``) and a
    *bad* state (loss ``p_bad``), with geometric sojourn times.  Real
    ad-hoc WiFi exhibits exactly this burstiness; the broadcast protocol's
    bitmap rounds must survive correlated losses (Fig. 6's node C misses an
    entire round).

    Parameters
    ----------
    p_good, p_bad:
        Per-datagram loss probability in each state.
    p_g2b, p_b2g:
        Per-datagram transition probabilities good->bad and bad->good.
    """

    def __init__(
        self,
        p_good: float = 0.01,
        p_bad: float = 0.6,
        p_g2b: float = 0.02,
        p_b2g: float = 0.2,
    ) -> None:
        for name, v in (
            ("p_good", p_good),
            ("p_bad", p_bad),
            ("p_g2b", p_g2b),
            ("p_b2g", p_b2g),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")
        self.p_good = p_good
        self.p_bad = p_bad
        self.p_g2b = p_g2b
        self.p_b2g = p_b2g
        self._in_bad = False

    @classmethod
    def from_mean(cls, mean_loss: float, mean_burst: float,
                  p_bad: float = 0.9) -> "GilbertElliottLoss":
        """A channel with a given steady-state loss and burst length.

        ``mean_burst`` is the expected bad-state sojourn in datagrams
        (geometric, so ``p_b2g = 1/mean_burst``); ``p_g2b`` is solved so
        that the steady-state loss equals ``mean_loss`` with lossless
        good states.  ``mean_burst = 1`` approximates i.i.d. loss.
        """
        if not 0.0 < mean_loss < p_bad:
            raise ValueError(f"mean_loss must be in (0, {p_bad})")
        if mean_burst < 1.0:
            raise ValueError("mean_burst must be >= 1 datagram")
        pi_bad = mean_loss / p_bad  # steady-state bad fraction
        p_b2g = 1.0 / mean_burst
        p_g2b = pi_bad * p_b2g / (1.0 - pi_bad)
        return cls(p_good=0.0, p_bad=p_bad, p_g2b=min(1.0, p_g2b), p_b2g=p_b2g)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be >= 0")
        if n == 0:
            return np.zeros(0, dtype=bool)
        # Vectorized two-state walk: draw transition and loss uniforms in
        # bulk, then scan states (the scan is a cheap Python loop over a
        # pre-drawn array; state dependency prevents full vectorization).
        trans_u = rng.random(n)
        loss_u = rng.random(n)
        received = np.empty(n, dtype=bool)
        bad = self._in_bad
        p_g2b, p_b2g = self.p_g2b, self.p_b2g
        p_good, p_bad = self.p_good, self.p_bad
        for i in range(n):
            if bad:
                if trans_u[i] < p_b2g:
                    bad = False
            else:
                if trans_u[i] < p_g2b:
                    bad = True
            received[i] = loss_u[i] >= (p_bad if bad else p_good)
        self._in_bad = bad
        return received

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss rate implied by the chain."""
        pi_bad = self.p_g2b / (self.p_g2b + self.p_b2g)
        return pi_bad * self.p_bad + (1 - pi_bad) * self.p_good

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_good={self.p_good}, p_bad={self.p_bad}, "
            f"p_g2b={self.p_g2b}, p_b2g={self.p_b2g})"
        )
