"""Max-min fair bandwidth sharing (processor-sharing pipe).

Models a shared capacity (the 3G cell tower, or a server NIC) divided
among concurrent flows.  Each flow may also be individually capped (a
phone's own radio rate).  Allocation is classic water-filling max-min
fairness; the pipe recomputes rates whenever a flow starts or finishes.

This is the mechanism behind Fig. 9's observation that *many simultaneous
departures* degrade MobiStreams: every departing phone's state transfer
shares the same cellular uplink, so per-flow rate collapses as n grows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


def max_min_fair_rates(capacity: float, caps: Sequence[float]) -> np.ndarray:
    """Water-filling allocation of ``capacity`` among flows with ``caps``.

    Every flow receives ``min(cap_i, fair_share)`` where the fair share is
    raised until the capacity is exhausted or every flow is capped.

    Returns an array of per-flow rates summing to
    ``min(capacity, sum(caps))``.
    """
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    caps_arr = np.asarray(caps, dtype=float)
    if caps_arr.size == 0:
        return caps_arr.copy()
    if np.any(caps_arr < 0):
        raise ValueError("flow caps must be >= 0")

    order = np.argsort(caps_arr)
    rates = np.empty_like(caps_arr)
    remaining = float(capacity)
    n_left = caps_arr.size
    for idx in order:
        share = remaining / n_left
        give = min(caps_arr[idx], share)
        rates[idx] = give
        remaining -= give
        n_left -= 1
    return rates


class _Flow:
    """Internal: one in-flight transfer through a :class:`FairSharePipe`."""

    __slots__ = ("flow_id", "remaining", "cap", "rate", "event")

    def __init__(self, flow_id: int, size: float, cap: float, event: Event) -> None:
        self.flow_id = flow_id
        self.remaining = float(size)
        self.cap = cap
        self.rate = 0.0
        self.event = event


class FairSharePipe:
    """Shared-capacity pipe with max-min fair processor sharing.

    Usage::

        pipe = FairSharePipe(sim, capacity_bps=Mbps(0.32))
        done = pipe.transfer(size_bytes=2 * MB, cap_bps=Mbps(0.1))
        yield done   # fires when the transfer completes

    Completion times are exact under piecewise-constant rates: whenever the
    flow set changes, progress is accrued and rates recomputed.
    """

    def __init__(self, sim: "Simulator", capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity_bps = capacity_bps
        self._flows: Dict[int, _Flow] = {}
        self._next_id = 0
        self._last_update = sim.now
        self._timer_epoch = 0  # invalidates stale completion timers

    # -- public ----------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    def transfer(self, size_bytes: float, cap_bps: Optional[float] = None) -> Event:
        """Start a transfer; returns the event fired at completion.

        Parameters
        ----------
        size_bytes:
            Transfer size. Zero-byte transfers complete immediately.
        cap_bps:
            Optional per-flow rate cap (e.g. a phone's own link rate).
        """
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        ev = Event(self.sim)
        if size_bytes == 0:
            ev.succeed()
            return ev
        cap = cap_bps if cap_bps is not None else float("inf")
        if cap <= 0:
            raise ValueError("cap must be positive")
        self._accrue()
        flow = _Flow(self._next_id, size_bytes * 8.0, cap, ev)
        self._next_id += 1
        self._flows[flow.flow_id] = flow
        self._reallocate()
        return ev

    def current_rate(self, capacity_check: bool = True) -> float:
        """Aggregate bits/s currently flowing (diagnostics)."""
        total = sum(f.rate for f in self._flows.values())
        if capacity_check:
            assert total <= self.capacity_bps * (1 + 1e-9)
        return total

    # -- engine ----------------------------------------------------------
    def _accrue(self) -> None:
        """Advance every flow by the time elapsed since the last update."""
        dt = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if dt <= 0:
            return
        finished: List[_Flow] = []
        for flow in self._flows.values():
            flow.remaining -= flow.rate * dt
            # Anything under half a bit is float residue: the timer fired at
            # the flow's nominal completion time, so declare it done (a
            # stricter tolerance can stall the clock once the residual
            # horizon drops below the ulp of `now`).
            if flow.remaining <= 0.5:
                finished.append(flow)
        for flow in finished:
            del self._flows[flow.flow_id]
            flow.event.succeed()

    def _reallocate(self) -> None:
        """Recompute rates and arm a timer for the earliest completion."""
        self._timer_epoch += 1
        if not self._flows:
            return
        flows = list(self._flows.values())
        rates = max_min_fair_rates(self.capacity_bps, [f.cap for f in flows])
        for flow, rate in zip(flows, rates):
            flow.rate = float(rate)
        # Earliest completion under the new rates.
        horizon = min(
            (f.remaining / f.rate for f in flows if f.rate > 0),
            default=None,
        )
        if horizon is None:  # all rates zero: starved (capacity exhausted?)
            return
        epoch = self._timer_epoch
        self.sim.call_in(horizon, lambda: self._on_timer(epoch))

    def _on_timer(self, epoch: int) -> None:
        if epoch != self._timer_epoch:
            return  # superseded by a newer reallocation
        self._accrue()
        self._reallocate()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FairSharePipe cap={self.capacity_bps:.0f}bps "
            f"flows={len(self._flows)}>"
        )
