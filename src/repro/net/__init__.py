"""Network substrate: ad-hoc WiFi, cellular, and data-center Ethernet.

The paper's protocols live or die on three network properties, all modelled
here:

* **Ad-hoc WiFi is a shared, half-duplex broadcast medium** — one
  transmission at a time per region, but a single transmission reaches
  every phone in range.  This is why MobiStreams' UDP *broadcast*
  checkpointing beats dist-n's *unicast* copies
  (:class:`~repro.net.wifi.WifiCell`).
* **UDP datagrams are lost independently per receiver** with rates that can
  be bursty (:mod:`repro.net.loss`).
* **The cellular uplink is slow and shared** — the server-DSPS bottleneck
  of Table I and the departure-contention effect of Fig. 9
  (:class:`~repro.net.cellular.CellularNetwork`,
  :class:`~repro.net.fairshare.FairSharePipe`).
"""

from repro.net.cellular import CellularConfig, CellularNetwork
from repro.net.ethernet import EthernetSwitch
from repro.net.fairshare import FairSharePipe, max_min_fair_rates
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.packet import Message, fragment_count
from repro.net.topology import Position, RegionArea, distance, in_range
from repro.net.wifi import BroadcastRoundResult, WifiCell, WifiConfig

__all__ = [
    "BernoulliLoss",
    "BroadcastRoundResult",
    "CellularConfig",
    "CellularNetwork",
    "EthernetSwitch",
    "FairSharePipe",
    "GilbertElliottLoss",
    "LossModel",
    "Message",
    "NoLoss",
    "Position",
    "RegionArea",
    "WifiCell",
    "WifiConfig",
    "distance",
    "fragment_count",
    "in_range",
    "max_min_fair_rates",
]
