"""Message and fragmentation model.

All traffic — data tuples, tokens, checkpoint blocks, bitmaps, control
messages — is represented by :class:`Message`.  Only the *size* of a
message affects timing; the ``payload`` rides along for protocol logic.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Optional

_msg_ids = itertools.count()

#: Conventional maximum UDP datagram the paper uses for checkpoint blocks.
UDP_BLOCK_SIZE = 1024

#: Typical link-layer MTU; messages above this fragment (and a fragment
#: loss drops the whole datagram — the paper's motivation for 1 KB blocks).
MTU = 1500


@dataclass
class Message:
    """A unit of network traffic.

    Parameters
    ----------
    src:
        Sender identifier (phone id, ``"controller"``, server name...).
    dst:
        Receiver identifier; ``None`` means local broadcast.
    size:
        Wire size in bytes (headers included; we do not model headers
        separately).
    kind:
        Protocol discriminator, e.g. ``"tuple"``, ``"token"``,
        ``"ckpt_block"``, ``"bitmap_query"``, ``"ping"``.
    payload:
        Arbitrary protocol data (not copied; treat as immutable).
    created_at:
        Virtual send time, stamped by the transport.
    """

    src: Any
    dst: Optional[Any]
    size: int
    kind: str
    payload: Any = None
    created_at: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"message size must be >= 0, got {self.size}")

    @property
    def is_broadcast(self) -> bool:
        """Whether this message targets every reachable node."""
        return self.dst is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Message #{self.msg_id} {self.kind} {self.src}->"
            f"{self.dst if self.dst is not None else '*'} {self.size}B>"
        )


def fragment_count(size: int, mtu: int = MTU) -> int:
    """Number of link-layer fragments for a datagram of ``size`` bytes.

    A datagram is delivered only if *all* its fragments arrive; the
    per-datagram loss probability therefore grows with size, which is why
    the protocol keeps checkpoint blocks at 1 KB (Section III-C).
    """
    if size <= 0:
        return 1
    return max(1, math.ceil(size / mtu))


def datagram_delivery_probability(size: int, fragment_loss: float, mtu: int = MTU) -> float:
    """P(datagram delivered) given an i.i.d. per-fragment loss rate."""
    if not 0.0 <= fragment_loss <= 1.0:
        raise ValueError("fragment_loss must be in [0, 1]")
    return (1.0 - fragment_loss) ** fragment_count(size, mtu)
