"""Ad-hoc WiFi cell: shared half-duplex medium with lossy UDP broadcast.

One :class:`WifiCell` per region.  Key modelling choices, each grounded in
the paper:

* **Half-duplex shared channel.** All transmissions in a region serialize
  through one channel (`Resource(capacity=1)`).  Checkpoint traffic
  therefore steals airtime from data tuples — this *is* the fault-tolerance
  throughput overhead of Fig. 8.
* **Broadcast reaches everyone for one transmission.**  A UDP broadcast of
  N blocks costs N block-times of airtime regardless of receiver count;
  unicasting the same data to k receivers costs k×N.  MobiStreams'
  advantage over dist-n follows directly.
* **Per-receiver datagram loss.**  Each member has its own loss process;
  reception bitmaps differ per receiver exactly as in Fig. 6.
* **TCP-like reliable unicast** is modelled as goodput derated by the
  channel's expected loss (retransmissions occupy airtime), plus a small
  per-message latency.

Members register a delivery callback; a phone that leaves the cell simply
stops being reachable, which upper layers observe as broken links.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.net.loss import BernoulliLoss, LossModel
from repro.net.packet import MTU, Message
from repro.sim.resources import Resource
from repro.util.units import Mbps, transmission_time

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.monitor import Trace
    from repro.sim.rng import RngRegistry

DeliverFn = Callable[[Message], None]


class Unreachable(Exception):
    """Raised when the destination is not a member of the cell."""


@dataclass
class WifiConfig:
    """Tunable parameters of an ad-hoc WiFi cell.

    Defaults follow Section IV: "the measured bandwidth of the ad-hoc WiFi
    network in each region is 1∼5 Mbps"; we default to the middle of that
    band with ~8% datagram loss.
    """

    bandwidth_bps: float = Mbps(2.0)
    #: One-way propagation + stack latency per message.
    latency_s: float = 0.002
    #: Factory producing a fresh loss model per receiver.
    loss_factory: Callable[[], LossModel] = field(
        default_factory=lambda: (lambda: BernoulliLoss(0.08))
    )
    #: Estimated mean loss used to derate reliable-transfer goodput.
    mean_loss: float = 0.08
    #: Per-message protocol overhead in bytes (UDP/IP headers).
    header_bytes: int = 28

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.mean_loss < 1.0:
            raise ValueError("mean_loss must be in [0, 1)")


@dataclass
class BroadcastRoundResult:
    """Outcome of one UDP broadcast round (one sender, many receivers)."""

    #: Map receiver id -> bool array over the *indices sent this round*.
    received: Dict[Any, np.ndarray]
    #: Airtime bytes actually transmitted this round (blocks + headers).
    bytes_sent: int
    #: Wall (virtual) duration of the round.
    duration: float


class WifiCell:
    """The shared ad-hoc WiFi medium of one region."""

    def __init__(
        self,
        sim: "Simulator",
        rng: "RngRegistry",
        config: Optional[WifiConfig] = None,
        name: str = "wifi",
        trace: Optional["Trace"] = None,
    ) -> None:
        self.sim = sim
        self.config = config or WifiConfig()
        self.name = name
        self.trace = trace
        self.channel = Resource(sim, capacity=1)
        self._members: Dict[Any, DeliverFn] = {}
        self._loss: Dict[Any, LossModel] = {}
        self._rng = rng.stream(f"{name}.loss")
        # Uniform-loss cache for the batched broadcast draw: the shared
        # Bernoulli p when every member's model is a plain BernoulliLoss
        # with the same p (the default config), else None.  Recomputed
        # lazily after membership changes.
        self._uniform_p: Optional[float] = None
        self._uniform_dirty = True
        # Pre-resolved counter handles: the per-transmission f-string key
        # build plus two dict lookups used to run on every datagram.
        if trace is not None:
            self._bytes_total = trace.counter("net.wifi.bytes")
            self._bytes_cell = trace.counter(f"net.wifi.{name}.bytes")
        else:
            self._bytes_total = None
            self._bytes_cell = None

    # -- membership -------------------------------------------------------
    @property
    def members(self) -> List[Any]:
        """Ids of phones currently in the cell (a fresh list).

        .. deprecated::
            Allocates a copy per access — at fleet scale that is a
            multi-thousand-element list per call.  Use
            :meth:`iter_members` / :meth:`member_count` instead; every
            in-tree caller has been migrated.
        """
        warnings.warn(
            "WifiCell.members copies the member list on every access; "
            "use iter_members()/member_count instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self._members)

    def iter_members(self):
        """Iterate member ids without copying.

        The view is live: callers must not join/leave the cell while
        iterating (none of the protocol code does).
        """
        return iter(self._members)

    @property
    def member_count(self) -> int:
        """Number of phones currently in the cell."""
        return len(self._members)

    def join(self, member_id: Any, deliver: DeliverFn) -> None:
        """Add a phone to the cell with its delivery callback.

        The member's loss model (created here on first join) must not be
        mutated in place afterwards — the batched broadcast path caches
        the shared Bernoulli p and would keep drawing with the stale
        value.  Use :meth:`set_loss` to change a member's channel.
        """
        self._members[member_id] = deliver
        self._uniform_dirty = True
        if member_id not in self._loss:
            self._loss[member_id] = self.config.loss_factory()

    def leave(self, member_id: Any) -> None:
        """Remove a phone (departure or failure); silently idempotent."""
        self._members.pop(member_id, None)
        self._uniform_dirty = True

    def set_loss(self, member_id: Any, model: LossModel) -> None:
        """Replace ``member_id``'s loss model.

        The only supported way to change a member's channel after join:
        it invalidates the uniform-loss cache so the batched and
        per-member broadcast paths stay in agreement.
        """
        self._loss[member_id] = model
        self._uniform_dirty = True

    def is_member(self, member_id: Any) -> bool:
        """Whether a phone is currently reachable in the cell."""
        return member_id in self._members

    def _uniform_loss_p(self) -> Optional[float]:
        """Shared Bernoulli p when every member's loss model allows the
        batched draw (plain :class:`BernoulliLoss`, equal p), else None.

        Cached across rounds and invalidated by join/leave/set_loss;
        mutating a model's ``p`` in place bypasses the invalidation (see
        :meth:`join`)."""
        if self._uniform_dirty:
            p: Optional[float] = None
            for member_id in self._members:
                model = self._loss[member_id]
                if type(model) is not BernoulliLoss:
                    p = None
                    break
                if p is None:
                    p = model.p
                elif model.p != p:
                    p = None
                    break
            self._uniform_p = p
            self._uniform_dirty = False
        return self._uniform_p

    # -- timing helpers ----------------------------------------------------
    def tx_time(self, size: int) -> float:
        """Airtime for ``size`` bytes (headers included by the caller)."""
        return transmission_time(size, self.config.bandwidth_bps)

    def _count(self, n_bytes: float) -> None:
        total = self._bytes_total
        if total is not None:
            total.add(n_bytes)
            self._bytes_cell.add(n_bytes)

    # -- datagram (UDP) ----------------------------------------------------
    def udp_unicast(self, msg: Message):
        """Process: send one unreliable datagram. Returns True if delivered.

        The datagram occupies the channel for its airtime; delivery is then
        subject to the receiver's loss process and membership.
        """
        size = msg.size + self.config.header_bytes
        req = self.channel.request()
        yield req
        try:
            yield self.sim.timeout(self.tx_time(size))
        finally:
            self.channel.release(req)
        self._count(size)
        msg.created_at = self.sim.now
        deliver = self._members.get(msg.dst)
        if deliver is None:
            return False
        if not self._loss[msg.dst].sample_one(self._rng):
            return False
        self.sim.call_in(self.config.latency_s, deliver, msg)
        return True

    def udp_broadcast_round(
        self,
        sender: Any,
        indices: np.ndarray,
        block_size: int,
        last_block_size: Optional[int] = None,
        kind: str = "ckpt_block",
        payload: Any = None,
    ):
        """Process: broadcast the datagrams at ``indices`` to all members.

        Models one *phase* of Section III-C: the sender pushes every listed
        block back-to-back; each receiver's loss process independently
        decides which blocks it hears.  Returns a
        :class:`BroadcastRoundResult` whose bitmaps are aligned with
        ``indices``.

        ``last_block_size`` is the wire size of the final block of the
        overall transfer (the paper: "the last block may be less than
        1KB"); it is charged only when ``indices`` includes that block —
        callers pass the block count so we only need sizes here.
        """
        indices = np.asarray(indices)
        n = int(indices.size)
        if n == 0:
            return BroadcastRoundResult(
                received={m: np.zeros(0, dtype=bool) for m in self._members if m != sender},
                bytes_sent=0,
                duration=0.0,
            )
        hdr = self.config.header_bytes
        sizes = np.full(n, block_size + hdr, dtype=float)
        if last_block_size is not None and last_block_size != block_size:
            # indices are positions in the full transfer; the final block
            # is the one with the largest index value.
            last_pos = int(np.argmax(indices))
            sizes[last_pos] = last_block_size + hdr
        total_bytes = float(sizes.sum())

        start = self.sim.now
        req = self.channel.request()
        yield req
        try:
            yield self.sim.timeout(transmission_time(total_bytes, self.config.bandwidth_bps))
        finally:
            self.channel.release(req)
        self._count(total_bytes)

        # A datagram above the link MTU fragments, and one lost fragment
        # drops the whole datagram (the paper's case for 1 KB blocks):
        # sample the loss process at *fragment* granularity and AND the
        # fragments of each datagram.  Single-fragment datagrams (the
        # default 1 KB blocks) reduce to one sample per datagram.
        frags = np.maximum(1, np.ceil(sizes / MTU).astype(int))
        total_frags = int(frags.sum())
        starts = np.cumsum(frags) - frags
        received: Dict[Any, np.ndarray] = {}
        # No yields below this point, so membership cannot change under
        # us: iterate the live dict instead of copying it every round.
        uniform_p = self._uniform_loss_p()
        if uniform_p is not None and self.member_count > (1 if sender in self._members else 0):
            # Batched draw: one 2-D sample for all receivers.  PCG64
            # fills a (receivers, frags) array in row-major order, i.e.
            # exactly the doubles the per-member loop would have drawn
            # member by member — bit-identical bitmaps, one numpy call.
            receivers = [m for m in self._members if m != sender]
            frag_ok = self._rng.random((len(receivers), total_frags)) >= uniform_p
            bitmaps = np.logical_and.reduceat(frag_ok, starts, axis=1)
            for row, member_id in enumerate(receivers):
                received[member_id] = bitmaps[row]
        else:
            # Heterogeneous (or stateful, e.g. Gilbert-Elliott) loss
            # models need their per-member sample() calls.
            for member_id in self._members:
                if member_id == sender:
                    continue
                frag_ok = self._loss[member_id].sample(total_frags, self._rng)
                received[member_id] = np.logical_and.reduceat(frag_ok, starts)
        return BroadcastRoundResult(
            received=received,
            bytes_sent=int(total_bytes),
            duration=self.sim.now - start,
        )

    # -- reliable (TCP-like) -------------------------------------------------
    def reliable_goodput(self) -> float:
        """Effective bits/s of a reliable transfer (loss-derated)."""
        return self.config.bandwidth_bps * (1.0 - self.config.mean_loss)

    def tcp_unicast(self, msg: Message):
        """Process: reliably deliver ``msg`` to ``msg.dst``.

        Occupies the channel for the loss-derated transfer time (the
        retransmissions are airtime too).  Raises :class:`Unreachable` if
        the destination is not (or no longer) a member.
        """
        if msg.dst not in self._members:
            raise Unreachable(f"{msg.dst} is not in cell {self.name}")
        size = msg.size + self.config.header_bytes
        air_time = transmission_time(size, self.reliable_goodput())
        req = self.channel.request()
        yield req
        try:
            yield self.sim.timeout(air_time)
        finally:
            self.channel.release(req)
        self._count(size / (1.0 - self.config.mean_loss))
        deliver = self._members.get(msg.dst)
        if deliver is None:
            # Destination left mid-transfer.
            raise Unreachable(f"{msg.dst} left cell {self.name} during transfer")
        msg.created_at = self.sim.now
        self.sim.call_in(self.config.latency_s, deliver, msg)
        return True

    def control_exchange(self, a: Any, b: Any, size_bytes: int):
        """Process: a small reliable request/response pair between members.

        Used for bitmap queries: sender asks, receiver answers.  Charges
        two messages of ``size_bytes`` total; raises :class:`Unreachable`
        if either endpoint is gone.
        """
        if a not in self._members or b not in self._members:
            raise Unreachable(f"{a} or {b} not in cell {self.name}")
        size = size_bytes + 2 * self.config.header_bytes
        air_time = transmission_time(size, self.reliable_goodput())
        req = self.channel.request()
        yield req
        try:
            yield self.sim.timeout(air_time + 2 * self.config.latency_s)
        finally:
            self.channel.release(req)
        self._count(size)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WifiCell {self.name} members={len(self._members)}>"
