"""Planar geometry: positions, ranges, and region areas.

A *region* (Section III) is a small area — a bus stop, an intersection —
within which phones reach each other over ad-hoc WiFi.  We model regions
as circles and phones as points; membership is purely geometric, and the
mobility models (:mod:`repro.device.mobility`) move the points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: Default ad-hoc WiFi radio range in metres ("20∼100m" in the paper; a
#: region is "usually a circular area with a diameter less than 20 meters").
DEFAULT_WIFI_RANGE_M = 50.0


@dataclass(frozen=True)
class Position:
    """A point in the plane, metres."""

    x: float
    y: float

    def moved(self, dx: float, dy: float) -> "Position":
        """A new position offset by (dx, dy)."""
        return Position(self.x + dx, self.y + dy)

    def towards(self, other: "Position", dist: float) -> "Position":
        """A new position ``dist`` metres from here towards ``other``."""
        d = distance(self, other)
        if d == 0:
            return self
        f = dist / d
        return Position(self.x + (other.x - self.x) * f, self.y + (other.y - self.y) * f)

    def as_tuple(self) -> Tuple[float, float]:
        """(x, y)."""
        return (self.x, self.y)


def distance(a: Position, b: Position) -> float:
    """Euclidean distance in metres."""
    return math.hypot(a.x - b.x, a.y - b.y)


def in_range(a: Position, b: Position, radio_range: float = DEFAULT_WIFI_RANGE_M) -> bool:
    """Whether two radios can hear each other."""
    if radio_range < 0:
        raise ValueError("radio range must be >= 0")
    return distance(a, b) <= radio_range


@dataclass(frozen=True)
class RegionArea:
    """A circular region: centre plus radius (metres)."""

    center: Position
    radius: float = 10.0

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("region radius must be positive")

    def contains(self, p: Position) -> bool:
        """Whether a point lies inside the region."""
        return distance(self.center, p) <= self.radius

    def random_point(self, rng) -> Position:
        """Uniform random point inside the region (for phone placement)."""
        r = self.radius * math.sqrt(rng.random())
        theta = rng.random() * 2 * math.pi
        return Position(
            self.center.x + r * math.cos(theta),
            self.center.y + r * math.sin(theta),
        )

    def exit_point(self, rng) -> Position:
        """A point just outside the region (departure destination)."""
        theta = rng.random() * 2 * math.pi
        r = self.radius * 2.5
        return Position(
            self.center.x + r * math.cos(theta),
            self.center.y + r * math.sin(theta),
        )
