"""Fault-tolerance schemes: the paper's baselines and the scheme interface.

Section IV-B defines the comparison set; each is implemented here as a
strategy object plugged into a region:

* ``base``  — :class:`~repro.baselines.base.NoFaultTolerance`, no FT at all.
* ``rep-2`` — :class:`~repro.baselines.replication.ActiveStandby`,
  k replicated dataflow chains (Flux / Borealis DPC).
* ``local`` — :class:`~repro.baselines.local_checkpoint.LocalCheckpoint`,
  checkpoints to local flash only; unrealistic on phones but the
  performance upper bound.
* ``dist-n`` — :class:`~repro.baselines.distributed_checkpoint.DistributedCheckpoint`,
  checkpoints unicast to n other nodes (Cooperative HA / SGuard).
* MobiStreams itself lives in :mod:`repro.checkpoint` and implements the
  same :class:`~repro.baselines.interface.FaultToleranceScheme` interface.

The server-based DSPS comparator of Table I is a different *deployment*,
not a scheme: see :mod:`repro.baselines.server_dsps`.
"""

from repro.baselines.base import NoFaultTolerance
from repro.baselines.distributed_checkpoint import DistributedCheckpoint
from repro.baselines.interface import FaultToleranceScheme
from repro.baselines.local_checkpoint import LocalCheckpoint
from repro.baselines.replication import ActiveStandby
from repro.baselines.server_dsps import ServerDSPS, ServerDSPSConfig

__all__ = [
    "ActiveStandby",
    "DistributedCheckpoint",
    "FaultToleranceScheme",
    "LocalCheckpoint",
    "NoFaultTolerance",
    "ServerDSPS",
    "ServerDSPSConfig",
]
