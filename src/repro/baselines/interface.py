"""The fault-tolerance scheme interface.

A scheme is attached to exactly one region and receives *hooks* from the
node runtimes and the controller.  It owns all FT policy: what data to
preserve, when and where to checkpoint, how to recover from a failure
set, and how to handle departures.

Two counters are the scheme's measurement contract (Fig. 10):

* ``ft.preserved_bytes`` — unique bytes retained for input/source
  preservation (every retained tuple counted once when it enters a
  preservation buffer).
* ``ft.network_bytes`` — bytes sent over any network *because of* fault
  tolerance (checkpoint state, bitmaps, acks, replica traffic).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.core.controller import UNRECOVERABLE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import NodeRuntime
    from repro.core.region import Region
    from repro.core.tuples import StreamTuple, Token
    from repro.net.packet import Message


class FaultToleranceScheme:
    """Base scheme: every hook is a no-op (suitable subclassing surface)."""

    #: Scheme label used in reports (matches the paper's figure labels).
    name: str = "scheme"
    #: Dataflow chains this scheme needs (rep-k uses k).
    replication_factor: int = 1
    #: Whether the controller should drive a periodic checkpoint clock.
    wants_checkpoint_clock: bool = False
    #: The recovery promise the invariant harness enforces — a name from
    #: :data:`repro.verify.contracts.CONTRACTS`.  ``"none"`` (the
    #: default) opts out of delivery checking entirely.
    delivery_contract: str = "none"

    def __init__(self) -> None:
        self.region: Optional["Region"] = None

    # -- lifecycle ----------------------------------------------------------
    def attach(self, region: "Region") -> None:
        """Bind to the region; start any periodic processes here."""
        self.region = region

    @property
    def trace(self):
        """The region's trace (valid after :meth:`attach`)."""
        return self.region.trace

    @property
    def sim(self):
        """The region's simulator (valid after :meth:`attach`)."""
        return self.region.sim

    # -- measurement helpers ---------------------------------------------------
    def count_preserved(self, n_bytes: float) -> None:
        """Account bytes entering a preservation buffer (Fig. 10a)."""
        self.trace.count("ft.preserved_bytes", n_bytes)

    def count_ft_network(self, n_bytes: float) -> None:
        """Account fault-tolerance bytes on the wire (Fig. 10b)."""
        self.trace.count("ft.network_bytes", n_bytes)

    def chain_active(self, chain: int) -> bool:
        """Whether a replication chain is still routing (rep-k marks dead
        chains after an unrecovered replica loss).  Factor-1 schemes always
        return True for chain 0."""
        return True

    # -- dataflow hooks (called from node runtimes) ------------------------------
    def on_source_ingest(self, node: "NodeRuntime", op_name: str, tup: "StreamTuple") -> None:
        """A source operator ingested external or inter-region data."""

    def on_source_copy(self, node: "NodeRuntime", op_name: str, tup: "StreamTuple") -> None:
        """A source tuple was forwarded to another chain's source replica."""

    def on_emit(
        self, node: "NodeRuntime", from_op: str, to_op: str,
        tup: "StreamTuple", remote: bool,
    ) -> None:
        """An operator emitted a tuple to a downstream operator."""

    def on_processed(self, node: "NodeRuntime", op_name: str, tup: "StreamTuple") -> None:
        """An operator finished processing a tuple."""

    def on_token(self, node: "NodeRuntime", channel: Any, token: "Token") -> None:
        """A checkpoint token arrived on a node channel (MobiStreams only)."""

    def on_catchup_end(self, node: "NodeRuntime", channel: Any, marker: Any) -> None:
        """A catch-up-end marker arrived (MobiStreams only)."""

    def on_node_control(self, node: "NodeRuntime", channel: Any, payload: Tuple) -> None:
        """Scheme-specific control traffic delivered to a node."""

    def on_region_message(self, phone_id: str, msg: "Message") -> None:
        """Every message delivered to any phone of the region (snooping)."""

    # -- control-plane hooks -------------------------------------------------------
    def request_checkpoint(self) -> None:
        """Controller-triggered checkpoint request (Section III-B step 1)."""

    def on_failure(self, failed_ids: List[str]):
        """React to a batch of simultaneous failures.

        Returns a generator to be run as the recovery process, or
        :data:`~repro.core.controller.UNRECOVERABLE` when the failure set
        exceeds the scheme's tolerance.  The default (no FT) loses the
        region.
        """
        return UNRECOVERABLE

    def on_departure(self, phone_id: str):
        """React to a confirmed departure.

        Prior schemes "cannot handle node departures (they are designed
        for servers)" — the default treats a departure like a failure.
        """
        return self.on_failure([phone_id])

    def on_self_report(self, phone_id: str):
        """React to a phone reporting its own imminent failure (chronic
        battery, Section III-D).  Returns a handoff generator, or None
        when the scheme has no proactive path and must wait for the
        actual crash (the default for all prior schemes)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
