"""The server-based DSPS of Fig. 1(c): Table I's comparator deployment.

Phones are thin clients: every sensed datum (camera image, sensor
reading) is uploaded over the 3G uplink to a data center, where the
query network runs on servers connected by Ethernet.  Results return to
the phones over the downlink.

"The server-based DSPS is hindered by the low bandwidth of the uplink
cellular network.  The fault tolerance function has no impact on overall
performance" — so this model has no FT machinery at all; its throughput
ceiling is the uplink, exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.metrics import MetricsReport, compute_metrics
from repro.core.operator import OperatorContext
from repro.core.tuples import StreamTuple
from repro.net.cellular import CellularConfig, CellularNetwork
from repro.net.ethernet import EthernetSwitch
from repro.net.packet import Message
from repro.sim.core import Simulator
from repro.sim.monitor import Trace
from repro.sim.resources import Resource
from repro.sim.rng import RngRegistry


@dataclass
class ServerDSPSConfig:
    """Data-center deployment parameters."""

    #: Servers available to the query network (round-robin placement).
    n_servers: int = 8
    #: Server speed relative to the reference phone CPU.  The paper notes
    #: a 2013 quad-core phone matches a 2006 server; the data center runs
    #: newer, faster machines.
    server_speed: float = 4.0
    server_cores: int = 4
    cellular: CellularConfig = field(default_factory=CellularConfig)
    #: Size of the result message returned to phones.
    result_size: int = 512
    master_seed: int = 0
    trace_enabled: bool = True


class _ServerNode:
    """A server running one or more operators (no FT, no phones)."""

    def __init__(self, dsps: "ServerDSPS", server_id: str) -> None:
        self.dsps = dsps
        self.sim = dsps.sim
        self.id = server_id
        self.cpu = Resource(self.sim, capacity=dsps.config.server_cores)
        self._queue: Deque = deque()
        self._wake = None
        self.sim.process(self._loop(), name=f"{server_id}.loop").defuse()

    def deliver(self, msg: Message) -> None:
        self._queue.append(msg.payload)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _loop(self):
        from repro.sim.events import Event

        while True:
            if not self._queue:
                self._wake = Event(self.sim)
                yield self._wake
                self._wake = None
                continue
            _kind, op_name, tup = self._queue.popleft()
            yield from self._process(op_name, tup)

    def _process(self, op_name: str, tup: StreamTuple):
        dsps = self.dsps
        op = dsps.graph.operator(op_name)
        cost = op.cost(tup) / dsps.config.server_speed
        if cost > 0:
            req = self.cpu.request()
            yield req
            try:
                yield self.sim.timeout(cost)
            finally:
                self.cpu.release(req)
        outputs = op.process(tup, dsps.operator_context())
        if op.is_sink:
            for out in outputs:
                dsps.on_sink_output(op_name, out)
            return
        downstream = dsps.graph.downstream_of(op_name)
        for out in outputs:
            for d_op in op.route(out, downstream):
                target = dsps.placement[d_op]
                if target == self.id:
                    yield from self._process(d_op, out)
                else:
                    dsps.send(self.id, target, d_op, out)


class ServerDSPS:
    """A runnable single-region server-based DSPS deployment."""

    def __init__(self, app: AppSpec, config: Optional[ServerDSPSConfig] = None) -> None:
        self.app = app
        self.config = config or ServerDSPSConfig()
        self.sim = Simulator()
        self.rng = RngRegistry(self.config.master_seed)
        self.trace = Trace(enabled=self.config.trace_enabled)
        self.cellular = CellularNetwork(self.sim, self.rng, self.config.cellular, trace=self.trace)
        self.ethernet = EthernetSwitch(self.sim, trace=self.trace)
        self.graph: QueryGraph = app.build_graph()
        self.graph.validate()

        # Round-robin operator placement over the servers.
        self.servers: Dict[str, _ServerNode] = {}
        for i in range(self.config.n_servers):
            sid = f"server{i}"
            node = _ServerNode(self, sid)
            self.servers[sid] = node
            self.ethernet.attach(sid, node.deliver)
        self.placement: Dict[str, str] = {}
        for i, op_name in enumerate(self.graph.topological_order()):
            self.placement[op_name] = f"server{i % self.config.n_servers}"

        # DC ingress: one wired endpoint receiving uplink traffic.
        self.cellular.register_wired("dc", self._ingress)
        # Phones: one uploader per workload source.
        self._workloads = app.build_workloads(self.rng, 0)
        self._phone_ids: List[str] = []
        for k, op_name in enumerate(self._workloads):
            pid = f"sensor{k}"
            self._phone_ids.append(pid)
            self.cellular.register_phone(pid, lambda msg: None)
        self._started = False

    # -- plumbing ------------------------------------------------------------
    def operator_context(self) -> OperatorContext:
        """Context for ``Operator.process`` on the servers."""
        return OperatorContext(now=self.sim.now, rng=self.rng, region_name="dc")

    def send(self, src: str, dst: str, op_name: str, tup: StreamTuple) -> None:
        """Server-to-server tuple transfer over the switch."""
        msg = Message(src=src, dst=dst, size=tup.size, kind="tuple",
                      payload=("tuple", op_name, tup))
        self.sim.process(self.ethernet.send(msg), name="eth.tx").defuse()

    def _ingress(self, msg: Message) -> None:
        """Uplink data arriving at the data center."""
        _kind, op_name, tup = msg.payload
        target = self.placement[op_name]
        self.servers[target].deliver(
            Message(src="dc", dst=target, size=tup.size, kind="tuple",
                    payload=("tuple", op_name, tup))
        )

    def on_sink_output(self, op_name: str, tup: StreamTuple) -> None:
        """A result left the query network: record and return downlink."""
        self.trace.record(
            self.sim.now, "sink_output", region="dc", op=op_name,
            entered_at=tup.entered_at, latency=self.sim.now - tup.entered_at,
            seq=tup.source_seq,
        )
        if self._phone_ids:
            result = Message(
                src="dc", dst=self._phone_ids[0], size=self.config.result_size,
                kind="result", payload=("result",),
            )
            self.sim.process(self.cellular.send(result), name="dl.tx").defuse()

    def _uploader(self, phone_id: str, op_name: str, workload: Iterable):
        """The thin client: upload every sensed datum over the uplink.

        Uploads are sequential per phone — a phone has one radio; a
        backlog forms when sensing outpaces the uplink, which is precisely
        the Table I bottleneck.
        """
        seq = 0
        pending: Deque = deque()
        for wait, payload, size in workload:
            yield self.sim.timeout(wait)
            tup = StreamTuple(
                payload=payload, size=size, entered_at=self.sim.now,
                source_seq=seq, lineage=(f"dc.{op_name}", seq),
            )
            seq += 1
            pending.append(tup)
            # Drain as much of the backlog as the uplink allows before the
            # next sensing instant (non-blocking for the sensor itself).
            if len(pending) == 1:
                self.sim.process(
                    self._drain(phone_id, op_name, pending), name=f"{phone_id}.up"
                ).defuse()

    def _drain(self, phone_id: str, op_name: str, pending: Deque):
        while pending:
            tup = pending[0]
            msg = Message(src=phone_id, dst="dc", size=tup.size, kind="upload",
                          payload=("tuple", op_name, tup))
            yield from self.cellular.send(msg)
            pending.popleft()

    # -- running ------------------------------------------------------------
    def run(self, duration_s: float) -> None:
        """Start the uploaders (once) and advance virtual time."""
        if not self._started:
            self._started = True
            for pid, (op_name, workload) in zip(self._phone_ids, self._workloads.items()):
                self.sim.process(
                    self._uploader(pid, op_name, iter(workload)), name=f"{pid}.sensor"
                ).defuse()
        self.sim.run(until=self.sim.now + duration_s)

    def metrics(self, warmup_s: float = 0.0, until: Optional[float] = None) -> MetricsReport:
        """Throughput/latency report (single pseudo-region ``dc``)."""
        return compute_metrics(
            self.trace, ["dc"], warmup_s=warmup_s,
            until=until if until is not None else self.sim.now,
        )
