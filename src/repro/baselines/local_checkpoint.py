"""``local``: checkpoint to local flash only (Section IV-B, scheme 3).

"A checkpoint-based scheme that saves operators' state to the local
storage of each node.  This scheme assumes that each node can be
restarted after a failure and the data in its storage will not be lost
after the restart.  It is not a realistic fault model in the context of
smartphones, but represents an upper bound in performance for
fault-tolerance schemes and is thus useful as a benchmark."

No checkpoint bytes ever cross the network (Fig. 10b: local = 0); the
only steady-state costs are the serialization CPU, flash writes, input
preservation, and tiny acks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.checkpoint_common import PeriodicCheckpointScheme


class LocalCheckpoint(PeriodicCheckpointScheme):
    """Periodic checkpoints into each phone's own flash."""

    name = "local"

    def __init__(self, period_s: float = 300.0, reboot_delay_s: float = 10.0) -> None:
        super().__init__(period_s)
        self.reboot_delay_s = reboot_delay_s
        #: node id -> its own checkpoint versions, oldest first.
        self._node_versions: Dict[str, List[int]] = {}

    def _store_checkpoint(self, node, version: int, snapshot: Dict, size: int):
        """Write to the node's own flash; keep the latest two versions.

        The flash write happens while the node holds its CPU — local
        checkpointing's (small) cost in Fig. 8.  Versions are global
        across the region, so pruning tracks each node's *own* history
        (one node's consecutive versions are spaced by the node count).
        """
        yield self.sim.timeout(size * 8.0 / self.region.config.flash_write_bps)
        storage = node.phone.storage
        storage.write(("ckpt", version), size, payload=snapshot)
        kept = self._node_versions.setdefault(node.id, [])
        kept.append(version)
        while len(kept) > 2:
            storage.delete(("ckpt", kept.pop(0)))
        return True

    def on_failure(self, failed_ids: List[str]):
        """Reboot each failed phone and restore it from its own flash."""
        return self._recover(failed_ids)

    def _recover(self, failed_ids: List[str]):
        region = self.region
        # The phone restarts (OS reboot); flash survives by assumption.
        yield self.sim.timeout(self.reboot_delay_s)
        restored = []
        for pid in failed_ids:
            region.revive_phone(pid)
            record = self.mrc_for_phone(pid)
            state, size = (record[1], record[2]) if record else (None, 1)
            # Parallel restoration: each node reads from its local flash.
            yield self.sim.timeout(size * 8.0 / region.config.flash_read_bps)
            node = region.build_single_node(pid, state)
            restored.append(node)
        for node in restored:
            yield from self._replay_into(node)
        return "recovered"
