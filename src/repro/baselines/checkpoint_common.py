"""Shared machinery for the *uncoordinated* checkpoint baselines.

``local`` and ``dist-n`` (Section IV-B schemes 3-4) follow the classic
server-DSPS recipe (Section IV-B): "every node periodically checkpoints
operators' running state [...] and every operator retains its output
tuples until these tuples have been checkpointed by the downstream
operators.  This is called input preservation."

The pieces here:

* a per-node periodic checkpoint driver (staggered round-robin),
* output-retention buffers per operator edge, trimmed by checkpoint acks,
* replay of retained tuples into a restored node (upstream backup),
* exactly-once downstream semantics via the runtime's emit-key dedup.

Subclasses choose *where* checkpoints are stored (local flash vs. n remote
nodes) and *how* a failed node is brought back.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.baselines.interface import FaultToleranceScheme
from repro.net.packet import Message
from repro.net.wifi import Unreachable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import NodeRuntime
    from repro.core.tuples import StreamTuple

#: Wire size of a checkpoint-ack control message.
ACK_SIZE = 64

#: Pseudo-upstream edge key for sensor input retained at sources.
SENSOR = "__sensor__"


class PeriodicCheckpointScheme(FaultToleranceScheme):
    """Base class: per-node periodic checkpoints + input preservation."""

    #: Uncoordinated checkpoints bound the loss to one period of input;
    #: the emit-key dedup keeps replays duplication-free at the sinks.
    delivery_contract = "bounded-loss"

    def __init__(self, period_s: float = 300.0) -> None:
        super().__init__()
        if period_s <= 0:
            raise ValueError("checkpoint period must be positive")
        self.period_s = period_s
        #: (from_op, to_op) -> retained tuples not yet covered downstream.
        self.buffers: Dict[Tuple[str, str], Deque["StreamTuple"]] = {}
        #: (from_op, to_op) -> tuples processed by the downstream node.
        self.processed: Dict[Tuple[str, str], int] = {}
        #: (from_op, to_op) -> tuples already trimmed from the buffer head.
        self.trimmed: Dict[Tuple[str, str], int] = {}
        #: op-set key -> (version, state snapshot, size, edge cuts).
        self.mrc: Dict[frozenset, Tuple[int, Dict, int, Dict]] = {}
        self._version = 0
        #: node ids with a checkpoint currently in flight (no overlap).
        self._in_flight: set = set()

    # -- lifecycle ----------------------------------------------------------
    def attach(self, region) -> None:
        super().attach(region)
        self.sim.process(self._driver(), name=f"{region.name}.{self.name}.ckpt").defuse()

    def _driver(self):
        """Checkpoint every node once per period, staggered round-robin.

        Each node's save runs in its own process so a slow save (e.g. a
        dist-n unicast of a multi-MB state over 1-5 Mbps WiFi) delays
        only that node, not the period cadence of every node after it.
        A per-node in-flight guard prevents overlapping saves of the
        same node when a save outlasts the period.
        """
        region = self.region
        while not region.stopped:
            node_ids = sorted(set(region.placement.used_nodes()))
            slot = self.period_s / max(1, len(node_ids))
            for nid in node_ids:
                yield self.sim.timeout(slot)
                if region.stopped:
                    return
                if region.paused:
                    continue
                node = region.nodes.get(nid)
                if node is None or not node.alive or nid in self._in_flight:
                    continue
                self._in_flight.add(nid)
                self.sim.process(
                    self._checkpoint_guarded(node),
                    name=f"{region.name}.{self.name}.ckpt.{nid}",
                ).defuse()

    def _checkpoint_guarded(self, node: "NodeRuntime"):
        try:
            yield from self._checkpoint_node(node)
        finally:
            self._in_flight.discard(node.id)

    # -- checkpointing ---------------------------------------------------------
    def _retained_output_bytes(self, node: "NodeRuntime") -> int:
        """Bytes of this node's retained (unacked) output tuples.

        Prior schemes checkpoint these *along with* the operator state —
        the "redundant data saving" that MobiStreams' tokens eliminate
        ("no tuple will be saved twice or missed", Section III-B): a
        token-cut checkpoint never needs in-flight tuples because the
        sources replay instead.
        """
        total = 0
        for op_name in node.op_names:
            for d_op in self.region.graph.downstream_of(op_name):
                buf = self.buffers.get((op_name, d_op))
                if buf:
                    total += sum(t.size for t in buf)
            if self.region.graph.operator(op_name).is_source:
                buf = self.buffers.get((SENSOR, op_name))
                if buf:
                    total += sum(t.size for t in buf)
        return total

    def _checkpoint_node(self, node: "NodeRuntime"):
        """Snapshot one node and store it (storage policy in subclass).

        The save is *synchronous*: the node holds its CPU for the whole
        serialize+store, pausing tuple processing — unlike MobiStreams'
        explicitly asynchronous background save (Section III-B:
        "the node spawns a separate thread for checkpointing").
        """
        self._version += 1
        version = self._version
        snapshot = node.snapshot_state()
        state_size = max(1, node.state_size())
        buffer_bytes = self._retained_output_bytes(node)
        cfg = self.region.config
        # Serialize state + retained tuples, spill the tuples to flash,
        # all while holding the CPU — the whole save is on the node's
        # critical path.
        pause = node.phone.compute_time(
            (state_size + buffer_bytes) * 8.0 / cfg.serialize_bps
        ) + buffer_bytes * 8.0 / cfg.flash_write_bps
        req = node.cpu.request()
        yield req
        try:
            yield self.sim.timeout(pause)
            cuts = self._current_cuts(node)
            # Only the operator state travels to the checkpoint store(s);
            # retained tuples stay local.
            stored = yield from self._store_checkpoint(node, version, snapshot, state_size)
        finally:
            node.cpu.release(req)
        size = state_size
        if not stored:
            return
        key = frozenset(node.op_names)
        self.mrc[key] = (version, snapshot, size, cuts)
        self.trace.count("ckpt.saved_bytes", size)
        self.trace.record(
            self.sim.now, "node_checkpoint", region=self.region.name,
            node=node.id, scheme=self.name, version=version, size=size,
        )
        self.trace.count("ckpt.completed")
        yield from self._send_acks(node, cuts)

    def _store_checkpoint(self, node: "NodeRuntime", version: int, snapshot: Dict, size: int):
        """Persist the snapshot; return True on success.  Subclass hook."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _current_cuts(self, node: "NodeRuntime") -> Dict[Tuple[str, str], int]:
        """Per-input-edge processed positions covered by this snapshot."""
        cuts: Dict[Tuple[str, str], int] = {}
        for op_name in node.op_names:
            for edge in self._input_edges(op_name):
                cuts[edge] = self.processed.get(edge, 0)
        return cuts

    def _input_edges(self, op_name: str) -> List[Tuple[str, str]]:
        edges = [(u, op_name) for u in self.region.graph.upstream_of(op_name)]
        if self.region.graph.operator(op_name).is_source:
            edges.append((SENSOR, op_name))
        return edges

    def _send_acks(self, node: "NodeRuntime", cuts: Dict[Tuple[str, str], int]):
        """Tell upstream nodes their retained outputs are now covered."""
        acked_nodes = set()
        for (from_op, to_op), cut in cuts.items():
            self._trim(from_op, to_op, cut)
            if from_op == SENSOR:
                continue
            up_node = self.region.placement.node_for(from_op, 0)
            if up_node != node.id and up_node not in acked_nodes:
                acked_nodes.add(up_node)
                msg = Message(
                    src=node.id, dst=up_node, size=ACK_SIZE,
                    kind="control", payload=("ckpt_ack", node.id),
                )
                self.count_ft_network(ACK_SIZE)
                try:
                    yield from self.region.wifi.tcp_unicast(msg)
                except Unreachable:
                    pass

    def _trim(self, from_op: str, to_op: str, cut: int) -> None:
        """Drop retained tuples up to the downstream's covered position."""
        edge = (from_op, to_op)
        buf = self.buffers.get(edge)
        if buf is None:
            return
        already = self.trimmed.get(edge, 0)
        drop = max(0, cut - already)
        for _ in range(min(drop, len(buf))):
            buf.popleft()
        self.trimmed[edge] = already + drop

    # -- dataflow hooks ---------------------------------------------------------
    def on_source_ingest(self, node: "NodeRuntime", op_name: str, tup: "StreamTuple") -> None:
        """Sources retain their input until their own checkpoint covers it."""
        edge = (SENSOR, op_name)
        self.buffers.setdefault(edge, deque()).append(tup)
        self.count_preserved(tup.size)
        self.processed[edge] = self.processed.get(edge, 0) + 1

    def on_emit(self, node: "NodeRuntime", from_op: str, to_op: str,
                tup: "StreamTuple", remote: bool) -> None:
        """Input preservation: retain every emitted tuple until acked.

        *Every* operator retains its outputs (Section IV-B's definition),
        including co-located ones — that's the Fig. 10a volume.  Only
        cross-node edges need replay buffers, though: intra-node tuples
        fall inside the node's own checkpoint cut.
        """
        self.count_preserved(tup.size)
        if not remote:
            return
        edge = (from_op, to_op)
        self.buffers.setdefault(edge, deque()).append(tup)

    def on_processed(self, node: "NodeRuntime", op_name: str, tup: "StreamTuple") -> None:
        if tup.emit_key is not None:
            from_op = tup.emit_key[0]
            if (from_op, op_name) in self.buffers or from_op in self.region.graph:
                edge = (from_op, op_name)
                self.processed[edge] = self.processed.get(edge, 0) + 1

    # -- replay ------------------------------------------------------------------
    def _replay_into(self, node: "NodeRuntime"):
        """Resend retained tuples feeding the restored node's operators.

        The restored node reprocesses them from its MRC state; downstream
        nodes drop the regenerated duplicates by emit key.
        """
        region = self.region
        for op_name in node.op_names:
            for from_op, to_op in self._input_edges(op_name):
                buf = self.buffers.get((from_op, to_op))
                if not buf:
                    continue
                replayed = list(buf)
                self.trace.record(
                    self.sim.now, "replay", region=region.name, node=node.id,
                    edge=(from_op, to_op), tuples=len(replayed),
                )
                if from_op == SENSOR:
                    for tup in replayed:
                        node.deliver(Message(
                            src=SENSOR, dst=node.id, size=tup.size,
                            kind="tuple", payload=("source_copy", to_op, tup),
                        ))
                else:
                    up_id = region.placement.node_for(from_op, 0)
                    up_node = region.nodes.get(up_id)
                    if up_node is None or not up_node.alive:
                        continue
                    for tup in replayed:
                        # Retransmission occupies the WiFi like any tuple.
                        region.route_tuple(up_node, to_op, tup)
        yield self.sim.timeout(0)

    def mrc_for_phone(self, phone_id: str) -> Optional[Tuple[int, Dict, int, Dict]]:
        """The MRC record covering the operators hosted on ``phone_id``."""
        key = frozenset(self.region.placement.ops_on(phone_id))
        return self.mrc.get(key)
