"""Active standby replication (``rep-2``): the Flux / Borealis baseline.

Section IV-B, scheme 2: "A replication-based scheme that runs two replicas
for each operator.  It can tolerate only single-node failures."

Implementation: k *paired dataflow chains* on disjoint phone subsets
(Flux-style).  Chain r of every operator streams to chain r of its
downstream operators; the sensor feed is duplicated into every chain; the
region deduplicates results at the sinks.  When a phone dies, every chain
with an operator on that phone is dead; the system survives while at
least one chain is intact — so k=2 tolerates exactly one failure in the
worst case, and a second failure on the surviving chain is fatal.

Costs (visible in Figs. 8 and 10):

* every phone hosts k× the operators (the dataflow is squeezed onto 1/k
  of the phones per chain) — CPU throughput drops;
* all replica-chain traffic plus the duplicated sensor feed is extra
  network load (``ft.network_bytes``);
* there is no checkpointing and no input preservation at all
  (Fig. 10a: rep-2 = 0).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from repro.baselines.interface import FaultToleranceScheme
from repro.core.controller import UNRECOVERABLE
from repro.core.region import TUPLE_ENVELOPE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import NodeRuntime
    from repro.core.tuples import StreamTuple


class ActiveStandby(FaultToleranceScheme):
    """k replicated dataflow chains (default k=2, the paper's rep-2)."""

    #: Replication loses nothing while a chain survives, but makes no
    #: recovery promise — the harness only checks sink dedup holds.
    delivery_contract = "duplication-free"

    def __init__(self, k: int = 2, takeover_delay_s: float = 0.5) -> None:
        super().__init__()
        if k < 2:
            raise ValueError("active standby needs k >= 2 replicas")
        self.replication_factor = k
        self.name = f"rep-{k}"
        self.takeover_delay_s = takeover_delay_s
        self.dead_chains: Set[int] = set()

    # -- routing liveness ---------------------------------------------------
    def chain_active(self, chain: int) -> bool:
        return chain not in self.dead_chains

    # -- overhead accounting ---------------------------------------------------
    def on_emit(self, node: "NodeRuntime", from_op: str, to_op: str,
                tup: "StreamTuple", remote: bool) -> None:
        if remote and node.op_chain.get(from_op, 0) > 0:
            # Replica-chain traffic is replication overhead.
            self.count_ft_network(tup.size + TUPLE_ENVELOPE)

    def on_source_copy(self, node: "NodeRuntime", op_name: str, tup: "StreamTuple") -> None:
        self.count_ft_network(tup.size + TUPLE_ENVELOPE)

    # -- failures -----------------------------------------------------------
    def _chains_hit(self, gone: List[str]) -> Set[int]:
        hit: Set[int] = set()
        gone_set = set(gone)
        placement = self.region.placement
        for op in placement.operators():
            for r, nid in enumerate(placement.nodes_for(op)):
                if nid in gone_set:
                    hit.add(r)
        return hit

    def on_failure(self, failed_ids: List[str]):
        hit = self._chains_hit(failed_ids)
        self.dead_chains |= hit
        alive = [r for r in range(self.replication_factor) if r not in self.dead_chains]
        self.trace.record(
            self.sim.now, "rep_chain_lost", region=self.region.name,
            dead=sorted(self.dead_chains), alive=alive,
        )
        if not alive:
            return UNRECOVERABLE
        return self._takeover()

    def _takeover(self):
        """The surviving replica takes over "immediately" (Section IV-B)."""
        yield self.sim.timeout(self.takeover_delay_s)
        return "took-over"

    def on_departure(self, phone_id: str):
        """Replication-based schemes "cannot handle node departures"; a
        departed phone is simply a lost replica."""
        return self.on_failure([phone_id])
