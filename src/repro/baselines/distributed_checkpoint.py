"""``dist-n``: distributed checkpointing (Section IV-B, scheme 4).

"A checkpoint-based scheme that saves operators' state to n other nodes.
It can tolerate n-node failures."  Modeled after Cooperative HA and
SGuard (Section V): each node's snapshot is unicast over the region's
WiFi to its n ring successors, which hold the copies in flash.

Steady-state cost: n unicast copies of every node's state per period —
the Fig. 10b dist-n bars (≈ 0.7 n × MobiStreams' broadcast cost) and the
growing throughput hit in Fig. 8 as n rises.

Recovery: a failure set larger than n exceeds the scheme's tolerance;
otherwise each failed node's replacement (an idle phone) receives the
operator code over cellular, fetches the failed node's MRC from a
surviving holder over WiFi, and upstream nodes replay retained outputs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.checkpoint_common import PeriodicCheckpointScheme
from repro.core.controller import CONTROLLER_ID, UNRECOVERABLE
from repro.net.cellular import UnknownEndpoint
from repro.net.packet import Message
from repro.net.wifi import Unreachable


class DistributedCheckpoint(PeriodicCheckpointScheme):
    """Periodic checkpoints scattered onto n other phones."""

    def __init__(self, n: int = 1, period_s: float = 300.0) -> None:
        super().__init__(period_s)
        if n < 1:
            raise ValueError("dist-n needs n >= 1 copies")
        self.n = n
        self.name = f"dist-{n}"
        #: op-set key -> phone ids currently holding the MRC copy.
        self.holders: Dict[frozenset, List[str]] = {}
        #: (holder id, checkpointed node id) -> stored versions, oldest first.
        self._held_versions: Dict[tuple, List[int]] = {}

    # -- storage policy ---------------------------------------------------------
    def _ring_successors(self, node_id: str) -> List[str]:
        """The n nodes after ``node_id`` in id order (copy holders)."""
        ring = sorted(set(self.region.placement.used_nodes()))
        if node_id not in ring:
            return ring[: self.n]
        i = ring.index(node_id)
        return [ring[(i + k + 1) % len(ring)] for k in range(min(self.n, len(ring) - 1))]

    def _store_checkpoint(self, node, version: int, snapshot: Dict, size: int):
        """Unicast the snapshot to each ring successor."""
        stored_on: List[str] = []
        for holder_id in self._ring_successors(node.id):
            msg = Message(
                src=node.id, dst=holder_id, size=size,
                kind="ckpt_copy", payload=("ckpt_copy", node.id, version),
            )
            self.count_ft_network(size)
            try:
                yield from self.region.wifi.tcp_unicast(msg)
            except Unreachable:
                continue
            holder = self.region.phones.get(holder_id)
            if holder is not None and holder.alive:
                holder.storage.write(("ckpt", node.id, version), size, payload=snapshot)
                # Versions are global across the region: prune this
                # holder's *own* history of this node, keeping two.
                kept = self._held_versions.setdefault((holder_id, node.id), [])
                kept.append(version)
                while len(kept) > 2:
                    holder.storage.delete(("ckpt", node.id, kept.pop(0)))
                stored_on.append(holder_id)
        if not stored_on:
            return False
        self.holders[frozenset(node.op_names)] = stored_on
        return True

    # -- recovery -----------------------------------------------------------------
    def on_failure(self, failed_ids: List[str]):
        if len(failed_ids) > self.n:
            # Beyond the scheme's tolerance by construction.
            return UNRECOVERABLE
        replacements = self.region.pick_replacements(failed_ids)
        if replacements is None:
            return UNRECOVERABLE
        # A surviving holder must exist for every failed node's state.
        plans = []
        for pid in failed_ids:
            key = frozenset(self.region.placement.ops_on(pid))
            record = self.mrc.get(key)
            holder_id = None
            for h in self.holders.get(key, []):
                phone = self.region.phones.get(h)
                if phone is not None and phone.alive and h not in failed_ids:
                    holder_id = h
                    break
            if record is not None and holder_id is None:
                return UNRECOVERABLE
            plans.append((pid, replacements[pid], holder_id, record))
        return self._recover(plans)

    def _recover(self, plans):
        region = self.region
        restored = []
        for failed_id, repl_id, holder_id, record in plans:
            # 1. Ship the operator code to the replacement over cellular.
            code = Message(
                src=CONTROLLER_ID, dst=repl_id, size=region.config.code_size,
                kind="code", payload=("code",),
            )
            try:
                yield from region.cellular.send(code)
            except UnknownEndpoint:
                return UNRECOVERABLE
            region.promote_replacement(failed_id, repl_id)
            # 2. Fetch the MRC state from a surviving holder over WiFi.
            state = None
            if record is not None and holder_id is not None:
                _version, state, size, _cuts = record
                fetch = Message(
                    src=holder_id, dst=repl_id, size=size,
                    kind="ckpt_fetch", payload=("ckpt_fetch",),
                )
                try:
                    yield from region.wifi.tcp_unicast(fetch)
                except Unreachable:
                    return UNRECOVERABLE
            node = region.build_single_node(repl_id, state)
            restored.append(node)
        # 3. Re-establish the WiFi mesh around the replacements.
        yield self.sim.timeout(region.config.wifi_rebuild_s)
        # 4. Upstream backup: replay retained tuples into the new nodes.
        for node in restored:
            yield from self._replay_into(node)
        return "recovered"
