"""The ``base`` system: no fault tolerance at all (Section IV-B, scheme 1).

Zero overhead, zero resilience: any phone failure kills the region's
computation.  All relative results in Fig. 8 are normalized to this
scheme's throughput/latency.
"""

from __future__ import annotations

from typing import List

from repro.baselines.interface import FaultToleranceScheme
from repro.core.controller import UNRECOVERABLE


class NoFaultTolerance(FaultToleranceScheme):
    """No preservation, no checkpoints, no recovery."""

    name = "base"

    def on_failure(self, failed_ids: List[str]):
        """Any failure is fatal to the region."""
        return UNRECOVERABLE
