"""The MobiStreams fault-tolerance scheme (``ms-n`` in the figures).

Composes the paper's machinery:

* **Checkpointing** (Section III-B): the controller's clock calls
  :meth:`MobiStreamsScheme.request_checkpoint`; token-origin nodes (node-
  graph sources) snapshot and inject tokens; every other node snapshots
  when it holds tokens on all upstream channels (blocking exactly the
  token-bearing channels meanwhile); snapshots are saved asynchronously
  via multi-phase UDP broadcast to *every* phone in the region
  (Section III-C).
* **Source preservation**: sources retain all input since the MRC, in
  per-checkpoint segments; the data rides the region broadcast so every
  phone holds a copy.
* **Recovery** (Section III-D): any number of simultaneous failures is
  survivable while replacements exist, because every phone has the MRC
  and the preserved input.  The whole region restores to the MRC in
  parallel (local flash reads) and catches up by replaying preserved
  input; already-published results are suppressed by emit-key dedup.
* **Mobility** (Section III-E): a departure triggers urgent-mode routing
  (handled by the region), then a cellular state transfer to a
  replacement phone and a WiFi rebuild — no restore, no catch-up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.baselines.interface import FaultToleranceScheme
from repro.checkpoint.broadcast import BroadcastSettings, broadcast_checkpoint
from repro.checkpoint.store import CheckpointStore, PreservationStore
from repro.checkpoint.token_protocol import TokenTracker
from repro.core.controller import CONTROLLER_ID, UNRECOVERABLE
from repro.core.tuples import Token
from repro.net.cellular import UnknownEndpoint
from repro.net.packet import Message
from repro.net.wifi import Unreachable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import NodeRuntime
    from repro.core.tuples import StreamTuple


class MobiStreamsScheme(FaultToleranceScheme):
    """Token-triggered + broadcast-based checkpointing."""

    wants_checkpoint_clock = True
    #: Section III-D's claim, mechanized by :mod:`repro.verify`: no loss
    #: and no duplication across crash/recovery epochs.
    delivery_contract = "exactly-once"

    def __init__(
        self,
        broadcast: Optional[BroadcastSettings] = None,
        label: str = "ms-8",
    ) -> None:
        super().__init__()
        self.name = label
        self.broadcast_settings = broadcast or BroadcastSettings()
        self.tokens = TokenTracker()
        self.store = CheckpointStore()
        self.preservation = PreservationStore()
        self._version = 0
        self._recovering = False

    # -- checkpoint entry point (controller clock) ----------------------------
    def request_checkpoint(self) -> None:
        """Section III-B step 1: notify the region's token origins."""
        region = self.region
        if region.stopped or region.paused or self._recovering:
            return
        self._version += 1
        version = self._version
        participants = sorted(set(region.placement.used_nodes()))
        self.store.begin_version(version, participants)
        # New preservation segment: input after this cut belongs to v.
        self.preservation.start_segment(version)
        self.trace.record(
            self.sim.now, "checkpoint_requested", region=region.name, version=version
        )
        ng = region.graph.node_graph(region.placement.chain_assignment(0))
        origins = [n for n in ng.nodes if ng.in_degree(n) == 0]
        for origin_id in origins:
            node = region.nodes.get(origin_id)
            if node is None or not node.alive:
                continue
            # Origins snapshot immediately (no upstream tokens to wait for)
            # and inject tokens into the dataflow.
            self._snapshot_and_save(node, version)
            self._forward_tokens(node, version)

    # -- token handling (called from node runtimes) ------------------------------
    def on_token(self, node: "NodeRuntime", channel: Any, token: Token) -> None:
        if self.tokens.is_abandoned(token.version):
            # Late token of a written-off wave (a membership change hit
            # mid-checkpoint): ignore it — never block on it.
            return
        expected = set(self.region.upstream_nodes(node.id))
        node.block_channel(channel)
        ready = self.tokens.record(node.id, token.version, channel, expected)
        self.trace.record(
            self.sim.now, "token_received", region=self.region.name,
            node=node.id, src=channel, version=token.version, ready=ready,
        )
        if ready:
            node.unblock_all()
            self._snapshot_and_save(node, token.version)
            self._forward_tokens(node, token.version)

    def _forward_tokens(self, node: "NodeRuntime", version: int) -> None:
        downstream = self.region.downstream_nodes(node.id)
        token = Token(version=version, origin=node.id)
        for d in downstream:
            # Tokens travel in-band: they enter the same FIFO WiFi path as
            # tuples, so their stream position marks the cut exactly.
            self.region.send_control(node.id, d, ("token", token), size=token.size)
        if not downstream:
            # Sink node: the token percolates back to the controller.
            msg = Message(
                src=node.id, dst=CONTROLLER_ID, size=token.size, kind="token_done",
                payload=("token_done", self.region.name, version),
            )
            self.sim.process(self._to_controller(msg), name="ms.token_done").defuse()

    def _to_controller(self, msg: Message):
        try:
            yield from self.region.cellular.send(msg)
        except UnknownEndpoint:  # pragma: no cover - controller is reliable
            pass

    # -- snapshot + async broadcast save ----------------------------------------
    def _snapshot_and_save(self, node: "NodeRuntime", version: int) -> None:
        """Capture state at the token cut; save it in the background.

        "Checkpointing is done asynchronously, i.e. the node spawns a
        separate thread for checkpointing, so as to minimize overhead."
        """
        snapshot = node.snapshot_state()
        size = max(1, node.state_size())
        self.trace.record(
            self.sim.now, "node_snapshot", region=self.region.name,
            node=node.id, version=version, size=size,
        )
        self.sim.process(
            self._save(node, version, snapshot, size),
            name=f"ms.save.{node.id}.v{version}",
        ).defuse()

    def _save(self, node: "NodeRuntime", version: int, snapshot: Dict, size: int):
        region = self.region
        # Serialization costs CPU on the node (competes with processing).
        ser = node.phone.compute_time(size * 8.0 / region.config.serialize_bps)
        req = node.cpu.request()
        yield req
        try:
            yield self.sim.timeout(ser)
        finally:
            node.cpu.release(req)
        if not node.alive:
            return
        # Multi-phase UDP broadcast + TCP tree to every phone in the region.
        outcome = yield from broadcast_checkpoint(
            self.sim, region.wifi, node.id, size,
            settings=self.broadcast_settings, trace=self.trace,
        )
        # Local copy persists too (every node keeps the MRC data).
        node.phone.storage.write(("ms_ckpt", version), size, payload=snapshot)
        node.phone.storage.delete(("ms_ckpt", version - 2))
        complete = self.store.put(
            version, node.id, frozenset(node.op_names), snapshot, size
        )
        self.trace.record(
            self.sim.now, "node_checkpoint", region=region.name, node=node.id,
            scheme=self.name, version=version, size=size,
            broadcast_bytes=outcome.network_bytes,
        )
        self.trace.count("ckpt.completed")
        if complete:
            self._on_checkpoint_complete(version)

    def _on_checkpoint_complete(self, version: int) -> None:
        self.preservation.on_checkpoint_complete(version)
        # Token FIFO-ness means no pre-`version` token can still arrive;
        # archive the tracker's bookkeeping so it stays O(live waves).
        self.tokens.prune_abandoned(version)
        self.trace.record(
            self.sim.now, "checkpoint_complete", region=self.region.name,
            version=version,
        )
        self.trace.count("ckpt.region_complete")

    # -- source preservation --------------------------------------------------------
    def on_source_ingest(self, node: "NodeRuntime", op_name: str, tup: "StreamTuple") -> None:
        """Preserve all input since the MRC (replicated via broadcast)."""
        self.preservation.record(op_name, tup)
        self.count_preserved(tup.size)

    def _abandon_inflight_checkpoint(self) -> None:
        """Write off every checkpoint wave interrupted by a membership change.

        "If failures happen during a checkpoint is being performed, the
        DSPS can be still recovered as above, just ignoring the partial
        checkpoint data that have been saved so far" — likewise for
        departures and handoffs: a downstream join might otherwise wait
        (with channels blocked) for a token the departed node will never
        forward.

        *Every* pending wave above the MRC is abandoned, not just the
        newest: slow async saves let several waves be in flight at once,
        and a wave left pending here could complete *mid-recovery* —
        advancing the MRC and dropping preservation segments after the
        recovery already chose its restore point, so the catch-up replay
        would silently skip the dropped input (observed as a replay-gap
        invariant violation; the recovery would lose tuples).
        """
        abandoned = False
        for version in range(self.store.mrc_version + 1, self._version + 1):
            if not self.store.is_pending(version):
                continue
            self.tokens.abandon(version)
            self.store.abandon_version(version)
            abandoned = True
            self.trace.record(
                self.sim.now, "checkpoint_abandoned", region=self.region.name,
                version=version,
            )
        if abandoned:
            for node in self.region.nodes.values():
                node.unblock_all()

    # -- failure recovery (Section III-D) ----------------------------------------
    def on_failure(self, failed_ids: List[str]):
        region = self.region
        replacements = region.pick_replacements(failed_ids)
        if replacements is None:
            # "If there are no sufficient healthy nodes in a region after
            # some nodes fail, the controller stops the computation task."
            return UNRECOVERABLE
        return self._recover(failed_ids, replacements)

    def _recover(self, failed_ids: List[str], replacements: Dict[str, str]):
        region = self.region
        self._recovering = True
        region.pause()
        self._abandon_inflight_checkpoint()
        mrc = self.store.mrc_version
        try:
            # 1. Ship operator code to the replacements (parallel, cellular).
            sends = []
            for failed, repl in replacements.items():
                msg = Message(
                    src=CONTROLLER_ID, dst=repl, size=region.config.code_size,
                    kind="code", payload=("code",),
                )
                sends.append(self.sim.process(self._to_phone(msg), name="ms.code"))
            if sends:
                yield self.sim.all_of(sends)
            for failed, repl in replacements.items():
                region.promote_replacement(failed, repl)
                self.tokens.reset_node(failed)

            # 2. Parallel restoration: every node reloads the MRC from its
            # local flash ("Restoration of individual nodes thus occurs
            # simultaneously").
            states: Dict[str, Dict] = {}
            max_size = 1
            for op_key, (snapshot, size) in self.store.states_at_mrc().items():
                ops = set(op_key)
                any_op = next(iter(ops))
                node_id = region.placement.node_for(any_op, 0)
                states[node_id] = snapshot
                max_size = max(max_size, size)
            yield self.sim.timeout(max_size * 8.0 / region.config.flash_read_bps)

            # 3. Rebuild the WiFi mesh and restart every node from the MRC.
            yield self.sim.timeout(region.config.wifi_rebuild_s)
            region.rebuild_nodes(states)

            # 4. Catch-up: sources replay preserved input; emit-key dedup
            # suppresses already-published results at the sinks.
            replayed = self.preservation.replay_from(mrc)
            self.trace.record(
                self.sim.now, "catchup_started", region=region.name,
                tuples=len(replayed), mrc=mrc,
            )
            for op_name, tup in replayed:
                nid = region.placement.node_for(op_name, 0)
                node = region.nodes.get(nid)
                if node is None:
                    continue
                node.deliver(Message(
                    src="__replay__", dst=nid, size=tup.size, kind="tuple",
                    payload=("source_copy", op_name, tup),
                ))
        finally:
            self._recovering = False
            region.resume()
        return "recovered"

    def _to_phone(self, msg: Message):
        try:
            yield from self.region.cellular.send(msg)
        except UnknownEndpoint:
            pass

    # -- mobility (Section III-E) ---------------------------------------------------
    def on_departure(self, phone_id: str):
        region = self.region
        replacements = region.pick_replacements([phone_id])
        if replacements is None:
            return UNRECOVERABLE
        return self._handle_departure(phone_id, replacements[phone_id])

    def on_self_report(self, phone_id: str):
        """Chronic battery: hand the node's work off before the phone dies.

        Same flow as a departure, but the state moves over WiFi (the
        phone is still in range) — no restoration, no catch-up.  With no
        spare phone available the handoff is declined and the eventual
        battery death is recovered like any failure.
        """
        region = self.region
        if phone_id not in set(region.placement.used_nodes()):
            return None
        replacements = region.pick_replacements([phone_id])
        if replacements is None:
            return None
        return self._handle_departure(phone_id, replacements[phone_id],
                                      via_wifi=True)

    def _handle_departure(self, phone_id: str, replacement: str,
                          via_wifi: bool = False):
        """Urgent mode is already active; transfer state, swap the phone in.

        ``via_wifi`` is the proactive (chronic battery) handoff: the phone
        is still in range, so the state moves over the region's WiFi
        instead of the cellular network.
        """
        region = self.region
        node = region.nodes.get(phone_id)
        state: Optional[Dict] = None
        size = 1
        if node is not None and node.alive:
            state = node.snapshot_state()
            size = max(1, node.state_size())
        # 1. Code to the replacement + state transfer over *cellular* —
        # the departing phone is out of WiFi range (Fig. 7, t=3).  Many
        # simultaneous departures contend for the shared uplink here.
        code = Message(src=CONTROLLER_ID, dst=replacement,
                       size=region.config.code_size, kind="code", payload=("code",))
        yield from self._to_phone(code)
        if state is not None and via_wifi and region.wifi.is_member(phone_id):
            transfer = Message(src=phone_id, dst=replacement, size=size,
                               kind="state_transfer", payload=("state",))
            try:
                yield from region.wifi.tcp_unicast(transfer)
            except Unreachable:
                yield from self._to_phone(transfer)
        elif state is not None and region.cellular.is_registered(phone_id):
            transfer = Message(src=phone_id, dst=replacement, size=size,
                               kind="state_transfer", payload=("state",))
            yield from self._to_phone(transfer)
        elif state is None:
            # The departing node was never reachable: fall back to MRC.
            record = self.store.states_at_mrc().get(
                frozenset(region.placement.ops_on(phone_id))
            )
            if record is not None:
                state = record[0]

        # 2. Swap the replacement in and rebuild WiFi links (Fig. 7, t=4).
        # A token wave in flight through the departing node would stall
        # downstream joins forever — write it off first.
        self._abandon_inflight_checkpoint()
        # Tuples still queued at the old node move to the replacement —
        # emit-key dedup drops anything the old node also processed.
        pending = node.pending_payloads() if node is not None else []
        if node is not None:
            node.kill("departed")
        region.promote_replacement(phone_id, replacement)
        self.tokens.reset_node(phone_id)
        new_node = region.build_single_node(replacement, state)
        for payload in pending:
            if payload and payload[0] == "tuple":
                new_node.deliver(Message(
                    src="__handoff__", dst=replacement,
                    size=getattr(payload[2], "size", 0), kind="tuple",
                    payload=payload,
                ))
        yield self.sim.timeout(region.config.wifi_rebuild_s)

        # 3. The departed phone unregisters with the controller.
        region.cellular.unregister(phone_id)
        region.phones.pop(phone_id, None)
        self.trace.record(
            self.sim.now, "departure_state_transfer", region=region.name,
            departed=phone_id, replacement=replacement, size=size,
        )
        return "replaced"
