"""Token bookkeeping for token-triggered checkpointing (Section III-B).

The tracker answers one question per (node, version): *have tokens
arrived on every upstream channel yet?*  The caller (the scheme) blocks
channels as tokens arrive and snapshots when the tracker reports ready —
Fig. 5's node E waiting for both C's and D's tokens.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Set, Tuple


class TokenTracker:
    """Per-(node, version) token arrival state."""

    def __init__(self) -> None:
        self._seen: Dict[Tuple[str, int], Set[Any]] = defaultdict(set)
        self._done: Set[Tuple[str, int]] = set()
        self._abandoned: Set[int] = set()
        #: Versions below the floor are archived: tokens travel in-band
        #: (FIFO), so once checkpoint ``w`` completes no token of any
        #: ``v < w`` can still arrive — their bookkeeping is prunable.
        self._floor = 0

    def record(self, node_id: str, version: int, channel: Any, expected: Set[Any]) -> bool:
        """Register a token from ``channel``; True when the set is complete.

        Returns True exactly once per (node, version) — the transition
        into readiness — so the caller snapshots exactly once even if a
        duplicate token arrives.
        """
        if self.is_abandoned(version):
            return False
        key = (node_id, version)
        if key in self._done:
            return False
        seen = self._seen[key]
        seen.add(channel)
        if expected <= seen:
            self._done.add(key)
            del self._seen[key]
            return True
        return False

    def waiting_channels(self, node_id: str, version: int) -> Set[Any]:
        """Channels whose token has arrived (currently blocked)."""
        return set(self._seen.get((node_id, version), ()))

    def is_done(self, node_id: str, version: int) -> bool:
        """Whether the node already snapshotted this version."""
        return (node_id, version) in self._done

    def reset_node(self, node_id: str) -> None:
        """Forget all state about a node (it failed or was rebuilt)."""
        for key in [k for k in self._seen if k[0] == node_id]:
            del self._seen[key]
        self._done = {k for k in self._done if k[0] != node_id}

    def abandon(self, version: int) -> None:
        """Write off an in-flight checkpoint wave (Section III-D: partial
        checkpoint data is ignored).

        A membership change mid-wave — departure, handoff, recovery —
        can leave a node waiting for a token that will never arrive, with
        channels blocked.  After abandonment, late tokens of ``version``
        are ignored: they neither block channels nor trigger snapshots.
        """
        self._abandoned.add(version)
        for key in [k for k in self._seen if k[1] == version]:
            del self._seen[key]

    def is_abandoned(self, version: int) -> bool:
        """Whether ``version``'s wave was written off (explicitly
        abandoned, or archived below the prune floor — either way a
        late token of it must be ignored, not blocked on)."""
        return version < self._floor or version in self._abandoned

    def prune_abandoned(self, before_version: int) -> None:
        """Archive all bookkeeping below ``before_version``.

        Called when checkpoint ``before_version`` completes: in-band
        FIFO ordering guarantees no earlier version's token can still be
        in flight, so per-version sets stop growing with run length.
        :meth:`is_abandoned` keeps answering True for archived versions.
        """
        if before_version <= self._floor:
            return
        self._floor = before_version
        self._abandoned = {v for v in self._abandoned if v >= before_version}
        for key in [k for k in self._seen if k[1] < before_version]:
            del self._seen[key]
        self._done = {k for k in self._done if k[1] >= before_version}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TokenTracker pending={len(self._seen)} done={len(self._done)}>"
