"""Copy-on-write operator snapshots with structural sharing.

The eager-copy snapshot story (``arr.copy()`` per operator per version)
charges every checkpoint the full state size in *host* memory and wall
time, even though between two checkpoints most state never changes —
EdgeML's partition weights are constant for the whole run, yet every
version used to hold its own copy.  This module replaces the copies
with cheap immutable views:

**The snapshot protocol.**  ``Operator.snapshot()`` returns *frozen*
state: numpy arrays marked read-only (no copy — the operator adopts the
frozen array and only copies when it next mutates, via
:func:`writable`), scalars, and fresh shallow containers.  Everything a
snapshot references is immutable from the holder's point of view, so
:class:`~repro.checkpoint.store.CheckpointStore`, phone storage, and
in-flight broadcasts can all retain the same object.
``Operator.restore()`` must accept frozen state and must not mutate it
(adopt arrays via :func:`adopt_array`; the next in-place write pays the
one copy).

The three helpers operators use:

* :func:`snap_attr` — freeze-and-share one array attribute (the
  snapshot side of CoW).
* :func:`writable` — un-share before an in-place write (the write side
  of CoW; no-op while the array is unshared).
* :func:`adopt_array` — adopt a frozen array on restore without a copy.

**Chunks.**  Large frozen arrays additionally get content-addressed
interning through :class:`ChunkStore`: two snapshots whose bytes are
equal collapse to one stored chunk even when they are distinct objects
(e.g. a restored-then-unmodified model re-checkpointed after a copy).
Chunks are held by weak reference, so pruned versions free their bytes
as usual.

**A/B measurement.**  ``REPRO_SNAPSHOT_MODE=eager`` (or
:func:`configure`) restores the pre-copy-on-write semantics — eager
copies, no sharing, no interning.  The committed
``benchmarks/baselines/pre_pr/BENCH_checkpoint.json`` was recorded in
that mode; keep it working so the before/after memory numbers stay
re-measurable.
"""

from __future__ import annotations

import hashlib
import os
import weakref
from typing import Any, Dict, Optional, Tuple

import numpy as np

#: Arrays at or above this many bytes are content-hashed and interned
#: by :class:`ChunkStore`; smaller ones are cheaper to keep than to hash.
MIN_CHUNK_BYTES = 4096

_MODES = ("cow", "eager")
_mode = os.environ.get("REPRO_SNAPSHOT_MODE", "cow")
if _mode not in _MODES:  # pragma: no cover - env typo guard
    raise ValueError(f"REPRO_SNAPSHOT_MODE must be one of {_MODES}, got {_mode!r}")


def configure(mode: str) -> str:
    """Set the snapshot mode (``"cow"`` or ``"eager"``); returns the old one.

    Exists for A/B benchmarking and tests; production code never calls it.
    """
    global _mode
    if mode not in _MODES:
        raise ValueError(f"snapshot mode must be one of {_MODES}, got {mode!r}")
    old, _mode = _mode, mode
    return old


def eager() -> bool:
    """Whether eager-copy (pre-CoW) semantics are active."""
    return _mode == "eager"


# -- the CoW triple ----------------------------------------------------------
def freeze_array(arr: np.ndarray) -> np.ndarray:
    """Mark ``arr`` read-only in place and return it (O(1), no copy).

    In eager mode this returns a writable copy instead — the historical
    semantics where the snapshot and the operator never share a buffer.
    """
    if eager():
        return arr.copy()
    if arr.flags.writeable:
        arr.flags.writeable = False
    return arr


def writable(arr: np.ndarray) -> np.ndarray:
    """The copy-on-write step: a writable array with ``arr``'s contents.

    Returns ``arr`` itself while it is unshared (still writable); pays
    the one copy only when a snapshot froze it.  Operators call this
    immediately before any in-place mutation of CoW-managed state.
    """
    return arr if arr.flags.writeable else arr.copy()


def adopt_array(value: Any, dtype: Optional[Any] = None) -> np.ndarray:
    """Restore-side adoption: reuse a frozen array without copying.

    A read-only ndarray of the right dtype is shared as-is (the next
    in-place write CoW-copies it, so the snapshot it came from stays
    intact).  Anything else — lists from JSON, writable arrays another
    holder might mutate — is materialized into a fresh array, exactly
    like the historical ``np.array(value)`` restore.
    """
    if (
        isinstance(value, np.ndarray)
        and not value.flags.writeable
        and (dtype is None or value.dtype == np.dtype(dtype))
    ):
        return value
    return np.array(value, dtype=dtype)


def snap_attr(obj: Any, name: str) -> np.ndarray:
    """Snapshot one array attribute of ``obj`` under the CoW protocol.

    Freezes the attribute in place, re-binds it (so eager mode's copy
    does not disturb the operator), and returns the shareable array.
    """
    arr = getattr(obj, name)
    if eager():
        return arr.copy()
    arr = freeze_array(arr)
    setattr(obj, name, arr)
    return arr


# -- whole-state freezing -----------------------------------------------------
def freeze_state(obj: Any) -> Any:
    """Recursively freeze a state object into its shareable snapshot form.

    ndarray leaves are frozen in place (eager mode: copied); containers
    are rebuilt fresh — so the operator mutating its own dicts/lists
    afterwards never reaches into the snapshot — with their types
    preserved (a tuple restores as a tuple, a list as a list); scalars
    and other leaves pass through.  The result is safe to retain
    indefinitely: every holder treats it as immutable.
    """
    if isinstance(obj, np.ndarray):
        return freeze_array(obj)
    if isinstance(obj, dict):
        return {k: freeze_state(v) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(freeze_state(v) for v in obj)
    if isinstance(obj, list):
        return [freeze_state(v) for v in obj]
    return obj


def thaw_state(obj: Any) -> Any:
    """Restore-side counterpart of :func:`freeze_state`.

    Containers are rebuilt fresh (type-preserving, so restored state
    compares equal to what was snapshotted); frozen arrays are adopted
    as-is (CoW pays the copy only if the adopter mutates).
    """
    if isinstance(obj, dict):
        return {k: thaw_state(v) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(thaw_state(v) for v in obj)
    if isinstance(obj, list):
        return [thaw_state(v) for v in obj]
    return obj


# -- content-addressed chunks -------------------------------------------------
def chunk_digest(arr: np.ndarray) -> Tuple[str, str, Tuple[int, ...]]:
    """Content key of one array: (blake2b hex, dtype, shape).

    Hashes the buffer in place (no ``tobytes`` copy) — a transient
    multi-MB copy per put would defeat the peak-memory win interning
    exists for.  Non-contiguous arrays (rare in snapshots) pay one
    contiguous staging copy.
    """
    data = arr if arr.flags.c_contiguous else np.ascontiguousarray(arr)
    h = hashlib.blake2b(data.data, digest_size=16)
    return (h.hexdigest(), str(arr.dtype), arr.shape)


class ChunkStore:
    """Content-addressed interning of large frozen arrays.

    ``intern`` maps byte-equal arrays onto one canonical stored chunk,
    so N versions of an unchanged multi-megabyte state cost one buffer
    plus N references.  Chunks are held weakly: once every snapshot
    referencing a chunk is pruned, the bytes are freed.  An id-keyed
    memo skips re-hashing the common case — the *same* frozen object
    re-interned version after version.
    """

    def __init__(self) -> None:
        #: content key -> weakref to the canonical chunk.
        self._by_digest: Dict[Tuple[str, str, Tuple[int, ...]], "weakref.ref"] = {}
        #: id(arr) -> (weakref used to validate the id, canonical chunk ref).
        self._id_memo: Dict[int, Tuple["weakref.ref", "weakref.ref"]] = {}
        self.hits = 0
        self.misses = 0
        self.shared_bytes = 0

    def intern(self, arr: np.ndarray) -> np.ndarray:
        """The canonical chunk equal to ``arr`` (``arr`` itself on a miss).

        Only frozen arrays are internable: collapsing a writable array
        onto a shared canonical chunk would let a later in-place write
        rewrite every snapshot holding it.
        """
        if arr.flags.writeable:
            raise ValueError("only read-only arrays can be interned as chunks")
        memo = self._id_memo.get(id(arr))
        if memo is not None:
            keyed, canonical = memo[0](), memo[1]()
            if keyed is arr and canonical is not None:
                self.hits += 1
                if canonical is not arr:
                    self.shared_bytes += arr.nbytes
                return canonical
        key = chunk_digest(arr)
        ref = self._by_digest.get(key)
        existing = ref() if ref is not None else None
        if existing is not None:
            self.hits += 1
            if existing is not arr:
                self.shared_bytes += arr.nbytes
            self._remember(arr, existing)
            return existing
        self.misses += 1
        self._by_digest[key] = weakref.ref(arr, self._digest_reaper(key))
        self._remember(arr, arr)
        return arr

    def _remember(self, arr: np.ndarray, canonical: np.ndarray) -> None:
        """Memoize id(arr) -> canonical, self-evicting when ``arr`` dies
        (long runs churn one new array per mutated checkpoint — without
        eviction the memo would grow for the store's whole lifetime)."""
        self._id_memo[id(arr)] = (
            weakref.ref(arr, self._id_reaper(id(arr))),
            weakref.ref(canonical),
        )

    def _digest_reaper(self, key):
        def reap(_ref, *, _key=key, _store=weakref.ref(self)) -> None:
            store = _store()
            # Guard against delayed (gc-cycle) callbacks: only evict if
            # the slot still holds *this* dead ref, not a live
            # replacement interned under the same content key since.
            if store is not None and store._by_digest.get(_key) is _ref:
                store._by_digest.pop(_key, None)
        return reap

    def _id_reaper(self, key: int):
        def reap(_ref, *, _key=key, _store=weakref.ref(self)) -> None:
            store = _store()
            if store is None:
                return
            entry = store._id_memo.get(_key)
            # CPython reuses ids: only evict if the entry still belongs
            # to the dead array, not to a newer one that took its id.
            if entry is not None and entry[0]() is None:
                store._id_memo.pop(_key, None)
        return reap

    def intern_state(self, obj: Any) -> Any:
        """Walk a frozen snapshot, interning large read-only array leaves.

        Anything that is not a big frozen array passes through untouched;
        container identity is preserved unless a leaf was replaced.
        """
        if isinstance(obj, np.ndarray):
            if not obj.flags.writeable and obj.nbytes >= MIN_CHUNK_BYTES:
                return self.intern(obj)
            return obj
        if isinstance(obj, dict):
            out = {k: self.intern_state(v) for k, v in obj.items()}
            return out if any(out[k] is not obj[k] for k in out) else obj
        if isinstance(obj, (tuple, list)):
            out = type(obj)(self.intern_state(v) for v in obj)
            return out if any(a is not b for a, b in zip(out, obj)) else obj
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ChunkStore chunks={len(self._by_digest)} hits={self.hits} "
            f"misses={self.misses} shared_bytes={self.shared_bytes}>"
        )
