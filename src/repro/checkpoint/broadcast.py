"""Multi-phase UDP broadcast checkpointing (Section III-C, Fig. 6).

The algorithm, exactly as the paper walks through it:

1. Partition the checkpoint data into 1 KB blocks (the last block may be
   shorter).  Small datagrams avoid fragmentation losses.
2. Broadcast every (still-needed) block over unreliable UDP — one
   transmission reaches all receivers.
3. Query every receiver for a reception *bitmap* (1 bit per block).
4. AND the bitmaps: any block missed by at least one receiver is a
   candidate for retransmission.
5. Compute the round's **gain** (newly received bytes across receivers)
   and **cost** (bytes transmitted: blocks + bitmap replies).  While the
   cost does not exceed the gain, go to 2 with the missing blocks.
6. Finish over reliable TCP through a relay tree: the residual blocks are
   sent root-to-leaves so every node ends up with the full data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from repro.net.packet import Message
from repro.net.wifi import Unreachable, WifiCell
from repro.util.bitmaps import bitmap_bytes, received_bytes
from repro.util.units import KB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.monitor import Trace


@dataclass
class BroadcastSettings:
    """Protocol parameters (paper defaults)."""

    block_size: int = KB
    #: Safety valve: the cost/gain rule terminates by itself, but a hard
    #: round cap protects against degenerate channels.
    max_rounds: int = 16
    #: Ablation hook: run exactly this many UDP rounds instead of the
    #: paper's cost/gain stopping rule (0 = straight to the TCP tree,
    #: None = use the cost/gain rule).  Rounds still end early once every
    #: receiver holds everything.
    udp_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block size must be positive")
        if self.max_rounds < 1:
            raise ValueError("need at least one round")
        if self.udp_rounds is not None and self.udp_rounds < 0:
            raise ValueError("udp_rounds must be >= 0")


@dataclass
class RoundStats:
    """Bookkeeping for one broadcast phase."""

    blocks_sent: int
    cost_bytes: int
    gain_bytes: int


@dataclass
class BroadcastOutcome:
    """Result of a full broadcast (UDP phases + TCP tree)."""

    total_size: int
    n_blocks: int
    rounds: List[RoundStats] = field(default_factory=list)
    udp_bytes: int = 0
    tcp_bytes: int = 0
    #: receiver -> True once it holds the complete data.
    complete: Dict[Any, bool] = field(default_factory=dict)
    duration: float = 0.0

    @property
    def network_bytes(self) -> int:
        """All bytes this checkpoint placed on the air."""
        return self.udp_bytes + self.tcp_bytes

    @property
    def all_complete(self) -> bool:
        """Whether every receiver holds the full checkpoint."""
        return all(self.complete.values()) if self.complete else True


def relay_tree(members: List[Any], fanout: int = 2) -> Dict[Any, List[Any]]:
    """A balanced relay tree over ``members`` (root = members[0]).

    "The tree structure is created by the controller and changes only when
    a phone fails, enters or leaves the region."
    """
    tree: Dict[Any, List[Any]] = {m: [] for m in members}
    for i, m in enumerate(members):
        if i == 0:
            continue
        parent = members[(i - 1) // fanout]
        tree[parent].append(m)
    return tree


def _subtree_members(tree: Dict[Any, List[Any]], root: Any) -> List[Any]:
    out = [root]
    stack = [root]
    while stack:
        for child in tree[stack.pop()]:
            out.append(child)
            stack.append(child)
    return out


def broadcast_checkpoint(
    sim: "Simulator",
    wifi: WifiCell,
    sender: Any,
    total_size: int,
    settings: Optional[BroadcastSettings] = None,
    trace: Optional["Trace"] = None,
    kind: str = "ckpt",
):
    """Process: push ``total_size`` bytes from ``sender`` to every cell member.

    Returns a :class:`BroadcastOutcome`.  Receivers that leave the cell
    mid-broadcast simply stop accumulating blocks (their flag in
    ``complete`` stays False).
    """
    settings = settings or BroadcastSettings()
    if total_size <= 0:
        return BroadcastOutcome(total_size=total_size, n_blocks=0)
    start = sim.now
    block = settings.block_size
    n_blocks = max(1, math.ceil(total_size / block))
    last_block_size = total_size - (n_blocks - 1) * block

    outcome = BroadcastOutcome(total_size=total_size, n_blocks=n_blocks)
    ft_bytes = trace.counter("ft.network_bytes") if trace is not None else None
    have: Dict[Any, np.ndarray] = {
        m: np.zeros(n_blocks, dtype=bool) for m in wifi.iter_members() if m != sender
    }
    if not have:
        return outcome

    to_send = np.arange(n_blocks)
    prev_total_received = 0

    n_rounds = (settings.max_rounds if settings.udp_rounds is None
                else settings.udp_rounds)
    for _round in range(n_rounds):
        result = yield from wifi.udp_broadcast_round(
            sender, to_send, block, last_block_size=last_block_size, kind=kind
        )
        # Merge this round's receptions into the cumulative bitmaps.
        for member, got in result.received.items():
            bm = have.get(member)
            if bm is not None:
                bm[to_send[got]] = True
        outcome.udp_bytes += result.bytes_sent
        if ft_bytes is not None:
            # Counted as the bytes hit the air (a slow broadcast must not
            # hide its in-flight cost from the Fig. 10 counters).
            ft_bytes.add(result.bytes_sent)
        cost = result.bytes_sent

        # Query every receiver for its bitmap (request + reply).
        reply = bitmap_bytes(n_blocks)
        for member in list(have):
            if not wifi.is_member(member):
                continue
            try:
                yield from wifi.control_exchange(sender, member, reply + 64)
                cost += reply
                outcome.udp_bytes += reply
                if ft_bytes is not None:
                    ft_bytes.add(reply)
            except Unreachable:
                continue

        total_received = sum(
            received_bytes(bm, block, total_size) for bm in have.values()
        )
        gain = total_received - prev_total_received
        prev_total_received = total_received
        outcome.rounds.append(RoundStats(len(to_send), cost, gain))

        anded = np.ones(n_blocks, dtype=bool)
        for member, bm in have.items():
            if wifi.is_member(member):
                anded &= bm
        missing = np.flatnonzero(~anded)
        if missing.size == 0:
            break
        if settings.udp_rounds is None and cost > gain:
            # "until cost exceeds gain" — stop broadcasting, go reliable.
            break
        to_send = missing

    # Final phase: reliable TCP through the relay tree.  Each tree edge
    # carries the union of the blocks still missing in the subtree below.
    present = [m for m in have if wifi.is_member(m)]
    if present:
        tree = relay_tree([sender] + present)
        order = _subtree_members(tree, sender)
        for parent in order:
            for child in tree[parent]:
                sub = _subtree_members(tree, child)
                need = np.zeros(n_blocks, dtype=bool)
                for m in sub:
                    bm = have.get(m)
                    if bm is not None:
                        need |= ~bm
                n_need = int(need.sum())
                if n_need == 0:
                    continue
                nbytes = n_need * block
                if need[-1]:
                    nbytes += last_block_size - block
                msg = Message(src=parent, dst=child, size=nbytes, kind=f"{kind}_tcp",
                              payload=("ckpt_tcp",))
                try:
                    yield from wifi.tcp_unicast(msg)
                except Unreachable:
                    continue
                outcome.tcp_bytes += nbytes
                if ft_bytes is not None:
                    ft_bytes.add(nbytes)
                bm = have.get(child)
                if bm is not None:
                    bm[:] = True

    for member, bm in have.items():
        outcome.complete[member] = bool(bm.all()) and wifi.is_member(member)
    outcome.duration = sim.now - start
    if trace is not None:
        trace.record(
            sim.now, "broadcast_checkpoint", sender=sender, size=total_size,
            rounds=len(outcome.rounds), udp=outcome.udp_bytes, tcp=outcome.tcp_bytes,
        )
    return outcome
