"""Checkpoint versions and source preservation (Sections III-B/III-C).

Both stores model data that is physically replicated on *every* phone in
the region ("The data is saved on every node in the region (all source,
sink, computing and idle nodes)"), so any healthy phone can restore any
node.  The stores track logical content and sizes; the physical broadcast
that replicates them is charged separately by
:mod:`repro.checkpoint.broadcast`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.tuples import StreamTuple

NodeKey = frozenset


class CheckpointStore:
    """Versioned node-state snapshots with completion tracking.

    A version is *complete* once every node that participated has saved
    its state; the Most Recent (complete) Checkpoint — the MRC — is the
    restore point.  Partial checkpoints (a failure hit mid-save) are
    simply ignored, per Section III-D.
    """

    def __init__(self) -> None:
        self._states: Dict[int, Dict[NodeKey, Tuple[Any, int]]] = defaultdict(dict)
        self._needed: Dict[int, set] = {}
        self._saved: Dict[int, set] = defaultdict(set)
        self._complete: List[int] = []

    def begin_version(self, version: int, node_ids: Iterable[str]) -> None:
        """Register the participants of checkpoint ``version``."""
        self._needed[version] = set(node_ids)

    def put(self, version: int, node_id: str, op_key: NodeKey, snapshot: Any, size: int) -> bool:
        """Record one node's saved state; returns True if ``version`` is
        now complete."""
        self._states[version][op_key] = (snapshot, size)
        self._saved[version].add(node_id)
        needed = self._needed.get(version)
        if needed is not None and needed <= self._saved[version]:
            if version not in self._complete:
                self._complete.append(version)
                self._prune(version)
            return True
        return False

    def _prune(self, version: int) -> None:
        """Drop data older than the newest complete version.

        "The input data and the checkpoint data will be kept until the
        next checkpoint of the region is completed."
        """
        for v in list(self._states):
            if v < version:
                del self._states[v]
        self._complete = [v for v in self._complete if v >= version]

    def abandon_version(self, version: int) -> None:
        """Write off an incomplete version (partial data is ignored).

        No-op when the version already completed.  Afterwards the version
        can never become the MRC: its participant set and partial states
        are dropped.
        """
        if version in self._complete:
            return
        self._needed.pop(version, None)
        self._saved.pop(version, None)
        self._states.pop(version, None)

    @property
    def mrc_version(self) -> int:
        """The newest complete version (0 = initial, pre-checkpoint state)."""
        return max(self._complete) if self._complete else 0

    def is_complete(self, version: int) -> bool:
        """Whether every participant saved its state for ``version``."""
        return version in self._complete

    def state_for(self, version: int, op_key: NodeKey) -> Optional[Tuple[Any, int]]:
        """(snapshot, size) of one node's state at ``version``."""
        return self._states.get(version, {}).get(op_key)

    def states_at_mrc(self) -> Dict[NodeKey, Tuple[Any, int]]:
        """All node states at the MRC (empty dict before any checkpoint)."""
        return dict(self._states.get(self.mrc_version, {}))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CheckpointStore mrc={self.mrc_version} versions={sorted(self._states)}>"


class PreservationStore:
    """Source preservation: input retained since the MRC (Section III-B).

    Input is recorded in per-version *segments*: a new segment opens when
    the source emits the token of a checkpoint (the cut), and segments
    older than a completed checkpoint are dropped.  Restoration to MRC v
    replays every retained segment >= v, in order.
    """

    def __init__(self) -> None:
        self._segments: Dict[int, List[Tuple[str, StreamTuple]]] = defaultdict(list)
        self._current = 0
        self.total_bytes = 0

    @property
    def current_version(self) -> int:
        """The segment currently receiving input."""
        return self._current

    def start_segment(self, version: int) -> None:
        """Open the segment for checkpoint ``version`` (the token cut)."""
        if version < self._current:
            raise ValueError(f"segment versions must be monotone ({version} < {self._current})")
        self._current = version

    def record(self, source_op: str, tup: StreamTuple) -> None:
        """Preserve one ingested input tuple."""
        self._segments[self._current].append((source_op, tup))
        self.total_bytes += tup.size

    def on_checkpoint_complete(self, version: int) -> None:
        """Drop segments made obsolete by a completed checkpoint."""
        for v in list(self._segments):
            if v < version:
                for _op, tup in self._segments[v]:
                    self.total_bytes -= tup.size
                del self._segments[v]

    def replay_from(self, version: int) -> List[Tuple[str, StreamTuple]]:
        """All retained input at or after the cut of ``version``, in order."""
        out: List[Tuple[str, StreamTuple]] = []
        for v in sorted(self._segments):
            if v >= version:
                out.extend(self._segments[v])
        return out

    def retained_count(self) -> int:
        """Number of retained tuples (diagnostics)."""
        return sum(len(seg) for seg in self._segments.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PreservationStore segments={sorted(self._segments)} "
            f"tuples={self.retained_count()} bytes={self.total_bytes}>"
        )
