"""Checkpoint versions and source preservation (Sections III-B/III-C).

Both stores model data that is physically replicated on *every* phone in
the region ("The data is saved on every node in the region (all source,
sink, computing and idle nodes)"), so any healthy phone can restore any
node.  The stores track logical content and sizes; the physical broadcast
that replicates them is charged separately by
:mod:`repro.checkpoint.broadcast`.
"""

from __future__ import annotations

from collections import defaultdict
from types import MappingProxyType
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.checkpoint.snapshots import ChunkStore, eager
from repro.core.tuples import StreamTuple

NodeKey = frozenset

#: Shared empty mapping for :meth:`CheckpointStore.states_at_mrc` before
#: any checkpoint completed.
_EMPTY_STATES: Mapping = MappingProxyType({})


class CheckpointStore:
    """Versioned node-state snapshots with completion tracking.

    A version is *complete* once every node that participated has saved
    its state; the Most Recent (complete) Checkpoint — the MRC — is the
    restore point.  Partial checkpoints (a failure hit mid-save) are
    simply ignored, per Section III-D.
    """

    def __init__(self, chunks: Optional[ChunkStore] = None) -> None:
        self._states: Dict[int, Dict[NodeKey, Tuple[Any, int]]] = defaultdict(dict)
        self._needed: Dict[int, set] = {}
        self._saved: Dict[int, set] = defaultdict(set)
        self._complete: List[int] = []
        #: Content-addressed sharing for large snapshot arrays: an
        #: unchanged operator state costs one buffer across versions.
        self.chunks = chunks or ChunkStore()

    def begin_version(self, version: int, node_ids: Iterable[str]) -> None:
        """Register the participants of checkpoint ``version``."""
        self._needed[version] = set(node_ids)

    def put(self, version: int, node_id: str, op_key: NodeKey, snapshot: Any, size: int) -> bool:
        """Record one node's saved state; returns True if ``version`` is
        now complete."""
        if not eager():
            snapshot = self.chunks.intern_state(snapshot)
        self._states[version][op_key] = (snapshot, size)
        self._saved[version].add(node_id)
        needed = self._needed.get(version)
        if needed is not None and needed <= self._saved[version]:
            if version not in self._complete:
                self._complete.append(version)
                self._prune(version)
            return True
        return False

    def _prune(self, version: int) -> None:
        """Drop data older than the newest complete version.

        "The input data and the checkpoint data will be kept until the
        next checkpoint of the region is completed."
        """
        for v in list(self._states):
            if v < version:
                del self._states[v]
        self._complete = [v for v in self._complete if v >= version]

    def abandon_version(self, version: int) -> None:
        """Write off an incomplete version (partial data is ignored).

        No-op when the version already completed.  Afterwards the version
        can never become the MRC: its participant set and partial states
        are dropped.
        """
        if version in self._complete:
            return
        self._needed.pop(version, None)
        self._saved.pop(version, None)
        self._states.pop(version, None)

    @property
    def mrc_version(self) -> int:
        """The newest complete version (0 = initial, pre-checkpoint state)."""
        return max(self._complete) if self._complete else 0

    def is_pending(self, version: int) -> bool:
        """Whether ``version`` was begun and is still collecting saves —
        i.e. it could yet complete.  False once abandoned (the
        participant set is dropped) and for never-begun versions."""
        return version in self._needed and version not in self._complete

    def is_complete(self, version: int) -> bool:
        """Whether every participant saved its state for ``version``."""
        return version in self._complete

    def state_for(self, version: int, op_key: NodeKey) -> Optional[Tuple[Any, int]]:
        """(snapshot, size) of one node's state at ``version``."""
        return self._states.get(version, {}).get(op_key)

    def states_at_mrc(self) -> Mapping[NodeKey, Tuple[Any, int]]:
        """All node states at the MRC (empty mapping before any checkpoint).

        Returns a read-only *view* of the stored version, not a copy:
        every restore used to pay a fresh dict (and recovery can restore
        the same MRC repeatedly).  Callers only iterate and ``.get`` —
        anyone who needs a mutable mapping must copy explicitly.
        """
        states = self._states.get(self.mrc_version)
        if states is None:
            return _EMPTY_STATES
        return MappingProxyType(states)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CheckpointStore mrc={self.mrc_version} versions={sorted(self._states)}>"


class PreservationStore:
    """Source preservation: input retained since the MRC (Section III-B).

    Input is recorded in per-version *segments*: a new segment opens when
    the source emits the token of a checkpoint (the cut), and segments
    older than a completed checkpoint are dropped.  Restoration to MRC v
    replays every retained segment >= v, in order.

    Retained tuples are shared by reference — recording, broadcasting,
    and replaying all hold the same immutable :class:`StreamTuple`
    objects, so preservation never copies payload bytes.  Segment keys
    are kept in insertion order, which *is* version order because
    :meth:`start_segment` enforces monotone versions — so replay walks
    the dict directly instead of re-sorting every key on every call.
    """

    def __init__(self) -> None:
        #: version -> retained (source op, tuple) pairs.  Plain dict, not
        #: defaultdict: keys must only ever be created at the current
        #: (largest) version so iteration order stays sorted.
        self._segments: Dict[int, List[Tuple[str, StreamTuple]]] = {}
        self._current = 0
        self.total_bytes = 0

    @property
    def current_version(self) -> int:
        """The segment currently receiving input."""
        return self._current

    def start_segment(self, version: int) -> None:
        """Open the segment for checkpoint ``version`` (the token cut)."""
        if version < self._current:
            raise ValueError(f"segment versions must be monotone ({version} < {self._current})")
        self._current = version

    def record(self, source_op: str, tup: StreamTuple) -> None:
        """Preserve one ingested input tuple (by reference, no copy)."""
        segment = self._segments.get(self._current)
        if segment is None:
            # New keys only ever appear at the current version, which
            # start_segment keeps monotone — insertion order stays sorted.
            segment = self._segments[self._current] = []
        segment.append((source_op, tup))
        self.total_bytes += tup.size

    def on_checkpoint_complete(self, version: int) -> None:
        """Drop segments made obsolete by a completed checkpoint."""
        for v in list(self._segments):
            if v >= version:
                # Keys are sorted: everything after the first survivor
                # survives too.
                break
            for _op, tup in self._segments[v]:
                self.total_bytes -= tup.size
            del self._segments[v]

    def replay_from(self, version: int) -> List[Tuple[str, StreamTuple]]:
        """All retained input at or after the cut of ``version``, in order.

        Segment keys are maintained sorted (monotone insertion), so this
        is a single ordered walk — the per-recovery ``sorted()`` over
        every retained segment is gone.
        """
        out: List[Tuple[str, StreamTuple]] = []
        for v, segment in self._segments.items():
            if v >= version:
                out.extend(segment)
        return out

    def retained_count(self) -> int:
        """Number of retained tuples (diagnostics)."""
        return sum(len(seg) for seg in self._segments.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PreservationStore segments={sorted(self._segments)} "
            f"tuples={self.retained_count()} bytes={self.total_bytes}>"
        )
