"""MobiStreams fault tolerance: the paper's primary contribution.

Two techniques (Section III) reduce checkpointing overhead enough to make
a phone-based DSPS practical:

* **Token-triggered checkpointing** (:mod:`repro.checkpoint.token_protocol`)
  — source-injected tokens trickle down the node graph; each node
  snapshots when it holds tokens from every upstream channel, blocking
  only the token-bearing channels meanwhile.  No tuple is saved twice or
  missed.
* **Broadcast-based checkpointing** (:mod:`repro.checkpoint.broadcast`)
  — snapshots are pushed to every other phone with multi-phase unreliable
  UDP broadcast (1 KB blocks, per-receiver bitmaps, iterate while
  gain ≥ cost) plus a final reliable TCP-tree phase.

:class:`~repro.checkpoint.scheme.MobiStreamsScheme` composes them with
source preservation, whole-region recovery + catch-up (Section III-D) and
departure handling (urgent mode, state transfer, replacement —
Section III-E).
"""

from repro.checkpoint.broadcast import (
    BroadcastOutcome,
    BroadcastSettings,
    broadcast_checkpoint,
)
from repro.checkpoint.scheme import MobiStreamsScheme
from repro.checkpoint.snapshots import (
    ChunkStore,
    adopt_array,
    freeze_array,
    freeze_state,
    snap_attr,
    thaw_state,
    writable,
)
from repro.checkpoint.store import CheckpointStore, PreservationStore
from repro.checkpoint.token_protocol import TokenTracker

__all__ = [
    "BroadcastOutcome",
    "BroadcastSettings",
    "CheckpointStore",
    "ChunkStore",
    "MobiStreamsScheme",
    "PreservationStore",
    "TokenTracker",
    "adopt_array",
    "broadcast_checkpoint",
    "freeze_array",
    "freeze_state",
    "snap_attr",
    "thaw_state",
    "writable",
]
