"""MobiStreams reproduction: a reliable DSPS for (simulated) mobile devices.

Reproduces Wang & Peh, "MobiStreams: A Reliable Distributed Stream
Processing System for Mobile Devices", IPDPS 2014 — the full system
(token-triggered + broadcast-based checkpointing, recovery, mobility),
all four baseline fault-tolerance schemes, both driving applications,
and every table/figure of the evaluation, on a discrete-event simulation
of phones, ad-hoc WiFi, and cellular networks.

Quick tour::

    from repro import MobiStreamsSystem, SystemConfig
    from repro.apps import BCPApp
    from repro.checkpoint import MobiStreamsScheme

    system = MobiStreamsSystem(SystemConfig(), BCPApp(), MobiStreamsScheme)
    system.run(600.0)
    print(system.metrics(warmup_s=100.0).per_region["region0"])
"""

from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.metrics import MetricsReport, compute_metrics
from repro.core.operator import (
    FilterOperator,
    MapOperator,
    Operator,
    OperatorContext,
    SinkOperator,
    SourceOperator,
)
from repro.core.placement import Placement
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.core.tuples import StreamTuple, Token
from repro.core.windows import (
    SlidingCountWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
)

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "FilterOperator",
    "MapOperator",
    "MetricsReport",
    "MobiStreamsSystem",
    "Operator",
    "OperatorContext",
    "Placement",
    "QueryGraph",
    "SinkOperator",
    "SlidingCountWindow",
    "SourceOperator",
    "StreamTuple",
    "SystemConfig",
    "Token",
    "TumblingCountWindow",
    "TumblingTimeWindow",
    "compute_metrics",
]
