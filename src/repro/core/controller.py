"""The global controller (Section III).

"A MobiStreams system requires a controller — a global server node that
can connect to all the phones in the regions via the cellular network.
The controller is lightweight — it is used only for control purposes and
is not involved in any data transmission between phones. [...] the
controller is deemed reliable."

Responsibilities implemented here:

* **Failure detection** — ping source nodes every 30 s with a 10 s
  timeout; accept failure reports from upstream neighbours.
* **Recovery orchestration** — batch burst reports briefly (simultaneous
  failures arrive as several reports), then hand the failed set to the
  region's fault-tolerance scheme; stop/bypass the region when the scheme
  declares it unrecoverable or phones run out.
* **Departure handling** — confirm via GPS that the phone left (vs. WiFi
  disturbance), then drive the scheme's state-transfer/replacement path.
* **Checkpoint triggering** — notify a region's source nodes each period
  (schemes that want coordinated checkpoints register for this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.net.packet import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.region import Region
    from repro.net.cellular import CellularNetwork
    from repro.sim.core import Simulator
    from repro.sim.monitor import Trace

CONTROLLER_ID = "controller"

#: Sentinel a scheme returns when the failure set exceeds its tolerance.
UNRECOVERABLE = "unrecoverable"


@dataclass
class ControllerConfig:
    """Detection/orchestration timing (Section IV defaults)."""

    ping_period_s: float = 30.0
    ping_timeout_s: float = 10.0
    #: Window to coalesce burst failure reports into one recovery.
    report_batch_s: float = 1.0
    #: GPS-based departure confirmation delay (tentative WiFi rebuilds).
    departure_confirm_s: float = 2.0

    def __post_init__(self) -> None:
        if self.ping_period_s <= 0 or self.ping_timeout_s <= 0:
            raise ValueError("ping periods must be positive")


class Controller:
    """The reliable control-plane node."""

    def __init__(
        self,
        sim: "Simulator",
        cellular: "CellularNetwork",
        trace: "Trace",
        config: Optional[ControllerConfig] = None,
    ) -> None:
        self.sim = sim
        self.cellular = cellular
        self.trace = trace
        self.config = config or ControllerConfig()
        self.regions: List["Region"] = []
        self._pending_failures: Dict[str, Set[str]] = {}
        self._recovering: Set[str] = set()
        self._handled: Dict[str, Set[str]] = {}
        cellular.register_wired(CONTROLLER_ID, self._deliver)

    # -- wiring -------------------------------------------------------------
    def manage(self, region: "Region") -> None:
        """Take responsibility for a region."""
        self.regions.append(region)
        region.controller = self
        self._pending_failures[region.name] = set()
        self._handled[region.name] = set()
        self.sim.process(self._ping_loop(region), name=f"ctl.ping.{region.name}").defuse()

    def _deliver(self, msg: Message) -> None:
        """Cellular messages addressed to the controller (reports, acks)."""
        payload = msg.payload
        if isinstance(payload, tuple) and payload and payload[0] == "failure_report":
            _, region_name, phone_id = payload
            region = self._region_by_name(region_name)
            if region is not None:
                self.on_failure_report(region, phone_id, reporter=msg.src)

    def _region_by_name(self, name: str) -> Optional["Region"]:
        for r in self.regions:
            if r.name == name:
                return r
        return None

    # -- failure detection ----------------------------------------------------
    def _ping_loop(self, region: "Region"):
        """Ping the region's source nodes over cellular (Section III-D)."""
        while not region.stopped:
            yield self.sim.timeout(self.config.ping_period_s)
            if region.stopped or region.paused:
                continue
            for sid in region.source_node_ids():
                phone = region.phones.get(sid)
                # Charge the ping round-trip (tiny messages).
                yield self.sim.timeout(self.config.ping_timeout_s / 10.0)
                self.trace.count("ctl.pings")
                if phone is None or not phone.alive or not self.cellular.is_registered(sid):
                    # No response within the timeout: declared failed.
                    yield self.sim.timeout(self.config.ping_timeout_s)
                    self.on_failure_report(region, sid, reporter=CONTROLLER_ID)

    def on_failure_report(self, region: "Region", phone_id: str, reporter: str = "") -> None:
        """A node (or the ping loop) reports ``phone_id`` as failed."""
        if region.stopped:
            return
        handled = self._handled[region.name]
        if phone_id in handled:
            return
        phone = region.phones.get(phone_id)
        if phone is not None and phone.alive and not region.wifi.is_member(phone_id):
            # Alive but out of WiFi: that's a departure, not a failure.
            self.on_departure_report(region, phone_id)
            return
        handled.add(phone_id)
        pending = self._pending_failures[region.name]
        start_batch = not pending and region.name not in self._recovering
        pending.add(phone_id)
        self.trace.record(
            self.sim.now, "failure_reported", region=region.name,
            phone=phone_id, reporter=reporter,
        )
        if start_batch:
            self.sim.process(
                self._recovery_driver(region), name=f"ctl.recover.{region.name}"
            ).defuse()

    def on_urgent_report(self, region: "Region", src: str, dst: str) -> None:
        """Nodes report urgent (cellular) mode; informational."""
        self.trace.count("ctl.urgent_reports")

    def on_self_report(self, region: "Region", phone_id: str) -> None:
        """A node actively reports its own imminent failure (chronic
        battery, Section III-D).  Schemes that support it hand the node's
        work off *before* the phone dies; others wait for the crash."""
        if region.stopped or phone_id in self._handled[region.name]:
            return
        self.trace.record(
            self.sim.now, "self_report", region=region.name, phone=phone_id
        )
        handler = region.scheme.on_self_report(phone_id)
        if handler is None or handler == UNRECOVERABLE:
            # No proactive handoff available; the eventual battery death
            # will arrive as an ordinary failure report.
            return
        self._handled[region.name].add(phone_id)
        self.sim.process(
            self._handoff_driver(region, phone_id, handler),
            name=f"ctl.handoff.{region.name}",
        ).defuse()

    def _handoff_driver(self, region: "Region", phone_id: str, handler):
        outcome = yield self.sim.process(handler, name=f"{region.name}.scheme.handoff")
        self.trace.record(
            self.sim.now, "handoff_finished", region=region.name,
            phone=phone_id, outcome=outcome,
        )

    # -- recovery orchestration --------------------------------------------------
    def _recovery_driver(self, region: "Region"):
        """Batch burst reports, then run the scheme's recovery."""
        yield self.sim.timeout(self.config.report_batch_s)
        while self._pending_failures[region.name]:
            pending = self._pending_failures[region.name]
            # Burst failures are detected at different times (pings vs.
            # neighbour probes); recover the *whole* dead set at once, not
            # just the phones reported so far.
            for nid in region.placement.used_nodes():
                phone = region.phones.get(nid)
                if phone is None or not phone.alive:
                    pending.add(nid)
                    self._handled[region.name].add(nid)
            failed = sorted(pending)
            pending.clear()
            self._recovering.add(region.name)
            self.trace.record(
                self.sim.now, "recovery_started", region=region.name, failed=failed
            )
            t0 = self.sim.now
            outcome = yield self.sim.process(
                self._run_recovery(region, failed), name=f"ctl.recovery.{region.name}"
            )
            self._recovering.discard(region.name)
            self.trace.record(
                self.sim.now,
                "recovery_finished",
                region=region.name,
                failed=failed,
                outcome=outcome,
                duration=self.sim.now - t0,
            )
            if outcome == UNRECOVERABLE:
                region.stop(reason=f"unrecoverable failure of {failed}")
                return
            # More failures may have been reported while recovering.
            yield self.sim.timeout(self.config.report_batch_s)

    def _run_recovery(self, region: "Region", failed: List[str]):
        recovery = region.scheme.on_failure(failed)
        if recovery == UNRECOVERABLE or recovery is None:
            return UNRECOVERABLE
        try:
            outcome = yield self.sim.process(recovery, name=f"{region.name}.scheme.recover")
        except Exception as exc:
            # A broken recovery must not hang the region silently.
            self.trace.record(
                self.sim.now, "recovery_error", region=region.name, error=repr(exc)
            )
            return UNRECOVERABLE
        return outcome

    # -- departures ----------------------------------------------------------
    def on_departure_report(self, region: "Region", phone_id: str) -> None:
        """A phone appears to have left the region (broken WiFi links)."""
        if region.stopped:
            return
        handled = self._handled[region.name]
        key = f"dep:{phone_id}"
        if key in handled or phone_id in handled:
            return
        handled.add(key)
        self.sim.process(
            self._departure_driver(region, phone_id), name=f"ctl.depart.{region.name}"
        ).defuse()

    def _departure_driver(self, region: "Region", phone_id: str):
        # GPS check: distinguish departure from WiFi disturbance
        # (Section III-E); a couple of tentative rebuild attempts.
        yield self.sim.timeout(self.config.departure_confirm_s)
        phone = region.phones.get(phone_id)
        if phone is None or not phone.alive:
            # It actually died while we were confirming.
            self.on_failure_report(region, phone_id, reporter=CONTROLLER_ID)
            return
        self.trace.record(self.sim.now, "departure_confirmed", region=region.name, phone=phone_id)
        handler = region.scheme.on_departure(phone_id)
        if handler == UNRECOVERABLE or handler is None:
            region.stop(reason=f"departure of {phone_id} not handled")
            return
        outcome = yield self.sim.process(handler, name=f"{region.name}.scheme.depart")
        self.trace.record(
            self.sim.now, "departure_handled", region=region.name,
            phone=phone_id, outcome=outcome,
        )

    # -- checkpoint triggering -----------------------------------------------------
    def start_checkpoint_clock(self, region: "Region", period_s: float) -> None:
        """Periodically ask the region's scheme to checkpoint (Section III-B,
        step one: "the controller sends a notification to the source nodes")."""
        if period_s <= 0:
            raise ValueError("checkpoint period must be positive")
        self.sim.process(
            self._checkpoint_clock(region, period_s), name=f"ctl.ckpt.{region.name}"
        ).defuse()

    def _checkpoint_clock(self, region: "Region", period_s: float):
        while not region.stopped:
            yield self.sim.timeout(period_s)
            if region.stopped or region.paused:
                continue
            # Notification reaches source nodes over cellular.
            yield self.sim.timeout(self.cellular.config.latency_s)
            region.scheme.request_checkpoint()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Controller regions={len(self.regions)}>"
