"""Application specification: what a stream application provides.

A MobiStreams application (BCP, SignalGuru, or a user's own) supplies
three factories, all pure so that every region and every replication
chain gets independent instances:

* :meth:`AppSpec.build_graph` — a fresh :class:`~repro.core.graph.QueryGraph`.
* :meth:`AppSpec.build_placement` — operators -> phones for one region.
* :meth:`AppSpec.build_workloads` — per-source workload iterators for one
  region (sources without a workload receive only inter-region input).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.core.graph import QueryGraph
from repro.core.placement import Placement

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


class AppSpec(ABC):
    """Base class for stream applications."""

    #: Human-readable application name.
    name: str = "app"

    @abstractmethod
    def build_graph(self) -> QueryGraph:
        """A fresh query network (independent operator instances)."""

    @abstractmethod
    def build_placement(self, phone_ids: List[str]) -> Placement:
        """Assign operators to the region's computing phones (factor 1).

        Schemes that need replication call ``.replicate(...)`` on the
        result themselves.
        """

    @abstractmethod
    def build_workloads(
        self, rng: "RngRegistry", region_index: int
    ) -> Dict[str, Iterable]:
        """Map source-operator name -> workload iterator for one region.

        Each iterator yields ``(inter_arrival_s, payload, size_bytes)``.
        Only locally-sensed sources (cameras, sensors) appear here; the
        inter-region entry source is fed by the upstream region.
        """

    def compute_phones_needed(self) -> int:
        """How many computing phones one region requires (default 8)."""
        return 8
