"""The query network: a DAG of operators (Section II-A, Fig. 1a).

Built on :mod:`networkx`.  The graph also derives the *high-level* query
network between nodes (Fig. 1b) once a placement maps operators to
phones — the token protocol, failure monitoring, and stream routing all
operate at node granularity ("a group of operators on a node can be
treated as a single super operator").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.core.operator import Operator


class GraphError(Exception):
    """Raised for malformed query networks."""


class QueryGraph:
    """A directed acyclic graph of named operators."""

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._operators: Dict[str, Operator] = {}

    # -- construction ------------------------------------------------------
    def add_operator(self, op: Operator) -> "QueryGraph":
        """Add an operator (name must be unique). Returns self for chaining."""
        if op.name in self._operators:
            raise GraphError(f"duplicate operator name {op.name!r}")
        self._operators[op.name] = op
        self._g.add_node(op.name)
        return self

    def connect(self, upstream: str, downstream: str) -> "QueryGraph":
        """Add a stream from ``upstream`` to ``downstream``."""
        for name in (upstream, downstream):
            if name not in self._operators:
                raise GraphError(f"unknown operator {name!r}")
        if upstream == downstream:
            raise GraphError("self-loops are not allowed")
        self._g.add_edge(upstream, downstream)
        return self

    def chain(self, *names: str) -> "QueryGraph":
        """Connect a linear pipeline ``names[0] -> names[1] -> ...``."""
        for a, b in zip(names, names[1:]):
            self.connect(a, b)
        return self

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants of a query network.

        * acyclic,
        * at least one source and one sink operator,
        * source operators have no upstream edges; sinks no downstream,
        * every operator reachable from some source,
        * every operator reaches some sink.
        """
        if not self._operators:
            raise GraphError("empty query network")
        if not nx.is_directed_acyclic_graph(self._g):
            raise GraphError("query network contains a cycle")
        sources = self.source_names()
        sinks = self.sink_names()
        if not sources:
            raise GraphError("query network has no source operator")
        if not sinks:
            raise GraphError("query network has no sink operator")
        for s in sources:
            if self.upstream_of(s):
                raise GraphError(f"source {s!r} has upstream edges")
        for s in sinks:
            if self.downstream_of(s):
                raise GraphError(f"sink {s!r} has downstream edges")
        reachable = set()
        for s in sources:
            reachable |= {s} | nx.descendants(self._g, s)
        if reachable != set(self._operators):
            missing = set(self._operators) - reachable
            raise GraphError(f"operators unreachable from sources: {sorted(missing)}")
        reaches_sink = set()
        for s in sinks:
            reaches_sink |= {s} | nx.ancestors(self._g, s)
        if reaches_sink != set(self._operators):
            dangling = set(self._operators) - reaches_sink
            raise GraphError(f"operators that reach no sink: {sorted(dangling)}")

    # -- queries --------------------------------------------------------------
    def operator(self, name: str) -> Operator:
        """The operator object called ``name``."""
        return self._operators[name]

    def operators(self) -> List[Operator]:
        """All operators, in insertion order."""
        return list(self._operators.values())

    def names(self) -> List[str]:
        """All operator names, in insertion order."""
        return list(self._operators)

    def __contains__(self, name: str) -> bool:
        return name in self._operators

    def __len__(self) -> int:
        return len(self._operators)

    def upstream_of(self, name: str) -> List[str]:
        """Direct upstream operator names."""
        return list(self._g.predecessors(name))

    def downstream_of(self, name: str) -> List[str]:
        """Direct downstream operator names."""
        return list(self._g.successors(name))

    def edges(self) -> List[Tuple[str, str]]:
        """All (upstream, downstream) operator pairs."""
        return list(self._g.edges())

    def source_names(self) -> List[str]:
        """Operators flagged as sources."""
        return [n for n, op in self._operators.items() if op.is_source]

    def sink_names(self) -> List[str]:
        """Operators flagged as sinks."""
        return [n for n, op in self._operators.items() if op.is_sink]

    def topological_order(self) -> List[str]:
        """Operator names in a topological order."""
        return list(nx.topological_sort(self._g))

    # -- node-level derivation (Fig. 1b) --------------------------------------
    def node_graph(self, assignment: Dict[str, str]) -> nx.DiGraph:
        """Collapse the operator DAG onto nodes via ``assignment``.

        ``assignment`` maps operator name -> node id.  Edges between
        operators on the same node vanish (intra-node data pass); edges
        between different nodes become node-level streams.  Raises
        :class:`GraphError` if the collapsed graph has a cycle (a
        placement must not create node-level cycles, or the token protocol
        would deadlock).
        """
        ng = nx.DiGraph()
        for op_name in self._operators:
            if op_name not in assignment:
                raise GraphError(f"operator {op_name!r} has no node assignment")
            ng.add_node(assignment[op_name])
        for u, v in self._g.edges():
            nu, nv = assignment[u], assignment[v]
            if nu != nv:
                ng.add_edge(nu, nv)
        if not nx.is_directed_acyclic_graph(ng):
            raise GraphError("placement induces a cycle between nodes")
        return ng

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<QueryGraph ops={len(self._operators)} edges={self._g.number_of_edges()}>"
