"""Windowed operators: count and time windows with checkpointable state.

The paper's related work singles out windows as the hard case for
upstream backup ("upstream backup cannot effectively support operators
with large windows" — rebuilding a large window means replaying its
whole extent).  Checkpoint-based schemes, MobiStreams included, carry
the window *contents* in the operator state instead, so a restore is
O(window) flash bytes rather than O(window) recomputation.

Three operators:

* :class:`TumblingCountWindow` — emit an aggregate every ``size`` tuples.
* :class:`SlidingCountWindow` — aggregate over the last ``size`` tuples,
  emitted every ``step`` tuples.
* :class:`TumblingTimeWindow` — aggregate over fixed wall-clock spans of
  virtual time (emission piggybacks on tuple arrivals, as in any
  event-driven DSPS without timers).

Aggregates are pure functions ``(payloads: list) -> payload``.  Window
state (buffer + phase) is fully snapshot/restored, so windows survive
recovery without replaying their extent.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.core.operator import Operator, OperatorContext
from repro.core.tuples import StreamTuple

#: Bookkeeping bytes charged per buffered tuple beyond its payload size.
PER_TUPLE_OVERHEAD = 16


class _WindowBase(Operator):
    """Shared machinery: a bounded buffer of (payload, size) pairs."""

    def __init__(self, name: str, aggregate: Callable[[List[Any]], Any],
                 out_size: int = 256, cost_s: float = 1e-3) -> None:
        super().__init__(name)
        if out_size < 0:
            raise ValueError("out_size must be >= 0")
        self._aggregate = aggregate
        self._out_size = out_size
        self._cost = cost_s
        self._buffer: Deque[Tuple[Any, int]] = deque()

    # -- state (checkpointing) -------------------------------------------------
    def state_size(self) -> int:
        """Window contents dominate the checkpoint size."""
        return sum(size + PER_TUPLE_OVERHEAD for _p, size in self._buffer)

    def snapshot(self) -> Any:
        return {"buffer": list(self._buffer)}

    def restore(self, state: Any) -> None:
        self._buffer = deque(state["buffer"]) if state else deque()

    # -- helpers -----------------------------------------------------------
    def _emit(self, tup: StreamTuple, payloads: List[Any]) -> List[StreamTuple]:
        return [tup.derive(self._aggregate(payloads), self._out_size)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    @property
    def window_fill(self) -> int:
        """Buffered tuples (diagnostics)."""
        return len(self._buffer)


class TumblingCountWindow(_WindowBase):
    """Aggregate every ``size`` consecutive tuples, then start fresh."""

    def __init__(self, name: str, size: int,
                 aggregate: Callable[[List[Any]], Any],
                 out_size: int = 256, cost_s: float = 1e-3) -> None:
        super().__init__(name, aggregate, out_size, cost_s)
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        self._buffer.append((tup.payload, tup.size))
        if len(self._buffer) < self.size:
            return []
        payloads = [p for p, _s in self._buffer]
        self._buffer.clear()
        return self._emit(tup, payloads)


class SlidingCountWindow(_WindowBase):
    """Aggregate the last ``size`` tuples, every ``step`` arrivals.

    ``step == size`` degenerates to a tumbling window; ``step < size``
    overlaps (the classic sliding case whose state upstream backup
    cannot cheaply rebuild).
    """

    def __init__(self, name: str, size: int, step: int,
                 aggregate: Callable[[List[Any]], Any],
                 out_size: int = 256, cost_s: float = 1e-3) -> None:
        super().__init__(name, aggregate, out_size, cost_s)
        if size < 1 or step < 1:
            raise ValueError("size and step must be >= 1")
        if step > size:
            raise ValueError("step must not exceed size (gaps lose data)")
        self.size = size
        self.step = step
        self._since_emit = 0

    def state_size(self) -> int:
        return super().state_size() + 8

    def snapshot(self) -> Any:
        return {"buffer": list(self._buffer), "since": self._since_emit}

    def restore(self, state: Any) -> None:
        if state:
            self._buffer = deque(state["buffer"])
            self._since_emit = state["since"]
        else:
            self._buffer = deque()
            self._since_emit = 0

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        self._buffer.append((tup.payload, tup.size))
        while len(self._buffer) > self.size:
            self._buffer.popleft()
        self._since_emit += 1
        if len(self._buffer) < self.size or self._since_emit < self.step:
            return []
        self._since_emit = 0
        return self._emit(tup, [p for p, _s in self._buffer])


class TumblingTimeWindow(_WindowBase):
    """Aggregate tuples whose arrival falls in ``[k·width, (k+1)·width)``.

    A window closes when the first tuple of the *next* span arrives (no
    timers in the dataflow); the closing tuple opens the new span.
    """

    def __init__(self, name: str, width_s: float,
                 aggregate: Callable[[List[Any]], Any],
                 out_size: int = 256, cost_s: float = 1e-3) -> None:
        super().__init__(name, aggregate, out_size, cost_s)
        if width_s <= 0:
            raise ValueError("window width must be positive")
        self.width_s = width_s
        self._span: Optional[int] = None

    def snapshot(self) -> Any:
        return {"buffer": list(self._buffer), "span": self._span}

    def restore(self, state: Any) -> None:
        if state:
            self._buffer = deque(state["buffer"])
            self._span = state["span"]
        else:
            self._buffer = deque()
            self._span = None

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        span = int(ctx.now // self.width_s)
        out: List[StreamTuple] = []
        if self._span is not None and span != self._span and self._buffer:
            out = self._emit(tup, [p for p, _s in self._buffer])
            self._buffer.clear()
        self._span = span
        self._buffer.append((tup.payload, tup.size))
        return out
