"""The full MobiStreams deployment: cascaded regions + controller.

Assembles everything (Fig. 4): N regions cascaded in a line (the paper's
experiments use 4 — bus stops along a route, intersections along a road),
one cellular network, one reliable controller, one scheme instance per
region, phones placed geometrically inside each region's area.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.core.app import AppSpec
from repro.core.controller import Controller, ControllerConfig
from repro.core.metrics import MetricsReport, compute_metrics
from repro.core.region import Region, RegionConfig
from repro.device.failures import FailureInjector
from repro.device.fleet import Fleet
from repro.device.mobility import MobilityModel
from repro.device.phone import Phone, PhoneConfig
from repro.net.cellular import CellularConfig, CellularNetwork
from repro.net.topology import Position, RegionArea
from repro.net.wifi import WifiCell, WifiConfig
from repro.sim.core import Simulator
from repro.sim.monitor import Trace
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Distance between cascaded regions (far beyond WiFi range).
REGION_SPACING_M = 500.0


@dataclass
class RegionBuildSpec:
    """Per-region overrides for a heterogeneous deployment.

    Any field left at ``None`` falls back to the :class:`SystemConfig`
    default, so a spec only states what differs (a slow fleet, a region
    that starts half-charged, ...).
    """

    #: Computing phones in this region (None -> ``phones_per_region``).
    phones: Optional[int] = None
    #: Idle spare phones (None -> ``idle_per_region``).
    idle: Optional[int] = None
    #: Hardware profile for this region's phones (None -> ``phone``).
    phone: Optional[PhoneConfig] = None
    #: Initial battery charge of this region's phones.
    charge_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.charge_fraction <= 1.0:
            raise ValueError("charge_fraction must be in (0, 1]")


@dataclass
class SystemConfig:
    """Deployment-wide configuration (defaults follow Section IV)."""

    n_regions: int = 4
    phones_per_region: int = 8
    idle_per_region: int = 2
    master_seed: int = 0
    #: Checkpoint period; "The checkpoint period in MobiStreams is 5 minutes."
    checkpoint_period_s: float = 300.0
    wifi: WifiConfig = field(default_factory=WifiConfig)
    cellular: CellularConfig = field(default_factory=CellularConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    phone: PhoneConfig = field(default_factory=PhoneConfig)
    region_defaults: RegionConfig = field(default_factory=lambda: RegionConfig(name="_"))
    #: Per-region heterogeneity: entry r overrides region r; a short list
    #: (or ``None`` entries) leaves the remaining regions at the defaults.
    region_builds: Optional[List[Optional[RegionBuildSpec]]] = None
    trace_enabled: bool = True
    #: Device-state storage: "object" (one Phone/Battery per phone, the
    #: default and the parity oracle) or "fleet" (numpy struct-of-arrays
    #: behind duck-typed proxies — the large-n backend).
    device_backend: str = "object"

    def __post_init__(self) -> None:
        if self.n_regions < 1:
            raise ValueError("need at least one region")
        if self.phones_per_region < 1:
            raise ValueError("need at least one phone per region")
        if self.region_builds is not None and len(self.region_builds) > self.n_regions:
            raise ValueError("more region_builds entries than regions")
        if self.device_backend not in ("object", "fleet"):
            raise ValueError(
                f"unknown device_backend {self.device_backend!r}; "
                "expected 'object' or 'fleet'"
            )

    def region_build(self, index: int) -> RegionBuildSpec:
        """The effective build spec for region ``index``."""
        spec = None
        if self.region_builds is not None and index < len(self.region_builds):
            spec = self.region_builds[index]
        return spec if spec is not None else RegionBuildSpec()


class MobiStreamsSystem:
    """A runnable multi-region MobiStreams deployment."""

    def __init__(
        self,
        config: SystemConfig,
        app: AppSpec,
        scheme_factory: Callable[[], Any],
    ) -> None:
        self.config = config
        self.app = app
        self.sim = Simulator()
        #: Vectorized device storage when device_backend == "fleet".
        self.fleet: Optional[Fleet] = (
            Fleet() if config.device_backend == "fleet" else None
        )
        self.rng = RngRegistry(config.master_seed)
        self.trace = Trace(enabled=config.trace_enabled)
        self.cellular = CellularNetwork(self.sim, self.rng, config.cellular, trace=self.trace)
        self.controller = Controller(self.sim, self.cellular, self.trace, config.controller)
        self.injector = FailureInjector(self.sim, trace=self.trace)
        self.injector.on_crash(self._apply_crash)
        self.injector.on_liveness(self._phone_alive)
        self.regions: List[Region] = []
        self.schemes: List[Any] = []
        self.areas: List[RegionArea] = []
        self._phone_region: Dict[str, Region] = {}
        self._compute_counts: List[int] = []
        self._join_seq = 0
        self._build_regions(scheme_factory)
        self._started = False

    # -- construction ------------------------------------------------------
    def _build_regions(self, scheme_factory: Callable[[], Any]) -> None:
        cfg = self.config
        geo_rng = self.rng.stream("geometry")
        for r in range(cfg.n_regions):
            name = f"region{r}"
            build = cfg.region_build(r)
            n_compute = build.phones if build.phones is not None else cfg.phones_per_region
            n_idle = build.idle if build.idle is not None else cfg.idle_per_region
            phone_cfg = build.phone if build.phone is not None else cfg.phone
            area = RegionArea(Position(REGION_SPACING_M * r, 0.0), radius=10.0)
            self.areas.append(area)
            self._compute_counts.append(n_compute)
            compute = [
                self._new_phone(f"{name}.p{i}", area.random_point(geo_rng),
                                phone_cfg, build.charge_fraction)
                for i in range(n_compute)
            ]
            idle = [
                self._new_phone(f"{name}.idle{i}", area.random_point(geo_rng),
                                phone_cfg, build.charge_fraction)
                for i in range(n_idle)
            ]
            wifi = WifiCell(self.sim, self.rng, cfg.wifi, name=name, trace=self.trace)
            scheme = scheme_factory()
            factor = getattr(scheme, "replication_factor", 1)
            compute_ids = [p.id for p in compute]
            if factor > 1:
                # rep-k: squeeze the whole dataflow onto the first 1/k of
                # the phones, then replicate onto disjoint ring shifts —
                # each chain runs on its own phones (Flux-style pairing).
                base = self.app.build_placement(compute_ids[: len(compute_ids) // factor])
                placement = base.replicate(compute_ids, factor)
            else:
                placement = self.app.build_placement(compute_ids)
            region_cfg = dataclasses.replace(cfg.region_defaults, name=name)
            region = Region(
                sim=self.sim,
                rng=self.rng,
                trace=self.trace,
                config=region_cfg,
                graph_factory=self.app.build_graph,
                placement=placement,
                compute_phones=compute,
                idle_phones=idle,
                wifi=wifi,
                cellular=self.cellular,
                scheme=scheme,
                fleet=self.fleet,
            )
            for op_name, workload in self.app.build_workloads(self.rng, r).items():
                region.bind_workload(op_name, workload)
            self.controller.manage(region)
            self.regions.append(region)
            self.schemes.append(scheme)
            for p in compute + idle:
                self._phone_region[p.id] = region
        # Cascade the regions in a line (Section IV: "regions are cascaded
        # in a line").
        for upstream, downstream in zip(self.regions, self.regions[1:]):
            upstream.add_downstream_region(downstream)

    def _new_phone(self, phone_id, position, config, charge_fraction):
        """One phone on the configured device backend."""
        if self.fleet is not None:
            return self.fleet.create_phone(phone_id, position, config, charge_fraction)
        return Phone(phone_id, position, config, charge_fraction=charge_fraction)

    def _apply_crash(self, phone_id: str, reason: str) -> None:
        region = self._phone_region.get(phone_id)
        if region is None:
            raise KeyError(f"unknown phone {phone_id!r}")
        region.apply_crash(phone_id, reason)

    def _phone_alive(self, phone_id: str) -> bool:
        """Injector liveness probe.  Unknown ids report True so the
        crash handler still raises its KeyError for typos; dead or
        departed phones report False (the injection is a no-op).  A
        departing computing phone stays in ``region.phones`` while the
        scheme hands its operators off, but it already left the WiFi
        cell — membership is what "present in the region" means (the
        same definition :meth:`Region.alive_phone_ids` uses)."""
        region = self._phone_region.get(phone_id)
        if region is None:
            return True
        phone = region.phones.get(phone_id)
        return (phone is not None and phone.alive
                and region.wifi.is_member(phone_id))

    def apply_departure(self, phone_id: str) -> None:
        """A phone physically leaves its region (mobility)."""
        region = self._phone_region.get(phone_id)
        if region is None:
            raise KeyError(f"unknown phone {phone_id!r}")
        region.apply_departure(phone_id)

    def find_phone(self, phone_id: str) -> Optional[Phone]:
        """Look a phone up across all regions (None if unknown)."""
        region = self._phone_region.get(phone_id)
        return region.phones.get(phone_id) if region is not None else None

    def admit_phone(
        self,
        region_index: int,
        charge_fraction: float = 1.0,
        config: Optional["PhoneConfig"] = None,
    ) -> str:
        """A new phone enters a region and registers as an idle spare.

        Models churn/joins (Section III-A: phones that dwell in a region
        register with the controller).  The phone becomes immediately
        available for replacement promotion.  Returns the new phone id.
        """
        region = self.regions[region_index]
        area = self.areas[region_index]
        self._join_seq += 1
        pid = f"{region.name}.j{self._join_seq}"
        phone = self._new_phone(
            pid,
            area.random_point(self.rng.stream("geometry.join")),
            config if config is not None else self.config.phone,
            charge_fraction,
        )
        region.admit_idle_phone(phone)
        self._phone_region[pid] = region
        return pid

    def handoff(self, phone_id: str, to_region_index: Optional[int] = None) -> Optional[str]:
        """A phone walks from its region into another one (Section III-E).

        The departure side runs the usual urgent-mode/state-transfer
        machinery; the arrival side admits the phone (same battery, same
        hardware) as an idle spare of the target region.  ``None`` target
        defaults to the next region down the cascade; a phone walking off
        the far end simply departs.  Returns the arrival-side phone id.
        """
        region = self._phone_region.get(phone_id)
        if region is None:
            raise KeyError(f"unknown phone {phone_id!r}")
        phone = region.phones.get(phone_id)
        charge = phone.battery.fraction if phone is not None else 1.0
        p_cfg = phone.config if phone is not None else None
        if to_region_index is None:
            to_region_index = self.regions.index(region) + 1
        region.apply_departure(phone_id)
        if not 0 <= to_region_index < len(self.regions) or phone is None or not phone.alive:
            return None
        return self.admit_phone(to_region_index, charge_fraction=charge, config=p_cfg)

    def attach_mobility(self, model: "MobilityModel") -> None:
        """Arm a mobility model: its departures drive the regions.

        The model's ``on_departure`` callback resolves each phone to its
        region and applies the physical departure (WiFi break, GPS
        confirmation, scheme handling all follow automatically).
        """
        model.start(self.sim, self.apply_departure)

    # -- running ------------------------------------------------------------
    def start(self) -> None:
        """Boot every region immediately and arm the checkpoint clocks.

        This is the instant-start path; :meth:`start_staged` simulates the
        paper's Section III-A startup protocol instead.
        """
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for region, scheme in zip(self.regions, self.schemes):
            region.start()
            self.arm_checkpoint_clock(region, scheme)
        self.trace.record(self.sim.now, "system_started", regions=len(self.regions))

    def start_staged(self, bootstrap_config=None, arrivals=None):
        """Boot through the Section III-A protocol (dwell, registration,
        threshold, code shipping).  Returns the armed
        :class:`~repro.core.bootstrap.Bootstrapper`; advance time with
        :meth:`run` to let the boot proceed."""
        from repro.core.bootstrap import Bootstrapper

        if self._started:
            raise RuntimeError("system already started")
        return Bootstrapper(self, bootstrap_config, arrivals).launch()

    def mark_started(self) -> None:
        """Claim the one-shot start (used by the staged bootstrap)."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True

    def arm_checkpoint_clock(self, region: Region, scheme: Any) -> None:
        """Start the controller's periodic checkpoint clock for schemes
        that want one (idempotent per region start)."""
        if getattr(scheme, "wants_checkpoint_clock", False):
            self.controller.start_checkpoint_clock(region, self.config.checkpoint_period_s)

    def attach_telemetry(self, monitor: Any) -> Any:
        """Wire a live QoS monitor into every region (cascade order).

        The monitor (:class:`repro.telemetry.QoSMonitor`) taps node
        runtimes through ``region.telemetry`` and the shared trace
        through an observer; call this before :meth:`run`, then the
        monitor's own ``start()``.  Returns the monitor for chaining.
        """
        for region in self.regions:
            monitor.watch_region(region)
        return monitor

    def run(self, duration_s: float) -> None:
        """Start (if needed) and simulate ``duration_s`` of virtual time."""
        if not self._started:
            self.start()
        self.sim.run(until=self.sim.now + duration_s)

    def metrics(self, warmup_s: float = 0.0, until: Optional[float] = None) -> MetricsReport:
        """Measurement report over ``[warmup_s, until]``.

        Beyond the trace-derived figures, the report carries the live
        kernel/hot-counter view (``events_processed``, ``counters``) —
        the shared namespace the telemetry layer samples (see
        :mod:`repro.telemetry`); neither reaches artifact rows.
        """
        report = compute_metrics(
            self.trace,
            [r.name for r in self.regions],
            warmup_s=warmup_s,
            until=until if until is not None else self.sim.now,
        )
        report.events_processed = self.sim.events_processed
        report.counters = {
            name: counter.value for name, counter in self.trace.counters.items()
        }
        return report

    def region(self, index: int) -> Region:
        """Region by cascade position."""
        return self.regions[index]

    def compute_phone_ids(self, region_index: int = 0) -> List[str]:
        """The computing phones of one region, in id order."""
        name = f"region{region_index}"
        return [f"{name}.p{i}" for i in range(self._compute_counts[region_index])]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MobiStreamsSystem regions={len(self.regions)} t={self.sim.now:.1f}s>"
