"""Metrics extraction: throughput, latency, fault-tolerance data volumes.

Section IV's measurement methodology, applied to the trace:

* *Latency* — "we record in each tuple the times when it enters and
  leaves the system, and average the duration across all the tuples in a
  time window."
* *Throughput* — "we count the number of output tuples per second when
  the system is steady" (we cut an initial warm-up window).
* Fig. 10's data volumes come from the scheme counters
  ``ft.preserved_bytes`` and ``ft.network_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.util.stats import mean, nearest_rank

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.monitor import Trace


@dataclass
class RegionMetrics:
    """Steady-state measurements for one region."""

    region: str
    output_tuples: int
    throughput_tps: float
    mean_latency_s: float
    p95_latency_s: float


@dataclass
class MetricsReport:
    """Whole-system measurements over a window."""

    window_start: float
    window_end: float
    per_region: Dict[str, RegionMetrics] = field(default_factory=dict)
    #: Fig. 10a — unique bytes retained for input/source preservation.
    preserved_bytes: float = 0.0
    #: Fig. 10b — bytes sent over the network for checkpointing/replication.
    ft_network_bytes: float = 0.0
    #: Total WiFi / cellular airtime bytes (diagnostics).
    wifi_bytes: float = 0.0
    cellular_bytes: float = 0.0
    recoveries: int = 0
    departures_handled: int = 0
    #: Simulator kernel events executed over the whole run (0 when the
    #: report was computed without a live simulator); same name as the
    #: telemetry snapshots' field — see :mod:`repro.telemetry`.
    events_processed: int = 0
    #: Raw hot-counter snapshot (``net.*``, ``ft.*``, per-region
    #: counters), filled by :meth:`MobiStreamsSystem.metrics`.  Live
    #: diagnostics only — never serialized into artifact rows.
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def total_throughput_tps(self) -> float:
        """Sum of per-region throughputs."""
        return sum(m.throughput_tps for m in self.per_region.values())

    def region(self, name: str) -> RegionMetrics:
        """Metrics of one region by name.

        Unknown names raise :class:`ValueError` listing the regions the
        report actually measured — the error a typo'd region name in a
        bench or report surfaces.
        """
        try:
            return self.per_region[name]
        except KeyError:
            known = ", ".join(self.per_region) or "<none>"
            raise ValueError(
                f"unknown region {name!r}; regions in this report: {known}"
            ) from None

    @property
    def end_to_end_latency_s(self) -> float:
        """Mean latency at the final (cascade-terminal) region.

        Regions are keyed in cascade order; the last region's sink sees
        tuples whose ``entered_at`` was stamped at the first region, so its
        latency *is* end-to-end.
        """
        if not self.per_region:
            return float("nan")
        last = list(self.per_region.values())[-1]
        return last.mean_latency_s


def compute_metrics(
    trace: "Trace",
    region_names: List[str],
    warmup_s: float = 0.0,
    until: Optional[float] = None,
) -> MetricsReport:
    """Build a :class:`MetricsReport` from a trace.

    Parameters
    ----------
    trace:
        The run's trace (must have been recording).
    region_names:
        Regions in cascade order.
    warmup_s:
        Ignore sink outputs before this time (steady-state cut).
    until:
        End of the measurement window (defaults to the last record time).
    """
    if until is None:
        until = trace.records[-1].time if trace.records else warmup_s
    window = max(1e-9, until - warmup_s)

    report = MetricsReport(window_start=warmup_s, window_end=until)
    # One pass over the sink_output window for every region at once; the
    # per-region record order is unchanged, so the derived statistics are
    # identical to the old region-by-region scans.
    by_region: Dict[str, List[float]] = {name: [] for name in region_names}
    for rec in trace.select("sink_output", since=warmup_s, until=until):
        bucket = by_region.get(rec.data.get("region"))
        if bucket is not None:
            bucket.append(rec.data["latency"])
    for name in region_names:
        latencies = by_region[name]
        count = len(latencies)
        lat_sorted = sorted(latencies)
        p95 = nearest_rank(lat_sorted, 0.95) if lat_sorted else float("nan")
        report.per_region[name] = RegionMetrics(
            region=name,
            output_tuples=count,
            throughput_tps=count / window,
            mean_latency_s=mean(latencies),
            p95_latency_s=p95,
        )

    report.preserved_bytes = trace.value("ft.preserved_bytes")
    report.ft_network_bytes = trace.value("ft.network_bytes")
    report.wifi_bytes = trace.value("net.wifi.bytes")
    report.cellular_bytes = trace.value("net.cellular.bytes")
    report.recoveries = trace.count_of("recovery_finished")
    report.departures_handled = trace.count_of("departure_handled")
    return report
