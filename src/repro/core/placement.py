"""Placement: mapping operators onto phones, with optional replication.

A placement assigns every operator a list of hosting nodes: entry 0 is the
primary copy (chain 0), entry r is the r-th replica (chain r).  Ordinary
schemes use factor 1; active-standby replication (rep-k, the Flux/Borealis
baseline) uses factor k with *paired dataflows*: replica r of an operator
streams only to replica r of its downstream operators, giving k
independent chains whose outputs are deduplicated at the sink.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.graph import GraphError, QueryGraph


class PlacementError(Exception):
    """Raised for invalid operator-to-node assignments."""


class Placement:
    """Operator -> [node ids] assignment (index = replica/chain)."""

    def __init__(self, assignment: Mapping[str, Sequence[str]]) -> None:
        if not assignment:
            raise PlacementError("empty placement")
        factors = {len(nodes) for nodes in assignment.values()}
        if len(factors) != 1:
            raise PlacementError("all operators must have the same replication factor")
        self.replication_factor = factors.pop()
        if self.replication_factor < 1:
            raise PlacementError("replication factor must be >= 1")
        self._assignment: Dict[str, List[str]] = {
            op: list(nodes) for op, nodes in assignment.items()
        }
        for op, nodes in self._assignment.items():
            if len(set(nodes)) != len(nodes):
                raise PlacementError(f"operator {op!r} has duplicate replica hosts")

    # -- queries --------------------------------------------------------------
    def operators(self) -> List[str]:
        """All placed operator names."""
        return list(self._assignment)

    def nodes_for(self, op_name: str) -> List[str]:
        """Hosting node ids for an operator (index = chain)."""
        return list(self._assignment[op_name])

    def node_for(self, op_name: str, chain: int = 0) -> str:
        """Hosting node of a specific chain of an operator."""
        return self._assignment[op_name][chain]

    def ops_on(self, node_id: str, chain: Optional[int] = None) -> List[str]:
        """Operators hosted on ``node_id`` (optionally only one chain)."""
        out = []
        for op, nodes in self._assignment.items():
            for r, nid in enumerate(nodes):
                if nid == node_id and (chain is None or chain == r):
                    out.append(op)
                    break
        return out

    def chain_of(self, op_name: str, node_id: str) -> int:
        """Which chain of ``op_name`` lives on ``node_id``."""
        nodes = self._assignment[op_name]
        try:
            return nodes.index(node_id)
        except ValueError:
            raise PlacementError(f"{op_name!r} is not hosted on {node_id!r}") from None

    def used_nodes(self) -> List[str]:
        """All node ids hosting at least one operator copy."""
        seen: Dict[str, None] = {}
        for nodes in self._assignment.values():
            for nid in nodes:
                seen.setdefault(nid)
        return list(seen)

    def chain_assignment(self, chain: int = 0) -> Dict[str, str]:
        """Operator -> node id map for one chain (feeds ``node_graph``)."""
        if not 0 <= chain < self.replication_factor:
            raise PlacementError(f"chain {chain} out of range")
        return {op: nodes[chain] for op, nodes in self._assignment.items()}

    def reassign_node(self, old_node: str, new_node: str) -> None:
        """Move every operator copy from ``old_node`` to ``new_node``.

        Used by recovery/mobility: the replacement phone takes over all of
        the failed/departed phone's operators.
        """
        if old_node == new_node:
            return
        for op, nodes in self._assignment.items():
            for r, nid in enumerate(nodes):
                if nid == old_node:
                    if new_node in nodes:
                        raise PlacementError(
                            f"cannot move {op!r}: {new_node!r} already hosts a replica"
                        )
                    nodes[r] = new_node

    def validate(self, graph: QueryGraph, available_nodes: Sequence[str]) -> None:
        """Check coverage and host availability; node-level acyclicity per chain."""
        placed = set(self._assignment)
        ops = set(graph.names())
        if placed != ops:
            missing = ops - placed
            extra = placed - ops
            raise PlacementError(
                f"placement mismatch: missing={sorted(missing)} extra={sorted(extra)}"
            )
        avail = set(available_nodes)
        for op, nodes in self._assignment.items():
            for nid in nodes:
                if nid not in avail:
                    raise PlacementError(f"{op!r} assigned to unknown node {nid!r}")
        for chain in range(self.replication_factor):
            try:
                graph.node_graph(self.chain_assignment(chain))
            except GraphError as exc:
                raise PlacementError(f"chain {chain}: {exc}") from exc

    # -- builders ----------------------------------------------------------
    @classmethod
    def pack_groups(
        cls, ordered_groups: Sequence[Sequence[str]], phone_ids: Sequence[str]
    ) -> "Placement":
        """Pack an ordered list of operator groups onto the given phones.

        With as many phones as groups, each group gets its own phone (the
        paper's 8-phone placements); with fewer phones, *adjacent* groups
        are merged contiguously — the layout rep-k uses to squeeze a whole
        dataflow onto 1/k of the phones.  Adjacent merging keeps the
        node-level graph acyclic for pipeline-shaped applications.
        """
        if not phone_ids:
            raise PlacementError("no phones to place onto")
        n_phones = len(phone_ids)
        n_groups = len(ordered_groups)
        groups: Dict[str, List[str]] = {pid: [] for pid in phone_ids}
        for gi, group in enumerate(ordered_groups):
            pid = phone_ids[gi * n_phones // n_groups] if n_groups >= n_phones else phone_ids[gi]
            groups[pid].extend(group)
        return cls.from_groups({pid: ops for pid, ops in groups.items() if ops})

    @classmethod
    def from_groups(cls, groups: Mapping[str, Sequence[str]]) -> "Placement":
        """Build from ``{node_id: [operator names]}`` (factor 1).

        This mirrors the paper's figures where "operators with the same
        color are on the same node".
        """
        assignment: Dict[str, List[str]] = {}
        for node_id, ops in groups.items():
            for op in ops:
                if op in assignment:
                    raise PlacementError(f"operator {op!r} listed in two groups")
                assignment[op] = [node_id]
        return cls(assignment)

    def replicate(self, all_nodes: Sequence[str], factor: int) -> "Placement":
        """Derive a k-chain placement by shifting hosts around a node ring.

        Chain r of the operators on ring position i is hosted at ring
        position ``(i + r*offset) % len(all_nodes)`` with the offset chosen
        to spread replicas as far from their primaries as possible —
        a failure should never take out two chains of the same operator.
        """
        if factor < 1:
            raise PlacementError("factor must be >= 1")
        ring = list(all_nodes)
        n = len(ring)
        if factor > n:
            raise PlacementError(f"factor {factor} exceeds node count {n}")
        index = {nid: i for i, nid in enumerate(ring)}
        offset = max(1, n // factor)
        assignment: Dict[str, List[str]] = {}
        for op, nodes in self._assignment.items():
            base = nodes[0]
            if base not in index:
                raise PlacementError(f"{base!r} not in the node ring")
            i = index[base]
            assignment[op] = [ring[(i + r * offset) % n] for r in range(factor)]
        return Placement(assignment)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Placement ops={len(self._assignment)} "
            f"factor={self.replication_factor} nodes={len(self.used_nodes())}>"
        )
