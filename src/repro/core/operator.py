"""Operators: the application logic units of the query network.

An operator is "a piece of program code executed repeatedly to process
its input data" (Section II-A).  Operators here carry three things:

1. **Logic** — ``process(tup, ctx)`` returning output tuples.
2. **A CPU cost model** — ``cost(tup)`` in *reference seconds* (time on a
   600 MHz iPhone-3GS-class core); the node runtime divides by the host
   phone's speed.  Costs are explicit because the simulator cannot infer
   wall time from Python execution.
3. **Checkpointable state** — ``state_size()`` plus
   ``snapshot()``/``restore()``; the fault-tolerance schemes move these
   bytes around.

The library types (:class:`MapOperator`, :class:`FilterOperator`,
:class:`SourceOperator`, :class:`SinkOperator`) cover most application
needs; BCP and SignalGuru subclass :class:`Operator` directly where they
keep model state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.core.tuples import StreamTuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


@dataclass
class OperatorContext:
    """Runtime facilities handed to ``process``.

    Attributes
    ----------
    now:
        Current virtual time.
    rng:
        The region's RNG registry (operators draw named streams).
    region_name:
        Name of the hosting region (for operators that key models by
        region, e.g. per-bus-stop statistics).
    """

    now: float
    rng: "RngRegistry"
    region_name: str = ""


class Operator(ABC):
    """Base class for all operators."""

    #: Default state size for operators that do not override it.
    DEFAULT_STATE_SIZE = 0

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("operator name must be non-empty")
        self.name = name

    # -- logic ---------------------------------------------------------
    @abstractmethod
    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        """Consume one tuple, return zero or more output tuples."""

    def cost(self, tup: StreamTuple) -> float:
        """Reference CPU seconds to process ``tup`` (default: negligible)."""
        return 1e-4

    def route(self, out: StreamTuple, downstream: List[str]) -> List[str]:
        """Which downstream operators receive ``out`` (default: all).

        Dispatchers override this: BCP's ``D`` round-robins each image to
        exactly one counter; SignalGuru's ``S1`` spreads frames over the
        three filter chains.
        """
        return downstream

    # -- state ----------------------------------------------------------
    def state_size(self) -> int:
        """Bytes of operator state a checkpoint must save."""
        return self.DEFAULT_STATE_SIZE

    def snapshot(self) -> Any:
        """Serializable state object (paired with :meth:`restore`)."""
        return None

    def restore(self, state: Any) -> None:
        """Reset internal state from a :meth:`snapshot` object."""

    @property
    def is_source(self) -> bool:
        """Whether this operator ingests external data."""
        return False

    @property
    def is_sink(self) -> bool:
        """Whether this operator publishes results."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class MapOperator(Operator):
    """Stateless 1->1 operator from a payload function.

    Parameters
    ----------
    fn:
        ``fn(payload) -> payload`` transformation.
    out_size:
        Output tuple size: an int, or ``None`` to keep the input size, or
        a callable ``(in_size, out_payload) -> int``.
    cost_s:
        Reference CPU seconds per tuple (constant, or callable of tuple).
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Any], Any],
        out_size: Optional[Any] = None,
        cost_s: Any = 1e-4,
    ) -> None:
        super().__init__(name)
        self._fn = fn
        self._out_size = out_size
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        out_payload = self._fn(tup.payload)
        if self._out_size is None:
            size = tup.size
        elif callable(self._out_size):
            size = self._out_size(tup.size, out_payload)
        else:
            size = self._out_size
        return [tup.derive(out_payload, size)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost(tup) if callable(self._cost) else self._cost


class FilterOperator(Operator):
    """Stateless predicate operator: passes tuples whose payload matches."""

    def __init__(self, name: str, predicate: Callable[[Any], bool], cost_s: Any = 1e-4) -> None:
        super().__init__(name)
        self._predicate = predicate
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        if self._predicate(tup.payload):
            return [tup.derive(tup.payload, tup.size)]
        return []

    def cost(self, tup: StreamTuple) -> float:
        return self._cost(tup) if callable(self._cost) else self._cost


class SourceOperator(Operator):
    """Ingests external data (sensors, cameras, upstream regions).

    Sources are *stateless* in the paper's recovery story (Section III-D:
    "it is easier to recover them since they are stateless"); the durable
    part — preserved input — is owned by the fault-tolerance scheme, not
    the operator.

    Subclasses/instances provide a *workload*: an iterator of
    ``(inter_arrival_s, payload, size)`` triples, or attach at runtime via
    :meth:`bind_workload`.  Sources with no workload only ingest what the
    runtime feeds them (e.g. tuples arriving from an upstream region).
    """

    def __init__(self, name: str, workload: Optional[Any] = None) -> None:
        super().__init__(name)
        self.workload = workload

    @property
    def is_source(self) -> bool:
        return True

    def bind_workload(self, workload: Any) -> None:
        """Attach/replace the workload iterator."""
        self.workload = workload

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        """Pass-through: sources forward ingested tuples unchanged."""
        return [tup]

    def cost(self, tup: StreamTuple) -> float:
        return 1e-4


class SinkOperator(Operator):
    """Publishes results (to users and to downstream regions)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    @property
    def is_sink(self) -> bool:
        return True

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        """Pass-through: the runtime forwards sink outputs across regions."""
        return [tup]

    def cost(self, tup: StreamTuple) -> float:
        return 1e-4


class StatefulOperator(Operator):
    """Convenience base for operators with a dict state and fixed size.

    Subclasses mutate ``self.state`` freely; snapshots follow the
    copy-on-write protocol of :mod:`repro.checkpoint.snapshots` — array
    leaves are frozen and shared rather than copied, containers become
    cheap immutable views.  A subclass that mutates a snapshotted array
    in place must un-share it first via
    :func:`repro.checkpoint.snapshots.writable`.
    """

    def __init__(self, name: str, state_size: int = 1024) -> None:
        super().__init__(name)
        if state_size < 0:
            raise ValueError("state_size must be >= 0")
        self._state_size = state_size
        self.state: Dict[str, Any] = {}

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        # Imported here: repro.checkpoint pulls in the scheme/baseline
        # stack, which imports this module back at load time.
        from repro.checkpoint import snapshots

        return snapshots.freeze_state(self.state)

    def restore(self, state: Any) -> None:
        from repro.checkpoint import snapshots

        self.state = snapshots.thaw_state(state) if state else {}
