"""System startup (Section III-A).

The paper's boot sequence, simulated end to end:

1. A phone that has stayed inside a pre-defined region for a dwell
   period (GPS-detected) registers itself with the controller over the
   cellular network.
2. Once a region holds sufficient phones (an application-defined
   threshold), the controller splits the region's computation task into
   operators, ships each phone its code bundle over the cellular
   downlink, and connects the phones via ad-hoc WiFi.
3. Sink nodes are told to connect to the source nodes of downstream
   neighbour regions over the cellular network; then the region's DSPS
   starts processing.
4. A region without sufficient phones is *skipped*: the controller
   bypasses it, wiring its upstream regions directly to its downstream
   regions.  The region can be booted later when enough phones arrive.

Because regions boot independently in parallel, "an application's boot
time does not increase significantly when the region number increases"
— :func:`Bootstrapper.boot_time` lets experiments verify exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.controller import CONTROLLER_ID
from repro.net.cellular import UnknownEndpoint
from repro.net.packet import Message
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.region import Region
    from repro.core.system import MobiStreamsSystem


@dataclass
class BootstrapConfig:
    """Startup-protocol parameters.

    Attributes
    ----------
    dwell_s:
        How long a phone must remain in a region before registering
        ("has remained in the region for a period of time (defined by
        application developers)").
    registration_size:
        Bytes of the registration message sent over cellular.
    min_phones:
        Phones a region needs before the controller assigns the task.
        ``None`` means every phone of the region's placement.
    deadline_s:
        Give up waiting for the threshold after this long and bypass the
        region (``None`` = wait forever).
    """

    dwell_s: float = 10.0
    registration_size: int = 64
    min_phones: Optional[int] = None
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.dwell_s < 0:
            raise ValueError("dwell must be >= 0")
        if self.min_phones is not None and self.min_phones < 1:
            raise ValueError("min_phones must be >= 1")


@dataclass
class BootRecord:
    """Outcome of one region's boot attempt."""

    region: str
    t_begin: float
    t_ready: Optional[float] = None
    registered: int = 0
    skipped: bool = False

    @property
    def boot_time(self) -> Optional[float]:
        """Seconds from bootstrap start to the region processing data."""
        return None if self.t_ready is None else self.t_ready - self.t_begin


class Bootstrapper:
    """Drives the staged startup of a built (but unstarted) system."""

    def __init__(
        self,
        system: "MobiStreamsSystem",
        config: Optional[BootstrapConfig] = None,
        arrivals: Optional[Dict[str, float]] = None,
    ) -> None:
        """``arrivals`` maps phone id -> virtual time the phone enters its
        region (default 0 for every phone: all already present)."""
        self.system = system
        self.sim = system.sim
        self.config = config or BootstrapConfig()
        self.arrivals = dict(arrivals or {})
        self.records: Dict[str, BootRecord] = {}
        self._registered: Dict[str, List[str]] = {}
        self._threshold_events: Dict[str, Event] = {}
        self._launched = False

    # -- public API ---------------------------------------------------------
    def launch(self) -> "Bootstrapper":
        """Arm the registration and boot processes for every region."""
        if self._launched:
            raise RuntimeError("bootstrap already launched")
        self._launched = True
        self.system.mark_started()
        for region, scheme in zip(self.system.regions, self.system.schemes):
            self.records[region.name] = BootRecord(region.name, self.sim.now)
            self._registered[region.name] = []
            self._threshold_events[region.name] = Event(self.sim)
            for pid in list(region.phones):
                self.sim.process(
                    self._register_phone(region, pid),
                    name=f"boot.reg.{pid}",
                ).defuse()
            self.sim.process(
                self._boot_region(region, scheme), name=f"boot.{region.name}"
            ).defuse()
        return self

    def boot_time(self, region_index: int = 0) -> Optional[float]:
        """Boot duration of one region (None if skipped / not yet ready)."""
        name = self.system.regions[region_index].name
        return self.records[name].boot_time

    def max_boot_time(self) -> float:
        """The application-level boot time: the slowest booted region."""
        times = [r.boot_time for r in self.records.values() if r.boot_time]
        if not times:
            raise RuntimeError("no region has booted")
        return max(times)

    def register_late_phone(self, region_index: int, phone_id: str) -> None:
        """A phone enters a previously-skipped region; re-attempt the boot
        once the threshold is met ("this region will be started in the
        future when it has sufficient phones")."""
        region = self.system.regions[region_index]
        if phone_id not in region.phones:
            raise KeyError(f"{phone_id!r} is not a phone of {region.name}")
        self.sim.process(
            self._register_phone(region, phone_id, late=True),
            name=f"boot.late.{phone_id}",
        ).defuse()

    # -- protocol steps ---------------------------------------------------------
    def _threshold(self, region: "Region") -> int:
        if self.config.min_phones is not None:
            return self.config.min_phones
        return len(set(region.placement.used_nodes()))

    def _register_phone(self, region: "Region", phone_id: str, late: bool = False):
        """Dwell, then register with the controller over cellular."""
        # A late registration means the phone is in the region *now* —
        # any original arrival schedule is obsolete.
        arrival = self.sim.now if late else self.arrivals.get(phone_id, 0.0)
        wait = max(0.0, arrival - self.sim.now) + self.config.dwell_s
        yield self.sim.timeout(wait)
        phone = region.phones.get(phone_id)
        if phone is None or not phone.alive:
            return
        region.join_cellular(phone_id)
        msg = Message(
            src=phone_id, dst=CONTROLLER_ID, size=self.config.registration_size,
            kind="register", payload=("register", region.name, phone_id),
        )
        try:
            yield from region.cellular.send(msg)
        except UnknownEndpoint:  # pragma: no cover - controller is wired
            return
        roster = self._registered[region.name]
        roster.append(phone_id)
        self.records[region.name].registered = len(roster)
        region.trace.record(
            self.sim.now, "phone_registered", region=region.name, phone=phone_id
        )
        ev = self._threshold_events[region.name]
        if len(roster) >= self._threshold(region) and not ev.triggered:
            ev.succeed()

    def _boot_region(self, region: "Region", scheme) -> object:
        """Wait for the threshold, ship code, connect, start."""
        record = self.records[region.name]
        ev = self._threshold_events[region.name]
        if self.config.deadline_s is not None:
            deadline = self.sim.timeout(self.config.deadline_s)
            yield self.sim.any_of([ev, deadline])
            if not ev.triggered:
                record.skipped = True
                self._bypass(region)
                # Re-arm: a later registration can still boot the region.
                self.sim.process(
                    self._boot_late(region, scheme), name=f"boot.retry.{region.name}"
                ).defuse()
                return "skipped"
        else:
            yield ev
        yield from self._assign_task(region, scheme, record)
        return "booted"

    def _boot_late(self, region: "Region", scheme):
        ev = self._threshold_events[region.name]
        if not ev.triggered:
            yield ev
        record = self.records[region.name]
        yield from self._assign_task(region, scheme, record)
        record.skipped = False
        self._unbypass(region)

    def _assign_task(self, region: "Region", scheme, record: BootRecord):
        """Section III-A step 2-3: code shipping, WiFi mesh, cascading."""
        # The controller "transfers the code of each sub-task to a
        # registered phone": one bundle per compute phone, in parallel.
        sends = []
        for nid in sorted(set(region.placement.used_nodes())):
            msg = Message(
                src=CONTROLLER_ID, dst=nid, size=region.config.code_size,
                kind="code", payload=("code",),
            )
            sends.append(self.sim.process(self._ship(region, msg), name="boot.code"))
        if sends:
            yield self.sim.all_of(sends)
        # "connects the phones via ad-hoc WiFi".
        yield self.sim.timeout(region.config.wifi_rebuild_s)
        region.start()
        self.system.arm_checkpoint_clock(region, scheme)
        # Sink nodes connect to downstream regions' sources over cellular.
        for _ in region.downstream_regions():
            yield self.sim.timeout(region.cellular.config.latency_s)
        record.t_ready = self.sim.now
        region.trace.record(
            self.sim.now, "region_booted", region=region.name,
            boot_time=record.boot_time, registered=record.registered,
        )

    def _ship(self, region: "Region", msg: Message):
        try:
            yield from region.cellular.send(msg)
        except UnknownEndpoint:  # pragma: no cover
            pass

    # -- cascade bypass -----------------------------------------------------------
    def _bypass(self, region: "Region") -> None:
        """Wire the skipped region's upstreams directly to its downstreams."""
        for upstream in self.system.regions:
            if upstream is region:
                continue
            downs = upstream.downstream_regions()
            if region in downs:
                new = [d for d in downs if d is not region]
                for d in region.downstream_regions():
                    if d not in new:
                        new.append(d)
                upstream.set_downstream_regions(new)
        region.trace.record(self.sim.now, "region_bypassed", region=region.name)

    def _unbypass(self, region: "Region") -> None:
        """Restore the cascade once a skipped region finally boots."""
        for upstream in self.system.regions:
            if upstream is region:
                continue
            downs = upstream.downstream_regions()
            if any(d in downs for d in region.downstream_regions()):
                new = [d for d in downs if d not in region.downstream_regions()]
                new.append(region)
                upstream.set_downstream_regions(new)
        region.trace.record(self.sim.now, "region_unbypassed", region=region.name)
