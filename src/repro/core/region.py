"""A region: one cluster of phones running one DSPS (Fig. 4, low level).

The region owns the phones (computing + idle), the WiFi cell, the node
runtimes, and the intra-region router.  It exposes *mechanisms* —
pausing, killing nodes, rebuilding after recovery, urgent-mode routing —
that the controller and the fault-tolerance scheme drive.

Routing rules (Sections III-A/E):

* intra-region streams go over ad-hoc WiFi;
* if a WiFi link is broken (departed phone), the sender falls back to the
  cellular network (**urgent mode**) and notifies the controller;
* if the destination's cellular radio is also gone, the phone is dead:
  the sender files a failure report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.core.graph import QueryGraph
from repro.core.node import NodeRuntime
from repro.core.operator import OperatorContext
from repro.core.placement import Placement
from repro.core.tuples import StreamTuple
from repro.device.phone import Phone
from repro.net.cellular import CellularNetwork, UnknownEndpoint
from repro.net.packet import Message
from repro.net.wifi import Unreachable, WifiCell
from repro.sim.events import Event
from repro.util.simlog import get_logger
from repro.util.units import KB, Mbps

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import Controller
    from repro.sim.core import Simulator
    from repro.sim.monitor import Trace
    from repro.sim.rng import RngRegistry

#: Per-tuple network envelope (framing/serialization overhead).
TUPLE_ENVELOPE = 64


@dataclass
class RegionConfig:
    """Region-level parameters."""

    name: str
    #: Period of upstream-neighbor liveness probes (Section III-D).
    heartbeat_period_s: float = 10.0
    #: Size of an operator's code bundle shipped to a replacement phone.
    code_size: int = 256 * KB
    #: Time to (re)establish the intra-region WiFi mesh.
    wifi_rebuild_s: float = 2.0
    #: Flash sequential read rate (state reload during restoration).
    flash_read_bps: float = Mbps(160.0)
    #: Flash sequential write rate (local checkpointing).
    flash_write_bps: float = Mbps(80.0)
    #: CPU-side state serialization rate (checkpoint snapshot cost).
    serialize_bps: float = Mbps(400.0)
    #: Battery bookkeeping tick (0 disables the energy model).  Each tick
    #: drains idle power; phones at chronic charge proactively report to
    #: the controller (Section III-D) and dead batteries crash the phone.
    battery_tick_s: float = 5.0

    def __post_init__(self) -> None:
        if self.heartbeat_period_s <= 0:
            raise ValueError("heartbeat period must be positive")
        if self.battery_tick_s < 0:
            raise ValueError("battery tick must be >= 0 (0 disables)")


class Region:
    """One region's runtime."""

    def __init__(
        self,
        sim: "Simulator",
        rng: "RngRegistry",
        trace: "Trace",
        config: RegionConfig,
        graph_factory: Callable[[], QueryGraph],
        placement: Placement,
        compute_phones: List[Phone],
        idle_phones: List[Phone],
        wifi: WifiCell,
        cellular: CellularNetwork,
        scheme: Any,
        fleet: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.trace = trace
        self.config = config
        self.name = config.name
        self.placement = placement
        self.wifi = wifi
        self.cellular = cellular
        self.scheme = scheme

        self.phones: Dict[str, Phone] = {p.id: p for p in compute_phones + idle_phones}
        self.idle_ids: List[str] = [p.id for p in idle_phones]
        self._spawned = False

        # One graph instance per replication chain: replicas must not share
        # operator state objects.
        factor = placement.replication_factor
        self.graphs: List[QueryGraph] = [graph_factory() for _ in range(factor)]
        for g in self.graphs:
            g.validate()
        self.graph = self.graphs[0]

        self.nodes: Dict[str, NodeRuntime] = {}
        self.paused = False
        self.stopped = False
        self._resume_waiters: List[Event] = []
        self._workloads: Dict[str, Iterable] = {}
        self._driver_started: Set[str] = set()
        self._sink_seen: Set[Tuple] = set()
        self._recovery_ids = itertools.count(1)

        #: Downstream regions: list of (source_node_resolver, region_name).
        self._downstream: List["Region"] = []
        self.controller: Optional["Controller"] = None
        #: Live QoS monitor, if any (set by ``QoSMonitor.watch_region``).
        #: Node runtimes report tuple completions here; ``None`` keeps
        #: the hot path at a single attribute check.
        self.telemetry: Optional[Any] = None
        #: Links currently in urgent (cellular) mode: {(src_node, dst_node)}.
        self.urgent_links: Set[Tuple[str, str]] = set()
        #: Phones that already filed a chronic-battery self-report.
        self._battery_reported: Set[str] = set()
        #: Vectorized device backend, when the system runs one (see
        #: :class:`repro.device.fleet.Fleet`).  The phones dict then holds
        #: FleetPhone proxies and the battery loop runs as batch sweeps.
        self._fleet = fleet
        #: Cached fleet indices of this region's phones (ascending ==
        #: phones-dict insertion order); invalidated on join/departure.
        self._fleet_idx: Optional[np.ndarray] = None
        #: One-time warning latch for departures of dead/departed phones.
        self._warned_dead_departure = False

    # -- wiring -------------------------------------------------------------
    def bind_workload(self, op_name: str, workload: Iterable) -> None:
        """Attach an external data workload to a source operator.

        The iterator yields ``(inter_arrival_s, payload, size)``.  The
        iterator object persists across failures/recoveries — sensors keep
        producing regardless of DSPS state.
        """
        if op_name not in self.graph.source_names():
            raise ValueError(f"{op_name!r} is not a source operator")
        self._workloads[op_name] = iter(workload)

    def wrap_workloads(self, wrapper: Callable[[Iterable], Iterable]) -> None:
        """Replace every bound workload with ``wrapper(workload)``.

        Pre-start hook for scenario machinery (e.g. surge rate scaling);
        once the source drivers are running, the iterators are pinned.
        """
        if self._driver_started:
            raise RuntimeError("workloads already running; wrap before start")
        self._workloads = {op: iter(wrapper(w)) for op, w in self._workloads.items()}

    def admit_idle_phone(self, phone: Phone) -> None:
        """A phone arrives in the region and registers as an idle spare.

        Mirrors the Section III-A registration path for a phone that shows
        up after boot: it joins the ad-hoc WiFi and the cellular network
        and becomes available for replacement promotion.
        """
        if phone.id in self.phones:
            raise ValueError(f"phone {phone.id!r} already in region {self.name}")
        self.phones[phone.id] = phone
        self.idle_ids.append(phone.id)
        self._fleet_idx = None
        if self._spawned:
            self._join_networks(phone.id)
        self.trace.record(self.sim.now, "phone_joined", region=self.name, phone=phone.id)
        self.trace.count(f"{self.name}.joins")

    def add_downstream_region(self, region: "Region") -> None:
        """Cascade: this region's sink results feed ``region``'s sources."""
        self._downstream.append(region)

    def downstream_regions(self) -> List["Region"]:
        """Current downstream neighbour regions (cascade order)."""
        return list(self._downstream)

    def set_downstream_regions(self, regions: List["Region"]) -> None:
        """Rewire the cascade (bootstrap bypass of a skipped region)."""
        self._downstream = list(regions)

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Boot the region: build nodes, join WiFi, start sources & probes."""
        if self._spawned:
            raise RuntimeError(f"region {self.name} already started")
        self._spawned = True
        for phone in self.phones.values():
            self._join_networks(phone.id)
        self._build_nodes()
        self.scheme.attach(self)
        self._start_sources()
        self.sim.process(self._heartbeat_loop(), name=f"{self.name}.heartbeat").defuse()
        if self.config.battery_tick_s > 0:
            self.sim.process(self._battery_loop(), name=f"{self.name}.battery").defuse()
        self.trace.record(self.sim.now, "region_started", region=self.name)

    def _join_networks(self, phone_id: str) -> None:
        self.wifi.join(phone_id, self._make_deliver(phone_id))
        self.join_cellular(phone_id)

    def join_cellular(self, phone_id: str) -> None:
        """Attach a phone's cellular radio (idempotent).

        Phones have cellular connectivity the moment they enter a region
        — the staged bootstrap registers them before the DSPS starts.
        """
        if not self.cellular.is_registered(phone_id):
            self.cellular.register_phone(phone_id, self._make_deliver(phone_id))

    def _make_deliver(self, phone_id: str):
        def deliver(msg: Message) -> None:
            node = self.nodes.get(phone_id)
            if node is not None and node.alive:
                node.deliver(msg)
            else:
                # In flight to a phone that was swapped out mid-transfer
                # (departure/handoff): bounce the tuple to the operator's
                # current host so the swap window loses nothing.
                self._bounce(msg)
            # Idle phones and scheme-level snooping:
            self.scheme.on_region_message(phone_id, msg)

        return deliver

    def _bounce(self, msg: Message) -> None:
        payload = msg.payload
        if self.stopped or not isinstance(payload, tuple) or not payload:
            return
        if payload[0] not in ("tuple", "region_input", "source_copy"):
            return
        op_name = payload[1]
        if op_name not in self.graph:
            return
        for host in self.placement.nodes_for(op_name):
            node = self.nodes.get(host)
            if node is not None and node.alive and op_name in node.ops:
                self.trace.count(f"{self.name}.bounced_tuples")
                node.deliver(msg)
                return

    def _build_nodes(self) -> None:
        """Create a NodeRuntime on every phone hosting at least one op.

        A host that died *while* a recovery was in progress is skipped,
        not fatal: its absence is detected by the heartbeat/ping loops
        and handled by the next recovery round ("more failures may have
        been reported while recovering", Section III-D).
        """
        per_phone: Dict[str, List[Tuple[Any, int]]] = {}
        for chain, graph in enumerate(self.graphs):
            assignment = self.placement.chain_assignment(chain)
            for op_name, node_id in assignment.items():
                per_phone.setdefault(node_id, []).append((graph.operator(op_name), chain))
        for node_id, ops in per_phone.items():
            phone = self.phones.get(node_id)
            if phone is None or not phone.alive:
                self.trace.record(
                    self.sim.now, "rebuild_skipped_dead",
                    region=self.name, phone=node_id,
                )
                continue
            self.nodes[node_id] = NodeRuntime(self, phone, ops)

    def _start_sources(self) -> None:
        """Start a persistent driver per bound workload (idempotent).

        Drivers model the external sensor (camera, infrared counter): they
        keep producing regardless of DSPS failures, delivering each datum
        to every chain's source node.  The driver outlives node rebuilds.
        """
        for op_name in self._workloads:
            if op_name not in self._driver_started:
                self._driver_started.add(op_name)
                self.sim.process(
                    self._source_driver(op_name), name=f"{self.name}.sensor.{op_name}"
                ).defuse()

    def _source_driver(self, op_name: str):
        workload = self._workloads[op_name]
        seq = 0
        for wait, payload, size in workload:
            yield self.sim.timeout(wait)
            if self.stopped:
                return
            if self.paused:
                # Sensors keep shooting during recovery; the datum is
                # delivered as soon as the region resumes.
                yield self.resume_event()
                if self.stopped:
                    return
            tup = StreamTuple(
                payload=payload,
                size=size,
                entered_at=self.sim.now,
                source_seq=seq,
                lineage=(f"{self.name}.{op_name}", seq),
            )
            seq += 1
            self.trace.count(f"{self.name}.source_inputs")
            for chain in range(self.placement.replication_factor):
                if not self.scheme.chain_active(chain):
                    continue
                nid = self.placement.node_for(op_name, chain)
                node = self.nodes.get(nid)
                if node is None or not node.alive:
                    continue
                if chain > 0:
                    # Duplicating the sensor feed is replication traffic.
                    self.scheme.on_source_copy(node, op_name, tup)
                node.deliver(
                    Message(
                        src="__sensor__",
                        dst=nid,
                        size=size,
                        kind="tuple",
                        payload=("source_copy", op_name, tup),
                    )
                )

    def stop(self, reason: str = "insufficient phones") -> None:
        """Stop the region's computation (bypass, Section III-D)."""
        if self.stopped:
            return
        self.stopped = True
        self.paused = True
        for node in self.nodes.values():
            node.kill("region stopped")
        self.trace.record(self.sim.now, "region_stopped", region=self.name, reason=reason)

    # -- pause/resume (recovery windows) ------------------------------------
    def pause(self) -> None:
        """Freeze source ingestion (recovery in progress)."""
        self.paused = True
        self.trace.record(self.sim.now, "region_paused", region=self.name)

    def resume(self) -> None:
        """Unfreeze source ingestion."""
        self.paused = False
        waiters, self._resume_waiters = self._resume_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()
        self.trace.record(self.sim.now, "region_resumed", region=self.name)

    def resume_event(self) -> Event:
        """Event fired at the next :meth:`resume` (immediate if running)."""
        ev = Event(self.sim)
        if not self.paused:
            ev.succeed()
        else:
            self._resume_waiters.append(ev)
        return ev

    # -- operator services -----------------------------------------------------
    def operator_context(self) -> OperatorContext:
        """Context passed to ``Operator.process``."""
        return OperatorContext(now=self.sim.now, rng=self.rng, region_name=self.name)

    # -- routing ------------------------------------------------------------
    def route_tuple(self, from_node: NodeRuntime, d_op: str, tup: StreamTuple, chain: int = 0) -> None:
        """Send a tuple to the node hosting ``d_op`` (fire-and-forget)."""
        target = self.placement.node_for(d_op, chain)
        msg = Message(
            src=from_node.id,
            dst=target,
            size=tup.size + TUPLE_ENVELOPE,
            kind="tuple",
            payload=("tuple", d_op, tup),
        )
        self.sim.process(
            self._send_with_fallback(msg), name=f"{self.name}.tx.{from_node.id}"
        ).defuse()

    def send_source_copy(self, from_node: NodeRuntime, op_name: str, target: str, tup: StreamTuple) -> None:
        """Forward an ingested source tuple to another chain's source node."""
        msg = Message(
            src=from_node.id,
            dst=target,
            size=tup.size + TUPLE_ENVELOPE,
            kind="tuple",
            payload=("source_copy", op_name, tup),
        )
        self.scheme.on_source_copy(from_node, op_name, tup)
        self.sim.process(
            self._send_with_fallback(msg), name=f"{self.name}.cp.{from_node.id}"
        ).defuse()

    def send_control(self, src: str, dst: str, payload: Tuple, size: int = 128) -> None:
        """Send a small in-band control message over WiFi (fire-and-forget)."""
        msg = Message(src=src, dst=dst, size=size, kind="control", payload=payload)
        self.sim.process(self._send_with_fallback(msg), name=f"{self.name}.ctl").defuse()

    def _drain_radio(self, phone_id: str, n_bytes: float, cellular: bool) -> None:
        phone = self.phones.get(phone_id)
        if phone is not None and phone.alive:
            if cellular:
                phone.battery.drain_cellular(n_bytes)
            else:
                phone.battery.drain_wifi(n_bytes)

    def _send_with_fallback(self, msg: Message):
        """WiFi first; urgent-mode cellular on broken links; report failures."""
        try:
            yield from self.wifi.tcp_unicast(msg)
            self._drain_radio(msg.src, msg.size, cellular=False)
            self.urgent_links.discard((msg.src, msg.dst))
            return True
        except Unreachable:
            pass
        # Urgent mode (Section III-E): transmit over cellular and tell the
        # controller the WiFi link is broken.
        phone = self.phones.get(msg.dst)
        if phone is not None and phone.alive and self.cellular.is_registered(msg.dst):
            first_time = (msg.src, msg.dst) not in self.urgent_links
            self.urgent_links.add((msg.src, msg.dst))
            if first_time:
                self.trace.record(
                    self.sim.now, "urgent_mode", region=self.name, src=msg.src, dst=msg.dst
                )
                if self.controller is not None:
                    self.controller.on_urgent_report(self, msg.src, msg.dst)
            try:
                yield from self.cellular.send(msg)
                self._drain_radio(msg.src, msg.size, cellular=True)
                return True
            except UnknownEndpoint:
                pass
        # Destination is gone for good: failure report (Section III-D).
        if self.controller is not None:
            self.controller.on_failure_report(self, msg.dst, reporter=msg.src)
        return False

    # -- node-level graph queries (Fig. 1b) -----------------------------------
    def upstream_nodes(self, node_id: str, chain: int = 0) -> List[str]:
        """Upstream neighbour nodes of ``node_id`` in one chain."""
        ng = self.graph.node_graph(self.placement.chain_assignment(chain))
        if node_id not in ng:
            return []
        return list(ng.predecessors(node_id))

    def downstream_nodes(self, node_id: str, chain: int = 0) -> List[str]:
        """Downstream neighbour nodes of ``node_id`` in one chain."""
        ng = self.graph.node_graph(self.placement.chain_assignment(chain))
        if node_id not in ng:
            return []
        return list(ng.successors(node_id))

    def source_node_ids(self, chain: int = 0) -> List[str]:
        """Nodes hosting source operators."""
        return sorted(
            {self.placement.node_for(op, chain) for op in self.graph.source_names()}
        )

    def sink_node_ids(self, chain: int = 0) -> List[str]:
        """Nodes hosting sink operators."""
        return sorted(
            {self.placement.node_for(op, chain) for op in self.graph.sink_names()}
        )

    # -- sink handling ----------------------------------------------------------
    def on_sink_output(self, node: NodeRuntime, op_name: str, tup: StreamTuple) -> None:
        """Handle a result produced by a sink operator."""
        if tup.replay:
            # Catch-up results are discarded "so as not to pollute other
            # regions" (Section III-D).
            self.trace.count(f"{self.name}.sink_discarded")
            self.trace.record(
                self.sim.now, "sink_discard", region=self.name, op=op_name,
                reason="replay",
            )
            return
        if tup.emit_key is not None:
            # Deduplicate across replica chains and post-recovery
            # reprocessing: a result is published exactly once.
            key = (op_name, tup.emit_key)
            if key in self._sink_seen:
                self.trace.count(f"{self.name}.sink_discarded")
                self.trace.record(
                    self.sim.now, "sink_discard", region=self.name, op=op_name,
                    reason="duplicate",
                )
                return
            self._sink_seen.add(key)
        self.trace.record(
            self.sim.now,
            "sink_output",
            region=self.name,
            op=op_name,
            entered_at=tup.entered_at,
            latency=self.sim.now - tup.entered_at,
            seq=tup.source_seq,
            key=tup.emit_key,
        )
        self.trace.count(f"{self.name}.sink_outputs")
        for downstream in self._downstream:
            self._forward_to_region(node, downstream, tup)

    def _forward_to_region(self, node: NodeRuntime, downstream: "Region", tup: StreamTuple) -> None:
        """Ship a result to the next region over the cellular network."""
        target_op = downstream.inter_region_entry()
        if target_op is None or downstream.stopped:
            return
        target_node = downstream.placement.node_for(target_op, 0)
        out = StreamTuple(
            payload=tup.payload,
            size=tup.size,
            entered_at=tup.entered_at,  # end-to-end latency is preserved
            source_seq=tup.source_seq,
        )
        msg = Message(
            src=node.id,
            dst=target_node,
            size=tup.size + TUPLE_ENVELOPE,
            kind="region_tuple",
            payload=("region_input", target_op, out),
        )
        self.sim.process(self._cellular_send(msg), name=f"{self.name}.fw").defuse()

    def _cellular_send(self, msg: Message):
        try:
            yield from self.cellular.send(msg)
        except UnknownEndpoint:
            pass  # destination region is mid-recovery; the tuple is lost

    def inter_region_entry(self) -> Optional[str]:
        """The source operator that receives upstream regions' results.

        Convention: the source named ``S0`` if present, else the first
        source without a bound workload, else the first source.
        """
        sources = self.graph.source_names()
        if not sources:
            return None
        if "S0" in sources:
            return "S0"
        for s in sources:
            if s not in self._workloads:
                return s
        return sources[0]

    # -- failures and departures ---------------------------------------------
    def apply_crash(self, phone_id: str, reason: str = "injected") -> None:
        """A phone dies: volatile state lost, radios silent (Section III-D)."""
        phone = self.phones.get(phone_id)
        if phone is None or not phone.alive:
            return
        phone.crash()
        self.wifi.leave(phone_id)
        self.cellular.unregister(phone_id)
        node = self.nodes.get(phone_id)
        if node is not None:
            node.kill(reason)
        if phone_id in self.idle_ids:
            self.idle_ids.remove(phone_id)
        self.trace.record(
            self.sim.now, "phone_crashed", region=self.name, phone=phone_id, reason=reason
        )

    def apply_departure(self, phone_id: str) -> None:
        """A phone walks out of the region: WiFi breaks, phone stays alive.

        Departing a phone that is already dead or gone is a graceful
        no-op (a scripted departure can race an organic crash); it is
        counted and warned about once per region so a scenario whose
        events mostly target corpses is visible.
        """
        phone = self.phones.get(phone_id)
        if phone is None or not phone.alive:
            if not self._warned_dead_departure:
                get_logger().warning(
                    "region %s: departure of dead/absent phone %r at "
                    "t=%.3fs is a no-op (warning once; see the "
                    "%s.departures_skipped_dead counter)",
                    self.name, phone_id, self.sim.now, self.name,
                )
                self._warned_dead_departure = True
            self.trace.count(f"{self.name}.departures_skipped_dead")
            return
        self.wifi.leave(phone_id)
        self.trace.record(self.sim.now, "phone_departed", region=self.name, phone=phone_id)
        if phone_id in self.idle_ids:
            # An idle node leaving just unregisters and wipes its copies.
            self.idle_ids.remove(phone_id)
            phone.storage.wipe()
            self.cellular.unregister(phone_id)
            self.phones.pop(phone_id, None)
            self._fleet_idx = None
            return
        if self.controller is not None:
            self.controller.on_departure_report(self, phone_id)

    def alive_phone_ids(self) -> List[str]:
        """Phones still alive and present in the region."""
        return [pid for pid, p in self.phones.items() if p.alive and self.wifi.is_member(pid)]

    def pick_replacements(self, gone: List[str]) -> Optional[Dict[str, str]]:
        """Choose healthy phones to take over ``gone``'s operators.

        Idle nodes are preferred (Section III-D); computing phones cannot
        double up (an operator's replicas must stay on distinct phones).
        Returns None when the region lacks sufficient phones.
        """
        busy = set(self.placement.used_nodes()) - set(gone)
        candidates = [pid for pid in self.idle_ids if self.phones[pid].alive
                      and self.wifi.is_member(pid) and pid not in busy]
        mapping: Dict[str, str] = {}
        for failed in gone:
            if not candidates:
                return None
            mapping[failed] = candidates.pop(0)
        return mapping

    def promote_replacement(self, failed: str, replacement: str) -> None:
        """Bind ``replacement`` to all of ``failed``'s operators."""
        self.placement.reassign_node(failed, replacement)
        if replacement in self.idle_ids:
            self.idle_ids.remove(replacement)

    def rebuild_nodes(self, states: Optional[Dict[str, Dict]] = None) -> None:
        """Tear down every node runtime and rebuild from current placement.

        ``states`` maps node id (post-replacement) -> node state snapshot;
        nodes without an entry start from fresh operator state.  Sources
        resume ingestion from their persistent workload iterators.
        """
        for node in self.nodes.values():
            node.kill("rebuild")
        self.nodes.clear()
        self._build_nodes()
        if states:
            for node_id, state in states.items():
                node = self.nodes.get(node_id)
                if node is not None:
                    node.restore_state(state)
        self._start_sources()

    def build_single_node(self, phone_id: str, state: Optional[Dict] = None) -> NodeRuntime:
        """(Re)create the runtime on one phone from the current placement.

        Used by per-node recovery (local / dist-n): only the failed node is
        rebuilt; the rest of the region keeps running.
        """
        phone = self.phones[phone_id]
        if not phone.alive:
            raise RuntimeError(f"phone {phone_id} is dead")
        old = self.nodes.get(phone_id)
        if old is not None:
            old.kill("rebuild")
        ops: List[Tuple[Any, int]] = []
        for chain, graph in enumerate(self.graphs):
            for op_name, node_id in self.placement.chain_assignment(chain).items():
                if node_id == phone_id:
                    ops.append((graph.operator(op_name), chain))
        node = NodeRuntime(self, phone, ops)
        self.nodes[phone_id] = node
        if state:
            node.restore_state(state)
        return node

    def revive_phone(self, phone_id: str) -> None:
        """Reboot a crashed phone with its flash intact (``local`` scheme's
        explicitly-unrealistic fault model, Section IV-B scheme 3)."""
        phone = self.phones[phone_id]
        phone.alive = True
        self._join_networks(phone_id)
        self.trace.record(self.sim.now, "phone_rebooted", region=self.name, phone=phone_id)

    def node_state_sizes(self) -> Dict[str, int]:
        """Current state size of every node (checkpoint sizing)."""
        return {nid: n.state_size() for nid, n in self.nodes.items()}

    # -- liveness probes (Section III-D) ----------------------------------------
    def _heartbeat_loop(self):
        """Upstream nodes probe their downstream neighbours over WiFi."""
        while not self.stopped:
            yield self.sim.timeout(self.config.heartbeat_period_s)
            if self.paused or self.stopped:
                continue
            pairs: Set[Tuple[str, str]] = set()
            for chain in range(self.placement.replication_factor):
                assignment = self.placement.chain_assignment(chain)
                ng = self.graph.node_graph(assignment)
                pairs.update(ng.edges())
            for src, dst in sorted(pairs):
                src_node = self.nodes.get(src)
                if src_node is None or not src_node.alive:
                    continue
                yield from self._probe(src, dst)

    # -- energy (Section III-D: chronic-battery self-reports) --------------------
    def _battery_loop(self):
        """Drain idle power each tick; report chronic charge, crash dead.

        CPU draw is charged by the node runtime per unit of work and radio
        draw at send time; the receive-side radio cost is folded into the
        idle figure.  A phone whose battery reaches the chronic threshold
        "actively report[s] its own failure to the controller"; a phone
        whose battery empties crashes like any other failure.
        """
        tick = self.config.battery_tick_s
        if self._fleet is not None:
            yield from self._fleet_battery_loop(tick)
            return
        while not self.stopped:
            yield self.sim.timeout(tick)
            for pid, phone in list(self.phones.items()):
                if not phone.alive:
                    continue
                phone.battery.drain_idle(tick)
                if phone.battery.is_dead:
                    self.trace.record(
                        self.sim.now, "battery_dead", region=self.name, phone=pid
                    )
                    self.apply_crash(pid, reason="battery dead")
                elif phone.battery.is_critical and pid not in self._battery_reported:
                    self._battery_reported.add(pid)
                    self.trace.record(
                        self.sim.now, "battery_critical", region=self.name, phone=pid,
                        fraction=phone.battery.fraction,
                    )
                    if self.controller is not None and pid not in self.idle_ids:
                        self.controller.on_self_report(self, pid)

    def _fleet_battery_loop(self, tick: float):
        """Batch variant of the battery tick over the fleet arrays.

        The drains run as one vectorized sweep; only the phones the sweep
        flags (newly dead, newly critical) are visited in Python, in
        ascending fleet-index order — the same order the per-object loop
        reaches them, since region membership iterates in creation order.
        """
        fleet = self._fleet
        while not self.stopped:
            yield self.sim.timeout(tick)
            if self._fleet_idx is None:
                self._fleet_idx = np.fromiter(
                    (p.index for p in self.phones.values()),
                    dtype=np.int64,
                    count=len(self.phones),
                )
            dead, critical = fleet.sweep_battery(self._fleet_idx, tick)
            if not (dead.size or critical.size):
                continue
            dead_list, crit_list = dead.tolist(), critical.tolist()
            di = ci = 0
            # Two-pointer merge: both lists are ascending and disjoint.
            while di < len(dead_list) or ci < len(crit_list):
                take_dead = ci >= len(crit_list) or (
                    di < len(dead_list) and dead_list[di] < crit_list[ci]
                )
                if take_dead:
                    pid = fleet.id_at(dead_list[di])
                    di += 1
                    self.trace.record(
                        self.sim.now, "battery_dead", region=self.name, phone=pid
                    )
                    self.apply_crash(pid, reason="battery dead")
                else:
                    i = crit_list[ci]
                    ci += 1
                    pid = fleet.id_at(i)
                    if pid in self._battery_reported:
                        continue
                    self._battery_reported.add(pid)
                    self.trace.record(
                        self.sim.now, "battery_critical", region=self.name, phone=pid,
                        fraction=fleet.phone_at(i).battery.fraction,
                    )
                    if self.controller is not None and pid not in self.idle_ids:
                        self.controller.on_self_report(self, pid)

    def _probe(self, src: str, dst: str):
        msg = Message(src=src, dst=dst, size=32, kind="heartbeat", payload=("hb",))
        try:
            yield from self.wifi.tcp_unicast(msg)
        except Unreachable:
            phone = self.phones.get(dst)
            if phone is not None and phone.alive:
                if self.controller is not None:
                    self.controller.on_departure_report(self, dst)
            else:
                if self.controller is not None:
                    self.controller.on_failure_report(self, dst, reporter=src)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Region {self.name} phones={len(self.phones)} nodes={len(self.nodes)}>"
