"""DSPS core: operators, query graphs, nodes, regions, controller, system.

This package is the paper's "middleware": the distributed stream
processing system that runs on a cluster of phones in each region, plus
the two-level architecture that cascades regions over the cellular
network (Fig. 4).

Layering (bottom-up):

* :mod:`repro.core.tuples` — tuples, tokens, markers.
* :mod:`repro.core.operator` — operator logic + cost models.
* :mod:`repro.core.graph` — the query network DAG.
* :mod:`repro.core.placement` — operators -> phones (with replication).
* :mod:`repro.core.node` — per-phone runtime: channels, CPU, dedup.
* :mod:`repro.core.region` — one region: phones + WiFi + nodes + router.
* :mod:`repro.core.controller` — the global (reliable) controller.
* :mod:`repro.core.system` — the full multi-region deployment.
* :mod:`repro.core.bootstrap` — the Section III-A startup protocol.
* :mod:`repro.core.metrics` — throughput/latency extraction from traces.
"""

from repro.core.bootstrap import BootRecord, BootstrapConfig, Bootstrapper
from repro.core.graph import QueryGraph
from repro.core.metrics import MetricsReport, compute_metrics
from repro.core.operator import (
    FilterOperator,
    MapOperator,
    Operator,
    OperatorContext,
    SinkOperator,
    SourceOperator,
)
from repro.core.placement import Placement
from repro.core.region import Region, RegionConfig
from repro.core.system import MobiStreamsSystem, SystemConfig
from repro.core.tuples import StreamTuple, Token
from repro.core.windows import (
    SlidingCountWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
)

__all__ = [
    "BootRecord",
    "BootstrapConfig",
    "Bootstrapper",
    "FilterOperator",
    "MapOperator",
    "MetricsReport",
    "MobiStreamsSystem",
    "Operator",
    "OperatorContext",
    "Placement",
    "QueryGraph",
    "Region",
    "RegionConfig",
    "SinkOperator",
    "SlidingCountWindow",
    "SourceOperator",
    "StreamTuple",
    "SystemConfig",
    "TumblingCountWindow",
    "TumblingTimeWindow",
    "Token",
    "compute_metrics",
]
