"""Per-phone node runtime: channels, CPU scheduling, token blocking.

One :class:`NodeRuntime` runs on each phone that hosts operators.  It owns:

* **Input channels** — one FIFO per upstream node, created lazily on the
  first message from that node.  Channels can be *blocked* by the token
  protocol: "Node E stops processing tuples from node C [whose token
  arrived], which guarantees that the state of node E is not corrupted by
  any tuple succeeding the token.  Node E can still process tuples from
  node D" (Section III-B, Fig. 5).
* **CPU** — a :class:`~repro.sim.resources.Resource` with one slot per
  core; operator costs are reference-seconds scaled by the phone's speed.
* **Hosted operators** — possibly several ("a group of operators on a
  node can be treated as a single super operator"); intra-node edges pass
  tuples directly, cross-node edges go through the region router.
* **Deduplication** — under replication (rep-k chains) a node drops
  logical duplicates by emit key.

The runtime is intentionally mechanism-only: all fault-tolerance *policy*
(what to preserve, when to checkpoint, how to recover) lives in the
scheme attached to the region.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Set, Tuple

from repro.core.operator import Operator
from repro.core.tuples import StreamTuple
from repro.device.failures import PhoneFailure
from repro.net.packet import Message
from repro.sim.events import Event
from repro.sim.process import Interrupt
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.region import Region
    from repro.device.phone import Phone

#: Pseudo-channel for traffic outside the token protocol (inter-region
#: input, source copies); never blocked by tokens.
EXTERNAL_CHANNEL = "__external__"


class NodeRuntime:
    """The DSPS runtime on one phone."""

    def __init__(
        self,
        region: "Region",
        phone: "Phone",
        ops: List[Tuple[Operator, int]],
    ) -> None:
        self.region = region
        self.sim = region.sim
        self.phone = phone
        self.id = phone.id
        #: op name -> operator instance (each chain has its own instances;
        #: replicas of one operator never share a phone, so names are
        #: unique within a node).
        self.ops: Dict[str, Operator] = {op.name: op for op, _chain in ops}
        #: op name -> which replication chain this instance belongs to.
        self.op_chain: Dict[str, int] = {op.name: chain for op, chain in ops}
        self.cpu = Resource(self.sim, capacity=phone.config.cores)
        self.alive = True

        self._queues: Dict[Any, Deque[Tuple]] = {}
        self._channel_order: List[Any] = []
        self._rr_index = 0
        self._blocked: Set[Any] = set()
        self._wake: Optional[Event] = None
        self._seen_keys: Set[Tuple] = set()
        self._procs: List = []

        self._main = self.sim.process(self._run_loop(), name=f"node.{self.id}.loop")
        self._main.defuse()
        self._procs.append(self._main)

    # -- introspection ------------------------------------------------------
    @property
    def op_names(self) -> List[str]:
        """Names of the operators hosted here."""
        return list(self.ops)

    @property
    def is_source_node(self) -> bool:
        """Whether any hosted operator is a source."""
        return any(op.is_source for op in self.ops.values())

    @property
    def is_sink_node(self) -> bool:
        """Whether any hosted operator is a sink."""
        return any(op.is_sink for op in self.ops.values())

    def queued_items(self) -> int:
        """Total items waiting across channels (diagnostics)."""
        return sum(len(q) for q in self._queues.values())

    def pending_payloads(self) -> List[Tuple]:
        """All queued-but-unprocessed payloads, in channel order.

        Used by the departure/handoff flow: tuples still sitting in the
        old node's input queues are re-delivered to the replacement so a
        state transfer never silently drops in-flight data.
        """
        out: List[Tuple] = []
        for channel in self._channel_order:
            out.extend(self._queues.get(channel, ()))
        return out

    # -- state (checkpointing) ------------------------------------------------
    def state_size(self) -> int:
        """Bytes of operator state a checkpoint of this node must save."""
        return sum(op.state_size() for op in self.ops.values())

    def snapshot_state(self) -> Dict[str, Any]:
        """In-memory snapshot of every hosted operator's state."""
        return {name: op.snapshot() for name, op in self.ops.items()}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Reset hosted operators from a snapshot (missing entries reset)."""
        for name, op in self.ops.items():
            op.restore(state.get(name))

    # -- channel control (token protocol) -------------------------------------
    def block_channel(self, channel: Any) -> None:
        """Stop consuming from ``channel`` (token received, waiting for rest)."""
        self._blocked.add(channel)

    def unblock_channel(self, channel: Any) -> None:
        """Resume consuming from ``channel``."""
        self._blocked.discard(channel)
        self._trigger_wake()

    def unblock_all(self) -> None:
        """Resume all channels (checkpoint snapshot taken)."""
        self._blocked.clear()
        self._trigger_wake()

    @property
    def blocked_channels(self) -> Set[Any]:
        """Channels currently blocked by the token protocol."""
        return set(self._blocked)

    # -- delivery (called by networks) -----------------------------------------
    def deliver(self, msg: Message) -> None:
        """Entry point for every message addressed to this node."""
        if not self.alive:
            return
        payload = msg.payload
        kind = payload[0]
        if kind in ("tuple", "token", "catchup_end"):
            channel = msg.src
        else:
            channel = EXTERNAL_CHANNEL
        q = self._queues.get(channel)
        if q is None:
            q = deque()
            self._queues[channel] = q
            self._channel_order.append(channel)
        q.append(payload)
        self._trigger_wake()

    def inject_local(self, op_name: str, tup: StreamTuple) -> None:
        """Queue a tuple for a hosted operator without a network hop.

        Used by recovery replay: preserved input re-enters at the source.
        """
        if not self.alive:
            return
        self.deliver(
            Message(src=EXTERNAL_CHANNEL, dst=self.id, size=0, kind="local",
                    payload=("region_input", op_name, tup))
        )

    # -- lifecycle -----------------------------------------------------------
    def kill(self, reason: str = "crash") -> None:
        """Terminate the runtime (phone failure or teardown)."""
        if not self.alive:
            return
        self.alive = False
        self._queues.clear()
        self._blocked.clear()
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt(PhoneFailure(self.id, reason))

    # -- engine ----------------------------------------------------------------
    def _trigger_wake(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _next_item(self) -> Optional[Tuple[Any, Tuple]]:
        """Round-robin pop across unblocked, non-empty channels."""
        n = len(self._channel_order)
        for step in range(n):
            idx = (self._rr_index + step) % n
            channel = self._channel_order[idx]
            if channel in self._blocked:
                continue
            q = self._queues.get(channel)
            if q:
                self._rr_index = (idx + 1) % n
                return channel, q.popleft()
        return None

    def _run_loop(self):
        while self.alive:
            nxt = self._next_item()
            if nxt is None:
                self._wake = Event(self.sim)
                try:
                    yield self._wake
                except Interrupt:
                    return
                finally:
                    self._wake = None
                continue
            channel, payload = nxt
            try:
                yield from self._handle(channel, payload)
            except Interrupt:
                return

    def _handle(self, channel: Any, payload: Tuple):
        kind = payload[0]
        if kind == "tuple":
            _, op_name, tup = payload
            op = self.ops.get(op_name)
            if op is not None and self._accept(op_name, tup):
                yield from self._process_chain(op_name, tup)
        elif kind == "token":
            self.region.scheme.on_token(self, channel, payload[1])
        elif kind == "catchup_end":
            self.region.scheme.on_catchup_end(self, channel, payload[1])
        elif kind == "source_copy":
            _, op_name, tup = payload
            yield from self._ingest(op_name, tup, forward_copies=False)
        elif kind == "region_input":
            _, op_name, tup = payload
            yield from self._ingest(op_name, tup, forward_copies=True)
        elif kind == "hb":
            pass  # liveness probes carry no data
        else:
            # Scheme-specific control traffic (checkpoint acks etc.).
            self.region.scheme.on_node_control(self, channel, payload)

    def _accept(self, op_name: str, tup: StreamTuple) -> bool:
        """Deduplicate logical tuples.

        Replicas of the producing operator (rep-k chains) and post-recovery
        reprocessing both regenerate tuples carrying the *same* emit key;
        the first copy to arrive is processed, later copies are dropped.
        This is simultaneously the rep-k duplicate filter and the
        exactly-once guarantee of checkpoint/replay recovery.
        """
        if tup.emit_key is None:
            return True
        key = (op_name, tup.emit_key)
        if key in self._seen_keys:
            return False
        self._seen_keys.add(key)
        return True

    def _ingest(self, op_name: str, tup: StreamTuple, forward_copies: bool):
        """Run a tuple into a hosted source operator."""
        op = self.ops.get(op_name)
        if op is None:
            return
        if tup.lineage is None:
            tup.lineage = (f"{self.region.name}.{op_name}", tup.source_seq)
        # A source entry always starts the emit-key chain fresh: replayed
        # (preserved) tuples may carry a stale key from their first pass,
        # and keys must regenerate identically for dedup to fire.
        tup.emit_key = None
        # Exactly one record per on_source_ingest call (replays included):
        # the delivery ledger of the invariant harness mirrors the
        # preservation store through this 1:1 correspondence.
        self.region.trace.record(
            self.sim.now, "source_ingest", region=self.region.name,
            node=self.id, op=op_name, seq=tup.source_seq,
        )
        self.region.scheme.on_source_ingest(self, op_name, tup)
        if forward_copies and self.region.placement.replication_factor > 1:
            # Feed the other chains' source replicas (replication traffic).
            for r, nid in enumerate(self.region.placement.nodes_for(op_name)):
                if nid != self.id:
                    self.region.send_source_copy(self, op_name, nid, tup)
        yield from self._process_chain(op_name, tup)

    def _process_chain(self, op_name: str, tup: StreamTuple):
        """Process a tuple through ``op_name`` and any co-located successors."""
        op = self.ops[op_name]
        cost = op.cost(tup)
        if cost > 0:
            work = self.phone.compute_time(cost)
            req = self.cpu.request()
            yield req
            try:
                yield self.sim.timeout(work)
            finally:
                self.cpu.release(req)
            self.phone.battery.drain_cpu(work)
        if not self.alive:
            return

        ctx = self.region.operator_context()
        try:
            outputs = op.process(tup, ctx)
        except Exception as exc:
            # An operator bug must not silently kill the whole node loop;
            # the tuple is dropped and the error surfaced in the trace.
            self.region.trace.count("op_errors")
            self.region.trace.record(
                self.sim.now, "op_error", region=self.region.name,
                node=self.id, op=op_name, error=repr(exc),
            )
            return
        self.region.scheme.on_processed(self, op_name, tup)
        telemetry = self.region.telemetry
        if telemetry is not None:
            telemetry.tuple_complete(self.region.name, op_name, len(outputs))

        if op.is_sink:
            for out in outputs:
                self.region.on_sink_output(self, op_name, out)
            return

        chain = self.op_chain[op_name]
        downstream = self.region.graph.downstream_of(op_name)
        # The key chains off the *input's* emit key (not just lineage) so
        # that a multi-input operator fed the same source tuple along two
        # paths (diamonds: A->J and L->J) emits distinct keys per path,
        # while replicas and replays regenerate identical keys.
        in_key = tup.emit_key if tup.emit_key is not None else tup.lineage
        for emit_idx, out in enumerate(outputs):
            out.emit_key = (op_name, in_key, emit_idx)
            for d_op in op.route(out, downstream):
                d_chain = min(chain, len(self.region.placement.nodes_for(d_op)) - 1)
                if not self.region.scheme.chain_active(d_chain):
                    continue  # that dataflow chain is dead (rep-k after loss)
                target = self.region.placement.node_for(d_op, d_chain)
                if target == self.id and self.op_chain.get(d_op) == d_chain:
                    # Intra-node data pass: no network, immediate.
                    self.region.scheme.on_emit(self, op_name, d_op, out, remote=False)
                    yield from self._process_chain(d_op, out)
                else:
                    self.region.scheme.on_emit(self, op_name, d_op, out, remote=True)
                    self.region.route_tuple(self, d_op, out, chain=d_chain)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"<NodeRuntime {self.id} chain={self.chain} ops={list(self.ops)} {state}>"
