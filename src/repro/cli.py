"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One deployment: pick the app, the fault-tolerance scheme, optional
    fault injections, and get a metrics report.
``bench``
    Regenerate a paper artifact (``table1``/``fig8``/``fig9``/``fig10``/
    ``ablation``) — thin wrapper over :mod:`repro.bench.run_all`.
``scenario``
    The scenario engine: ``list`` the named library, ``show`` a spec as
    JSON, ``run`` a scenario's matrix serially, or ``sweep`` it across
    a warm process pool (``--jobs N``) into a streamed JSON artifact.
    ``--resume`` reuses finished cases from the case-level cache
    (``--cache-dir``); ``--max-cases N`` runs a partial sweep.
``app``
    The application registry: ``list`` the registered apps, ``show``
    one app's operators, sources, placement, and tunable parameters.
``report``
    The results API over a saved sweep artifact: group, aggregate,
    and normalize cases (``--group-by scheme --relative-to base``)
    without re-running anything — works on streamed and resumed
    artifacts too.
``watch``
    Live QoS telemetry (see :mod:`repro.telemetry`): run one case of a
    scenario with a streaming per-operator metrics table, or
    ``--replay`` a saved ``*.timeline.json`` artifact frame by frame.
    Pair with ``scenario sweep --telemetry --out sweep.json``, which
    drops per-case timelines into ``sweep.timelines/``.
``perf``
    The performance subsystem: ``run`` the benchmark suites into
    ``BENCH_<suite>.json`` artifacts, ``compare`` a run against the
    committed baseline with a regression threshold (non-zero exit on
    regression — the CI perf-smoke gate).
``fabric``
    Distributed sweeps (see :mod:`repro.fabric`): ``coordinator`` binds
    a TCP control plane and shards one sweep's case matrix over
    ``worker`` processes (on this host or others), re-queuing cases
    lost to worker death and merging rows byte-identically to a serial
    run; ``chaos`` SIGKILLs random workers mid-sweep and byte-compares
    the result against serial.  ``scenario sweep --fabric HOST:PORT``
    is coordinator mode with the standard sweep UX.
``fuzz``
    Property-based scenario fuzzing (see :mod:`repro.verify`): ``gen``
    writes a seed's deterministic spec walk as JSON files, ``run``
    executes it with the invariant harness armed (non-zero exit on any
    violation), ``shrink`` delta-debugs a failing spec file down to a
    minimal reproducer that re-triggers via
    ``scenario run <file> --verify``.
``lint``
    Project-aware static analysis (see :mod:`repro.analysis`): walk the
    tree's ASTs with the determinism / API-contract / observer-purity /
    lock-discipline rule catalog, gate on the committed
    ``lint-baseline.json`` (fail only on *new* findings), or check
    ScenarioSpec JSON files statically (``lint path/to/spec.json``).
``info``
    List the available applications, schemes, and the paper's reference
    numbers.

Examples
--------
::

    python -m repro run --app bcp --scheme ms-8 --duration 900 \\
        --crash 300:3,4 --verbose
    python -m repro bench fig8 --quick
    python -m repro scenario list
    python -m repro scenario run paper-fig8 --quick
    python -m repro scenario sweep flash-crowd --jobs 4 --out sweep.json
    python -m repro scenario sweep paper-fig8 --jobs 4 --resume --out sweep.json
    python -m repro scenario sweep flash-crowd --telemetry --out sweep.json
    python -m repro watch flash-crowd --quick
    python -m repro watch sweep.timelines --replay --scheme ms-8
    python -m repro report sweep.json --group-by scheme --relative-to base
    python -m repro report sweep.json --metrics throughput,latency --format md
    python -m repro app list
    python -m repro app show edgeml
    python -m repro perf run --quick
    python -m repro perf compare --threshold 0.25
    python -m repro scenario run paper-fig8 --quick --verify
    python -m repro fabric coordinator paper-fig8 --quick --bind :7381 \\
        --out sweep.json
    python -m repro fabric worker --connect coordinator-host:7381 --jobs 4
    python -m repro fabric chaos paper-fig8 --quick --workers 2 --kills 1
    python -m repro fuzz run --seed 7 --count 20 --budget-s 60
    python -m repro fuzz shrink failing.json --out minimal.json
    python -m repro scenario run minimal.json --verify
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.apps import registry as app_registry
from repro.bench.fig8 import PAPER_LATENCY, SCHEME_ORDER
from repro.bench.harness import ExperimentConfig, run_experiment, scheme_factories
from repro.bench.table1 import PAPER as TABLE1_PAPER
from repro.results import ResultSet, build_report

APPS = tuple(app_registry.app_names())


def _parse_fault(spec: str) -> Tuple[float, List[int]]:
    """``"300:3,4"`` -> ``(300.0, [3, 4])``."""
    try:
        time_part, idx_part = spec.split(":", 1)
        t = float(time_part)
        idxs = [int(i) for i in idx_part.split(",") if i]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"fault spec must look like TIME:IDX[,IDX...], got {spec!r}"
        ) from exc
    if t < 0 or not idxs:
        raise argparse.ArgumentTypeError(f"bad fault spec {spec!r}")
    return t, idxs


def _add_sweep_exec_flags(p: argparse.ArgumentParser) -> None:
    """Sweep-execution flags shared by ``scenario run``/``sweep`` and
    ``fabric coordinator`` (which is a sweep with remote executors)."""
    p.add_argument("--quick", action="store_true",
                   help="time-compress the scenario to ~300 sim seconds")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the aggregated metrics JSON here")
    layout = p.add_mutually_exclusive_group()
    layout.add_argument("--compact", dest="compact", action="store_true",
                        default=None,
                        help="write separators-only JSON (automatic for "
                             "sweeps of >= 100 cases)")
    layout.add_argument("--pretty", dest="compact", action="store_false",
                        help="force indented JSON even for huge sweeps")
    p.add_argument("--resume", action="store_true",
                   help="reuse finished cases from the resume cache and "
                        "persist fresh ones (only missing cases run)")
    p.add_argument("--cache-dir", default=".repro-sweep-cache",
                   metavar="DIR",
                   help="resume-cache directory (default "
                        ".repro-sweep-cache)")
    p.add_argument("--max-cases", type=int, default=None, metavar="N",
                   help="stop after the first N matrix cases (partial "
                        "sweep; pairs with --resume to test resumption)")
    p.add_argument("--telemetry", action="store_true",
                   help="attach the QoS monitor to every case; with "
                        "--out FILE.json, per-case timelines land in "
                        "FILE.timelines/")
    p.add_argument("--telemetry-interval", type=float, default=10.0,
                   metavar="SECS",
                   help="telemetry sampling interval in simulated "
                        "seconds (default 10)")
    p.add_argument("--verify", action="store_true",
                   help="arm the recovery-invariant harness on every "
                        "case; violations print to stderr and the "
                        "exit status is 1 if any fired")
    p.add_argument("--n-phones", type=int, default=None, metavar="N",
                   help="scale every region's population to N phones "
                        "(the computing count is kept; the idle spare "
                        "pool absorbs the rest)")
    p.add_argument("--scheduler", default=None,
                   choices=["heap", "calendar"],
                   help="simulator event-queue backend (default: the "
                        "REPRO_SIM_SCHEDULER env var, else heap)")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MobiStreams reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one deployment and report metrics")
    run_p.add_argument("--app", choices=APPS, default="bcp")
    run_p.add_argument("--scheme", choices=SCHEME_ORDER, default="ms-8")
    run_p.add_argument("--duration", type=float, default=900.0,
                       help="simulated seconds (default 900)")
    run_p.add_argument("--warmup", type=float, default=150.0)
    run_p.add_argument("--regions", type=int, default=1)
    run_p.add_argument("--phones", type=int, default=8)
    run_p.add_argument("--idle", type=int, default=2)
    run_p.add_argument("--seed", type=int, default=3)
    run_p.add_argument("--period", type=float, default=300.0,
                       help="checkpoint period in seconds")
    run_p.add_argument("--crash", type=_parse_fault, default=None,
                       action="append", metavar="T:I,J",
                       help="crash phones I,J at time T (repeatable)")
    run_p.add_argument("--depart", type=_parse_fault, default=None,
                       action="append", metavar="T:I,J",
                       help="phones I,J leave at time T (repeatable)")
    run_p.add_argument("--verbose", action="store_true",
                       help="also print fault-tolerance counters")

    bench_p = sub.add_parser("bench", help="regenerate a paper artifact")
    bench_p.add_argument("artifact",
                         choices=["table1", "fig8", "fig9", "fig10",
                                  "ablation", "all"])
    bench_p.add_argument("--quick", action="store_true")

    scen_p = sub.add_parser("scenario", help="scenario engine commands")
    scen_sub = scen_p.add_subparsers(dest="scenario_command", required=True)
    scen_sub.add_parser("list", help="list the registered scenarios")
    show_p = scen_sub.add_parser("show", help="print one scenario spec as JSON")
    show_p.add_argument("name",
                        help="a registered scenario name or a spec JSON file")
    for verb, help_text in (
        ("run", "run a scenario's matrix and print a results table"),
        ("sweep", "run a scenario's matrix and write a JSON artifact"),
    ):
        p = scen_sub.add_parser(verb, help=help_text)
        p.add_argument("name",
                       help="a registered scenario name or a spec JSON file "
                            "(e.g. a fuzz reproducer)")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1 = serial)")
        _add_sweep_exec_flags(p)
        if verb == "sweep":
            p.add_argument("--fabric", default=None, metavar="HOST:PORT",
                           help="coordinate this sweep over the distributed "
                                "fabric: bind HOST:PORT and lease cases to "
                                "`repro fabric worker` processes instead of "
                                "a local pool (--jobs is ignored)")

    fabric_p = sub.add_parser(
        "fabric", help="distributed sweep fabric: coordinator, workers, "
                       "and the chaos harness")
    fabric_sub = fabric_p.add_subparsers(dest="fabric_command", required=True)
    fab_coord = fabric_sub.add_parser(
        "coordinator",
        help="serve one sweep: shard the case matrix over TCP workers and "
             "merge rows in deterministic matrix order")
    fab_coord.add_argument(
        "name", help="a registered scenario name or a spec JSON file")
    fab_coord.add_argument("--bind", default="127.0.0.1:7381",
                           metavar="HOST:PORT",
                           help="listen address (default 127.0.0.1:7381; "
                                "port 0 picks a free port)")
    _add_sweep_exec_flags(fab_coord)
    fab_coord.add_argument("--lease-timeout", type=float, default=120.0,
                           metavar="SECS",
                           help="re-queue a leased case not finished within "
                                "this window (default 120)")
    fab_coord.add_argument("--heartbeat-timeout", type=float, default=15.0,
                           metavar="SECS",
                           help="treat a worker silent this long as dead "
                                "(default 15)")
    fab_coord.add_argument("--retry-limit", type=int, default=5,
                           help="quarantine a case after this many leases "
                                "(default 5)")
    fab_coord.add_argument("--max-kills", type=int, default=2,
                           help="quarantine a case after it kills this many "
                                "workers (default 2)")
    fab_coord.add_argument("--idle-timeout", type=float, default=None,
                           metavar="SECS",
                           help="abort if no worker makes progress for this "
                                "long (default: wait forever)")
    fab_worker = fabric_sub.add_parser(
        "worker", help="lease and execute cases from a coordinator")
    fab_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                            help="coordinator address")
    fab_worker.add_argument("--jobs", type=int, default=1,
                            help="local executor processes; 1 (default) "
                                 "runs cases in-process")
    fab_worker.add_argument("--id", default=None, metavar="NAME",
                            help="worker identity in coordinator logs "
                                 "(default <host>-<pid>)")
    fab_worker.add_argument("--heartbeat-interval", type=float, default=1.0,
                            metavar="SECS",
                            help="keepalive cadence while busy (default 1)")
    fab_worker.add_argument("--io-timeout", type=float, default=15.0,
                            metavar="SECS",
                            help="socket timeout per exchange (default 15)")
    fab_worker.add_argument("--patience", type=float, default=60.0,
                            metavar="SECS",
                            help="give up after the coordinator has been "
                                 "unreachable this long (default 60)")
    fab_chaos = fabric_sub.add_parser(
        "chaos", help="SIGKILL random workers mid-sweep and assert the "
                      "merged artifact byte-matches a serial run")
    fab_chaos.add_argument(
        "name", help="a registered scenario name or a spec JSON file")
    fab_chaos.add_argument("--quick", action="store_true",
                           help="time-compress the scenario to ~300 sim "
                                "seconds")
    fab_chaos.add_argument("--workers", type=int, default=2,
                           help="worker subprocesses (default 2)")
    fab_chaos.add_argument("--kills", type=int, default=1,
                           help="workers to SIGKILL mid-run (default 1)")
    fab_chaos.add_argument("--seed", type=int, default=0,
                           help="victim-selection RNG seed (default 0)")
    fab_chaos.add_argument("--max-cases", type=int, default=None, metavar="N",
                           help="truncate the matrix to N cases")
    fab_chaos.add_argument("--work-dir", default=None, metavar="DIR",
                           help="artifact scratch directory (default: a "
                                "fresh temp dir)")

    watch_p = sub.add_parser(
        "watch", help="live QoS telemetry: watch a scenario case or "
                      "replay a saved timeline")
    watch_p.add_argument(
        "target",
        help="a scenario name (live run), a *.timeline.json file, or a "
             "timelines directory from `scenario sweep --telemetry`")
    watch_p.add_argument("--replay", action="store_true",
                         help="render a saved timeline's history frame by "
                              "frame instead of just the final state")
    watch_p.add_argument("--app", default=None,
                         help="case app (live: default first matrix app; "
                              "replay dir: filter)")
    watch_p.add_argument("--scheme", default=None,
                         help="case scheme (live: default first matrix "
                              "scheme; replay dir: filter)")
    watch_p.add_argument("--seed", type=int, default=None,
                         help="case seed (live: default first matrix seed; "
                              "replay dir: filter)")
    watch_p.add_argument("--quick", action="store_true",
                         help="live mode: time-compress the scenario to "
                              "~300 sim seconds")
    watch_p.add_argument("--interval", type=float, default=10.0,
                         metavar="SECS",
                         help="live mode: sampling interval in simulated "
                              "seconds (default 10)")
    watch_p.add_argument("--out", default=None, metavar="FILE",
                         help="live mode: also save the timeline JSON here")
    watch_p.add_argument("--delay", type=float, default=0.0, metavar="SECS",
                         help="wall-clock pause between replay frames "
                              "(default 0)")
    watch_p.add_argument("--no-ansi", action="store_true",
                         help="append-only output: one progress line per "
                              "sample, full tables only at the end "
                              "(automatic when stdout is not a TTY)")

    rep_p = sub.add_parser(
        "report", help="analyze a saved sweep artifact (no re-running)")
    rep_p.add_argument("artifact", help="sweep artifact JSON file")
    rep_p.add_argument("--group-by", default=None, metavar="AXIS",
                       help="case axis (scenario/app/scheme/seed) or a "
                            "comma list; default: whichever axis varies")
    rep_p.add_argument("--relative-to", default=None, metavar="KEY",
                       help="normalize every metric to this group "
                            "(e.g. the 'base' scheme)")
    rep_p.add_argument("--metrics", default=None, metavar="M1,M2",
                       help="comma-separated metric list (default: the "
                            "paper's headline metrics)")
    rep_p.add_argument("--stat", default="mean",
                       choices=["mean", "median", "min", "max", "p95",
                                "std", "sum", "count"],
                       help="aggregation across each group (default mean)")
    rep_p.add_argument("--ci", action="store_true",
                       help="add the 95%% normal-approximation CI of the "
                            "mean (cross-seed error bars)")
    rep_p.add_argument("--filter", action="append", default=None,
                       metavar="AXIS=VALUE",
                       help="keep only matching cases, e.g. app=bcp "
                            "(repeatable)")
    rep_p.add_argument("--format", dest="fmt", default="table",
                       choices=["table", "json", "md"],
                       help="output format (default table)")

    app_p = sub.add_parser("app", help="application registry commands")
    app_sub = app_p.add_subparsers(dest="app_command", required=True)
    app_sub.add_parser("list", help="list the registered applications")
    app_show = app_sub.add_parser(
        "show", help="print one app's operators, placement, and parameters")
    app_show.add_argument("name")

    perf_p = sub.add_parser("perf", help="performance benchmarks")
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)
    perf_run = perf_sub.add_parser(
        "run", help="run benchmark suites, write BENCH_<suite>.json")
    perf_run.add_argument("--quick", action="store_true",
                          help="smaller workloads (completes in <60s)")
    perf_run.add_argument("--suite", action="append", dest="suites",
                          metavar="NAME", default=None,
                          help="run only this suite (repeatable)")
    perf_run.add_argument("--out-dir", default=None, metavar="DIR",
                          help="artifact directory "
                               "(default benchmarks/results)")
    perf_cmp = perf_sub.add_parser(
        "compare", help="compare a run against the committed baseline")
    perf_cmp.add_argument("--baseline", default=None, metavar="DIR",
                          help="baseline artifacts "
                               "(default benchmarks/baselines)")
    perf_cmp.add_argument("--current", default=None, metavar="DIR",
                          help="fresh artifacts (default benchmarks/results)")
    perf_cmp.add_argument("--threshold", type=float, default=0.25,
                          help="allowed slowdown fraction before failing "
                               "(default 0.25 = +25%%)")
    perf_cmp.add_argument("--suite", action="append", dest="suites",
                          metavar="NAME", default=None,
                          help="compare only this suite (repeatable)")

    fuzz_p = sub.add_parser(
        "fuzz", help="property-based scenario fuzzing with invariants armed")
    fuzz_sub = fuzz_p.add_subparsers(dest="fuzz_command", required=True)
    fuzz_gen = fuzz_sub.add_parser(
        "gen", help="write a seed's deterministic spec walk as JSON files")
    fuzz_gen.add_argument("--seed", type=int, default=0,
                          help="walk seed (default 0); same seed, same bytes")
    fuzz_gen.add_argument("--count", type=int, default=20,
                          help="number of specs to generate (default 20)")
    fuzz_gen.add_argument("--out-dir", default="fuzz-specs", metavar="DIR",
                          help="spec directory (default fuzz-specs)")
    fuzz_run = fuzz_sub.add_parser(
        "run", help="generate and execute a walk with the harness armed")
    fuzz_run.add_argument("--seed", type=int, default=0,
                          help="walk seed (default 0)")
    fuzz_run.add_argument("--count", type=int, default=20,
                          help="specs in the walk (default 20)")
    fuzz_run.add_argument("--budget-s", type=float, default=None,
                          metavar="SECS",
                          help="wall budget: stop starting new specs after "
                               "this many seconds (generation is unaffected)")
    fuzz_run.add_argument("--out-dir", default=None, metavar="DIR",
                          help="write each failing spec (and its shrunk "
                               "reproducer) here")
    fuzz_run.add_argument("--no-shrink", action="store_true",
                          help="report failures without minimizing them")
    fuzz_shrink = fuzz_sub.add_parser(
        "shrink", help="delta-debug a failing spec file to a minimal one")
    fuzz_shrink.add_argument("spec", help="failing spec JSON file")
    fuzz_shrink.add_argument("--invariant", default=None, metavar="NAME",
                             help="preserve this invariant (default: any "
                                  "the input violates)")
    fuzz_shrink.add_argument("--max-runs", type=int, default=200,
                             help="cap on verification re-runs (default 200)")
    fuzz_shrink.add_argument("--out", default=None, metavar="FILE",
                             help="minimized spec path "
                                  "(default <spec>.min.json)")

    lint_p = sub.add_parser(
        "lint", help="project-aware static analysis (determinism, API "
                     "contracts, observer purity, lock discipline)")
    from repro.analysis.cli import configure_parser as _configure_lint
    _configure_lint(lint_p)

    sub.add_parser("info", help="list apps, schemes, paper numbers")
    return parser


def cmd_run(args) -> int:
    cfg = ExperimentConfig(
        app=args.app, scheme=args.scheme, duration_s=args.duration,
        warmup_s=args.warmup, seed=args.seed, n_regions=args.regions,
        phones_per_region=args.phones, idle_per_region=args.idle,
        checkpoint_period_s=args.period, crash=args.crash,
        depart=args.depart,
    )
    out = run_experiment(cfg)
    print(f"app={args.app} scheme={args.scheme} "
          f"duration={args.duration:.0f}s seed={args.seed}")
    for name, rm in out.report.per_region.items():
        print(f"  {name}: {rm.output_tuples} outputs, "
              f"{rm.throughput_tps:.3f} t/s, "
              f"latency mean {rm.mean_latency_s:.1f}s "
              f"p95 {rm.p95_latency_s:.1f}s")
    if out.region_stopped:
        print("  region0 STOPPED (unrecoverable failure set)")
    if out.recoveries:
        print(f"  recoveries: {out.recoveries}")
    if out.report.departures_handled:
        print(f"  departures handled: {out.report.departures_handled}")
    if args.verbose:
        r = out.report
        print(f"  preserved bytes:    {r.preserved_bytes:,.0f}")
        print(f"  ft network bytes:   {r.ft_network_bytes:,.0f}")
        print(f"  wifi bytes:         {r.wifi_bytes:,.0f}")
        print(f"  cellular bytes:     {r.cellular_bytes:,.0f}")
        print(f"  kernel events:      {r.events_processed:,d}")
        extras = {k: v for k, v in sorted(r.counters.items())
                  if not k.startswith(("net.", "ft."))}
        for name, value in extras.items():
            print(f"  {name + ':':<19s} {value:,.0f}")
    return 1 if out.region_stopped else 0


def cmd_bench(args) -> int:
    from repro.bench import run_all

    argv = ["--quick"] if args.quick else []
    if args.artifact != "all":
        argv += ["--only", args.artifact]
    return run_all.main(argv)


def _load_spec_arg(name: str):
    """Resolve a scenario argument: a registered name or a spec JSON
    file.  Returns ``(spec, None)`` or ``(None, exit_code)``."""
    import os

    from repro import scenarios

    if os.path.isfile(name):
        # A spec JSON file (a fuzz reproducer, a hand-written scenario)
        # works everywhere a registered name does.
        from repro.scenarios import ScenarioSpec

        try:
            with open(name, encoding="utf-8") as fh:
                return ScenarioSpec.from_json(fh.read()), None
        except (ValueError, TypeError, OSError) as exc:
            print(f"error: cannot load spec file {name}: {exc}",
                  file=sys.stderr)
            return None, 2
    try:
        return scenarios.get(name), None
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return None, 2


def _prepare_sweep_spec(spec, args):
    """Apply the shared sweep-shaping flags (--quick/--n-phones/
    --scheduler/--telemetry) and derive the timelines directory.
    Returns ``(spec, timelines_dir)``; ``(None, None)`` on a usage
    error (already printed)."""
    import os

    if args.quick:
        spec = spec.quick()
    if getattr(args, "n_phones", None) is not None:
        try:
            spec = spec.scaled_phones(args.n_phones)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None, None
    if getattr(args, "scheduler", None) is not None:
        # Workers inherit the environment, so the knob reaches forked
        # sweep processes too.
        os.environ["REPRO_SIM_SCHEDULER"] = args.scheduler
    if getattr(args, "telemetry", False):
        import dataclasses

        from repro.scenarios import TelemetrySpec
        spec = dataclasses.replace(
            spec, telemetry=TelemetrySpec(interval_s=args.telemetry_interval))
    timelines_dir = None
    if getattr(args, "telemetry", False) and getattr(args, "out", None):
        base = args.out[:-5] if args.out.endswith(".json") else args.out
        timelines_dir = base + ".timelines"
    return spec, timelines_dir


def _report_failures(result, verify: bool) -> bool:
    """Surface a sweep envelope's violation/error/quarantine records on
    stderr.  Returns True when any fired (the non-zero-exit signal)."""
    violations = result.get("violations", []) if verify else []
    if verify:
        for v in violations:
            print(f"VIOLATION [{v.get('invariant')}] "
                  f"app={v.get('app')} scheme={v.get('scheme')} "
                  f"seed={v.get('seed')} t={v.get('time', 0.0):.3f}s: "
                  f"{v.get('message')}", file=sys.stderr)
            for rec in (v.get("window") or [])[-5:]:
                extras = " ".join(
                    f"{k}={rec[k]}" for k in rec
                    if k not in ("time", "category"))
                print(f"    | t={rec.get('time', 0.0):9.3f} "
                      f"{rec.get('category')} {extras}", file=sys.stderr)
        print(f"verify: {len(violations)} violation(s) across "
              f"{result['n_cases']} case(s)", file=sys.stderr)
    errors = result.get("errors", [])
    for rec in errors:
        err = rec.get("error") or {}
        print(f"CASE ERROR app={rec.get('app')} scheme={rec.get('scheme')} "
              f"seed={rec.get('seed')} after {rec.get('attempts')} "
              f"attempt(s): {err.get('type')}: {err.get('message')}",
              file=sys.stderr)
    quarantined = result.get("quarantined", [])
    for rec in quarantined:
        print(f"QUARANTINED app={rec.get('app')} scheme={rec.get('scheme')} "
              f"seed={rec.get('seed')}: {rec.get('reason')} "
              f"(kills={rec.get('kills')}, attempts={rec.get('attempts')})",
              file=sys.stderr)
    return bool(violations or errors or quarantined)


def cmd_fabric(args) -> int:
    from repro.fabric import (
        FabricCoordinator,
        FabricError,
        FabricWorker,
        parse_address,
    )

    if args.fabric_command == "worker":
        try:
            address = parse_address(args.connect)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.jobs < 1:
            print("error: --jobs must be >= 1", file=sys.stderr)
            return 2
        worker = FabricWorker(
            address, jobs=args.jobs, worker_id=args.id,
            heartbeat_interval_s=args.heartbeat_interval,
            io_timeout_s=args.io_timeout, patience_s=args.patience)
        return worker.run()

    spec, err = _load_spec_arg(args.name)
    if spec is None:
        return err

    if args.fabric_command == "chaos":
        import tempfile

        from repro.fabric.chaos import run_chaos

        if args.quick:
            spec = spec.quick()
        work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-chaos-")
        outcome = run_chaos(
            spec, work_dir=work_dir, n_workers=args.workers,
            kills=args.kills, seed=args.seed, max_cases=args.max_cases)
        print(f"chaos: {outcome.n_cases} case(s), "
              f"{outcome.kills_delivered} worker(s) SIGKILLed, "
              f"{outcome.respawns} respawned")
        print(f"chaos: serial  -> {outcome.serial_path}")
        print(f"chaos: fabric  -> {outcome.fabric_path}")
        clean = outcome.identical and not outcome.quarantined \
            and not outcome.errors
        print("chaos: artifacts byte-identical" if outcome.identical
              else "chaos: ARTIFACT MISMATCH")
        _report_failures(outcome.envelope, verify=False)
        return 0 if clean else 1

    # coordinator
    if args.max_cases is not None and args.max_cases < 1:
        print("error: --max-cases must be >= 1", file=sys.stderr)
        return 2
    spec, timelines_dir = _prepare_sweep_spec(spec, args)
    if spec is None:
        return 2
    try:
        bind = parse_address(args.bind)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    resume_dir = args.cache_dir if args.resume else None

    def on_progress(kind, index, app_key, scheme, seed) -> None:
        print(f"fabric: case {index} {kind} ({app_key}/{scheme}/seed={seed})",
              file=sys.stderr, flush=True)

    try:
        coordinator = FabricCoordinator(
            spec, bind, verify=args.verify, resume_dir=resume_dir,
            max_cases=args.max_cases, lease_timeout_s=args.lease_timeout,
            heartbeat_timeout_s=args.heartbeat_timeout,
            retry_limit=args.retry_limit, max_kills=args.max_kills,
            idle_timeout_s=args.idle_timeout, on_progress=on_progress)
    except OSError as exc:
        print(f"error: cannot bind {args.bind}: {exc}", file=sys.stderr)
        return 2
    print(f"fabric: listening on {coordinator.host}:{coordinator.port}",
          file=sys.stderr, flush=True)
    try:
        result = coordinator.run(out_path=args.out, compact=args.compact,
                                 timelines_dir=timelines_dir)
    except FabricError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    failed = _report_failures(result, verify=args.verify)
    if timelines_dir:
        print(f"telemetry timelines -> {timelines_dir}/", file=sys.stderr)
    if args.out:
        print(f"{result['n_cases']} cases -> {args.out}")
    else:
        rs = ResultSet.from_sweep(result)
        print(rs.to_json(compact=args.compact))
    return 1 if failed else 0


def cmd_scenario(args) -> int:
    from repro import scenarios
    from repro.bench.harness import format_table

    if args.scenario_command == "list":
        rows = []
        for spec in scenarios.all_specs():
            summary = spec.description.split(":")[0] if spec.description else ""
            if len(summary) > 56:
                summary = summary[:53] + "..."
            rows.append([
                spec.name,
                f"{spec.n_regions}", f"{len(spec.matrix)}", f"{len(spec.events)}",
                f"{spec.duration_s:.0f}s", summary,
            ])
        print(format_table(
            ["scenario", "regions", "cases", "events", "duration", "summary"],
            rows, title=f"{len(rows)} registered scenarios"))
        return 0

    spec, err = _load_spec_arg(args.name)
    if spec is None:
        return err

    if args.scenario_command == "show":
        print(spec.to_json(indent=2))
        for ev in spec.late_events():
            print(f"warning: {ev.kind} event at t={ev.time:g}s is at/past "
                  f"duration_s={spec.duration_s:g} and never fires",
                  file=sys.stderr)
        return 0

    # run / sweep
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.max_cases is not None and args.max_cases < 1:
        print("error: --max-cases must be >= 1", file=sys.stderr)
        return 2
    spec, timelines_dir = _prepare_sweep_spec(spec, args)
    if spec is None:
        return 2
    compact = getattr(args, "compact", None)
    resume_dir = args.cache_dir if args.resume else None
    from repro.scenarios import executor

    hits_before = executor.stats["cache_hits"]
    fabric = getattr(args, "fabric", None)
    if fabric is not None:
        from repro.fabric import FabricCoordinator, FabricError, parse_address

        try:
            bind = parse_address(fabric)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        coordinator = FabricCoordinator(
            spec, bind, verify=args.verify, resume_dir=resume_dir,
            max_cases=args.max_cases)
        print(f"fabric: listening on {coordinator.host}:{coordinator.port}",
              file=sys.stderr, flush=True)
        try:
            result = coordinator.run(out_path=args.out, compact=compact,
                                     timelines_dir=timelines_dir)
        except FabricError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        result = scenarios.run_sweep(spec, jobs=args.jobs, out_path=args.out,
                                     compact=compact, resume_dir=resume_dir,
                                     max_cases=args.max_cases,
                                     timelines_dir=timelines_dir,
                                     verify=args.verify)
    failed = _report_failures(result, verify=args.verify)
    if resume_dir:
        hits = executor.stats["cache_hits"] - hits_before
        print(f"resume cache: {hits}/{result['n_cases']} case(s) reused "
              f"from {resume_dir}", file=sys.stderr)
    if timelines_dir:
        print(f"telemetry timelines -> {timelines_dir}/", file=sys.stderr)
    rs = ResultSet.from_sweep(result)
    if args.scenario_command == "sweep" and args.out:
        print(f"{len(rs)} cases -> {args.out}")
        return 1 if failed else 0
    if args.scenario_command == "sweep":
        print(rs.to_json(compact=compact))
        return 1 if failed else 0
    rows = []
    for case in rs:
        first = case.first_region
        lat = case.end_to_end_latency_s
        rows.append([
            case.app, case.scheme, case.seed,
            f"{first.throughput_tps:.3f}" if first.throughput_tps is not None else "-",
            f"{lat:.1f}" if lat is not None else "-",
            case.recoveries, case.departures_handled,
            "STOPPED" if case.stopped else "ok",
        ])
    print(format_table(
        ["app", "scheme", "seed", "tput t/s", "e2e lat s",
         "recoveries", "departures", "outcome"],
        rows, title=f"scenario {spec.name} — {len(rs)} cases"))
    return 1 if failed or any(case.stopped for case in rs) else 0


def cmd_app(args) -> int:
    from repro.bench.harness import format_table

    if args.app_command == "list":
        rows = []
        for entry in app_registry.all_apps():
            app = entry.create()
            rows.append([
                entry.name,
                f"{len(app.build_graph())}",
                f"{app.compute_phones_needed()}",
                f"{len(entry.param_fields())}",
                entry.description.split(":")[0],
            ])
        print(format_table(
            ["app", "operators", "phones", "params", "summary"],
            rows, title=f"{len(rows)} registered applications"))
        return 0

    # show
    try:
        entry = app_registry.get_app(args.name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    app = entry.create()
    info = app.describe() if hasattr(app, "describe") else None
    print(f"{entry.name}: {entry.description}")
    if info:
        print("\nstages:")
        for st in info["stages"]:
            wiring = f" <- {', '.join(st['upstream'])}" if st["upstream"] else ""
            width = f" x{st['width']}" if st["width"] > 1 else ""
            print(f"  {st['stage']:<8s} [{', '.join(st['ops'])}]{width}{wiring}")
        print("\noperators:")
        for op in info["operators"]:
            role = ("source" if op["source"] else
                    "sink" if op["sink"] else "")
            state = (f"state {op['state_bytes'] / 1024:.0f} KB"
                     if op["state_bytes"] else "")
            detail = "  ".join(x for x in (role, state) if x)
            print(f"  {op['name']:<4s} {op['type']:<20s} {detail}")
        groups = " | ".join(",".join(g) for g in info["placement_groups"])
        print(f"\nplacement ({info['phones_needed']} phones): {groups}")
    fields = entry.param_fields()
    if fields:
        print("\ntunable params (JSON ref: "
              f'{{"name": "{entry.name}", "params": {{...}}}}):')
        print(format_table(["param", "type", "default"],
                           [list(row) for row in fields]))
    else:
        print("\n(no tunable params)")
    return 0


def _watch_render(timeline, replay: bool, use_ansi: bool, delay: float) -> None:
    """Render one timeline: frame-by-frame history when replaying, then
    (always) the final full frame — so piped/CI output ends with the
    complete region + operator tables."""
    import time

    from repro.telemetry import render_frame, render_progress_line
    from repro.telemetry.watch import ANSI_CLEAR, replay_frames

    if replay:
        if use_ansi:
            for frame in replay_frames(timeline):
                print(ANSI_CLEAR + frame)
                if delay > 0:
                    time.sleep(delay)
        else:
            for snap in timeline.snapshots:
                print(render_progress_line(snap))
    print(render_frame(timeline))


def cmd_watch(args) -> int:
    import dataclasses
    import os

    from repro.telemetry import (
        Timeline,
        dumps_timeline,
        load_timeline,
        render_frame,
        render_progress_line,
    )
    from repro.telemetry.watch import ANSI_CLEAR

    use_ansi = not args.no_ansi and sys.stdout.isatty()

    if os.path.isdir(args.target):
        names = sorted(n for n in os.listdir(args.target)
                       if n.endswith(".timeline.json"))
        timelines = []
        for name in names:
            tl = load_timeline(os.path.join(args.target, name))
            if args.app is not None and tl.app != args.app:
                continue
            if args.scheme is not None and tl.scheme != args.scheme:
                continue
            if args.seed is not None and tl.seed != args.seed:
                continue
            timelines.append(tl)
        if not timelines:
            print(f"error: no matching *.timeline.json under {args.target}",
                  file=sys.stderr)
            return 2
        for i, tl in enumerate(timelines):
            if i:
                print()
            _watch_render(tl, args.replay, use_ansi, args.delay)
        return 0

    if os.path.isfile(args.target):
        _watch_render(load_timeline(args.target), args.replay,
                      use_ansi, args.delay)
        return 0

    # Live mode: run one case of a named scenario with telemetry attached.
    from repro import scenarios
    from repro.scenarios import TelemetrySpec, run_case

    try:
        spec = scenarios.get(args.target)
    except KeyError as exc:
        print(f"error: {exc.args[0]} (targets may also be a timeline file "
              "or directory)", file=sys.stderr)
        return 2
    if args.replay:
        print("error: --replay needs a saved timeline file or directory, "
              f"not scenario {args.target!r}", file=sys.stderr)
        return 2
    if args.quick:
        spec = spec.quick()
    spec = dataclasses.replace(
        spec, telemetry=TelemetrySpec(interval_s=args.interval))
    app = args.app if args.app is not None else spec.matrix.apps[0]
    scheme = args.scheme if args.scheme is not None else spec.matrix.schemes[0]
    seed = args.seed if args.seed is not None else spec.matrix.seeds[0]

    live: list = []

    def on_snapshot(snap) -> None:
        live.append(snap)
        if use_ansi:
            partial = Timeline(
                scenario=spec.name, app=str(app), scheme=scheme, seed=seed,
                interval_s=args.interval, snapshots=tuple(live))
            print(ANSI_CLEAR + render_frame(partial))
        else:
            print(render_progress_line(snap), flush=True)

    result = run_case(spec, app, scheme, seed, on_snapshot=on_snapshot)
    timeline = result.timeline
    if use_ansi:
        print(ANSI_CLEAR, end="")
    print(render_frame(timeline))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(dumps_timeline(timeline.to_dict()) + "\n")
        print(f"timeline -> {args.out}", file=sys.stderr)
    return 0


def cmd_report(args) -> int:
    try:
        rs = ResultSet.load(args.artifact)
    except OSError as exc:
        print(f"error: cannot read {args.artifact}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        for clause in args.filter or []:
            axis, sep, value = clause.partition("=")
            if not sep or not axis:
                raise ValueError(
                    f"--filter must look like AXIS=VALUE, got {clause!r}"
                )
            rs = rs.filter(**{axis: int(value) if axis == "seed" else value})
        group_by = args.group_by.split(",") if args.group_by else None
        metrics = args.metrics.split(",") if args.metrics else None
        print(build_report(
            rs, group_by=group_by, relative_to=args.relative_to,
            metrics=metrics, stat=args.stat, ci=args.ci, fmt=args.fmt,
        ))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_perf(args) -> int:
    from repro.perf import cli as perf_cli

    if args.perf_command == "run":
        return perf_cli.cmd_perf_run(
            out_dir=args.out_dir or perf_cli.DEFAULT_RESULTS_DIR,
            suites=args.suites, quick=args.quick,
        )
    return perf_cli.cmd_perf_compare(
        baseline_dir=args.baseline or perf_cli.DEFAULT_BASELINE_DIR,
        current_dir=args.current or perf_cli.DEFAULT_RESULTS_DIR,
        threshold=args.threshold, suites=args.suites,
    )


def cmd_fuzz(args) -> int:
    import os

    # ``repro.verify`` re-exports the fuzz() *function*, which shadows
    # the submodule attribute on the package — go through sys.modules.
    import repro.verify.fuzz  # noqa: F401  (registers the submodule)
    fuzz_mod = sys.modules["repro.verify.fuzz"]

    if args.fuzz_command == "shrink":
        from repro.verify.shrink import shrink

        try:
            spec = fuzz_mod.load_spec(args.spec)
        except (OSError, ValueError, TypeError) as exc:
            print(f"error: cannot load spec file {args.spec}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            minimized, runs = shrink(
                spec, invariant=args.invariant, max_runs=args.max_runs,
                on_progress=lambda n, cand: print(
                    f"  run {n}: still failing with {len(cand.events)} "
                    f"event(s), duration {cand.duration_s:g}s",
                    file=sys.stderr),
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        base = args.spec[:-5] if args.spec.endswith(".json") else args.spec
        out = args.out or f"{base}.min.json"
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(minimized.to_json(indent=2) + "\n")
        print(f"shrunk {len(spec.events)} -> {len(minimized.events)} "
              f"event(s), duration {spec.duration_s:g}s -> "
              f"{minimized.duration_s:g}s in {runs} run(s)")
        print(f"minimal reproducer -> {out}")
        print(f"re-trigger with: python -m repro scenario run {out} --verify")
        return 0

    if args.count < 1:
        print("error: --count must be >= 1", file=sys.stderr)
        return 2

    if args.fuzz_command == "gen":
        specs = fuzz_mod.generate_specs(args.seed, args.count)
        paths = fuzz_mod.write_specs(specs, args.out_dir)
        print(f"{len(paths)} spec(s) -> {args.out_dir}/")
        return 0

    # run
    def on_progress(i, spec, failed) -> None:
        app = spec.matrix.apps[0].key
        scheme = spec.matrix.schemes[0]
        status = "FAIL" if failed else "ok"
        print(f"[{i + 1}/{args.count}] {spec.name} "
              f"({app} x {scheme}, {spec.duration_s:g}s, "
              f"{len(spec.events)} event(s)) {status}", file=sys.stderr)

    results, executed = fuzz_mod.fuzz(
        args.seed, args.count, budget_s=args.budget_s,
        on_progress=on_progress)
    failing = [r for r in results if r.failed]
    for entry in fuzz_mod.dump_violations(failing):
        print(f"VIOLATION [{entry['invariant']}] spec={entry['spec']} "
              f"scheme={entry['scheme']} t={entry.get('time', 0.0):.3f}s: "
              f"{entry['message']}", file=sys.stderr)

    if failing and args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        fuzz_mod.write_specs([r.spec for r in failing], args.out_dir)
        if not args.no_shrink:
            from repro.verify.shrink import shrink

            for r in failing:
                try:
                    minimized, runs = shrink(r.spec)
                except ValueError:
                    continue
                path = os.path.join(args.out_dir, f"{minimized.name}.json")
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(minimized.to_json(indent=2) + "\n")
                print(f"minimal reproducer -> {path} ({runs} shrink run(s))",
                      file=sys.stderr)

    skipped = args.count - executed
    budget_note = f" ({skipped} skipped by --budget-s)" if skipped else ""
    print(f"fuzz seed={args.seed}: {executed}/{args.count} spec(s) "
          f"executed{budget_note}, {len(failing)} failing")
    return 1 if failing else 0


def cmd_info(args) -> int:
    print("applications (see `repro app list`):")
    for entry in app_registry.all_apps():
        head, _, tail = entry.description.partition(": ")
        print(f"  {entry.name:<11s} {head}:")
        print(f"  {'':<11s} {tail}")
    print("\nfault-tolerance schemes:")
    for label, factory in scheme_factories().items():
        scheme = factory() if callable(factory) else factory
        print(f"  {label:<8s} {type(scheme).__name__}")
    print("\npaper reference points (Table I, tuples/s | seconds):")
    for app, rows in TABLE1_PAPER.items():
        (tl, th), (ll, lh) = rows["server"]
        print(f"  {app}: server {tl}-{th} t/s, {ll}-{lh}s latency; "
              f"ms {rows['ms_ft_off'][0]} t/s, {rows['ms_ft_off'][1]}s")
    print("\npaper Fig. 8 latency bars (normalized):")
    for app, bars in PAPER_LATENCY.items():
        print(f"  {app}: " + " ".join(f"{k}={v}" for k, v in bars.items()))
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.cli import cmd_lint as _cmd_lint
    return _cmd_lint(args)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return {"run": cmd_run, "bench": cmd_bench, "scenario": cmd_scenario,
            "watch": cmd_watch, "report": cmd_report, "app": cmd_app,
            "perf": cmd_perf, "fuzz": cmd_fuzz, "fabric": cmd_fabric,
            "lint": cmd_lint, "info": cmd_info}[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
