"""The named-scenario registry.

A flat name -> :class:`~repro.scenarios.spec.ScenarioSpec` map.  The
built-in library (:mod:`repro.scenarios.library`) registers itself when
the package is imported; applications and tests can register their own
specs the same way.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` under its name; returns it for chaining."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Drop a registered scenario (no-op if absent)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(names()) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_specs() -> List[ScenarioSpec]:
    """Every registered spec, sorted by name."""
    return [_REGISTRY[n] for n in names()]
