"""Scripted-event injection: a ScenarioSpec's script driving a live system.

The :class:`EventDirector` translates the declarative event entries of a
:class:`~repro.scenarios.spec.ScenarioSpec` into concrete actions against
a built :class:`~repro.core.system.MobiStreamsSystem` — the
:class:`~repro.device.failures.FailureInjector` for crashes, the
mobility/departure path for churn, :meth:`admit_phone`/:meth:`handoff`
for arrivals, and source-rate scaling for workload surges.

Usage (what :mod:`repro.scenarios.runner` does)::

    director = EventDirector(system, spec)
    director.install()      # pre-start hooks (rate scalers, churn models)
    system.start()
    director.schedule()     # timed events, in the spec's listed order
    system.run(spec.duration_s)

The install/schedule split matters: surge scaling must wrap workload
iterators before the source drivers start, while crash/departure timing
must be scheduled *after* start so the simulator's same-timestamp event
order is identical to the hand-assembled harness (bit-for-bit
reproducibility of the paper benches through the refactored path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.device.mobility import PoissonChurn
from repro.scenarios.spec import EventSpec, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import MobiStreamsSystem


class RateScaledWorkload:
    """A workload iterator whose inter-arrival waits divide by a live scale.

    The scale is read when an item is *pulled* (one pull per emitted
    tuple), so a scheduled scale change takes effect from the next tuple
    on — good enough granularity for flash-crowd surges.
    """

    def __init__(self, inner: Iterable) -> None:
        self._inner = iter(inner)
        self.scale = 1.0

    def __iter__(self) -> "RateScaledWorkload":
        return self

    def __next__(self):
        wait, payload, size = next(self._inner)
        return wait / self.scale, payload, size


class EventDirector:
    """Arms one scenario's event script against one built system."""

    def __init__(self, system: "MobiStreamsSystem", spec: ScenarioSpec) -> None:
        self.system = system
        self.spec = spec
        #: Region index -> its installed rate scalers (one per source).
        self._scalers: Dict[int, List[RateScaledWorkload]] = {}

    # -- pre-start -----------------------------------------------------------
    def install(self) -> None:
        """Install hooks that must exist before the system starts."""
        surge_regions = {ev.region for ev in self.spec.events if ev.kind == "surge"}
        for r in sorted(surge_regions):
            scalers: List[RateScaledWorkload] = []

            def wrap(workload, _acc=scalers):
                scaler = RateScaledWorkload(workload)
                _acc.append(scaler)
                return scaler

            self.system.regions[r].wrap_workloads(wrap)
            self._scalers[r] = scalers
        for index, ev in enumerate(self.spec.events):
            if ev.kind == "churn":
                # Per-event seed derivation (same keying as RngRegistry.fork)
                # so concurrent churn waves draw independent gap sequences.
                self.system.attach_mobility(PoissonChurn(
                    phone_ids=self._phone_ids(ev),
                    mean_interval_s=ev.interval,
                    start_at=ev.time,
                    until=ev.until,
                    seed=self.system.rng.master_seed * 1_000_003 + index,
                ))

    # -- post-start ----------------------------------------------------------
    def schedule(self) -> None:
        """Schedule every timed event, preserving the spec's order."""
        for ev in self.spec.events:
            handler = getattr(self, f"_schedule_{ev.kind}")
            handler(ev)

    def _phone_ids(self, ev: EventSpec) -> List[str]:
        return [f"region{ev.region}.p{i}" for i in ev.phones]

    def _schedule_crash(self, ev: EventSpec) -> None:
        self.system.injector.crash_at(ev.time, self._phone_ids(ev))

    def _schedule_cascade(self, ev: EventSpec) -> None:
        self.system.injector.cascade(ev.time, ev.interval, self._phone_ids(ev))

    def _schedule_depart(self, ev: EventSpec) -> None:
        sim = self.system.sim
        for pid in self._phone_ids(ev):
            sim.call_at(ev.time, lambda p=pid: self.system.apply_departure(p))

    def _schedule_churn(self, ev: EventSpec) -> None:
        pass  # armed via the mobility model in install()

    def _schedule_join(self, ev: EventSpec) -> None:
        def admit(r=ev.region, n=ev.count):
            for _ in range(n):
                self.system.admit_phone(r)

        self.system.sim.call_at(ev.time, admit)

    def _schedule_handoff(self, ev: EventSpec) -> None:
        sim = self.system.sim
        for pid in self._phone_ids(ev):
            sim.call_at(
                ev.time, lambda p=pid, t=ev.to_region: self.system.handoff(p, t)
            )

    def _schedule_surge(self, ev: EventSpec) -> None:
        sim = self.system.sim

        def set_scale(value: float, r=ev.region):
            for scaler in self._scalers.get(r, ()):
                scaler.scale = value
            self.system.trace.record(
                sim.now, "workload_surge", region=f"region{r}", factor=value
            )

        sim.call_at(ev.time, lambda f=ev.factor: set_scale(f))
        if ev.until is not None:
            sim.call_at(ev.until, lambda: set_scale(1.0))

    def _schedule_battery(self, ev: EventSpec) -> None:
        def drop(pids=self._phone_ids(ev), charge=ev.charge, r=ev.region):
            region = self.system.regions[r]
            for pid in pids:
                phone = self.system.find_phone(pid)
                # Departed/handed-off phones stay in the bookkeeping maps
                # (alive, but out of the WiFi cell) — don't drop a ghost.
                if phone is None or not phone.alive or not region.wifi.is_member(pid):
                    continue
                cap = phone.battery.config.capacity_j
                phone.battery.remaining_j = min(phone.battery.remaining_j, cap * charge)
                self.system.trace.record(
                    self.system.sim.now, "battery_dropped", phone=pid, charge=charge
                )

        self.system.sim.call_at(ev.time, drop)
