"""Scenario engine: declarative specs, a named library, parallel sweeps.

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and friends, the
  declarative (dict/JSON round-trippable) description of a deployment,
  its timed event script, and the app × scheme × seed matrix.
* :mod:`repro.scenarios.events` — the :class:`EventDirector` that drives
  a built system from a spec's script.
* :mod:`repro.scenarios.registry` / :mod:`repro.scenarios.library` — the
  name -> spec registry and the built-in scenarios.
* :mod:`repro.scenarios.runner` — single-case execution and canonical
  JSON serialization.
* :mod:`repro.scenarios.executor` — the sweep executor: warm worker
  pool, case-level resume cache, streaming artifacts.
"""

from repro.scenarios import library as _library  # noqa: F401  (registers built-ins)
from repro.scenarios.events import EventDirector
from repro.scenarios.executor import (
    CaseCache,
    StreamingSweepWriter,
    run_sweep,
    shutdown_pool,
    spec_digest,
)
from repro.scenarios.registry import all_specs, get, names, register, unregister
from repro.scenarios.runner import (
    CaseResult,
    build_system,
    case_to_dict,
    case_to_type,
    dumps_result,
    register_scheme,
    run_case,
    unregister_scheme,
)
from repro.scenarios.spec import (
    EventSpec,
    MatrixSpec,
    RegionSpec,
    ScenarioSpec,
    TelemetrySpec,
)

__all__ = [
    "CaseCache",
    "CaseResult",
    "EventDirector",
    "EventSpec",
    "MatrixSpec",
    "RegionSpec",
    "ScenarioSpec",
    "StreamingSweepWriter",
    "TelemetrySpec",
    "all_specs",
    "build_system",
    "case_to_dict",
    "case_to_type",
    "dumps_result",
    "get",
    "names",
    "register",
    "register_scheme",
    "run_case",
    "run_sweep",
    "shutdown_pool",
    "spec_digest",
    "unregister",
    "unregister_scheme",
]
