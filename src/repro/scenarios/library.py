"""The built-in scenario library.

Named, ready-to-run deployments — the paper's Section IV settings plus
richer workloads the hand-assembled harness could not express (rolling
cascades, churn with arrivals, flash crowds, inter-region handoffs,
heterogeneous fleets, battery cliffs).  Importing this module registers
everything; list them with ``python -m repro scenario list``.
"""

from __future__ import annotations

from repro.scenarios.registry import register
from repro.scenarios.spec import EventSpec, MatrixSpec, RegionSpec, ScenarioSpec

ALL_SCHEMES = ("base", "rep-2", "local", "dist-1", "dist-2", "dist-3", "ms-8")

PAPER_FIG8 = register(ScenarioSpec(
    name="paper-fig8",
    description="Section IV-B fault-free comparison: every scheme's "
                "throughput/latency overhead versus the base system, "
                "both applications (the Fig. 8 bars).",
    duration_s=900.0,
    warmup_s=150.0,
    matrix=MatrixSpec(apps=("bcp", "signalguru"), schemes=ALL_SCHEMES, seeds=(3,)),
))

PAPER_FIG9_BURST = register(ScenarioSpec(
    name="paper-fig9-burst",
    description="Fig. 9's headline point: four phones crash simultaneously "
                "inside one checkpoint period; MobiStreams restores the "
                "burst like a single failure.",
    duration_s=900.0,
    warmup_s=150.0,
    idle_per_region=8,
    events=(EventSpec(kind="crash", time=450.0, phones=(3, 4, 5, 6)),),
    matrix=MatrixSpec(apps=("bcp",), schemes=("ms-8", "dist-3"), seeds=(3,)),
))

FAILURE_CASCADE = register(ScenarioSpec(
    name="failure-cascade",
    description="A rolling burst: one phone dies every 30 s for two "
                "minutes, all inside a single checkpoint period — more "
                "failures arrive while recovery is still in flight.",
    duration_s=900.0,
    warmup_s=150.0,
    idle_per_region=8,
    events=(
        EventSpec(kind="cascade", time=400.0, phones=(3, 4, 5, 6), interval=30.0),
    ),
    matrix=MatrixSpec(apps=("bcp",), schemes=("ms-8", "dist-3"), seeds=(3,)),
))

RUSH_HOUR_CHURN = register(ScenarioSpec(
    name="rush-hour-churn",
    description="Organic churn: phones trickle out at exponential gaps "
                "while fresh phones keep arriving and registering as "
                "spares — sustained membership turnover, not one burst.",
    duration_s=900.0,
    warmup_s=150.0,
    idle_per_region=4,
    events=(
        EventSpec(kind="churn", time=200.0, phones=(3, 4, 5), interval=120.0,
                  until=800.0),
        EventSpec(kind="join", time=260.0, count=1),
        EventSpec(kind="join", time=380.0, count=1),
        EventSpec(kind="join", time=500.0, count=1),
    ),
    matrix=MatrixSpec(apps=("bcp",), schemes=("ms-8",), seeds=(3, 4)),
))

FLASH_CROWD = register(ScenarioSpec(
    name="flash-crowd",
    description="A flash crowd triples the source rate for five minutes "
                "mid-run: how much surge headroom does each scheme's "
                "fault-tolerance overhead leave?",
    duration_s=900.0,
    warmup_s=150.0,
    events=(EventSpec(kind="surge", time=300.0, factor=3.0, until=600.0),),
    matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3,)),
))

HANDOFF_STORM = register(ScenarioSpec(
    name="handoff-storm",
    description="Two cascaded regions; a wave of phones walks from the "
                "first region into the second — simultaneous departures "
                "upstream become simultaneous arrivals downstream.",
    duration_s=900.0,
    warmup_s=150.0,
    n_regions=2,
    idle_per_region=6,
    events=(
        EventSpec(kind="handoff", time=400.0, region=0, phones=(3, 4, 5),
                  to_region=1),
        EventSpec(kind="handoff", time=520.0, region=0, phones=(6,), to_region=1),
    ),
    matrix=MatrixSpec(apps=("bcp",), schemes=("ms-8",), seeds=(3,)),
))

HETEROGENEOUS_FLEET = register(ScenarioSpec(
    name="heterogeneous-fleet",
    description="Three cascaded regions with very different fleets: fast "
                "fresh phones upstream, slow half-charged stragglers at "
                "the tail — where does the cascade bottleneck?",
    duration_s=900.0,
    warmup_s=150.0,
    n_regions=3,
    regions=(
        RegionSpec(cpu_speed=1.4, charge_fraction=1.0),
        RegionSpec(cpu_speed=1.0, charge_fraction=0.9),
        RegionSpec(cpu_speed=0.6, charge_fraction=0.7),
    ),
    matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3,)),
))

EDGEML_BASELINE = register(ScenarioSpec(
    name="edgeml-baseline",
    description="Split-DNN edge inference, fault-free: megabytes of "
                "per-partition weight state make checkpoint traffic the "
                "overhead story — how do the schemes rank on a workload "
                "the paper never measured?",
    duration_s=900.0,
    warmup_s=150.0,
    matrix=MatrixSpec(apps=("edgeml",), schemes=("base", "dist-2", "ms-8"),
                      seeds=(3,)),
))

EDGEML_SPLIT_SWEEP = register(ScenarioSpec(
    name="edgeml-split-sweep",
    description="Where to split the network: shallow splits keep weights "
                "off the phones but ship fat tensors, deep splits invert "
                "the trade — swept via parameterized app refs, with a "
                "mid-run crash of a partition phone.",
    duration_s=900.0,
    warmup_s=150.0,
    idle_per_region=4,
    # Phone 2 hosts a partition stage at every swept split depth.
    events=(EventSpec(kind="crash", time=450.0, phones=(2,)),),
    matrix=MatrixSpec(
        apps=(
            {"name": "edgeml", "params": {"n_stages": 2}},
            {"name": "edgeml", "params": {"n_stages": 4}},
            {"name": "edgeml", "params": {"n_stages": 6}},
        ),
        schemes=("ms-8",),
        seeds=(3,),
    ),
))

FLEET_IDLE_CHURN = register(ScenarioSpec(
    name="fleet-idle-churn",
    description="Fleet scale: a 2000-spare idle pool behind the usual "
                "8-phone dataflow, with organic churn and arrivals — the "
                "vectorized device backend keeps the per-tick battery "
                "bookkeeping O(1) Python calls instead of O(n).",
    duration_s=900.0,
    warmup_s=150.0,
    idle_per_region=2000,
    device_backend="fleet",
    events=(
        EventSpec(kind="churn", time=200.0, phones=(3, 4, 5), interval=120.0,
                  until=800.0),
        EventSpec(kind="join", time=260.0, count=1),
        EventSpec(kind="join", time=500.0, count=1),
    ),
    matrix=MatrixSpec(apps=("bcp",), schemes=("ms-8",), seeds=(3,)),
))

FLEET_BATTERY_WAVE = register(ScenarioSpec(
    name="fleet-battery-wave",
    description="Fleet scale: 1500 phones all start a hair above the "
                "chronic-battery threshold and cross it together mid-run "
                "— one vectorized sweep flags the whole wave, and every "
                "computing phone self-reports at once.",
    duration_s=900.0,
    warmup_s=150.0,
    idle_per_region=1500,
    device_backend="fleet",
    # 0.0319 × 16 kJ = 510.4 J; idle drain (0.15 W) crosses the 480 J
    # chronic threshold at ~203 s — inside the run window even for
    # quick() copies, whose clocks compress but whose drain rates do not.
    regions=(RegionSpec(charge_fraction=0.0319),),
    matrix=MatrixSpec(apps=("bcp",), schemes=("ms-8",), seeds=(3,)),
))

BATTERY_CLIFF = register(ScenarioSpec(
    name="battery-cliff",
    description="Two phones fall off a battery cliff to the chronic "
                "threshold mid-run: Section III-D's proactive self-report "
                "path replaces them before they die.",
    duration_s=900.0,
    warmup_s=150.0,
    idle_per_region=4,
    events=(EventSpec(kind="battery", time=350.0, phones=(2, 3), charge=0.02),),
    matrix=MatrixSpec(apps=("bcp",), schemes=("ms-8",), seeds=(3,)),
))
